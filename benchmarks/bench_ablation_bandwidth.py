"""Ablation: where does each workload cross from memory- to compute-bound?

The paper evaluates only the DDR4 (16 GB/s) and HBM2 (256 GB/s) endpoints.
This bench sweeps bandwidth continuously to locate the crossover point per
workload on the BPVeC accelerator -- the bandwidth beyond which extra
memory speed stops helping.
"""

from repro.hw import BPVEC, DDR4, scaled_memory
from repro.nn import evaluation_workloads, homogeneous_8bit
from repro.sim import format_table, simulate_network

BANDWIDTHS = (8, 16, 32, 64, 128, 256)


def crossover_sweep():
    results = {}
    for net in evaluation_workloads():
        homogeneous_8bit(net)
        series = []
        for bw in BANDWIDTHS:
            res = simulate_network(net, BPVEC, scaled_memory(DDR4, bw))
            series.append((bw, res.total_seconds, res.memory_bound_fraction))
        results[net.name] = series
    return results


def test_bandwidth_crossover(benchmark, show):
    results = benchmark(crossover_sweep)
    rows = []
    crossovers = {}
    for name, series in results.items():
        crossover = next(
            (bw for bw, _, frac in series if frac < 0.5), None
        )
        crossovers[name] = crossover
        rows.append(
            (name, *(f"{seconds * 1e3:.1f}" for _, seconds, _ in series), crossover)
        )
    show(
        "Ablation: BPVeC runtime (ms) vs off-chip bandwidth (GB/s)",
        format_table(
            ["Workload", *(f"{b}" for b in BANDWIDTHS), "crossover GB/s"], rows
        ),
    )

    # CNNs are compute-bound at or near DDR4 bandwidth already.
    for name in ("Inception-v1", "ResNet-18"):
        assert crossovers[name] is not None and crossovers[name] <= 16
    # Recurrent workloads need several x DDR4 before compute binds --
    # exactly why only HBM2 unlocks their Fig. 6/8 speedups.
    for name in ("RNN", "LSTM"):
        assert crossovers[name] is not None and 16 < crossovers[name] <= 128

    # More bandwidth never hurts.
    for series in results.values():
        times = [seconds for _, seconds, _ in series]
        assert all(a >= b - 1e-12 for a, b in zip(times, times[1:]))
