"""Ablation: hardwired composition shifts vs full barrel shifters.

DESIGN.md design decision: because NBVE (j, k) always shifts its output by
``slice_width * (j + k)``, the CVU's shifters are static wiring plus a
mode mux.  A naive reconfigurable implementation would use barrel
shifters.  This bench quantifies what that choice is worth.
"""

from repro.hw.components import Components
from repro.sim import format_table


def shifter_costs():
    comp = Components()
    rows = []
    for width, max_shift in ((8, 12), (12, 12), (16, 14)):
        hard = comp.shifter(width, max_shift, hardwired=True)
        barrel = comp.shifter(width, max_shift, hardwired=False)
        rows.append(
            (
                f"{width}b << {max_shift}",
                hard.power,
                barrel.power,
                barrel.power / hard.power,
                barrel.area / hard.area,
            )
        )
    return rows


def test_hardwired_vs_barrel(benchmark, show):
    rows = benchmark(shifter_costs)
    show(
        "Ablation: hardwired composition shift vs barrel shifter",
        format_table(
            ["Shifter", "Hardwired", "Barrel", "Power ratio", "Area ratio"], rows
        ),
    )
    for row in rows:
        # Barrel shifters cost several times more in both power and area.
        assert row[3] > 2.0
        assert row[4] > 2.0
