"""Table II: the evaluated hardware platforms."""

import pytest

from repro.experiments import render_table2, table2
from repro.hw import PaperCostModel, units_under_power_budget


def test_table2(benchmark, show):
    asics, gpu = benchmark(table2)
    show("Table II: evaluated hardware platforms", render_table2())

    by_name = {s.name: s for s in asics}
    assert by_name["TPU-like baseline"].num_macs == 512
    assert by_name["BitFusion"].num_macs == 448
    assert by_name["BPVeC"].num_macs == 1024
    for spec in asics:
        assert spec.onchip_bytes == 112 * 1024
        assert spec.frequency_hz == 500e6
        assert spec.technology_nm == 45
    assert gpu.tensor_cores == 544
    assert gpu.frequency_hz == pytest.approx(1545e6)


def test_table2_mac_counts_derivable_from_power_budget(benchmark):
    """The Table II unit counts follow from the 250 mW budget + Fig. 4 costs."""
    model = PaperCostModel()

    def derive():
        return (
            units_under_power_budget(model.mac_power_mw(2, 16)),  # BPVeC
            units_under_power_budget(model.mac_power_mw(2, 1), granularity=1),
        )

    bpvec_units, bitfusion_units = benchmark(derive)
    assert bpvec_units == 1024
    assert abs(bitfusion_units - 448) / 448 < 0.15
