"""Robustness ablation: does the Fig. 5 result depend on CNN batch size?

EXPERIMENTS.md documents that the figure experiments use batch 8 for the
CNNs (Table I's GOps imply much larger throughput batches).  This bench
sweeps the batch and shows the headline geomean is robust: the CNN
speedups are utilization-limited, not batch-limited, across 1..32.
"""

from conftest import geo_row
from repro.experiments import fig5_homogeneous_ddr4
from repro.sim import format_table

BATCHES = (1, 4, 8, 16, 32)


def sweep():
    return {batch: fig5_homogeneous_ddr4(cnn_batch=batch) for batch in BATCHES}


def test_fig5_batch_robustness(benchmark, show):
    results = benchmark(sweep)
    rows = []
    for batch, figure_rows in results.items():
        geo = geo_row(figure_rows)
        rows.append((batch, geo.speedup, geo.energy_reduction))
    show(
        "Ablation: Fig. 5 geomean vs CNN batch size",
        format_table(["CNN batch", "Geomean speedup", "Geomean energy"], rows),
    )
    speedups = [r[1] for r in rows]
    # The conclusion (~1.4-1.5x) holds at every batch in the sweep.
    assert all(1.30 <= s <= 1.60 for s in speedups)
    # And the spread across two orders of magnitude of batch is small.
    assert max(speedups) - min(speedups) < 0.15
