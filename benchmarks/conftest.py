"""Shared helpers for the benchmark harness.

Every ``bench_*`` module regenerates one table or figure of the paper:
it times the experiment driver with pytest-benchmark, prints the same
rows/series the paper reports (run with ``-s`` to see them), and asserts
the qualitative shape (who wins, by roughly what factor).
"""

import pytest

from repro.experiments import GEOMEAN


def geo_row(rows, platform=None, memory=None):
    """Extract the GEOMEAN row from a list of SpeedupRows."""
    for r in rows:
        if r.workload != GEOMEAN:
            continue
        if platform and r.platform != platform:
            continue
        if memory and r.memory != memory:
            continue
        return r
    raise AssertionError("no geomean row found")


def workload_row(rows, workload, platform=None):
    for r in rows:
        if r.workload == workload and (platform is None or r.platform == platform):
            return r
    raise AssertionError(f"no row for {workload}")


@pytest.fixture
def show():
    """Print a titled block; visible with ``pytest -s``."""

    def _show(title: str, body: str) -> None:
        print(f"\n{'=' * 72}\n{title}\n{'=' * 72}\n{body}")

    return _show
