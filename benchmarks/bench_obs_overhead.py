"""Observability tax: instrumented sweep throughput vs registry off.

The metrics registry sits on the engine's hot path (tier counters,
chunk latency) and on every serve-layer operation.  The design rule is
that instrumentation must be amortized -- one registry touch per tier
per sweep, never per record -- and this bench enforces it: the same
warm (all-memo) sweep runs with the process-global registry enabled
and with ``set_enabled(False)``, and the enabled run may be at most
``MAX_OVERHEAD`` (5% by default) slower.

A warm sweep is the worst case for relative overhead: with cold
simulation out of the picture, per-record engine bookkeeping is the
whole cost, so any per-record registry touch shows up immediately.

Emits ``BENCH_obs_overhead.json`` (path overridable via the
``BENCH_OBS_OVERHEAD_JSON`` env var) for the CI artifact shelf.
"""

import json
import os
import statistics
import time

from repro.dse import SweepSpec, clear_caches, run_sweep
from repro.hw import DDR4, HBM2, scaled_memory
from repro.obs.metrics import get_registry
from repro.sim import format_table

MEMORIES = (
    DDR4,
    HBM2,
    scaled_memory(DDR4, 64),
    scaled_memory(HBM2, 512),
)

#: Allowed slowdown of the instrumented run, as a fraction (0.05 = 5%).
MAX_OVERHEAD = float(os.environ.get("REPRO_MAX_OBS_OVERHEAD", "0.05"))

#: Timed enabled/disabled sample pairs; the median of the per-pair
#: ratios is the gated statistic -- pairing cancels machine-load drift
#: and the median shrugs off a preempted sample, which best-of-N does
#: not when the noise outlasts one mode's whole pass.
REPEATS = 9

#: Warm sweeps per timed sample: one warm 1008-point sweep runs in
#: ~2ms, far below scheduler jitter, so each sample times a batch long
#: enough (~200ms) that a preemption moves it well under a percent.
SWEEPS_PER_SAMPLE = 100


def _sweep_spec() -> SweepSpec:
    # The full 1008-point grid from the vectorized-eval bench.
    return SweepSpec.grid(
        workloads=(
            "AlexNet", "Inception-v1", "ResNet-18", "ResNet-50", "RNN", "LSTM"
        ),
        platforms=("tpu", "bitfusion", "bpvec"),
        memories=MEMORIES,
        policies=("homogeneous-8bit", "paper-heterogeneous"),
        batches=(1, 2, 4, 8, 16, 32, 64),
    )


def _timed_warm_sample(spec: SweepSpec) -> float:
    start = time.perf_counter()
    for _ in range(SWEEPS_PER_SAMPLE):
        result = run_sweep(spec)
    elapsed = time.perf_counter() - start
    assert result.from_memo == result.unique_points  # fully warm
    return elapsed


def test_instrumentation_overhead_under_gate(benchmark, show):
    registry = get_registry()
    spec = _sweep_spec()
    clear_caches()
    run_sweep(spec)  # warm the memo once, untimed

    # Time the two modes back to back so each pair sees the same
    # machine load; the per-pair ratio cancels drift and the median
    # over pairs discards preempted samples.
    ratios = []
    enabled_seconds = disabled_seconds = float("inf")
    try:
        for _ in range(REPEATS):
            registry.set_enabled(True)
            enabled = _timed_warm_sample(spec)
            registry.set_enabled(False)
            disabled = _timed_warm_sample(spec)
            ratios.append(enabled / disabled)
            enabled_seconds = min(enabled_seconds, enabled)
            disabled_seconds = min(disabled_seconds, disabled)
    finally:
        registry.set_enabled(True)

    benchmark(run_sweep, spec)  # the instrumented path, for the JSON

    overhead = statistics.median(ratios) - 1.0
    rows = [
        ("registry disabled", disabled_seconds * 1e3, "-"),
        ("instrumented", enabled_seconds * 1e3, f"{overhead:+.1%}"),
    ]
    show(
        f"Observability tax on a warm {len(spec)}-point sweep "
        f"(gate: +{MAX_OVERHEAD:.0%})",
        format_table(["Mode", "Time (ms)", "Overhead"], rows),
    )

    payload = {
        "points": len(spec),
        "repeats": REPEATS,
        "sweeps_per_sample": SWEEPS_PER_SAMPLE,
        "instrumented_seconds": round(enabled_seconds, 4),
        "disabled_seconds": round(disabled_seconds, 4),
        "overhead_fraction": round(overhead, 4),
        "max_overhead_gate": MAX_OVERHEAD,
    }
    artifact = os.environ.get(
        "BENCH_OBS_OVERHEAD_JSON", "BENCH_obs_overhead.json"
    )
    with open(artifact, "w") as handle:
        json.dump(payload, handle, indent=2)
    benchmark.extra_info.update(payload)

    assert overhead <= MAX_OVERHEAD, (
        f"instrumented warm sweep is {overhead:+.1%} vs registry-disabled "
        f"({enabled_seconds:.3f}s vs {disabled_seconds:.3f}s); "
        f"gate is +{MAX_OVERHEAD:.0%}"
    )
