"""Ablation: slicing granularity (1-bit vs 2-bit vs 4-bit).

The paper synthesizes 1-bit and 2-bit slicing and argues qualitatively
(Section III-B, observation 3) that 4-bit slicing is cheaper per MAC but
"leads to underutilization of compute resources when DNNs with less than
4-bits are being processed".  This bench quantifies that trade-off: the
power per *useful* MAC combines the cost model with the cluster
parallelism each slicing extracts at each operand bitwidth, and bit-level
utilization shows where coarse multipliers idle.
"""

from repro.core import num_slices, plan_composition
from repro.hw import AnalyticalCostModel
from repro.sim import format_table


def efficiency_table():
    """Power per useful MAC for each (slicing, operand bitwidth) pair."""
    model = AnalyticalCostModel()
    rows = []
    for slice_width in (1, 2, 4):
        base_power = model.total(slice_width, 16, "power")
        for bw in (8, 4, 3, 2):
            plan = plan_composition(bw, bw, slice_width=slice_width)
            covered = num_slices(bw, slice_width) * slice_width
            bit_utilization = (bw / covered) ** 2 * plan.utilization
            effective = base_power / plan.n_groups
            rows.append(
                (slice_width, bw, plan.n_groups, bit_utilization, effective)
            )
    return rows


def test_slicing_vs_operand_bitwidth(benchmark, show):
    rows = benchmark(efficiency_table)
    show(
        "Ablation: slicing granularity vs operand bitwidth "
        "(power per useful MAC, analytical model)",
        format_table(
            ["Slicing", "Operand bits", "Clusters", "Bit utilization", "Power/MAC"],
            rows,
        ),
    )
    table = {(r[0], r[1]): r for r in rows}

    # 4-bit slicing is cheapest at 8-bit and 4-bit operands...
    assert table[(4, 8)][4] < table[(2, 8)][4]
    assert table[(4, 4)][4] < table[(2, 4)][4]
    # ...but wastes multiplier bits below 4-bit operands, where 2-bit
    # slicing extracts 4x the cluster parallelism and wins on power/MAC.
    assert table[(4, 2)][3] < 0.5  # coarse multipliers mostly idle
    assert table[(2, 2)][3] == 1.0
    assert table[(2, 2)][4] < table[(4, 2)][4]
    # 2-bit slicing degrades gracefully at odd bitwidths (padding only).
    assert table[(2, 3)][3] > 0.5
    # 1-bit slicing never wins at any operand width.
    for bw in (8, 4, 2):
        assert table[(1, bw)][4] > min(table[(2, bw)][4], table[(4, bw)][4])
