"""DSE engine at scale: a 1000+-point sweep, cold vs warm store.

The acceptance bar for the engine: evaluate a >= 1000-point design-space
sweep, persist it to the JSONL result store, and show that re-running
the identical sweep against the warm store is at least 5x faster than
the cold run (in practice it is orders of magnitude faster -- the warm
path is pure hashing plus one JSONL load, no simulation).
"""

import time

from repro.dse import SweepSpec, clear_memo, pareto_frontier, run_sweep
from repro.hw import DDR4, HBM2, scaled_memory
from repro.sim import format_table

# 6 workloads x 3 platforms x 4 memories x 2 policies x 7 batches = 1008.
MEMORIES = (
    DDR4,
    HBM2,
    scaled_memory(DDR4, 64),
    scaled_memory(HBM2, 512),
)
POLICIES = ("homogeneous-8bit", "paper-heterogeneous")
BATCHES = (1, 2, 4, 8, 16, 32, 64)


def _sweep_spec() -> SweepSpec:
    return SweepSpec.grid(
        workloads=(
            "AlexNet", "Inception-v1", "ResNet-18", "ResNet-50", "RNN", "LSTM"
        ),
        platforms=("tpu", "bitfusion", "bpvec"),
        memories=MEMORIES,
        policies=POLICIES,
        batches=BATCHES,
    )


def test_dse_engine_cold_vs_warm(benchmark, show, tmp_path):
    spec = _sweep_spec()
    assert len(spec) >= 1000

    store = tmp_path / "dse-results.jsonl"
    clear_memo()
    t0 = time.perf_counter()
    cold = run_sweep(spec, store=store)
    cold_seconds = time.perf_counter() - t0
    assert cold.evaluated == len(spec)

    def warm_run():
        clear_memo()  # only the persistent store may serve hits
        return run_sweep(spec, store=store)

    warm = benchmark(warm_run)
    assert warm.evaluated == 0
    assert warm.from_store == len(spec)
    assert warm.records == cold.records  # bit-identical through the store

    t0 = time.perf_counter()
    warm_run()
    warm_seconds = time.perf_counter() - t0
    speedup = cold_seconds / warm_seconds
    assert speedup >= 5.0, (
        f"warm store run only {speedup:.1f}x faster than cold "
        f"({cold_seconds:.2f}s vs {warm_seconds:.2f}s)"
    )

    frontier = pareto_frontier(cold.records)
    show(
        f"DSE engine: {len(spec)}-point sweep, cold {cold_seconds * 1e3:.0f} ms "
        f"vs warm {warm_seconds * 1e3:.0f} ms ({speedup:.0f}x); "
        f"Pareto frontier {len(frontier)} points",
        format_table(
            ["Workload", "Platform", "Memory", "Policy", "Batch", "Time (ms)"],
            [
                (
                    r["workload"], r["platform"], r["memory"], r["policy"],
                    r["batch"], r["metrics"]["total_seconds"] * 1e3,
                )
                for r in frontier
            ],
        ),
    )
    benchmark.extra_info["points"] = len(spec)
    benchmark.extra_info["cold_seconds"] = round(cold_seconds, 3)
    benchmark.extra_info["warm_vs_cold_speedup"] = round(speedup, 1)


def test_dse_engine_multiprocessing_consistency(show):
    """A pool-evaluated sweep returns records identical to the serial run."""
    spec = SweepSpec.grid(
        workloads=("AlexNet", "RNN", "LSTM"),
        platforms=("tpu", "bpvec"),
        memories=(DDR4, HBM2),
        batches=(1, 8),
    )
    clear_memo()
    serial = run_sweep(spec)
    clear_memo()
    parallel = run_sweep(spec, workers=4)
    assert parallel.records == serial.records
    show(
        "DSE engine: multiprocessing fan-out",
        f"{len(spec)} points identical across serial and 4-worker pool runs",
    )
