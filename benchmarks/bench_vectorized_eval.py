"""Vectorized lowered-IR evaluator at scale: cold 1008-point sweep.

Acceptance bench for :mod:`repro.sim.lowered`: evaluate the same
1008-point design-space grid cold through the scalar per-point path
(``vectorize=False``, the ``--no-vectorize`` escape hatch) and through
the vectorized evaluator, single-process and with a worker pool.  The
records must be bit-identical, and the single-process vectorized run
must beat the scalar run by at least ``MIN_SPEEDUP`` (3x by default --
a CI-safe floor; locally the margin is far larger).

A second case stresses the **policy axis**: the same hardware grid
crossed with four generated per-layer policies per workload -- the
shape ``repro quant-dse`` sweeps produce.  Every (workload, batch,
policy) combination is a distinct lowered IR, so this pins the
lowered-IR cache behavior when policies multiply the key space.

Emits ``BENCH_vectorized_eval.json`` and ``BENCH_policy_axis.json``
(paths overridable via the ``BENCH_VECTORIZED_EVAL_JSON`` /
``BENCH_POLICY_AXIS_JSON`` env vars) so CI can archive the numbers as
artifacts next to the pytest-benchmark JSON.
"""

import json
import os
import time

from repro.dse import PolicySpec, SweepSpec, clear_caches, run_sweep
from repro.dse.spec import build_network
from repro.hw import DDR4, HBM2, scaled_memory
from repro.sim import format_table

# 6 workloads x 3 platforms x 4 memories x 2 policies x 7 batches = 1008.
MEMORIES = (
    DDR4,
    HBM2,
    scaled_memory(DDR4, 64),
    scaled_memory(HBM2, 512),
)
POLICIES = ("homogeneous-8bit", "paper-heterogeneous")
BATCHES = (1, 2, 4, 8, 16, 32, 64)

MIN_SPEEDUP = float(os.environ.get("REPRO_MIN_VECTOR_SPEEDUP", "3.0"))


def _sweep_spec() -> SweepSpec:
    return SweepSpec.grid(
        workloads=(
            "AlexNet", "Inception-v1", "ResNet-18", "ResNet-50", "RNN", "LSTM"
        ),
        platforms=("tpu", "bitfusion", "bpvec"),
        memories=MEMORIES,
        policies=POLICIES,
        batches=BATCHES,
    )


def _timed_cold_run(**kwargs):
    # Every evaluation-path cache dropped, and fresh SweepPoint
    # instances so the per-point config-hash memo is paid inside every
    # timed run -- scalar and vectorized alike.
    clear_caches()
    spec = _sweep_spec()
    start = time.perf_counter()
    result = run_sweep(spec, **kwargs)
    return result, time.perf_counter() - start


def test_vectorized_vs_scalar_cold_sweep(benchmark, show):
    spec = _sweep_spec()
    assert len(spec) >= 1000

    scalar, scalar_seconds = _timed_cold_run(vectorize=False)
    assert scalar.evaluated == len(spec)

    pooled, pooled_seconds = _timed_cold_run(vectorize=True, workers=4)
    assert pooled.records == scalar.records  # bit-identical through the pool

    def vectorized_run():
        result, _ = _timed_cold_run(vectorize=True)
        return result

    vectorized = benchmark(vectorized_run)
    assert vectorized.evaluated == len(spec)
    assert vectorized.records == scalar.records  # bit-identical, all 1008

    _, vectorized_seconds = _timed_cold_run(vectorize=True)
    speedup = scalar_seconds / vectorized_seconds
    pooled_speedup = scalar_seconds / pooled_seconds

    rows = [
        ("scalar (--no-vectorize)", 1, scalar_seconds * 1e3, 1.0),
        ("vectorized", 1, vectorized_seconds * 1e3, speedup),
        ("vectorized", 4, pooled_seconds * 1e3, pooled_speedup),
    ]
    show(
        f"Vectorized evaluator: cold {len(spec)}-point sweep "
        f"({speedup:.1f}x single-process)",
        format_table(["Path", "Workers", "Time (ms)", "Speedup"], rows),
    )

    payload = {
        "points": len(spec),
        "scalar_seconds": round(scalar_seconds, 4),
        "vectorized_seconds": round(vectorized_seconds, 4),
        "vectorized_pool4_seconds": round(pooled_seconds, 4),
        "single_process_speedup": round(speedup, 2),
        "pool4_speedup": round(pooled_speedup, 2),
        "min_speedup_gate": MIN_SPEEDUP,
    }
    artifact = os.environ.get(
        "BENCH_VECTORIZED_EVAL_JSON", "BENCH_vectorized_eval.json"
    )
    with open(artifact, "w") as handle:
        json.dump(payload, handle, indent=2)
    benchmark.extra_info.update(payload)

    assert speedup >= MIN_SPEEDUP, (
        f"vectorized cold sweep only {speedup:.2f}x faster than scalar "
        f"({vectorized_seconds:.3f}s vs {scalar_seconds:.3f}s); "
        f"gate is {MIN_SPEEDUP:.1f}x"
    )


# ----------------------------------------------------------------------
# Policy axis: same grid x 4 generated per-layer policies per workload
# ----------------------------------------------------------------------
WORKLOADS = ("AlexNet", "Inception-v1", "ResNet-18", "ResNet-50", "RNN", "LSTM")


def _generated_policies(num_layers: int) -> list[str]:
    """Four distinct deterministic per-layer policies, quant-dse style."""
    wide, mid, narrow = 8, 4, 2
    if num_layers >= 3:
        # The classic deep-quantization shape: wide boundary layers.
        mixed = [narrow] * num_layers
        mixed[0] = mixed[-1] = wide
    else:
        # Too few layers to mix widths distinctly; use a fourth uniform.
        mixed = [6] * num_layers
    return [
        PolicySpec.from_assignment(bits).name
        for bits in (
            [wide] * num_layers,
            [mid] * num_layers,
            [narrow] * num_layers,
            mixed,
        )
    ]


def _policy_axis_spec() -> SweepSpec:
    points = []
    for workload in WORKLOADS:
        policies = _generated_policies(len(build_network(workload).weighted_layers))
        points.extend(
            SweepSpec.grid(
                workloads=(workload,),
                platforms=("tpu", "bitfusion", "bpvec"),
                memories=MEMORIES,
                policies=policies,
                batches=BATCHES,
            ).points
        )
    return SweepSpec(points=tuple(points))


def test_policy_axis_cold_sweep(benchmark, show):
    spec = _policy_axis_spec()
    # 6 workloads x 4 policies x 3 platforms x 4 memories x 7 batches.
    assert len(spec) == len(WORKLOADS) * 4 * 3 * len(MEMORIES) * len(BATCHES)
    lowered_keys = {
        (p.workload, p.batch, p.policy) for p in spec.points if p.kind == "asic"
    }

    def cold_run(**kwargs):
        clear_caches()
        start = time.perf_counter()
        result = run_sweep(_policy_axis_spec(), **kwargs)
        return result, time.perf_counter() - start

    scalar, scalar_seconds = cold_run(vectorize=False)
    assert scalar.evaluated == len(spec)

    def vectorized_run():
        result, _ = cold_run(vectorize=True)
        return result

    vectorized = benchmark(vectorized_run)
    assert vectorized.evaluated == len(spec)
    # Bit-identity holds for arbitrary generated policies, all points.
    assert vectorized.records == scalar.records

    _, vectorized_seconds = cold_run(vectorize=True)
    speedup = scalar_seconds / vectorized_seconds

    show(
        f"Policy-axis sweep: {len(spec)} points, "
        f"{len(lowered_keys)} lowered IRs ({speedup:.1f}x vectorized)",
        format_table(
            ["Path", "Time (ms)", "Speedup"],
            [
                ("scalar (--no-vectorize)", scalar_seconds * 1e3, 1.0),
                ("vectorized", vectorized_seconds * 1e3, speedup),
            ],
        ),
    )

    payload = {
        "points": len(spec),
        "generated_policies_per_workload": 4,
        "lowered_networks": len(lowered_keys),
        "scalar_seconds": round(scalar_seconds, 4),
        "vectorized_seconds": round(vectorized_seconds, 4),
        "single_process_speedup": round(speedup, 2),
        "min_speedup_gate": MIN_SPEEDUP,
    }
    artifact = os.environ.get("BENCH_POLICY_AXIS_JSON", "BENCH_policy_axis.json")
    with open(artifact, "w") as handle:
        json.dump(payload, handle, indent=2)
    benchmark.extra_info.update(payload)

    assert speedup >= MIN_SPEEDUP, (
        f"vectorized policy-axis sweep only {speedup:.2f}x faster than "
        f"scalar ({vectorized_seconds:.3f}s vs {scalar_seconds:.3f}s); "
        f"gate is {MIN_SPEEDUP:.1f}x"
    )
