"""Figure 8: HBM2 study; heterogeneous bitwidths; normalized to
BitFusion+DDR4.

Paper reference: BitFusion+HBM2 geomean 1.45x / 2.26x; BPVeC+HBM2 geomean
3.48x / 2.66x with RNN/LSTM peaking at ~4.5x.
"""

import pytest

from conftest import geo_row, workload_row
from repro.experiments import fig8_heterogeneous_hbm2, render_speedup_rows


def test_fig8(benchmark, show):
    rows = benchmark(fig8_heterogeneous_hbm2)
    show(
        "Figure 8: heterogeneous bitwidths, HBM2 (normalized to BitFusion+DDR4)",
        render_speedup_rows(rows),
    )

    bf_geo = geo_row(rows, platform="BitFusion")
    bpv_geo = geo_row(rows, platform="BPVeC")

    # BPVeC with HBM2 lands at ~3x over BitFusion+DDR4 (paper 3.48x).
    assert 2.4 <= bpv_geo.speedup <= 3.6
    # BitFusion itself gains much less from HBM2.
    assert bf_geo.speedup < bpv_geo.speedup / 1.8

    # Recurrent models benefit most: compute scaling + bandwidth compound.
    rnn = workload_row(rows, "RNN", platform="BPVeC")
    lstm = workload_row(rows, "LSTM", platform="BPVeC")
    assert rnn.speedup == pytest.approx(4.5, abs=0.7)
    assert lstm.speedup == pytest.approx(4.5, abs=0.7)
    cnn_max = max(
        workload_row(rows, w, platform="BPVeC").speedup
        for w in ("Inception-v1", "ResNet-18", "ResNet-50")
    )
    assert rnn.speedup > cnn_max

    benchmark.extra_info["bpvec_geomean_speedup"] = round(bpv_geo.speedup, 3)
    benchmark.extra_info["bitfusion_geomean_speedup"] = round(bf_geo.speedup, 3)
