"""Million-record store tier at 10^5 scale: ingest + paginated dumps.

Acceptance bench for the store-scale work: fill a SQLite store with
``N_RECORDS`` (100k in CI) DSE-shaped records through the batched
ingest path, then compare the two ways a client can dump the store:

* the legacy full load (``service.records()``): one response that
  materializes every survivor in server memory before the first byte;
* the paginated walk (``service.record_page_stream`` behind
  ``GET /records?after=&limit=``): keyset pages of ``PAGE_LIMIT``
  records, never holding more than one page.

Two gates pin the tier:

* **ingest**: one batched ``append`` (bounded multi-row transactions)
  must beat row-at-a-time appends by ``MIN_INGEST_SPEEDUP`` per
  record -- the regression that motivated the batching was ingest
  collapsing to one transaction per record;
* **dump**: the paginated walk must beat the full load by
  ``MIN_PAGE_FACTOR`` on *both* server-side peak memory (tracemalloc,
  full walk) and time-to-first-page (perf_counter, warm store).

The partitioned backend ingests the same corpus as context (its
numbers are reported, not gated), and both backends must agree on the
record count.  Emits ``BENCH_store_scale.json`` (path overridable via
``BENCH_STORE_SCALE_JSON``) so CI can archive the numbers.
"""

import hashlib
import json
import os
import time
import tracemalloc

from repro.dse import EVAL_VERSION, PartitionedStore, SQLiteStore
from repro.serve import SweepService
from repro.sim import format_table

N_RECORDS = int(os.environ.get("REPRO_BENCH_SCALE_RECORDS", "100000"))
PAGE_LIMIT = int(os.environ.get("REPRO_BENCH_SCALE_PAGE", "5000"))
ROW_SAMPLE = min(500, N_RECORDS)  # row-at-a-time appends are the slow side
MIN_INGEST_SPEEDUP = float(os.environ.get("REPRO_MIN_INGEST_SPEEDUP", "3.0"))
MIN_PAGE_FACTOR = float(os.environ.get("REPRO_MIN_PAGE_FACTOR", "3.0"))

_WORKLOADS = ("AlexNet", "ResNet-18", "ResNet-50", "RNN", "LSTM")


def _synthetic_record(index: int) -> dict:
    key = hashlib.sha256(f"bench-scale-{index}".encode()).hexdigest()
    return {
        "hash": key,
        "version": EVAL_VERSION,
        "kind": "asic",
        "workload": _WORKLOADS[index % len(_WORKLOADS)],
        "platform": "BPVeC",
        "memory": "DDR4" if index % 2 else "HBM2",
        "policy": "homogeneous-8bit",
        "batch": 1 << (index % 7),
        "metrics": {
            "total_cycles": 10_000_000 + index,
            "total_seconds": 0.02 + index * 1e-9,
            "total_energy_pj": 9.2e10,
            "perf_per_watt": 1.86e11 - index,
            "memory_bound_fraction": 1.0,
        },
    }


def _traced_peak(operation):
    """(result, peak_bytes, seconds) for one traced call."""
    tracemalloc.start()
    start = time.perf_counter()
    result = operation()
    seconds = time.perf_counter() - start
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return result, peak, seconds


def test_batched_ingest_and_paginated_dump(benchmark, show, tmp_path):
    records = [_synthetic_record(i) for i in range(N_RECORDS)]

    # -- ingest: one batched append vs row-at-a-time transactions -----
    sqlite = SQLiteStore(tmp_path / "scale.sqlite")
    start = time.perf_counter()
    appended = sqlite.append(records)
    batched_seconds = time.perf_counter() - start
    assert appended == N_RECORDS

    rowwise = SQLiteStore(tmp_path / "rowwise.sqlite")
    start = time.perf_counter()
    for record in records[:ROW_SAMPLE]:
        rowwise.append([record])
    rowwise_seconds = time.perf_counter() - start

    batched_rate = N_RECORDS / batched_seconds
    rowwise_rate = ROW_SAMPLE / rowwise_seconds
    ingest_speedup = batched_rate / rowwise_rate

    # Context: the partitioned backend ingests the same corpus.
    partitioned = PartitionedStore(tmp_path / "scale.parts")
    start = time.perf_counter()
    assert partitioned.append(records) == N_RECORDS
    partitioned_seconds = time.perf_counter() - start
    assert len(partitioned) == len(sqlite) == N_RECORDS

    # -- dump: full load vs the keyset-paginated walk ------------------
    # No record cache: this measures the streaming path itself, the
    # regime past any cache capacity where pagination must carry.
    service = SweepService(store=sqlite.path, record_cache=None)

    def full_load():
        return len(service.records())

    full_count, full_peak, full_seconds = _traced_peak(full_load)
    assert full_count == N_RECORDS

    def paginated_walk():
        count, after = 0, None
        while True:
            terminal = None
            for item in service.record_page_stream(after=after, limit=PAGE_LIMIT):
                if "count" in item and "hash" not in item:
                    terminal = item
                else:
                    count += 1
            if terminal["next"] is None:
                return count
            after = terminal["next"]

    page_count, page_peak, walk_seconds = _traced_peak(paginated_walk)
    assert page_count == N_RECORDS

    def first_page():
        return list(service.record_page_stream(limit=PAGE_LIMIT))

    benchmark(first_page)
    start = time.perf_counter()
    page = first_page()
    first_page_seconds = time.perf_counter() - start
    assert len(page) == PAGE_LIMIT + 1  # records + terminal

    memory_factor = full_peak / max(1, page_peak)
    latency_factor = full_seconds / max(1e-9, first_page_seconds)

    rows = [
        ("batched ingest (records/s)", f"{batched_rate:,.0f}", ""),
        ("row-at-a-time ingest (records/s)", f"{rowwise_rate:,.0f}", ""),
        ("partitioned ingest (s)", f"{partitioned_seconds:.2f}", ""),
        ("full load", f"{full_seconds * 1e3:.0f} ms", f"{full_peak >> 20} MiB peak"),
        ("paginated walk", f"{walk_seconds * 1e3:.0f} ms", f"{page_peak >> 20} MiB peak"),
        ("first page", f"{first_page_seconds * 1e3:.1f} ms", ""),
    ]
    show(
        f"Store scale, {N_RECORDS} records (page={PAGE_LIMIT}): "
        f"ingest {ingest_speedup:.0f}x, page memory {memory_factor:.0f}x, "
        f"first-page latency {latency_factor:.0f}x",
        format_table(["Operation", "Time", "Memory"], rows),
    )

    payload = {
        "records": N_RECORDS,
        "page_limit": PAGE_LIMIT,
        "batched_ingest_seconds": round(batched_seconds, 4),
        "batched_ingest_rate": round(batched_rate, 1),
        "rowwise_ingest_rate": round(rowwise_rate, 1),
        "ingest_speedup": round(ingest_speedup, 2),
        "partitioned_ingest_seconds": round(partitioned_seconds, 4),
        "full_load_seconds": round(full_seconds, 4),
        "full_load_peak_bytes": full_peak,
        "paginated_walk_seconds": round(walk_seconds, 4),
        "paginated_peak_bytes": page_peak,
        "first_page_seconds": round(first_page_seconds, 5),
        "memory_factor": round(memory_factor, 2),
        "latency_factor": round(latency_factor, 2),
        "min_ingest_speedup_gate": MIN_INGEST_SPEEDUP,
        "min_page_factor_gate": MIN_PAGE_FACTOR,
    }
    artifact = os.environ.get("BENCH_STORE_SCALE_JSON", "BENCH_store_scale.json")
    with open(artifact, "w") as handle:
        json.dump(payload, handle, indent=2)
    benchmark.extra_info.update(payload)

    assert ingest_speedup >= MIN_INGEST_SPEEDUP, (
        f"batched ingest only {ingest_speedup:.2f}x faster per record than "
        f"row-at-a-time ({batched_rate:,.0f} vs {rowwise_rate:,.0f} "
        f"records/s); gate is {MIN_INGEST_SPEEDUP:.1f}x"
    )
    assert memory_factor >= MIN_PAGE_FACTOR, (
        f"paginated dump peaked at {page_peak} bytes vs {full_peak} for a "
        f"full load (only {memory_factor:.2f}x better); gate is "
        f"{MIN_PAGE_FACTOR:.1f}x -- the server is materializing more than "
        f"a page"
    )
    assert latency_factor >= MIN_PAGE_FACTOR, (
        f"first page took {first_page_seconds:.4f}s vs {full_seconds:.4f}s "
        f"for a full load (only {latency_factor:.2f}x better); gate is "
        f"{MIN_PAGE_FACTOR:.1f}x"
    )
