"""Microbenchmarks of the composed arithmetic itself.

These time the actual Python/numpy implementations (wall-clock via
pytest-benchmark) and verify exactness on realistic GEMM shapes.  The
16x slice-pair work amplification of 8-bit composition is visible in the
timings; correctness is asserted on every run.
"""

import numpy as np

from repro.core import CVU, composed_matmul, reference_matmul

RNG = np.random.default_rng(42)
M, K, N = 64, 256, 64
X8 = RNG.integers(-128, 128, size=(M, K))
W8 = RNG.integers(-128, 128, size=(K, N))
X4 = RNG.integers(-8, 8, size=(M, K))
W4 = RNG.integers(-8, 8, size=(K, N))


def test_reference_matmul_speed(benchmark):
    out = benchmark(lambda: reference_matmul(X8, W8))
    assert out.shape == (M, N)


def test_composed_matmul_8bit(benchmark):
    out = benchmark(lambda: composed_matmul(X8, W8, 8, 8))
    np.testing.assert_array_equal(out, reference_matmul(X8, W8))


def test_composed_matmul_4bit(benchmark):
    """4-bit operands need 4x fewer slice pairs than 8-bit."""
    out = benchmark(lambda: composed_matmul(X4, W4, 4, 4))
    np.testing.assert_array_equal(out, reference_matmul(X4, W4))


def test_composed_matmul_1bit_slicing(benchmark):
    """1-bit slicing: 64 slice-pair matmuls per 8x8 product."""
    out = benchmark(lambda: composed_matmul(X8, W8, 8, 8, slice_width=1))
    np.testing.assert_array_equal(out, reference_matmul(X8, W8))


def test_cvu_dot_product_throughput(benchmark):
    cvu = CVU()
    x = RNG.integers(-128, 128, size=512)
    w = RNG.integers(-128, 128, size=512)

    def run():
        return cvu.dot_product(x, w, 8, 8)

    res = benchmark(run)
    assert res.value == int(np.dot(x, w))
    assert res.cycles == 32  # 512 elements / 16 lanes


def test_cvu_flexible_mode_throughput(benchmark):
    cvu = CVU()
    xs = [RNG.integers(-8, 8, size=256) for _ in range(4)]
    ws = [RNG.integers(-8, 8, size=256) for _ in range(4)]

    def run():
        return cvu.grouped_dot_products(xs, ws, 4, 4)

    res = benchmark(run)
    for lane in range(4):
        assert res.values[lane] == int(np.dot(xs[lane], ws[lane]))
