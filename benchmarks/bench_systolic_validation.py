"""Validation bench: cycle-accurate systolic array vs analytical model.

The figure experiments rest on the analytical cycle model (M cycles per
tile pass).  This bench runs the register-level systolic simulation on
real tile shapes and quantifies the pipeline fill/drain overhead the
analytical model amortizes away.
"""

import numpy as np

from repro.sim import format_table
from repro.sim.systolic import SystolicArray

RNG = np.random.default_rng(7)
CASES = [
    # (rows, cols, M): BPVeC-tile-like and baseline-tile-like shapes.
    (8, 8, 16),
    (8, 8, 64),
    (8, 8, 256),
    (16, 32, 64),
    (16, 32, 512),
    # Long stream: the numpy-vectorized injection/emission paths dominate
    # here (the old per-cycle Python loops made this case ~2.5x slower).
    (16, 32, 2048),
]


def run_cases():
    rows = []
    for r, c, m in CASES:
        arr = SystolicArray(r, c)
        a = RNG.integers(-128, 128, size=(m, r))
        w = RNG.integers(-128, 128, size=(r, c))
        res = arr.run_tile(a, w)
        analytical = m  # one K-pass x one N-pass
        rows.append((f"{r}x{c}", m, analytical, res.cycles, res.cycles / analytical))
    return rows


def test_cycle_accurate_vs_analytical(benchmark, show):
    rows = benchmark(run_cases)
    show(
        "Validation: cycle-accurate systolic array vs analytical cycle model",
        format_table(
            ["Array", "M", "Analytical", "Cycle-accurate", "Ratio"], rows
        ),
    )
    simulated_cycles = sum(accurate for _, _, _, accurate, _ in rows)
    benchmark.extra_info["simulated_cycles"] = simulated_cycles
    benchmark.extra_info["cycles_per_second"] = round(
        simulated_cycles / benchmark.stats["mean"]
    )
    for _, m, analytical, accurate, ratio in rows:
        # Cycle-accurate is always >= analytical (fill/drain + weight load).
        assert accurate >= analytical
        # Overhead amortizes: < 15% once M reaches a few hundred rows.
        if m >= 256:
            assert ratio < 1.15
