"""Scaling study: the BPVeC advantage across core power budgets.

Beyond the paper: Table II's unit counts derive from the 250 mW budget
and the Fig. 4 per-MAC costs, so the whole comparison can be re-derived
at other budgets.  The advantage should be a property of the design
style, roughly flat across budgets (larger budgets shift CNNs toward the
bandwidth wall on DDR4, trimming the gain slightly).
"""

from repro.experiments.scaling import budget_sweep
from repro.hw import DDR4
from repro.sim import format_table

BUDGETS_MW = (125, 250, 500)


def test_budget_scaling(benchmark, show):
    points = benchmark(lambda: budget_sweep(BUDGETS_MW, DDR4))
    rows = [
        (
            f"{p.budget_mw:.0f} mW",
            p.baseline_macs,
            p.bitfusion_macs,
            p.bpvec_macs,
            p.speedup_vs_baseline,
            p.energy_vs_baseline,
        )
        for p in points
    ]
    show(
        "Scaling: Fig. 5 geomeans vs core power budget (DDR4)",
        format_table(
            [
                "Budget",
                "Baseline MACs",
                "BitFusion MACs",
                "BPVeC MACs",
                "Speedup",
                "Energy",
            ],
            rows,
        ),
    )

    by_budget = {p.budget_mw: p for p in points}
    # The 250 mW point reproduces Table II exactly.
    assert by_budget[250].baseline_macs == 512
    assert by_budget[250].bpvec_macs == 1024
    # BPVeC keeps ~2x the baseline's units at every budget...
    for p in points:
        assert p.bpvec_macs >= 1.85 * p.baseline_macs
    # ...and a healthy speedup across the sweep.  The gain shrinks as the
    # budget grows: bigger arrays push more CNN layers into the DDR4
    # bandwidth wall, which doubling compute cannot move.
    for p in points:
        assert 1.25 <= p.speedup_vs_baseline <= 1.95
    speedups = [p.speedup_vs_baseline for p in points]
    assert speedups == sorted(speedups, reverse=True)
