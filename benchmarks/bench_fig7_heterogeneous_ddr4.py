"""Figure 7: BPVeC vs BitFusion; DDR4; heterogeneous quantized bitwidths.

Paper reference (speedup): AlexNet 1.96, Inception-v1 1.62, ResNet-18
1.77, ResNet-50 1.32, RNN 1.13, LSTM 1.11, GEOMEAN 1.45; energy reduction
geomean 1.13.
"""

import pytest

from conftest import geo_row, workload_row
from repro.experiments import fig7_heterogeneous_ddr4, render_speedup_rows


def test_fig7(benchmark, show):
    rows = benchmark(fig7_heterogeneous_ddr4)
    show(
        "Figure 7: heterogeneous bitwidths, DDR4 (vs BitFusion)",
        render_speedup_rows(rows),
    )

    geo = geo_row(rows)
    # Paper: ~50% speedup, ~10% energy reduction (we land slightly higher
    # on both; see EXPERIMENTS.md).
    assert geo.speedup == pytest.approx(1.45, abs=0.25)
    assert 1.0 <= geo.energy_reduction <= 1.40

    # CNNs gain most (BPVeC's 2.3x resources vs BitFusion), RNNs are
    # bandwidth-walled on DDR4.
    assert workload_row(rows, "AlexNet").speedup == pytest.approx(1.96, abs=0.30)
    for name in ("RNN", "LSTM"):
        assert workload_row(rows, name).speedup == pytest.approx(1.1, abs=0.15)
    # No workload can exceed the 2.29x compute-resource ratio.
    for r in rows:
        assert r.speedup <= 2.35

    benchmark.extra_info["geomean_speedup"] = round(geo.speedup, 3)
    benchmark.extra_info["geomean_energy_reduction"] = round(geo.energy_reduction, 3)
