"""Table I: the evaluated DNN models (size, operations, bitwidths)."""

import pytest

from repro.experiments import render_table1, table1

PAPER_TABLE1 = {
    # model: (size MB, GOps)
    "AlexNet": (56.1, 2678),
    "Inception-v1": (8.6, 1860),
    "ResNet-18": (11.1, 4269),
    "ResNet-50": (24.4, 8030),
    "RNN": (16.0, 17),
    "LSTM": (12.3, 13),
}


def test_table1(benchmark, show):
    rows = benchmark(table1)
    show("Table I: evaluated DNN models", render_table1())

    by_model = {r.model: r for r in rows}
    assert set(by_model) == set(PAPER_TABLE1)
    for model, (size_mb, gops) in PAPER_TABLE1.items():
        assert by_model[model].giga_ops == pytest.approx(gops, rel=0.06)
        assert by_model[model].model_size_mb == pytest.approx(size_mb, rel=0.25)
    benchmark.extra_info["models"] = len(rows)
