"""Figure 6: HBM2 study; homogeneous 8-bit; normalized to baseline+DDR4.

Paper reference: baseline+HBM2 geomean 1.06x speedup / 1.34x energy;
BPVeC+HBM2 geomean 2.11x / 2.28x, with RNN/LSTM seeing the largest
speedups (2.3-2.4x).
"""

import pytest

from conftest import geo_row, workload_row
from repro.experiments import fig6_homogeneous_hbm2, render_speedup_rows


def test_fig6(benchmark, show):
    rows = benchmark(fig6_homogeneous_hbm2)
    show(
        "Figure 6: homogeneous 8-bit, HBM2 (normalized to baseline+DDR4)",
        render_speedup_rows(rows),
    )

    base_geo = geo_row(rows, platform="TPU-like baseline")
    bpv_geo = geo_row(rows, platform="BPVeC")

    # Paper: the baseline barely benefits from the 16x bandwidth...
    assert base_geo.speedup == pytest.approx(1.06, abs=0.08)
    # ...while BPVeC converts it into ~2.1x speedup.
    assert bpv_geo.speedup == pytest.approx(2.11, abs=0.20)
    assert bpv_geo.energy_reduction > 1.6

    # Bandwidth-hungry recurrent models gain the most.
    rnn = workload_row(rows, "RNN", platform="BPVeC")
    lstm = workload_row(rows, "LSTM", platform="BPVeC")
    assert rnn.speedup == pytest.approx(2.3, abs=0.25)
    assert lstm.speedup == pytest.approx(2.4, abs=0.35)

    benchmark.extra_info["bpvec_geomean_speedup"] = round(bpv_geo.speedup, 3)
    benchmark.extra_info["baseline_geomean_speedup"] = round(base_geo.speedup, 3)
