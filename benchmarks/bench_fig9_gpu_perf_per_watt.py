"""Figure 9: Performance-per-Watt vs the RTX 2080 Ti GPU.

Paper reference (geomeans): homogeneous 33.7x (DDR4) / 31.1x (HBM2);
heterogeneous 28.0x / 29.8x -- i.e. "benefits range between 28.0x and
33.7x".  RNN/LSTM dominate (130-225x), CNNs land at 7-30x.
"""

from conftest import workload_row
from repro.experiments import GEOMEAN, fig9_gpu_comparison
from repro.sim import format_table


def _render(rows):
    return format_table(
        ["Workload", "Regime", "vs GPU (DDR4)", "vs GPU (HBM2)"],
        [(r.workload, r.regime, r.ddr4_ratio, r.hbm2_ratio) for r in rows],
        precision=1,
    )


def test_fig9(benchmark, show):
    rows = benchmark(fig9_gpu_comparison)
    show("Figure 9: Perf-per-Watt vs RTX 2080 Ti", _render(rows))

    homo = [r for r in rows if r.regime == "homogeneous"]
    het = [r for r in rows if r.regime == "heterogeneous"]

    homo_geo = workload_row(homo, GEOMEAN)
    het_geo = workload_row(het, GEOMEAN)

    # Order-of-magnitude agreement with the paper's 28-34x band.
    assert 15 <= homo_geo.ddr4_ratio <= 45
    assert 20 <= homo_geo.hbm2_ratio <= 60
    assert 15 <= het_geo.ddr4_ratio <= 45

    # Per-model structure: RNNs dominate; every workload favours BPVeC.
    for regime_rows in (homo, het):
        rnn = workload_row(regime_rows, "RNN")
        for cnn in ("AlexNet", "Inception-v1", "ResNet-18", "ResNet-50"):
            cnn_row = workload_row(regime_rows, cnn)
            assert rnn.ddr4_ratio > 3 * cnn_row.ddr4_ratio
            assert cnn_row.ddr4_ratio > 1.0

    benchmark.extra_info["homogeneous_geomean_ddr4"] = round(homo_geo.ddr4_ratio, 1)
    benchmark.extra_info["heterogeneous_geomean_ddr4"] = round(het_geo.ddr4_ratio, 1)
