"""Ablation: scratchpad partitioning between weights/activations/outputs.

The simulator splits the 112 KB scratchpad 40/40/20 by default.  This
bench sweeps the split to show the default is near-optimal across the
workload mix and to expose the sensitivity (RNNs want weight capacity,
batched CNNs want activation capacity).
"""

from repro.hw import BPVEC, DDR4
from repro.nn import evaluation_workloads, homogeneous_8bit
from repro.sim import BufferSplit, format_table, geomean, simulate_network

SPLITS = {
    "W60/A20/O20": BufferSplit(0.6, 0.2, 0.2),
    "W40/A40/O20": BufferSplit(0.4, 0.4, 0.2),  # default
    "W20/A60/O20": BufferSplit(0.2, 0.6, 0.2),
    "W33/A33/O33": BufferSplit(1 / 3, 1 / 3, 1 / 3),
}


def sweep():
    results = {}
    for label, split in SPLITS.items():
        times = []
        for net in evaluation_workloads():
            homogeneous_8bit(net)
            res = simulate_network(net, BPVEC, DDR4, split=split)
            times.append(res.total_seconds)
        results[label] = times
    return results


def test_buffer_split_sensitivity(benchmark, show):
    results = benchmark(sweep)
    names = [net.name for net in evaluation_workloads()]
    rows = [
        (label, *(t * 1e3 for t in times), geomean(times) * 1e3)
        for label, times in results.items()
    ]
    show(
        "Ablation: scratchpad split (BPVeC + DDR4, runtime ms)",
        format_table(["Split", *names, "geomean"], rows),
    )

    default_geo = geomean(results["W40/A40/O20"])
    for label, times in results.items():
        # The default split is within 10% of every alternative's geomean.
        assert default_geo <= geomean(times) * 1.10, label
