"""Store backends at scale: SQLite vs JSONL on a 50k-record store.

Acceptance bench for :mod:`repro.dse.sqlite_store`: fill both backends
with the same >=50k synthetic DSE-shaped records, then time the path a
served system actually pays per sweep -- the engine's warm resolution
(:meth:`~repro.dse.store.ResultStoreBase.records_for` over a sweep-
sized hash sample at the current ``EVAL_VERSION``).  A JSONL store must
re-parse every line of the file to answer; the SQLite store answers
from an indexed point lookup, so its cost tracks the sweep, not the
store.  The gate requires the SQLite warm path to beat JSONL by at
least ``MIN_SPEEDUP`` (3x in CI; locally the margin is far larger and
grows linearly with store size).

Full-store ``load()`` times for both backends are reported as context
(they are JSON-parse bound and roughly at parity), and both backends
must return bit-identical records for the sampled hashes.

Emits ``BENCH_store_backends.json`` (path overridable via the
``BENCH_STORE_BACKENDS_JSON`` env var) so CI can archive the numbers.
"""

import hashlib
import json
import os
import time

from repro.dse import EVAL_VERSION, ResultStore, SQLiteStore
from repro.sim import format_table

N_RECORDS = int(os.environ.get("REPRO_BENCH_STORE_RECORDS", "50000"))
SAMPLE_SIZE = 2000  # a realistic sweep against a warm store
MIN_SPEEDUP = float(os.environ.get("REPRO_MIN_STORE_SPEEDUP", "3.0"))

_WORKLOADS = ("AlexNet", "Inception-v1", "ResNet-18", "ResNet-50", "RNN", "LSTM")
_PLATFORMS = ("TPU-like", "BitFusion", "BPVeC")


def _synthetic_record(index: int) -> dict:
    """One DSE-shaped record with a unique, deterministic hash."""
    key = hashlib.sha256(f"bench-store-{index}".encode()).hexdigest()
    return {
        "hash": key,
        "version": EVAL_VERSION,
        "kind": "asic",
        "workload": _WORKLOADS[index % len(_WORKLOADS)],
        "platform": _PLATFORMS[index % len(_PLATFORMS)],
        "memory": "DDR4" if index % 2 else "HBM2",
        "policy": "homogeneous-8bit",
        "batch": 1 << (index % 7),
        "metrics": {
            "total_cycles": 10_000_000 + index,
            "total_seconds": 0.02 + index * 1e-9,
            "total_macs": 8_589_934_592,
            "total_traffic_bytes": 55_555_555 + index,
            "compute_energy_pj": 4.1e9 + index,
            "sram_energy_pj": 2.6e9,
            "dram_energy_pj": 7.6e10,
            "uncore_energy_pj": 8.8e9,
            "total_energy_pj": 9.2e10,
            "total_energy_j": 0.092,
            "ops_per_second": 4.8e11,
            "average_power_w": 2.61,
            "perf_per_watt": 1.86e11,
            "memory_bound_fraction": 1.0,
        },
    }


def test_sqlite_vs_jsonl_warm_resolution(benchmark, show, tmp_path):
    records = [_synthetic_record(i) for i in range(N_RECORDS)]
    # Robust to small REPRO_BENCH_STORE_RECORDS overrides: the sample
    # shrinks with the corpus instead of crashing on a zero stride.
    sample_size = min(SAMPLE_SIZE, N_RECORDS)
    stride = max(1, N_RECORDS // sample_size)
    sample = [records[i]["hash"] for i in range(0, N_RECORDS, stride)]
    sample = sample[:sample_size]
    assert len(sample) == sample_size

    jsonl = ResultStore(tmp_path / "store.jsonl")
    start = time.perf_counter()
    jsonl.append(records)
    jsonl_append_seconds = time.perf_counter() - start

    sqlite = SQLiteStore(tmp_path / "store.sqlite")
    start = time.perf_counter()
    sqlite.append(records)
    sqlite_append_seconds = time.perf_counter() - start

    # The gated path: resolve a sweep-sized hash sample against the
    # warm store, exactly what iter_sweep asks a store per run.
    start = time.perf_counter()
    jsonl_hits = jsonl.records_for(sample, version=EVAL_VERSION)
    jsonl_resolve_seconds = time.perf_counter() - start

    def sqlite_resolve():
        return sqlite.records_for(sample, version=EVAL_VERSION)

    sqlite_hits = benchmark(sqlite_resolve)
    start = time.perf_counter()
    sqlite_resolve()
    sqlite_resolve_seconds = time.perf_counter() - start

    assert len(jsonl_hits) == len(sqlite_hits) == sample_size
    assert sqlite_hits == jsonl_hits  # bit-identical through either backend

    # Context: full loads are JSON-parse bound on both backends.
    start = time.perf_counter()
    jsonl_loaded = jsonl.load()
    jsonl_load_seconds = time.perf_counter() - start
    start = time.perf_counter()
    sqlite_loaded = sqlite.load()
    sqlite_load_seconds = time.perf_counter() - start
    assert len(jsonl_loaded) == len(sqlite_loaded) == N_RECORDS

    speedup = jsonl_resolve_seconds / sqlite_resolve_seconds
    rows = [
        ("append 50k", jsonl_append_seconds * 1e3, sqlite_append_seconds * 1e3),
        (
            f"resolve {sample_size}-point sweep",
            jsonl_resolve_seconds * 1e3,
            sqlite_resolve_seconds * 1e3,
        ),
        ("full load", jsonl_load_seconds * 1e3, sqlite_load_seconds * 1e3),
    ]
    show(
        f"Store backends, {N_RECORDS} records "
        f"(warm resolution {speedup:.1f}x faster on SQLite)",
        format_table(["Operation", "JSONL (ms)", "SQLite (ms)"], rows),
    )

    payload = {
        "records": N_RECORDS,
        "sample_size": sample_size,
        "jsonl_append_seconds": round(jsonl_append_seconds, 4),
        "sqlite_append_seconds": round(sqlite_append_seconds, 4),
        "jsonl_resolve_seconds": round(jsonl_resolve_seconds, 4),
        "sqlite_resolve_seconds": round(sqlite_resolve_seconds, 4),
        "jsonl_load_seconds": round(jsonl_load_seconds, 4),
        "sqlite_load_seconds": round(sqlite_load_seconds, 4),
        "warm_resolution_speedup": round(speedup, 2),
        "min_speedup_gate": MIN_SPEEDUP,
    }
    artifact = os.environ.get(
        "BENCH_STORE_BACKENDS_JSON", "BENCH_store_backends.json"
    )
    with open(artifact, "w") as handle:
        json.dump(payload, handle, indent=2)
    benchmark.extra_info.update(payload)

    assert speedup >= MIN_SPEEDUP, (
        f"SQLite warm resolution only {speedup:.2f}x faster than JSONL "
        f"({sqlite_resolve_seconds:.4f}s vs {jsonl_resolve_seconds:.4f}s) "
        f"on a {N_RECORDS}-record store; gate is {MIN_SPEEDUP:.1f}x"
    )
