"""Figure 5: BPVeC vs TPU-like baseline; DDR4; homogeneous 8-bit.

Paper reference values (speedup / energy reduction): AlexNet 1.5/1.5,
Inception-v1 1.8/1.7, ResNet-18 1.7/1.7, ResNet-50 1.6/1.6, RNN 1.0/1.1,
LSTM 1.0/1.1, GEOMEAN 1.39/1.43.
"""

import pytest

from conftest import geo_row, workload_row
from repro.experiments import fig5_homogeneous_ddr4, render_speedup_rows


def test_fig5(benchmark, show):
    rows = benchmark(fig5_homogeneous_ddr4)
    show(
        "Figure 5: homogeneous 8-bit, DDR4 (vs TPU-like baseline)",
        render_speedup_rows(rows),
    )

    geo = geo_row(rows)
    # Paper: ~40% speedup and energy reduction.
    assert geo.speedup == pytest.approx(1.39, abs=0.15)
    assert geo.energy_reduction == pytest.approx(1.43, abs=0.20)

    # CNNs gain 1.5-1.9x; recurrent workloads are bandwidth-walled at ~1.0x.
    for name in ("AlexNet", "Inception-v1", "ResNet-18", "ResNet-50"):
        assert 1.4 <= workload_row(rows, name).speedup <= 2.0
    for name in ("RNN", "LSTM"):
        assert workload_row(rows, name).speedup == pytest.approx(1.0, abs=0.08)

    benchmark.extra_info["geomean_speedup"] = round(geo.speedup, 3)
    benchmark.extra_info["geomean_energy_reduction"] = round(geo.energy_reduction, 3)
