"""Chip-level accounting: compute area, SRAM area, and power per platform.

Not a paper table per se, but the floorplan arithmetic behind Table II:
BPVeC integrates 2x the baseline's MACs (and 2.3x BitFusion's) inside the
same 250 mW budget and a comparable silicon footprint.
"""

import pytest

from repro.hw import all_chip_reports
from repro.sim import format_table


def test_chip_reports(benchmark, show):
    reports = benchmark(all_chip_reports)
    rows = [
        (
            r.name,
            r.num_macs,
            r.compute_area_mm2,
            r.sram_area_mm2,
            r.total_area_mm2,
            r.compute_power_mw,
        )
        for r in reports
    ]
    show(
        "Chip-level accounting (45 nm)",
        format_table(
            ["Platform", "MACs", "Compute mm^2", "SRAM mm^2", "Total mm^2", "mW"],
            rows,
        ),
    )
    by_name = {r.name: r for r in reports}
    base = by_name["TPU-like baseline"]
    bpvec = by_name["BPVeC"]
    bitfusion = by_name["BitFusion"]

    assert bpvec.num_macs == 2 * base.num_macs
    assert bpvec.total_area_mm2 < 1.25 * base.total_area_mm2
    assert bitfusion.compute_area_mm2 > base.compute_area_mm2
    for r in reports:
        assert r.compute_power_mw == pytest.approx(250.0, rel=0.06)
