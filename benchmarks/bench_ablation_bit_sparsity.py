"""Extension study: slice sparsity and the Laconic-style skip opportunity.

The paper positions Laconic (ISCA'19) as the bit-sparsity-exploiting
relative of its design.  This bench measures, on quantized tensors with
DNN-like statistics, how much ineffectual slice-pair work a dense CVU
performs -- the headroom a zero-skipping extension would target.
"""

import numpy as np

from repro.core import effectual_fraction, ideal_skip_speedup, slice_sparsity
from repro.sim import format_table

RNG = np.random.default_rng(21)
N = 4096


def _dnn_like_tensors(bw: int):
    """Bell-shaped weights, half-wave-rectified activations (post-ReLU)."""
    hi_w = (1 << (bw - 1)) - 1
    w = np.clip(np.round(RNG.normal(0, hi_w / 3, N)), -hi_w - 1, hi_w).astype(np.int64)
    hi_a = (1 << bw) - 1
    a = np.clip(np.round(np.abs(RNG.normal(0, hi_a / 4, N))), 0, hi_a).astype(np.int64)
    return a, w


def sparsity_study():
    rows = []
    for bw in (8, 4, 2):
        a, w = _dnn_like_tensors(bw)
        act_sparsity = slice_sparsity(a, bw, 2, signed=False).overall_zero_fraction
        w_sparsity = slice_sparsity(w, bw, 2, signed=True).overall_zero_fraction
        eff = effectual_fraction(a, w, bw, bw, signed_x=False, signed_w=True)
        speedup = ideal_skip_speedup(a, w, bw, bw, signed_x=False, signed_w=True)
        rows.append((f"{bw}-bit", act_sparsity, w_sparsity, eff, speedup))
    return rows


def test_bit_sparsity_opportunity(benchmark, show):
    rows = benchmark(sparsity_study)
    show(
        "Extension: slice sparsity of DNN-like quantized tensors "
        "(2-bit slicing)",
        format_table(
            [
                "Operands",
                "Act zero-slices",
                "W zero-slices",
                "Effectual pairs",
                "Ideal skip speedup",
            ],
            rows,
        ),
    )
    by_bw = {r[0]: r for r in rows}
    # Meaningful headroom exists at every precision...
    for row in rows:
        assert row[4] > 1.2
    # ...and it grows as precision drops: coarse quantization rounds many
    # values to exactly zero, so low-bit tensors are the most slice-sparse
    # (which is why Laconic pairs bit-composability with deep quantization).
    assert by_bw["2-bit"][4] > by_bw["4-bit"][4] > by_bw["8-bit"][4]
    # Effectual fraction and speedup are consistent.
    for row in rows:
        assert abs(row[4] * row[3] - 1.0) < 1e-9
