"""Figure 4: design-space exploration of slicing granularity and L.

Regenerates the power/area-per-MAC bars (normalized to a conventional
8-bit MAC) with their multiplication/addition/shifting/registering
breakdown, under the paper-calibrated cost model, and checks the
Section III-B observations on the analytical model too.
"""

import pytest

from repro.experiments import fig4_design_space
from repro.hw import AnalyticalCostModel, PaperCostModel
from repro.sim import format_table

# Paper Fig. 4 bar totals (power, area) at (slice_width, L).
PAPER_BARS = {
    (1, 1): (3.6, 3.5),
    (1, 16): (1.2, 1.0),
    (2, 1): (1.18, 1.40),
    (2, 16): (0.49, 0.62),
}


def _render(points):
    rows = [
        (
            p.metric,
            f"{p.slice_width}-bit",
            p.lanes,
            p.multiplication,
            p.addition,
            p.shifting,
            p.registering,
            p.total,
        )
        for p in points
    ]
    return format_table(
        ["Metric", "Slicing", "L", "Mult", "Add", "Shift", "Reg", "Total"], rows
    )


def test_fig4_calibrated(benchmark, show):
    points = benchmark(lambda: fig4_design_space(PaperCostModel()))
    show("Figure 4: CVU design-space exploration (paper-calibrated)", _render(points))

    totals = {(p.metric, p.slice_width, p.lanes): p.total for p in points}
    for (sw, lanes), (power, area) in PAPER_BARS.items():
        assert totals[("power", sw, lanes)] == pytest.approx(power, rel=0.05)
        assert totals[("area", sw, lanes)] == pytest.approx(area, rel=0.05)

    # Observation 1: the adder tree dominates power everywhere and is never
    # below second place in area (at 2-bit/L=16 the multiplier array edges
    # it slightly in the paper's own area table).
    for p in points:
        components = sorted(
            (p.addition, p.multiplication, p.shifting, p.registering), reverse=True
        )
        if p.metric == "power":
            assert p.addition == components[0]
        else:
            assert p.addition >= components[1]


def test_fig4_analytical_shape(benchmark, show):
    """The first-principles model reproduces the qualitative findings."""
    points = benchmark(lambda: fig4_design_space(AnalyticalCostModel()))
    show("Figure 4 (analytical, no paper data)", _render(points))

    totals = {(p.metric, p.slice_width, p.lanes): p.total for p in points}
    for metric in ("power", "area"):
        # Monotone decreasing in L; 2-bit dominates 1-bit.
        for sw in (1, 2):
            series = [totals[(metric, sw, lanes)] for lanes in (1, 2, 4, 8, 16)]
            assert all(a > b for a, b in zip(series, series[1:]))
        for lanes in (1, 2, 4, 8, 16):
            assert totals[(metric, 2, lanes)] < totals[(metric, 1, lanes)]
    # Best point beats a conventional MAC; BitFusion's point does not.
    assert totals[("power", 2, 16)] < 1.0
    assert totals[("power", 2, 1)] > 1.0
