"""Sharded sweep execution at scale: 2-shard run + merge vs unsharded.

The acceptance bar for distributed-ready execution: split the same
1008-point design-space sweep as ``bench_dse_engine`` into two
hash-range shards, evaluate each into its own store (memo cleared in
between, as two machines would), merge the per-shard stores, and show

* the merged result set -- and its Pareto frontier -- is identical to
  the unsharded run, record-for-record;
* serving the sweep from the warm merged store (the "2-shard warm
  merge" path) is at least 5x faster than cold *scalar* evaluation
  (the pre-vectorizer baseline this bar was set against; the
  vectorized evaluator has since pulled cold default runs to within a
  few x of the warm path -- both cold times are reported);
* compaction keeps the merged store at one line per config without
  changing any query result.
"""

import time

from repro.dse import (
    ResultStore,
    SweepSpec,
    clear_caches,
    clear_memo,
    pareto_frontier,
    run_sweep,
)
from repro.hw import DDR4, HBM2, scaled_memory

# 6 workloads x 3 platforms x 4 memories x 2 policies x 7 batches = 1008.
MEMORIES = (
    DDR4,
    HBM2,
    scaled_memory(DDR4, 64),
    scaled_memory(HBM2, 512),
)
POLICIES = ("homogeneous-8bit", "paper-heterogeneous")
BATCHES = (1, 2, 4, 8, 16, 32, 64)


def _sweep_spec() -> SweepSpec:
    return SweepSpec.grid(
        workloads=(
            "AlexNet", "Inception-v1", "ResNet-18", "ResNet-50", "RNN", "LSTM"
        ),
        platforms=("tpu", "bitfusion", "bpvec"),
        memories=MEMORIES,
        policies=POLICIES,
        batches=BATCHES,
    )


def test_two_shard_merge_matches_unsharded(benchmark, show, tmp_path):
    spec = _sweep_spec()
    assert len(spec) >= 1000

    # Unsharded reference runs: vectorized default and scalar baseline,
    # each genuinely cold (every evaluation-path cache dropped).
    clear_caches()
    t0 = time.perf_counter()
    single = run_sweep(spec, store=tmp_path / "single.jsonl")
    cold_seconds = time.perf_counter() - t0
    assert single.evaluated == len(spec)

    clear_caches()
    t0 = time.perf_counter()
    scalar = run_sweep(spec, vectorize=False)
    scalar_seconds = time.perf_counter() - t0
    assert scalar.records == single.records

    # Two shards, each on its own "machine" (fresh memo, own store).
    shard_paths = []
    shard_sizes = []
    shard_seconds = []
    for index in range(2):
        clear_caches()  # each shard behaves like its own cold machine
        shard = spec.shard(index, 2)
        path = tmp_path / f"shard{index}.jsonl"
        t0 = time.perf_counter()
        result = run_sweep(shard, store=path)
        shard_seconds.append(time.perf_counter() - t0)
        assert result.evaluated == len(shard)
        shard_paths.append(path)
        shard_sizes.append(len(shard))
    assert sum(shard_sizes) == len(spec)

    # Merge the per-shard stores; benchmark the warm merge path.
    def merge_shards():
        dest = ResultStore(tmp_path / "merged.jsonl")
        dest.merge(shard_paths)
        return dest

    merged = benchmark(merge_shards)

    t0 = time.perf_counter()
    merge_shards()
    merge_seconds = time.perf_counter() - t0
    speedup = scalar_seconds / merge_seconds
    assert speedup >= 5.0, (
        f"2-shard warm merge only {speedup:.1f}x faster than cold scalar "
        f"evaluation ({scalar_seconds:.2f}s vs {merge_seconds:.2f}s)"
    )

    # Record-for-record identity, frontier included.
    merged_records = merged.load()
    single_records = {r["hash"]: r for r in single.records}
    assert merged_records == single_records
    merged_front = pareto_frontier(list(merged_records.values()))
    single_front = pareto_frontier(list(single_records.values()))
    assert {r["hash"] for r in merged_front} == {
        r["hash"] for r in single_front
    }

    # Compaction: one line per config, queries unchanged.
    kept, dropped = merged.compact()
    assert kept == len(spec)
    assert merged.load() == merged_records

    show(
        f"Sharded DSE: {len(spec)}-point sweep as 2 shards "
        f"({shard_sizes[0]}+{shard_sizes[1]} points, "
        f"{shard_seconds[0] * 1e3:.0f}+{shard_seconds[1] * 1e3:.0f} ms) "
        f"merged in {merge_seconds * 1e3:.0f} ms "
        f"({speedup:.0f}x faster than {scalar_seconds * 1e3:.0f} ms cold "
        f"scalar, {cold_seconds * 1e3:.0f} ms cold vectorized); "
        f"frontier {len(merged_front)} points, identical to unsharded",
        f"merged store: {kept} records, {dropped} superseded lines dropped",
    )
    benchmark.extra_info["points"] = len(spec)
    benchmark.extra_info["shard_sizes"] = shard_sizes
    benchmark.extra_info["cold_seconds"] = round(cold_seconds, 3)
    benchmark.extra_info["cold_scalar_seconds"] = round(scalar_seconds, 3)
    benchmark.extra_info["merge_vs_cold_scalar_speedup"] = round(speedup, 1)


def test_streaming_sweep_yields_all_records(show):
    """``iter_sweep`` streams every unique record ``run_sweep`` returns."""
    from repro.dse import iter_sweep

    spec = SweepSpec.grid(
        workloads=("AlexNet", "RNN", "LSTM"),
        platforms=("tpu", "bpvec"),
        memories=(DDR4, HBM2),
        batches=(1, 8),
    )
    clear_memo()
    batch = run_sweep(spec)
    by_hash = {r["hash"]: r for r in batch.records}
    clear_memo()
    streamed = list(iter_sweep(spec, workers=4, chunk_size=1))
    assert {s.hash for s in streamed} == set(by_hash)
    assert all(s.record == by_hash[s.hash] for s in streamed)
    show(
        "DSE engine: streaming fan-out",
        f"{len(streamed)} records streamed in completion order across a "
        f"4-worker pool, identical to the batch run",
    )
