"""Algorithmic substrate: heterogeneous bitwidth search preserves accuracy.

Table I's bitwidth assignments come from the deep-quantization literature
(PACT/WRPN/ReLeQ).  This bench reproduces that substrate end-to-end on a
trainable model: a greedy per-layer search narrows bitwidths under an
accuracy floor, runs on the composed (hardware-exact) backend, and yields
a heterogeneous assignment with a real footprint reduction -- the input
the bit-flexible hardware monetizes.
"""

from repro.quant import (
    MLP,
    assign_bitwidths,
    average_bitwidth,
    footprint_reduction,
    layer_sensitivity,
    make_two_spirals,
)
from repro.sim import format_table


def search():
    x_train, y_train = make_two_spirals(500, seed=31)
    x_val, y_val = make_two_spirals(250, seed=32)
    mlp = MLP([2, 32, 32, 2], seed=33)
    mlp.train(x_train, y_train, epochs=500, lr=0.3)
    sensitivity = layer_sensitivity(mlp, x_val, y_val, bits_candidates=(4, 2))
    assignment = assign_bitwidths(mlp, x_val, y_val, max_drop=0.03)
    return mlp, sensitivity, assignment


def test_bitwidth_search(benchmark, show):
    mlp, sensitivity, assignment = benchmark(search)

    rows = [
        (f"layer{r.layer_index}", r.bits, r.accuracy, r.accuracy_drop)
        for r in sensitivity
    ]
    show(
        "Per-layer sensitivity scan (composed backend)",
        format_table(["Layer", "Bits", "Accuracy", "Drop"], rows, precision=3),
    )
    show(
        "Greedy heterogeneous assignment",
        f"bits per layer: {assignment.bits_per_layer}\n"
        f"accuracy: {assignment.accuracy:.3f} "
        f"(float {assignment.float_accuracy:.3f})\n"
        f"average bitwidth: {average_bitwidth(mlp, assignment.bits_per_layer):.2f}\n"
        f"footprint reduction: "
        f"{footprint_reduction(mlp, assignment.bits_per_layer):.2f}x",
    )

    # Accuracy floor held on the hardware-exact backend.
    assert assignment.accuracy >= assignment.float_accuracy - 0.03 - 1e-9
    # The search found a genuinely heterogeneous, compressed assignment.
    assert any(b < 8 for b in assignment.bits_per_layer)
    assert footprint_reduction(mlp, assignment.bits_per_layer) > 1.2
    # All assigned widths are executable modes of the CVU.
    assert all(b in (8, 4, 2) for b in assignment.bits_per_layer)
