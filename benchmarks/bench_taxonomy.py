"""Figure 1 as an experiment: the accelerator-taxonomy comparison.

The paper's Fig. 1 is a conceptual landscape (scalar vs vectorized units,
fixed vs flexible bitwidth, temporal vs spatial composability) arguing
BPVeC fills the vacant vectorized/flexible/spatial corner.  With the
temporal baselines implemented (Stripes, Loom), the landscape becomes
runnable: all five design styles under the same 250 mW budget, on the
heterogeneous workloads with HBM2 (so compute, not bandwidth, is ranked).
"""

from repro.baselines import LOOM, STRIPES
from repro.hw import BITFUSION, BPVEC, HBM2, TPU_LIKE
from repro.nn import evaluation_workloads, paper_heterogeneous
from repro.sim import format_table, geomean, simulate_network

SPECS = [
    ("scalar / fixed / -", TPU_LIKE),
    ("scalar / flexible / temporal (act)", STRIPES),
    ("scalar / flexible / temporal (both)", LOOM),
    ("scalar / flexible / spatial", BITFUSION),
    ("vector / flexible / spatial", BPVEC),
]


def taxonomy_study():
    speedups = {label: [] for label, _ in SPECS}
    for net in evaluation_workloads():
        paper_heterogeneous(net)
        base = simulate_network(net, TPU_LIKE, HBM2)
        for label, spec in SPECS:
            result = simulate_network(net, spec, HBM2)
            speedups[label].append(base.total_seconds / result.total_seconds)
    return {label: geomean(vals) for label, vals in speedups.items()}


def test_taxonomy(benchmark, show):
    geomeans = benchmark(taxonomy_study)
    rows = [
        (label, spec.name, spec.num_macs, geomeans[label])
        for label, spec in SPECS
    ]
    show(
        "Taxonomy study (heterogeneous bitwidths, HBM2, "
        "geomean speedup vs TPU-like)",
        format_table(["Design style", "Platform", "MAC-equivalents", "Speedup"], rows),
    )

    # The paper's Fig. 1 argument, quantified: each step through the
    # taxonomy helps, and the vectorized/flexible/spatial corner wins.
    order = [geomeans[label] for label, _ in SPECS]
    assert order == sorted(order)
    assert geomeans["vector / flexible / spatial"] > 2.0 * geomeans[
        "scalar / flexible / spatial"
    ]
    # Temporal-both beats temporal-activation (more flexibility to exploit).
    assert (
        geomeans["scalar / flexible / temporal (both)"]
        > geomeans["scalar / flexible / temporal (act)"]
    )
