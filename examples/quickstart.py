"""Quickstart: bit-parallel vector composability in five minutes.

Walks through the paper's core idea bottom-up:

1. decompose a dot product into bit-sliced narrow dot products (Eq. 4);
2. run the same computation through the Composable Vector Unit functional
   model, in homogeneous 8-bit and bit-flexible modes;
3. simulate ResNet-18 on the BPVeC accelerator vs the TPU-like baseline.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import CVU, sliced_dot_product_terms
from repro.hw import BPVEC, DDR4, TPU_LIKE
from repro.nn import homogeneous_8bit, resnet18
from repro.sim import compare, simulate_network


def demo_bit_slicing() -> None:
    print("=" * 70)
    print("1. Bit-sliced dot product (paper Eq. 4)")
    print("=" * 70)
    rng = np.random.default_rng(0)
    x = rng.integers(-128, 128, size=8)
    w = rng.integers(-128, 128, size=8)
    print(f"x = {x}")
    print(f"w = {w}")
    print(f"reference x.w = {np.dot(x, w)}")
    terms = sliced_dot_product_terms(x, w, bw_x=8, bw_w=8, slice_x=2, slice_w=2)
    print(f"{len(terms)} narrow (2-bit x 2-bit) dot products, shift-added:")
    total = 0
    for shift, partial in terms:
        total += partial << shift
        print(f"  partial={partial:>7}  << {shift:>2}")
    print(f"composed result = {total}  (exact: {total == np.dot(x, w)})")


def demo_cvu() -> None:
    print()
    print("=" * 70)
    print("2. Composable Vector Unit (16 NBVEs x 16 lanes, 2-bit slicing)")
    print("=" * 70)
    cvu = CVU()
    rng = np.random.default_rng(1)

    x = rng.integers(-128, 128, size=100)
    w = rng.integers(-128, 128, size=100)
    res = cvu.dot_product(x, w, bw_x=8, bw_w=8)
    print(
        f"homogeneous 8-bit: dot of 100 elements -> {res.value} "
        f"in {res.cycles} cycles (exact: {res.value == np.dot(x, w)})"
    )

    # Bit-flexible mode: 8-bit x 2-bit -> 4 independent dot-product lanes.
    xs = [rng.integers(-128, 128, size=32) for _ in range(4)]
    ws = [rng.integers(-2, 2, size=32) for _ in range(4)]
    res = cvu.grouped_dot_products(xs, ws, bw_x=8, bw_w=2)
    ok = all(v == np.dot(a, b) for v, a, b in zip(res.values, xs, ws))
    print(
        f"bit-flexible 8x2-bit: 4 concurrent dot products in "
        f"{res.cycles} cycles (all exact: {ok})"
    )
    for bw in ((8, 8), (8, 4), (4, 4), (2, 2)):
        print(
            f"  effective MACs/cycle at {bw[0]}b x {bw[1]}b: "
            f"{cvu.effective_macs_per_cycle(*bw)}"
        )


def demo_simulation() -> None:
    print()
    print("=" * 70)
    print("3. ResNet-18 on BPVeC vs the TPU-like baseline (DDR4)")
    print("=" * 70)
    net = homogeneous_8bit(resnet18(batch=8))
    baseline = simulate_network(net, TPU_LIKE, DDR4)
    bpvec = simulate_network(net, BPVEC, DDR4)
    print(baseline.summary())
    print(bpvec.summary())
    c = compare(baseline, bpvec)
    print(
        f"-> {c.speedup:.2f}x speedup, {c.energy_reduction:.2f}x energy "
        f"reduction (paper Fig. 5: ~1.7x / ~1.7x for ResNet-18)"
    )


if __name__ == "__main__":
    demo_bit_slicing()
    demo_cvu()
    demo_simulation()
