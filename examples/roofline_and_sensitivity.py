"""Diagnostics a downstream user runs on their own model.

Two analyses the library provides beyond the paper's figures:

1. **Roofline placement** -- where each layer of a network sits relative
   to the platform's ridge point, explaining *why* DDR4 walls recurrent
   layers (the mechanism behind Figs. 5/6/8);
2. **Quantization sensitivity + automatic bitwidth assignment** -- the
   algorithmic substrate (PACT/ReLeQ-style) that produces the
   heterogeneous assignments the bit-flexible hardware exploits.

Run:  python examples/roofline_and_sensitivity.py
"""

from repro.hw import BPVEC, DDR4, HBM2
from repro.nn import homogeneous_8bit, lstm_workload, resnet18
from repro.quant import (
    MLP,
    assign_bitwidths,
    average_bitwidth,
    footprint_reduction,
    make_two_spirals,
)
from repro.sim import format_table, ridge_point, roofline_analysis


def roofline_demo() -> None:
    print("=" * 72)
    print("1. Roofline: why DDR4 walls recurrent layers")
    print("=" * 72)
    for memory in (DDR4, HBM2):
        print(
            f"\nBPVeC + {memory.name}: ridge point = "
            f"{ridge_point(BPVEC, memory):.1f} MACs/byte"
        )
        rows = []
        networks = (
            homogeneous_8bit(resnet18(batch=8)),
            homogeneous_8bit(lstm_workload()),
        )
        for net in networks:
            for p in roofline_analysis(net, BPVEC, memory)[:3]:
                rows.append(
                    (
                        net.name,
                        p.layer_name,
                        p.operational_intensity,
                        p.attained_macs_per_cycle,
                        "memory" if p.memory_bound else "compute",
                    )
                )
        print(
            format_table(
                ["Network", "Layer", "MACs/byte", "MACs/cycle", "Bound"],
                rows,
                precision=1,
            )
        )


def sensitivity_demo() -> None:
    print()
    print("=" * 72)
    print("2. Automatic heterogeneous bitwidth assignment")
    print("=" * 72)
    x_train, y_train = make_two_spirals(500, seed=41)
    x_val, y_val = make_two_spirals(250, seed=42)
    mlp = MLP([2, 40, 40, 2], seed=43)
    mlp.train(x_train, y_train, epochs=500, lr=0.3)
    print(f"float accuracy: {mlp.accuracy(x_val, y_val, backend='float'):.3f}")

    result = assign_bitwidths(mlp, x_val, y_val, max_drop=0.03)
    print(
        f"assignment: {result.bits_per_layer} "
        f"(accuracy {result.accuracy:.3f}, {result.steps} greedy steps)"
    )
    print(
        f"average bitwidth: {average_bitwidth(mlp, result.bits_per_layer):.2f} "
        f"-> {footprint_reduction(mlp, result.bits_per_layer):.2f}x smaller model"
    )
    print(
        "\nOn BPVeC, every narrowed layer also runs proportionally faster "
        "(4-bit: 4x, 2-bit: 16x) -- Table I's assignments play the same "
        "role for the six paper workloads."
    )


if __name__ == "__main__":
    roofline_demo()
    sensitivity_demo()
