"""Train a real model, quantize it, run it on the composed arithmetic.

The hardware's correctness rests on one invariant: the bit-parallel
composed dot product equals ordinary integer arithmetic, bit for bit.
This example makes that concrete end-to-end:

1. train a small numpy MLP on the two-spirals task (float32);
2. quantize weights/activations to 8, 6, 4, 3, and 2 bits;
3. evaluate through the ``integer`` backend and the ``composed`` backend
   (the exact computation a CVU array performs) and confirm they agree
   bit-exactly while accuracy degrades only as quantization coarsens.

Run:  python examples/train_quantized_mlp.py
"""

import numpy as np

from repro.quant import MLP, make_two_spirals
from repro.sim import format_table


def main() -> None:
    x_train, y_train = make_two_spirals(n=600, seed=7)
    x_test, y_test = make_two_spirals(n=300, seed=8)

    mlp = MLP([2, 48, 48, 2], seed=9)
    loss = mlp.train(x_train, y_train, epochs=600, lr=0.3)
    float_acc = mlp.accuracy(x_test, y_test, backend="float")
    print(f"trained: loss={loss:.4f}, float32 test accuracy={float_acc:.3f}\n")

    rows = []
    for bits in (8, 6, 4, 3, 2):
        int_out = mlp.forward(
            x_test, backend="integer", bits_weights=bits, bits_activations=bits
        )
        comp_out = mlp.forward(
            x_test, backend="composed", bits_weights=bits, bits_activations=bits
        )
        bit_exact = bool(np.array_equal(int_out, comp_out))
        acc = mlp.accuracy(
            x_test, y_test, backend="composed", bits_weights=bits, bits_activations=bits
        )
        rows.append(
            (
                f"INT{bits}",
                acc,
                acc - float_acc,
                "yes" if bit_exact else "NO",
            )
        )
    print(
        format_table(
            ["Precision", "Accuracy", "vs float", "composed == integer"],
            rows,
            precision=3,
        )
    )
    print(
        "\nThe composed (CVU) backend is bit-exact at every precision; only\n"
        "the quantization itself costs accuracy -- which is the algorithmic\n"
        "property the paper's heterogeneous-bitwidth mode exploits."
    )


if __name__ == "__main__":
    main()
