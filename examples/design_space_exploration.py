"""Design-space exploration of the CVU (paper Fig. 4 and beyond).

Sweeps bit-slicing granularity and NBVE vector length L, printing
power/area per 8-bit MAC (normalized to a conventional MAC) with the
component breakdown, under both cost models:

* the paper-calibrated model (exact Fig. 4 bars),
* the first-principles analytical model (same shape, no paper data).

Also extends the sweep beyond the paper: 4-bit slicing and L up to 64,
demonstrating the saturation the paper describes.

Run:  python examples/design_space_exploration.py
"""

from repro.hw import AnalyticalCostModel, PaperCostModel
from repro.sim import format_table


def bar(value: float, scale: float = 20.0) -> str:
    return "#" * max(1, int(value * scale))


def sweep(model, slice_widths, lanes_sweep, metric: str) -> None:
    print(f"\n--- {metric} per 8b MAC, {model.name} model "
          f"(normalized to conventional MAC) ---")
    rows = []
    for sw in slice_widths:
        for lanes in lanes_sweep:
            b = model.breakdown(sw, lanes, metric)
            rows.append(
                (
                    f"{sw}-bit",
                    lanes,
                    b.multiplication,
                    b.addition,
                    b.shifting,
                    b.registering,
                    b.total,
                    bar(b.total),
                )
            )
    print(
        format_table(
            ["Slicing", "L", "Mult", "Add", "Shift", "Reg", "Total", ""],
            rows,
        )
    )


def main() -> None:
    paper = PaperCostModel()
    analytical = AnalyticalCostModel()

    # The paper's sweep (Fig. 4).
    for metric in ("power", "area"):
        sweep(paper, (1, 2), (1, 2, 4, 8, 16), metric)

    # Key design points called out in Section III-B.
    print("\n--- Headline design points ---")
    p_opt = paper.total(2, 16, "power")
    a_opt = paper.total(2, 16, "area")
    print(f"optimum (2-bit, L=16): {1/p_opt:.1f}x power and "
          f"{1/a_opt:.1f}x area improvement over a conventional MAC")
    p_bf = paper.total(2, 1, "power")
    a_bf = paper.total(2, 1, "area")
    print(f"BitFusion point (2-bit, L=1): {a_bf:.2f}x area "
          f"(the paper's 40% overhead), {p_bf/p_opt:.1f}x more power than a CVU")

    # Extension beyond the paper: 4-bit slicing and longer vectors show
    # saturation -- gains flatten past L=16 (Section III-B observation 2).
    sweep(analytical, (1, 2, 4), (1, 4, 16, 32, 64), "power")
    l16 = analytical.total(2, 16, "power")
    l64 = analytical.total(2, 64, "power")
    print(f"\nL=16 -> L=64 improves only {l16/l64:.2f}x: the adder-tree "
          f"amortization has saturated, as the paper reports.")


if __name__ == "__main__":
    main()
