"""Design-space exploration on the batched, cached DSE engine.

The paper's evaluation is one slice of a much larger design space.  This
example drives the `repro.dse` engine through that space end to end:

1. declare a grid sweep (platform x memory x bitwidth policy x workload
   x batch) -- hundreds of points from a few lines of spec;
2. evaluate it cold, persisting records to a JSONL result store;
3. re-run the identical sweep warm to show the store makes it near-free;
4. query the records: Pareto frontier, top-k, geomean speedups;
5. reproduce the paper's Fig. 4 cost-model headline from the same grid
   machinery.

Run:  python examples/design_space_exploration.py
"""

import tempfile
import time
from pathlib import Path

from repro.dse import (
    SweepSpec,
    clear_memo,
    geomean_speedup,
    pareto_frontier,
    render_records,
    run_sweep,
    top_k,
)
from repro.hw import PaperCostModel


def main() -> None:
    spec = SweepSpec.grid(
        workloads=["AlexNet", "ResNet-18", "ResNet-50", "RNN", "LSTM"],
        platforms=("tpu", "bitfusion", "bpvec"),
        memories=("ddr4", "hbm2"),
        policies=("homogeneous-8bit", "paper-heterogeneous", "uniform-2x2"),
        batches=(1, 8),
    )
    print(f"sweep: {len(spec)} design points")

    with tempfile.TemporaryDirectory() as tmp:
        store = Path(tmp) / "dse-results.jsonl"

        t0 = time.perf_counter()
        cold = run_sweep(spec, store=store)
        cold_s = time.perf_counter() - t0
        print(f"cold run:  {cold.summary()}  [{cold_s * 1e3:.0f} ms]")

        clear_memo()  # forget the in-process cache; only the store remains
        t0 = time.perf_counter()
        warm = run_sweep(spec, store=store)
        warm_s = time.perf_counter() - t0
        print(f"warm run:  {warm.summary()}  [{warm_s * 1e3:.0f} ms, "
              f"{cold_s / warm_s:.0f}x faster]")
        assert warm.records == cold.records

        records = cold.records

    # -- queries -------------------------------------------------------
    print("\n--- Pareto frontier (time vs energy) ---")
    frontier = pareto_frontier(records)
    print(render_records(frontier))

    print("\n--- Top 5 by performance per watt ---")
    print(render_records(top_k(records, "perf_per_watt", k=5, sense="max")))

    print("\n--- Geomean speedups over the TPU-like baseline (DDR4) ---")
    baseline = {"platform": "TPU-like baseline", "memory": "DDR4"}
    for candidate in (
        {"platform": "BPVeC", "memory": "DDR4"},
        {"platform": "BPVeC", "memory": "HBM2"},
        {"platform": "BitFusion", "memory": "DDR4"},
    ):
        speedup = geomean_speedup(records, baseline, candidate)
        print(f"{candidate['platform']:>10} + {candidate['memory']}: "
              f"{speedup:.2f}x")

    # -- the paper's Fig. 4 headline from the cost model ---------------
    print("\n--- Headline CVU design points (paper Fig. 4) ---")
    costs = PaperCostModel()
    p_opt = costs.total(2, 16, "power")
    a_opt = costs.total(2, 16, "area")
    print(f"optimum (2-bit, L=16): {1 / p_opt:.1f}x power and "
          f"{1 / a_opt:.1f}x area improvement over a conventional MAC")
    p_bf = costs.total(2, 1, "power")
    print(f"BitFusion point (2-bit, L=1): {p_bf / p_opt:.1f}x more power "
          f"than a CVU")


if __name__ == "__main__":
    main()
