"""Design-space exploration: sharded, streamed, merged, compacted.

The paper's evaluation is one slice of a much larger design space.  This
example drives the `repro.dse` engine through that space the way a
distributed deployment would:

1. declare a grid sweep (platform x memory x bitwidth policy x workload
   x batch) -- hundreds of points from a few lines of spec;
2. split it into two hash-range shards and evaluate each into its own
   JSONL store, as if on two machines (`SweepSpec.shard`);
3. merge the per-shard stores into one (`ResultStore.merge`) and verify
   the union matches an unsharded run record-for-record;
4. stream the sweep (`iter_sweep`), maintaining a partial Pareto
   frontier that a UI could render while points are still evaluating;
5. compact the merged store (`ResultStore.compact`) and query it:
   Pareto frontier, top-k, geomean speedups;
6. reproduce the paper's Fig. 4 cost-model headline from the same grid
   machinery.

Run:  python examples/design_space_exploration.py
"""

import tempfile
import time
from pathlib import Path

from repro.dse import (
    ParetoTracker,
    ResultStore,
    SweepSpec,
    clear_memo,
    geomean_speedup,
    iter_sweep,
    pareto_frontier,
    render_records,
    run_sweep,
    top_k,
)
from repro.hw import PaperCostModel


def main() -> None:
    spec = SweepSpec.grid(
        workloads=["AlexNet", "ResNet-18", "ResNet-50", "RNN", "LSTM"],
        platforms=("tpu", "bitfusion", "bpvec"),
        memories=("ddr4", "hbm2"),
        policies=("homogeneous-8bit", "paper-heterogeneous", "uniform-2x2"),
        batches=(1, 8),
    )
    print(f"sweep: {len(spec)} design points")

    with tempfile.TemporaryDirectory() as tmp:
        tmp = Path(tmp)

        # -- sharded execution: two "machines", two stores ---------------
        shard_paths = []
        t0 = time.perf_counter()
        for index in range(2):
            clear_memo()  # each shard is its own process in real life
            shard = spec.shard(index, 2)
            path = tmp / f"shard{index}.jsonl"
            result = run_sweep(shard, store=path)
            shard_paths.append(path)
            print(f"shard {index}/2: {result.summary()}")
        sharded_s = time.perf_counter() - t0

        merged = ResultStore(tmp / "merged.jsonl")
        total = merged.merge(shard_paths)
        print(
            f"merged {len(shard_paths)} shard stores: {total} records "
            f"[{sharded_s * 1e3:.0f} ms total]"
        )

        # -- the union is exactly the unsharded run ----------------------
        clear_memo()
        single = run_sweep(spec, store=tmp / "single.jsonl")
        by_hash = {r["hash"]: r for r in single.records}
        assert merged.load() == by_hash
        print("merged union == unsharded run, record-for-record")

        # -- streaming: partial frontier while the sweep runs ------------
        clear_memo()
        tracker = ParetoTracker()
        for sweep_record in iter_sweep(spec.shard(0, 2)):
            tracker.add(sweep_record.record)
        print(
            f"streamed shard 0/2: partial frontier has {len(tracker)} of "
            f"{tracker.seen} records before shard 1 even starts"
        )

        # -- warm reuse + compaction -------------------------------------
        clear_memo()
        t0 = time.perf_counter()
        warm = run_sweep(spec, store=merged)
        warm_s = time.perf_counter() - t0
        print(
            f"warm run:  {warm.summary()}  [{warm_s * 1e3:.0f} ms, "
            f"{sharded_s / warm_s:.0f}x faster than evaluating]"
        )
        assert warm.records == single.records

        before = merged.path.stat().st_size
        kept, dropped = merged.compact(gzip=True)
        print(
            f"compacted store: {kept} records kept, {dropped} lines "
            f"dropped, {before} -> {merged.path.stat().st_size} bytes "
            f"(gzipped)"
        )

        records = warm.records

    # -- queries -------------------------------------------------------
    print("\n--- Pareto frontier (time vs energy) ---")
    frontier = pareto_frontier(records)
    print(render_records(frontier))

    print("\n--- Top 5 by performance per watt ---")
    print(render_records(top_k(records, "perf_per_watt", k=5, sense="max")))

    print("\n--- Geomean speedups over the TPU-like baseline (DDR4) ---")
    baseline = {"platform": "TPU-like baseline", "memory": "DDR4"}
    for candidate in (
        {"platform": "BPVeC", "memory": "DDR4"},
        {"platform": "BPVeC", "memory": "HBM2"},
        {"platform": "BitFusion", "memory": "DDR4"},
    ):
        speedup = geomean_speedup(records, baseline, candidate)
        print(f"{candidate['platform']:>10} + {candidate['memory']}: {speedup:.2f}x")

    # -- the paper's Fig. 4 headline from the cost model ---------------
    print("\n--- Headline CVU design points (paper Fig. 4) ---")
    costs = PaperCostModel()
    p_opt = costs.total(2, 16, "power")
    a_opt = costs.total(2, 16, "area")
    print(
        f"optimum (2-bit, L=16): {1 / p_opt:.1f}x power and "
        f"{1 / a_opt:.1f}x area improvement over a conventional MAC"
    )
    p_bf = costs.total(2, 1, "power")
    print(f"BitFusion point (2-bit, L=1): {p_bf / p_opt:.1f}x more power than a CVU")


if __name__ == "__main__":
    main()
