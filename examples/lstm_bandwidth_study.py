"""Recurrent workloads and the memory-bandwidth crossover.

The paper's most striking result is the interaction between composability
and bandwidth: on DDR4, RNN/LSTM gain *nothing* from BPVeC's doubled
compute (Fig. 5), yet with HBM2 they gain the most of all workloads
(Figs. 6/8).  This example sweeps off-chip bandwidth continuously to locate
the crossover where the LSTM flips from memory- to compute-bound on each
platform.

Run:  python examples/lstm_bandwidth_study.py
"""

from repro.hw import BITFUSION, BPVEC, DDR4, TPU_LIKE, scaled_memory
from repro.nn import homogeneous_8bit, lstm_workload, paper_heterogeneous
from repro.sim import format_table, simulate_network

BANDWIDTHS_GB_S = (4, 8, 16, 32, 64, 128, 256, 512)


def sweep(policy, label: str) -> None:
    print(f"\n--- LSTM runtime (ms) vs off-chip bandwidth, {label} ---")
    rows = []
    crossovers: dict[str, float | None] = {}
    for bw in BANDWIDTHS_GB_S:
        memory = scaled_memory(DDR4, bw)
        row = [f"{bw} GB/s"]
        for spec in (TPU_LIKE, BITFUSION, BPVEC):
            net = policy(lstm_workload())
            result = simulate_network(net, spec, memory)
            row.append(result.total_seconds * 1e3)
            if result.memory_bound_fraction < 0.5 and spec.name not in crossovers:
                crossovers[spec.name] = bw
        rows.append(tuple(row))
    print(format_table(["Bandwidth", "TPU-like", "BitFusion", "BPVeC"], rows))
    for name in ("TPU-like baseline", "BitFusion", "BPVeC"):
        bw = crossovers.get(name)
        note = (
            f"becomes compute-bound at ~{bw} GB/s"
            if bw
            else "memory-bound throughout"
        )
        print(f"  {name:<18} {note}")


def headline() -> None:
    print("\n--- The paper's Fig. 5/6 contrast, on the LSTM ---")
    net = homogeneous_8bit(lstm_workload())
    base_ddr4 = simulate_network(net, TPU_LIKE, DDR4)
    bpv_ddr4 = simulate_network(net, BPVEC, DDR4)
    bpv_hbm2 = simulate_network(net, BPVEC, scaled_memory(DDR4, 256))
    print(f"baseline + DDR4 : {base_ddr4.total_seconds*1e3:7.2f} ms")
    print(
        f"BPVeC    + DDR4 : {bpv_ddr4.total_seconds*1e3:7.2f} ms "
        f"({base_ddr4.total_seconds/bpv_ddr4.total_seconds:.2f}x -- compute is "
        f"idle, bandwidth is the wall)"
    )
    print(
        f"BPVeC    + HBM2 : {bpv_hbm2.total_seconds*1e3:7.2f} ms "
        f"({base_ddr4.total_seconds/bpv_hbm2.total_seconds:.2f}x -- the doubled "
        f"compute finally pays off)"
    )


if __name__ == "__main__":
    sweep(homogeneous_8bit, "homogeneous 8-bit")
    sweep(paper_heterogeneous, "heterogeneous 4-bit")
    headline()
