"""Compile a quantized network down to accelerator instructions.

Shows the full stack a deployment would use:

1. build a network and assign the paper's heterogeneous bitwidths;
2. lower it to the tile-granular ISA (mode switches, tile loads, GEMMs);
3. execute the program on the timing executor (agrees cycle-for-cycle
   with the analytical simulator);
4. functionally verify every GEMM's composed arithmetic against integer
   references -- the software analogue of RTL sign-off.

Run:  python examples/compile_to_accelerator.py
"""

from repro.compiler import Executor, GemmTile, SetMode, functional_check, lower_network
from repro.hw import BPVEC, DDR4
from repro.nn import alexnet, paper_heterogeneous
from repro.sim import format_table, simulate_network


def main() -> None:
    net = paper_heterogeneous(alexnet(batch=1))
    program = lower_network(net, BPVEC)
    print(f"lowered {net.name}: {program.summary()}\n")

    print("First twelve instructions:")
    for instruction in program.instructions[:12]:
        print(f"  {instruction}")

    modes = [
        (i.bw_act, i.bw_w) for i in program if isinstance(i, SetMode)
    ]
    print(f"\nmode switches along the layer sequence: {modes}")
    print(
        "(first/last layers run 8x8; the quantized middle runs 4x4 at 4x "
        "the throughput)"
    )

    result = Executor(BPVEC, DDR4).run(program)
    sim = simulate_network(net, BPVEC, DDR4)
    rows = [
        ("cycles", result.cycles, sim.total_cycles),
        ("traffic (bytes)", result.traffic_bytes, sim.total_traffic_bytes),
        ("MACs", result.macs, sim.total_macs),
    ]
    print()
    print(format_table(["metric", "executor", "simulator"], rows, precision=0))
    assert result.cycles == sim.total_cycles

    gemms = sum(isinstance(i, GemmTile) for i in program)
    checked = functional_check(program, max_elements=512)
    print(
        f"\nfunctional sign-off: {checked}/{gemms} GEMMs verified "
        f"(composed bit-parallel arithmetic == integer reference)"
    )


if __name__ == "__main__":
    main()
