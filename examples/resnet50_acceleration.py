"""ResNet-50 across the paper's four design points.

The paper evaluates bit-parallel vector composability along two axes:
algorithmic bitwidth heterogeneity (8-bit vs deep-quantized 4-bit) and
off-chip bandwidth (DDR4 vs HBM2).  This example runs ResNet-50 through
all four quadrants on all three ASIC platforms, and prints a per-layer
drill-down showing where the time goes.

Run:  python examples/resnet50_acceleration.py
"""

from repro.hw import BITFUSION, BPVEC, DDR4, HBM2, TPU_LIKE
from repro.nn import homogeneous_8bit, paper_heterogeneous, resnet50
from repro.sim import compare, format_table, simulate_network


def four_quadrants() -> None:
    print("=" * 72)
    print("ResNet-50: four design points x three platforms")
    print("=" * 72)
    rows = []
    for regime, policy in (
        ("8-bit homogeneous", homogeneous_8bit),
        ("4-bit heterogeneous", paper_heterogeneous),
    ):
        for memory in (DDR4, HBM2):
            net = policy(resnet50(batch=8))
            reference = simulate_network(net, TPU_LIKE, memory)
            for spec in (TPU_LIKE, BITFUSION, BPVEC):
                result = simulate_network(net, spec, memory)
                c = compare(reference, result)
                rows.append(
                    (
                        regime,
                        memory.name,
                        spec.name,
                        result.total_seconds * 1e3,
                        result.total_energy_j * 1e3,
                        c.speedup,
                        f"{result.memory_bound_fraction * 100:.0f}%",
                    )
                )
    print(
        format_table(
            ["Regime", "Memory", "Platform", "ms", "mJ", "vs TPU-like", "mem-bound"],
            rows,
        )
    )


def per_layer_drilldown() -> None:
    print()
    print("=" * 72)
    print("Per-layer drill-down: BPVeC + DDR4, heterogeneous bitwidths")
    print("=" * 72)
    net = paper_heterogeneous(resnet50(batch=8))
    result = simulate_network(net, BPVEC, DDR4)
    rows = []
    for layer in result.layers[:12]:  # first stages; the pattern repeats
        rows.append(
            (
                layer.layer_name,
                f"{layer.bw_act}x{layer.bw_w}",
                layer.macs / 1e6,
                layer.cycles,
                "memory" if layer.is_memory_bound else "compute",
                layer.schedule,
            )
        )
    print(
        format_table(
            ["Layer", "Bits", "MMACs", "Cycles", "Bound", "Schedule"], rows
        )
    )
    slowest = max(result.layers, key=lambda l: l.cycles)
    print(
        f"\nSlowest layer: {slowest.layer_name} "
        f"({slowest.cycles} cycles, "
        f"{'memory' if slowest.is_memory_bound else 'compute'}-bound)"
    )
    print(result.summary())


if __name__ == "__main__":
    four_quadrants()
    per_layer_drilldown()
