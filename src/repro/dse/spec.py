"""Declarative sweep specifications for the design-space-exploration engine.

A sweep is a list of :class:`SweepPoint` -- one fully-resolved
(workload, bitwidth policy, platform + memory | GPU, batch) configuration.
Points are either given explicitly or expanded from a grid over named
axes.  Every point canonicalizes to a JSON config and a stable SHA-256
hash; the hash is the key under which the engine memoizes evaluations and
the result store persists records, so the same configuration -- whether
referenced by registry name or spelled out as a custom spec -- is never
evaluated twice.
"""

from __future__ import annotations

import functools
import hashlib
import itertools
import json
import re
from dataclasses import dataclass, field, fields
from typing import Callable, Mapping, Sequence

from ..baselines.gpu import RTX_2080_TI, GPUSpec
from ..hw.dram import DDR4, HBM2, MemorySpec
from ..hw.platforms import BITFUSION, BPVEC, TPU_LIKE, AcceleratorSpec
from ..nn.bitwidths import homogeneous_8bit, paper_heterogeneous, uniform
from ..nn.graph import Network
from ..nn.models import WORKLOAD_BUILDERS
from .policies import PERLAYER_PREFIX, PolicySpec, policy_name

__all__ = [
    "SweepPoint",
    "SweepSpec",
    "expand_grid",
    "shard_index",
    "build_network",
    "cached_network",
    "resolve_platform",
    "resolve_memory",
    "resolve_gpu",
    "resolve_policy",
    "resolve_workload",
    "PLATFORM_NAMES",
    "MEMORY_NAMES",
    "POLICY_NAMES",
    "GPU_NAMES",
]

# ----------------------------------------------------------------------
# Registries: short names -> hardware / policy objects
# ----------------------------------------------------------------------
_PLATFORMS: dict[str, AcceleratorSpec] = {
    "tpu": TPU_LIKE,
    "tpu-like": TPU_LIKE,
    "bitfusion": BITFUSION,
    "bpvec": BPVEC,
}
_MEMORIES: dict[str, MemorySpec] = {"ddr4": DDR4, "hbm2": HBM2}
_GPUS: dict[str, GPUSpec] = {"rtx-2080-ti": RTX_2080_TI}
_POLICIES: dict[str, Callable[[Network], Network]] = {
    "homogeneous-8bit": homogeneous_8bit,
    "paper-heterogeneous": paper_heterogeneous,
}
_UNIFORM_POLICY = re.compile(r"uniform-(\d+)x(\d+)")

PLATFORM_NAMES = ("tpu", "bitfusion", "bpvec")
MEMORY_NAMES = tuple(sorted(_MEMORIES))
GPU_NAMES = tuple(sorted(_GPUS))
POLICY_NAMES = tuple(sorted(_POLICIES)) + (
    "uniform-AxW (e.g. uniform-4x8)",
    f"{PERLAYER_PREFIX}-AxW-... (e.g. {PERLAYER_PREFIX}-8x8-4x4)",
)

_WORKLOAD_KEYS = {name.lower(): name for name in WORKLOAD_BUILDERS}


def resolve_workload(name: str) -> str:
    """Canonicalize a workload name (case-insensitive)."""
    key = _WORKLOAD_KEYS.get(str(name).lower())
    if key is None:
        raise KeyError(
            f"unknown workload {name!r}; choose from {sorted(WORKLOAD_BUILDERS)}"
        )
    return key


def build_network(workload: str, batch: int | None = None) -> Network:
    """Instantiate a registered workload (``batch=None`` = builder default)."""
    builder = WORKLOAD_BUILDERS[resolve_workload(workload)]
    return builder() if batch is None else builder(batch=batch)


@functools.lru_cache(maxsize=64)
def _weighted_layer_count(workload: str) -> int:
    """How many weighted layers a workload has (batch-independent)."""
    return len(build_network(workload).weighted_layers)


def cached_network(
    workload: str, batch: int | None = None, policy: str = "homogeneous-8bit"
) -> Network:
    """A shared, policy-applied network for a (workload, batch, policy) key.

    Evaluating a sweep rebuilds the same handful of networks thousands of
    times; this LRU hands every evaluation of one combination the same
    instance instead.  ``policy`` takes any spelling
    :func:`~repro.dse.policies.policy_name` accepts (name,
    :class:`~repro.dse.policies.PolicySpec`, dict, bare sequence).
    Treat the result as **read-only** -- callers that want to mutate
    bitwidths should go through :func:`build_network`.
    """
    return _cached_network(resolve_workload(workload), batch, policy_name(policy))


@functools.lru_cache(maxsize=256)
def _cached_network(workload: str, batch: int | None, policy: str) -> Network:
    network = build_network(workload, batch)
    resolve_policy(policy)(network)
    return network


def resolve_platform(ref: str | AcceleratorSpec | Mapping) -> AcceleratorSpec:
    """Accept a registry name, a spec, or a dict of ``AcceleratorSpec`` fields."""
    if isinstance(ref, AcceleratorSpec):
        return ref
    if isinstance(ref, Mapping):
        return AcceleratorSpec(**ref)
    spec = _PLATFORMS.get(str(ref).lower())
    if spec is None:
        raise KeyError(f"unknown platform {ref!r}; choose from {PLATFORM_NAMES}")
    return spec


def resolve_memory(ref: str | MemorySpec | Mapping) -> MemorySpec:
    if isinstance(ref, MemorySpec):
        return ref
    if isinstance(ref, Mapping):
        return MemorySpec(**ref)
    spec = _MEMORIES.get(str(ref).lower())
    if spec is None:
        raise KeyError(f"unknown memory {ref!r}; choose from {MEMORY_NAMES}")
    return spec


def resolve_gpu(ref: str | GPUSpec | Mapping) -> GPUSpec:
    if isinstance(ref, GPUSpec):
        return ref
    if isinstance(ref, Mapping):
        return GPUSpec(**ref)
    spec = _GPUS.get(str(ref).lower())
    if spec is None:
        raise KeyError(f"unknown GPU {ref!r}; choose from {GPU_NAMES}")
    return spec


def resolve_policy(
    name: "str | PolicySpec",
) -> Callable[[Network], Network]:
    """Look up a bitwidth policy by name (or :class:`PolicySpec`).

    Policies travel across process boundaries as names, never as
    callables, so ad-hoc ``uniform-AxW`` and per-layer
    ``perlayer-AxW-...`` policies stay picklable -- the per-layer name
    alone reconstructs the assignment anywhere.  The lookup is memoized:
    every sweep point validates its policy eagerly, so the engine
    resolves the same few names millions of times.
    """
    if isinstance(name, PolicySpec):
        return name
    return _resolve_policy(str(name).lower())


@functools.lru_cache(maxsize=512)
def _resolve_policy(key: str) -> Callable[[Network], Network]:
    if key in _POLICIES:
        return _POLICIES[key]
    match = _UNIFORM_POLICY.fullmatch(key)
    if match:
        act, wgt = int(match.group(1)), int(match.group(2))
        if not (1 <= act <= 8 and 1 <= wgt <= 8):
            raise KeyError(f"uniform policy bitwidths out of range: {key!r}")
        return lambda net: uniform(net, act, wgt)
    if key.startswith(PERLAYER_PREFIX):
        try:
            return PolicySpec.from_name(key)
        except ValueError as error:
            raise KeyError(str(error))
    raise KeyError(f"unknown policy {key!r}; choose from {POLICY_NAMES}")


def expand_grid(axes: Mapping[str, Sequence]) -> list[dict]:
    """Cartesian product of named axes, preserving axis and value order.

    The last axis varies fastest, matching the equivalent nested loops.
    """
    keys = list(axes)
    return [
        dict(zip(keys, combo))
        for combo in itertools.product(*(axes[k] for k in keys))
    ]


def _flat_spec_dict(spec) -> dict:
    """``dataclasses.asdict`` for flat specs, without its deepcopy walk.

    Hardware specs hold only scalar fields, so a plain field read builds
    the identical dict (and the identical config hash) at a fraction of
    the cost -- config hashing used to dominate warm sweeps.
    """
    return {f.name: getattr(spec, f.name) for f in fields(spec)}


_HASH_BITS = 256  # SHA-256 config hashes


def shard_index(config_hash: str, count: int) -> int:
    """Which of ``count`` equal hash-range shards owns this config hash.

    The 256-bit hash space is split into ``count`` contiguous ranges;
    shard ``i`` owns ``[i * 2**256 / count, (i+1) * 2**256 / count)``.
    The mapping depends only on the hash, so independent processes agree
    on the partition without coordination, and a store merged from all
    shards of one spec contains each config exactly once.
    """
    if count < 1:
        raise ValueError("shard count must be >= 1")
    return int(config_hash, 16) * count >> _HASH_BITS


# ----------------------------------------------------------------------
# Sweep points and specs
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SweepPoint:
    """One fully-resolved design point.

    Either an ASIC point (``platform`` + ``memory``) or a GPU point
    (``gpu`` + ``gpu_precision``); exactly one of the two.  ``policy``
    accepts a name, a :class:`~repro.dse.policies.PolicySpec`, a policy
    dict, or a bare per-layer sequence; whatever the spelling, it is
    canonicalized to a resolvable name string on construction, so the
    point stays hashable, picklable, and stable under JSON round-trips.
    """

    workload: str
    policy: str = "homogeneous-8bit"
    platform: AcceleratorSpec | None = None
    memory: MemorySpec | None = None
    gpu: GPUSpec | None = None
    gpu_precision: int = 8
    batch: int | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "workload", resolve_workload(self.workload))
        object.__setattr__(self, "policy", policy_name(self.policy))
        applier = resolve_policy(self.policy)  # validate eagerly
        if isinstance(applier, PolicySpec):
            # Per-layer policies are workload-shaped; catching a count
            # mismatch here turns an unusable cross-product (e.g. a
            # multi-workload grid against one workload's policy axis)
            # into an upfront error instead of a mid-sweep abort.
            count = _weighted_layer_count(self.workload)
            if applier.num_layers != count:
                raise ValueError(
                    f"policy {self.policy!r} assigns {applier.num_layers} "
                    f"layers but {self.workload} has {count} weighted layers"
                )
        if self.gpu is not None:
            if self.platform is not None or self.memory is not None:
                raise ValueError("a point is either a GPU or an ASIC, not both")
            if self.gpu_precision not in (4, 8):
                raise ValueError("GPU tensor precision must be 4 or 8")
        else:
            if self.platform is None or self.memory is None:
                raise ValueError("ASIC points need both a platform and a memory")
        if self.batch is not None and self.batch < 1:
            raise ValueError("batch must be >= 1")

    @property
    def kind(self) -> str:
        return "gpu" if self.gpu is not None else "asic"

    @property
    def target_name(self) -> str:
        """Display name of the hardware the point runs on."""
        return self.gpu.name if self.gpu is not None else self.platform.name

    def config(self) -> dict:
        """Canonical JSON-able description; the identity of this point."""
        cfg: dict = {
            "kind": self.kind,
            "workload": self.workload,
            "policy": self.policy.lower(),
            "batch": self.batch,
        }
        if self.gpu is not None:
            cfg["gpu"] = _flat_spec_dict(self.gpu)
            cfg["precision"] = self.gpu_precision
        else:
            cfg["platform"] = _flat_spec_dict(self.platform)
            cfg["memory"] = _flat_spec_dict(self.memory)
        return cfg

    def config_hash(self) -> str:
        """SHA-256 of the canonical config; memoized (points are frozen)."""
        cached = self.__dict__.get("_config_hash")
        if cached is None:
            blob = json.dumps(self.config(), sort_keys=True, separators=(",", ":"))
            cached = hashlib.sha256(blob.encode()).hexdigest()
            object.__setattr__(self, "_config_hash", cached)
        return cached

    def to_dict(self) -> dict:
        """The JSON wire spelling of this point.

        Round-trips through :meth:`SweepSpec.from_dict` to an identical
        point -- same config, same hash -- so a sweep submitted to a
        remote server (``repro dse --server``) resolves against the
        server's caches exactly like a local run.  Hardware specs are
        spelled as flat field dicts, never registry names, so custom
        specs travel too.
        """
        data: dict = {"workload": self.workload, "policy": self.policy}
        if self.batch is not None:
            data["batch"] = self.batch
        if self.gpu is not None:
            data["gpu"] = _flat_spec_dict(self.gpu)
            data["precision"] = self.gpu_precision
        else:
            data["platform"] = _flat_spec_dict(self.platform)
            data["memory"] = _flat_spec_dict(self.memory)
        return data


@dataclass(frozen=True)
class SweepSpec:
    """An ordered collection of sweep points.

    A spec may be empty: a fine-grained :meth:`shard` partition can
    leave a shard with no points, and such shards must still be
    representable (the engine's batch API rejects running them, the
    streaming API yields nothing).
    """

    points: tuple[SweepPoint, ...] = field(default_factory=tuple)

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self):
        return iter(self.points)

    def shard(self, index: int, count: int) -> "SweepSpec":
        """The sub-spec owned by hash-range shard ``index`` of ``count``.

        Points are partitioned by :func:`shard_index` over their config
        hashes: shards are disjoint, their union is the spec, and the
        assignment is stable across processes and machines -- run each
        shard wherever you like, then :meth:`ResultStore.merge
        <repro.dse.store.ResultStore.merge>` the per-shard stores.
        Relative point order is preserved within a shard.
        """
        if count < 1:
            raise ValueError("shard count must be >= 1")
        if not 0 <= index < count:
            raise ValueError(f"shard index must be in [0, {count}), got {index}")
        return SweepSpec(
            points=tuple(
                point
                for point in self.points
                if shard_index(point.config_hash(), count) == index
            )
        )

    def chunks(self, count: int) -> "list[tuple[int, SweepSpec]]":
        """The non-empty hash-range chunks of a ``count``-way partition.

        The same partition :meth:`shard` defines -- ``(i, sub)`` pairs
        where ``sub == self.shard(i, count)`` -- computed in one pass
        and with empty shards dropped, so a lease queue (the elastic
        worker fleet in :mod:`repro.serve.fleet`) never hands out
        no-op work units.  Chunks are disjoint, their union is the
        spec, and the chunk index is stable across processes, so a
        chunk re-executed after a lost lease lands on exactly the same
        points.
        """
        if count < 1:
            raise ValueError("chunk count must be >= 1")
        buckets: dict[int, list[SweepPoint]] = {}
        for point in self.points:
            index = shard_index(point.config_hash(), count)
            buckets.setdefault(index, []).append(point)
        return [
            (index, SweepSpec(points=tuple(points)))
            for index, points in sorted(buckets.items())
        ]

    @classmethod
    def grid(
        cls,
        workloads: Sequence[str],
        platforms: Sequence = PLATFORM_NAMES,
        memories: Sequence = MEMORY_NAMES,
        policies: Sequence[str] = ("homogeneous-8bit",),
        batches: Sequence[int | None] = (None,),
        gpus: Sequence = (),
        gpu_precisions: Sequence[int] = (8,),
    ) -> "SweepSpec":
        """Expand a grid over the named axes into explicit points."""
        points = []
        for cell in expand_grid(
            {
                "workload": list(workloads),
                "policy": list(policies),
                "batch": list(batches),
            }
        ):
            for plat in platforms:
                for mem in memories:
                    points.append(
                        SweepPoint(
                            platform=resolve_platform(plat),
                            memory=resolve_memory(mem),
                            **cell,
                        )
                    )
            for gpu in gpus:
                for precision in gpu_precisions:
                    points.append(
                        SweepPoint(
                            gpu=resolve_gpu(gpu), gpu_precision=precision, **cell
                        )
                    )
        return cls(points=tuple(points))

    def to_dict(self) -> dict:
        """The JSON wire spelling (explicit points; grids stay local).

        ``SweepSpec.from_dict(spec.to_dict())`` rebuilds an identical
        spec: same points, same order, same config hashes.  This is the
        payload format of ``POST /sweep`` and the per-shard spec files
        ``repro dse-launch`` writes.
        """
        return {"points": [point.to_dict() for point in self.points]}

    @classmethod
    def from_dict(cls, data: Mapping) -> "SweepSpec":
        """Parse the JSON sweep-spec format (see README, "Sweep specs").

        Either ``{"grid": {...axes...}}`` or ``{"points": [{...}, ...]}``.
        """
        if "points" in data:
            return cls(
                points=tuple(cls._point_from_dict(p) for p in data["points"])
            )
        if "grid" in data:
            grid = dict(data["grid"])
            if "workloads" not in grid:
                raise ValueError('sweep grid needs a "workloads" axis')
            return cls.grid(
                workloads=grid["workloads"],
                platforms=grid.get(
                    "platforms", PLATFORM_NAMES if not grid.get("gpus") else ()
                ),
                memories=grid.get("memories", MEMORY_NAMES),
                policies=grid.get("policies", ("homogeneous-8bit",)),
                batches=grid.get("batches", (None,)),
                gpus=grid.get("gpus", ()),
                gpu_precisions=grid.get("gpu_precisions", (8,)),
            )
        raise ValueError('sweep spec needs either a "grid" or a "points" key')

    @staticmethod
    def _point_from_dict(data: Mapping) -> SweepPoint:
        kwargs: dict = {
            "workload": data["workload"],
            "policy": data.get("policy", "homogeneous-8bit"),
            "batch": data.get("batch"),
        }
        if "gpu" in data:
            kwargs["gpu"] = resolve_gpu(data["gpu"])
            kwargs["gpu_precision"] = data.get("precision", 8)
        else:
            kwargs["platform"] = resolve_platform(data["platform"])
            kwargs["memory"] = resolve_memory(data["memory"])
        return SweepPoint(**kwargs)
