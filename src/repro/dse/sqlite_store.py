"""SQLite-backed result store: one resolved row per config hash.

Same contract as the JSONL :class:`~repro.dse.store.ResultStore` --
version-aware last-write-wins, ``merge``/``compact`` parity, records
bit-identical through the JSON round-trip -- but the resolution rule is
applied *at write time* by a conditional upsert, so the table always
holds exactly the surviving record per hash.  That turns the engine's
warm path (:meth:`~repro.dse.store.ResultStoreBase.records_for`) into
an indexed point lookup instead of a full-file parse: a million-record
store resolves a sweep in time proportional to the sweep, not the
store.

Durability comes from SQLite's transactional writes: there is no torn
tail to tolerate, every committed record survives a crash whole.  The
streaming :meth:`appender` commits per record for parity with the JSONL
flush-per-record behaviour, while bulk :meth:`append` batches one
transaction.  Stores are plain single files, safe to copy or merge
across machines like their JSONL siblings; ``gzip`` conversion is a
JSONL-only concept and is rejected explicitly.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import warnings
from contextlib import closing, contextmanager
from typing import Callable, Iterable, Iterator

from .store import ResultStoreBase, StoreWarning, _source_records

__all__ = ["SQLiteStore"]

_SCHEMA = (
    "CREATE TABLE IF NOT EXISTS records ("
    " hash TEXT PRIMARY KEY,"
    " version INTEGER NOT NULL DEFAULT 0,"
    " record TEXT NOT NULL"
    ") WITHOUT ROWID",
    "CREATE INDEX IF NOT EXISTS records_version ON records (version)",
)

# The whole resolution rule in one statement: replace only when the
# incoming version ties or beats the stored one (_supersedes in SQL).
_UPSERT = (
    "INSERT INTO records (hash, version, record) VALUES (?, ?, ?) "
    "ON CONFLICT (hash) DO UPDATE SET"
    " version = excluded.version, record = excluded.record"
    " WHERE excluded.version >= records.version"
)

#: Point lookups batch their IN-lists to stay under SQLite's host
#: parameter limit (999 in older builds).
_SELECT_CHUNK = 500

#: Rows per transaction for bulk appends and merges.  One transaction
#: over a million-row upload holds the write lock (and the journal
#: growth) for the whole body; bounded batches keep each commit short
#: so streaming appenders and readers interleave, while staying large
#: enough that per-transaction fsync cost amortizes away.
APPEND_BATCH_ROWS = 5_000


def _row(record: dict, path=None) -> tuple[str, int, str] | None:
    """The (hash, version, json) row for a record; None when keyless."""
    key = record.get("hash") if isinstance(record, dict) else None
    if not key:
        if path is not None:
            warnings.warn(
                f"{path}: dropping keyless record on append (records "
                'need a "hash" key to ever be read back)',
                StoreWarning,
                stacklevel=3,
            )
        return None  # keyless records are unloadable in any backend
    return (key, record.get("version", 0), json.dumps(record, sort_keys=True))


class SQLiteStore(ResultStoreBase):
    """Persistent cache of evaluated design points in a SQLite file."""

    backend = "sqlite"

    def __init__(self, path: "str | os.PathLike"):
        super().__init__(path)
        # change_token() holds one long-lived connection: PRAGMA
        # data_version only moves relative to a *held* connection (a
        # fresh connection always reads the same initial value).  The
        # connection is shared across handler threads under a lock.
        self._token_db: sqlite3.Connection | None = None
        self._token_ino: int | None = None
        self._token_lock = threading.Lock()

    def change_token(self) -> tuple | None:
        """``(data_version, mtime, size)`` -- the cache-invalidation key.

        ``PRAGMA data_version`` increments whenever *another* connection
        commits to the database, which catches the case a stat key
        cannot: an external same-size upsert landing inside one coarse
        mtime tick (every store write in this codebase opens its own
        connection, so the service's own appends count as "another
        connection" too).  The stat fields catch the file being
        replaced wholesale, in which case the held connection -- now
        pointing at the old inode -- is reopened.
        """
        try:
            stat = self.path.stat()
        except OSError:
            return None
        with self._token_lock:
            try:
                if self._token_db is None or self._token_ino != stat.st_ino:
                    if self._token_db is not None:
                        self._token_db.close()
                    self._token_db = sqlite3.connect(
                        self.path, check_same_thread=False
                    )
                    # Same busy wait as _connect(): without it, a
                    # writer holding the lock makes the PRAGMA raise
                    # and the token degrade to None -- disabling the
                    # server's read caches under exactly the
                    # concurrent-write load they exist for.
                    self._token_db.execute("PRAGMA busy_timeout = 10000")
                    self._token_ino = stat.st_ino
                (version,) = self._token_db.execute(
                    "PRAGMA data_version"
                ).fetchone()
            except sqlite3.Error:
                if self._token_db is not None:
                    self._token_db.close()
                    self._token_db = None
                return None
        return (version, stat.st_mtime_ns, stat.st_size)

    @contextmanager
    def _guard(self) -> Iterator[None]:
        """Translate sqlite3 errors (locked database, corruption) into
        OSError at the store boundary, so callers -- the CLI's error
        mapping, the server's 503 path -- handle store I/O failures
        uniformly without knowing the backend."""
        try:
            yield
        except sqlite3.Error as error:
            raise OSError(f"sqlite store {self.path}: {error}") from None

    def _connect(self) -> sqlite3.Connection:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        connection = sqlite3.connect(self.path)
        # Writers from merge/ingest can overlap a streaming appender;
        # wait for the lock instead of failing fast.
        connection.execute("PRAGMA busy_timeout = 10000")
        try:
            for statement in _SCHEMA:
                connection.execute(statement)
        except sqlite3.OperationalError:
            # E.g. locked past the busy timeout: a real I/O failure,
            # mapped to OSError by the calling method's _guard.
            connection.close()
            raise
        except sqlite3.DatabaseError:
            # E.g. --backend sqlite forced onto a JSONL file.
            connection.close()
            raise ValueError(
                f"{self.path} is not a SQLite store (open it with the "
                "jsonl backend, or pick a fresh path)"
            )
        return connection

    def load(self) -> dict[str, dict]:
        """All stored records as ``{config_hash: record}`` (pre-resolved)."""
        if not self.exists():
            return {}
        with self._guard(), closing(self._connect()) as db:
            return {
                key: json.loads(blob)
                for key, blob in db.execute("SELECT hash, record FROM records")
            }

    def iter_lines(self) -> Iterator[dict]:
        """One surviving record per hash (duplicates resolved on write)."""
        if not self.exists():
            return
        with self._guard(), closing(self._connect()) as db:
            for (blob,) in db.execute("SELECT record FROM records"):
                yield json.loads(blob)

    def append(self, records: Iterable[dict]) -> int:
        """Upsert in bounded transactions; returns rows that changed.

        The body chunks into :data:`APPEND_BATCH_ROWS`-row transactions
        so a million-record ingest never holds the write lock (or grows
        the rollback journal) for the whole upload.  The return value
        is the shared contract: rows that actually changed the store --
        ``db.total_changes`` deltas across the batches -- not rows
        offered, so a stale-version upload the conditional upsert drops
        reports 0, the same as the JSONL backend.
        """
        rows = [
            row
            for row in (_row(record, self.path) for record in records)
            if row is not None
        ]
        changed = 0
        with self._guard(), closing(self._connect()) as db:
            for start in range(0, len(rows), APPEND_BATCH_ROWS):
                before = db.total_changes
                with db:
                    db.executemany(
                        _UPSERT, rows[start : start + APPEND_BATCH_ROWS]
                    )
                changed += db.total_changes - before
        return changed

    @contextmanager
    def appender(self) -> Iterator[Callable[[dict], None]]:
        """One held-open connection, one committed transaction per record.

        Commit-per-record mirrors the JSONL flush-per-record contract:
        every completed record is durable before the next evaluation
        starts, so an interrupted run keeps its partials.  The database
        file is only created once something is written.
        """
        db: sqlite3.Connection | None = None
        try:

            def write(record: dict) -> None:
                nonlocal db
                row = _row(record, self.path)
                if row is None:
                    return
                with self._guard():
                    if db is None:
                        db = self._connect()
                    with db:
                        db.execute(_UPSERT, row)

            yield write
        finally:
            if db is not None:
                db.close()

    def records_for(
        self, hashes: Iterable[str], version: int | None = None
    ) -> dict[str, dict]:
        """Indexed point lookup -- the engine's warm path.

        Unlike the JSONL backend, only the requested rows are read and
        parsed, so resolving a sweep against a huge warm store costs
        time proportional to the sweep.
        """
        keys = list(dict.fromkeys(hashes))
        if not keys or not self.exists():
            return {}
        out: dict[str, dict] = {}
        with self._guard(), closing(self._connect()) as db:
            for start in range(0, len(keys), _SELECT_CHUNK):
                chunk = keys[start : start + _SELECT_CHUNK]
                marks = ",".join("?" * len(chunk))
                sql = f"SELECT hash, record FROM records WHERE hash IN ({marks})"
                params: list = list(chunk)
                if version is not None:
                    sql += " AND version = ?"
                    params.append(version)
                for key, blob in db.execute(sql, params):
                    out[key] = json.loads(blob)
        return out

    def iter_records(self, version: int | None = None) -> Iterator[dict]:
        """Stream rows, with the version filter pushed into SQL.

        ``WHERE version = ?`` rides the ``records_version`` index, so
        serving the current-version dump of a store full of stale
        versions never parses (or transfers) the rows it will drop --
        unlike a Python-side post-filter of a full :meth:`load`.
        """
        if not self.exists():
            return
        sql = "SELECT record FROM records"
        params: tuple = ()
        if version is not None:
            sql += " WHERE version = ?"
            params = (version,)
        with self._guard(), closing(self._connect()) as db:
            for (blob,) in db.execute(sql, params):
                yield json.loads(blob)

    def iter_page(
        self,
        after: str | None = None,
        limit: int | None = None,
        version: int | None = None,
    ) -> Iterator[dict]:
        """Keyset page straight off the primary-key index.

        ``hash`` is the WITHOUT ROWID primary key, so ``WHERE hash > ?
        ORDER BY hash LIMIT ?`` walks the index from the cursor and
        stops after one page -- no sort, no full scan, memory O(1).
        """
        if limit is not None and limit < 1:
            raise ValueError("limit must be >= 1")
        if not self.exists():
            return
        sql = "SELECT record FROM records"
        clauses: list[str] = []
        params: list = []
        if after is not None:
            clauses.append("hash > ?")
            params.append(after)
        if version is not None:
            clauses.append("version = ?")
            params.append(version)
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        sql += " ORDER BY hash"
        if limit is not None:
            sql += " LIMIT ?"
            params.append(limit)
        with self._guard(), closing(self._connect()) as db:
            for (blob,) in db.execute(sql, params):
                yield json.loads(blob)

    def hashes(self, version: int | None = None) -> set[str]:
        if not self.exists():
            return set()
        sql = "SELECT hash FROM records"
        params: tuple = ()
        if version is not None:
            sql += " WHERE version = ?"
            params = (version,)
        with self._guard(), closing(self._connect()) as db:
            return {key for (key,) in db.execute(sql, params)}

    def merge(
        self,
        sources: Iterable,
        gzip: bool | None = None,
    ) -> int:
        """Upsert every source's surviving records; returns the row count.

        Incremental by construction: existing rows participate through
        the upsert's version comparison (a later source wins a
        same-version tie), and this store's own records are never
        re-read or re-written.  Sources may be stores of either
        backend, paths, or already-loaded ``{hash: record}`` mappings.
        """
        if gzip:
            raise ValueError("SQLite stores do not support gzip")
        with self._guard(), closing(self._connect()) as db:
            for items in _source_records(sources):
                rows = [
                    row
                    for row in (_row(record) for _, record in items)
                    if row is not None
                ]
                # Bounded transactions, like append: a huge source
                # store must not pin the write lock in one commit.
                for start in range(0, len(rows), APPEND_BATCH_ROWS):
                    with db:
                        db.executemany(
                            _UPSERT, rows[start : start + APPEND_BATCH_ROWS]
                        )
            return db.execute("SELECT COUNT(*) FROM records").fetchone()[0]

    def compact(
        self, gzip: bool | None = None, drop_stale: bool = True
    ) -> tuple[int, int]:
        """Drop stale-version rows and vacuum; returns ``(kept, dropped)``.

        Superseded duplicates never reach the table (the upsert resolves
        them), so compaction only removes records at versions other than
        the current ``EVAL_VERSION`` (when ``drop_stale``) and reclaims
        the freed pages.
        """
        if gzip:
            raise ValueError("SQLite stores do not support gzip")
        if not self.exists():
            return (0, 0)
        with self._guard(), closing(self._connect()) as db:
            with db:
                total = db.execute(
                    "SELECT COUNT(*) FROM records"
                ).fetchone()[0]
                if drop_stale:
                    from .evaluate import EVAL_VERSION

                    db.execute(
                        "DELETE FROM records WHERE version != ?",
                        (EVAL_VERSION,),
                    )
                kept = db.execute("SELECT COUNT(*) FROM records").fetchone()[0]
            db.execute("VACUUM")
        return (kept, total - kept)

    def __len__(self) -> int:
        if not self.exists():
            return 0
        with self._guard(), closing(self._connect()) as db:
            return db.execute("SELECT COUNT(*) FROM records").fetchone()[0]

    def __contains__(self, config_hash: str) -> bool:
        if not self.exists():
            return False
        with self._guard(), closing(self._connect()) as db:
            row = db.execute(
                "SELECT 1 FROM records WHERE hash = ?", (config_hash,)
            ).fetchone()
            return row is not None
