"""The batched design-space-exploration engine.

``run_sweep`` takes a sweep (a :class:`~repro.dse.spec.SweepSpec` or any
iterable of points), resolves every point against three cache tiers --
the per-process memo, an optional persistent JSONL store, and finally a
cold evaluation -- and returns the records in point order.  Cold
evaluations are deduplicated by config hash and can fan out across a
``multiprocessing`` pool in chunked batches; new records are appended to
the store so a repeated sweep is near-free.
"""

from __future__ import annotations

import math
import multiprocessing
import os
from dataclasses import dataclass, field
from typing import Iterable

from .evaluate import _MEMO, EVAL_VERSION, evaluate_point
from .spec import SweepPoint, SweepSpec
from .store import ResultStore

__all__ = ["SweepResult", "DSEEngine", "run_sweep"]


@dataclass
class SweepResult:
    """Outcome of one engine run."""

    records: list[dict] = field(repr=False)
    evaluated: int  # unique points simulated cold this run
    from_store: int  # unique points served from the persistent store
    from_memo: int  # unique points served from the in-process memo

    def __len__(self) -> int:
        return len(self.records)

    @property
    def unique_points(self) -> int:
        return self.evaluated + self.from_store + self.from_memo

    def summary(self) -> str:
        return (
            f"{len(self.records)} points ({self.unique_points} unique): "
            f"{self.evaluated} evaluated, {self.from_store} store hits, "
            f"{self.from_memo} memo hits"
        )


def _pool_context():
    # fork shares the already-imported simulator with workers; fall back
    # to the platform default (spawn) where fork is unavailable.
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def run_sweep(
    sweep: SweepSpec | Iterable[SweepPoint],
    store: ResultStore | str | os.PathLike | None = None,
    workers: int = 1,
    chunk_size: int = 32,
) -> SweepResult:
    """Evaluate a sweep through the memo -> store -> simulate tiers."""
    points = list(sweep.points) if isinstance(sweep, SweepSpec) else list(sweep)
    if not points:
        raise ValueError("empty sweep")
    if workers < 1:
        raise ValueError("workers must be >= 1")
    hashes = [point.config_hash() for point in points]

    if store is not None and not isinstance(store, ResultStore):
        store = ResultStore(store)
    stored: dict[str, dict] = {}
    if store is not None:
        stored = {
            key: record
            for key, record in store.load().items()
            if record.get("version") == EVAL_VERSION
        }

    resolved: dict[str, dict] = {}
    pending: list[SweepPoint] = []
    memo_only: list[dict] = []  # memo hits the store has not seen yet
    from_memo = from_store = 0
    for point, key in zip(points, hashes):
        if key in resolved:
            continue
        if key in _MEMO:
            resolved[key] = _MEMO[key]
            from_memo += 1
            if store is not None and key not in stored:
                memo_only.append(_MEMO[key])
        elif key in stored:
            resolved[key] = stored[key]
            from_store += 1
        else:
            resolved[key] = {}  # placeholder: claims the hash for dedup
            pending.append(point)

    if pending:
        if workers > 1 and len(pending) > 1:
            chunk = max(1, min(chunk_size, math.ceil(len(pending) / workers)))
            with _pool_context().Pool(workers) as pool:
                fresh = pool.map(evaluate_point, pending, chunksize=chunk)
        else:
            fresh = [evaluate_point(point) for point in pending]
        for record in fresh:
            resolved[record["hash"]] = record
            _MEMO[record["hash"]] = record
    else:
        fresh = []
    if store is not None and (fresh or memo_only):
        store.append(fresh + memo_only)

    return SweepResult(
        records=[resolved[key] for key in hashes],
        evaluated=len(pending),
        from_store=from_store,
        from_memo=from_memo,
    )


@dataclass
class DSEEngine:
    """Reusable engine configuration: store + parallelism settings."""

    store: ResultStore | str | os.PathLike | None = None
    workers: int = 1
    chunk_size: int = 32

    def run(self, sweep: SweepSpec | Iterable[SweepPoint]) -> SweepResult:
        return run_sweep(
            sweep,
            store=self.store,
            workers=self.workers,
            chunk_size=self.chunk_size,
        )
