"""The streaming, batched design-space-exploration engine.

``iter_sweep`` is the primitive: it resolves every unique point of a
sweep against three cache tiers -- the per-process memo, an optional
persistent store (JSONL or SQLite), and finally a cold evaluation --
and yields a
:class:`SweepRecord` per unique config *as it completes*.  Cache hits
stream out immediately; cold evaluations follow in completion order
(``imap_unordered`` over a ``multiprocessing`` pool when ``workers >
1``), each appended to the store the moment it lands so an interrupted
run keeps its partial results.  Callers can render partial Pareto
frontiers or pipe records downstream without waiting for the sweep to
finish.

``run_sweep`` is the batch API, reimplemented on top of the stream: it
drains the generator and returns records in point order plus per-tier
hit counts.
"""

from __future__ import annotations

import contextlib
import math
import multiprocessing
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator

from ..obs.metrics import get_registry
from .evaluate import _MEMO, EVAL_VERSION, evaluate_point, evaluate_points
from .spec import SweepPoint, SweepSpec
from .store import ResultStoreBase, open_store

__all__ = ["SweepRecord", "SweepResult", "DSEEngine", "iter_sweep", "run_sweep"]

# Tier counts are accumulated in plain locals on the hot path and
# flushed to the registry once per iter_sweep call (its finally), so
# instrumentation costs one dict update per *sweep*, not per record --
# the obs-overhead benchmark gates this at <=5%.
_METRICS = get_registry()
_EVAL_POINTS = _METRICS.counter(
    "repro_eval_points_total",
    "Sweep points resolved, by tier (memo, store, evaluated).",
    labelnames=("tier",),
)
_EVAL_CHUNK_SECONDS = _METRICS.histogram(
    "repro_eval_chunk_seconds",
    "Latency of one vectorized evaluation chunk (serial in-process path).",
)


@dataclass(frozen=True)
class SweepRecord:
    """One streamed result: a unique config resolved through some tier."""

    index: int  # position of the first point with this hash in the sweep
    point: SweepPoint
    record: dict = field(repr=False)
    source: str  # "memo" | "store" | "evaluated"

    @property
    def hash(self) -> str:
        return self.record["hash"]


@dataclass
class SweepResult:
    """Outcome of one engine run."""

    records: list[dict] = field(repr=False)
    evaluated: int  # unique points simulated cold this run
    from_store: int  # unique points served from the persistent store
    from_memo: int  # unique points served from the in-process memo

    def __len__(self) -> int:
        return len(self.records)

    @property
    def unique_points(self) -> int:
        return self.evaluated + self.from_store + self.from_memo

    def summary(self) -> str:
        return (
            f"{len(self.records)} points ({self.unique_points} unique): "
            f"{self.evaluated} evaluated, {self.from_store} store hits, "
            f"{self.from_memo} memo hits"
        )


def _pool_context():
    # fork shares the already-imported simulator with workers -- but
    # forking a multi-threaded process (e.g. a sweep running inside a
    # `repro serve` handler thread) copies other threads' locks in
    # whatever state they are in and can deadlock a child, so fork is
    # only picked while the process is single-threaded.  Threaded
    # processes use spawn explicitly (the platform default may still
    # be fork); platforms without either fall back to their default.
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods and threading.active_count() == 1:
        return multiprocessing.get_context("fork")
    if "spawn" in methods:
        return multiprocessing.get_context("spawn")
    return multiprocessing.get_context()


def _lowered_chunks(
    points: list[SweepPoint], chunk_size: int
) -> list[list[SweepPoint]]:
    """Split pending points into vectorizable work units.

    Points are grouped by lowered-workload key -- (kind, workload,
    batch, policy) -- so every chunk shares one
    :class:`~repro.sim.lowered.LoweredNetwork` and evaluates as a single
    batch of array expressions; oversized groups split at ``chunk_size``
    so a worker pool still load-balances.  Group order follows first
    appearance, keeping serial evaluation deterministic.
    """
    groups: dict[tuple, list[SweepPoint]] = {}
    for point in points:
        key = (point.kind, point.workload, point.batch, point.policy.lower())
        groups.setdefault(key, []).append(point)
    chunks = []
    for group in groups.values():
        for start in range(0, len(group), chunk_size):
            chunks.append(group[start : start + chunk_size])
    return chunks


def iter_sweep(
    sweep: SweepSpec | Iterable[SweepPoint],
    store: ResultStoreBase | str | os.PathLike | None = None,
    workers: int = 1,
    chunk_size: int = 32,
    vectorize: bool = True,
    should_cancel: Callable[[], bool] | None = None,
) -> Iterator[SweepRecord]:
    """Stream a sweep's records in completion order, one per unique config.

    Memo and store hits yield first (they are already complete); cold
    evaluations follow as the serial loop or the worker pool finishes
    them.  Fresh records -- and memo hits the store has not seen -- are
    appended to the store as they are yielded, so a consumer that stops
    early (or crashes) leaves a store warm up to that point.  An empty
    sweep, e.g. an empty shard of a fine partition, yields nothing.

    With ``vectorize`` (the default) cold points are evaluated in
    lowered-workload chunks through the numpy evaluator -- workers
    receive whole chunks instead of single points.  ``vectorize=False``
    is the scalar escape hatch; records are bit-identical either way.

    ``should_cancel`` is polled at record boundaries -- after a record
    is appended and yielded, before the next one is touched.  When it
    turns true the generator returns early: every record already
    yielded is fully persisted, nothing half-written follows, and a
    worker pool mid-chunk is torn down on exit.  The sweep-service job
    queue uses this for cooperative ``POST /jobs/{id}/cancel``.
    """
    points = list(sweep.points) if isinstance(sweep, SweepSpec) else list(sweep)
    if workers < 1:
        raise ValueError("workers must be >= 1")

    def cancelled() -> bool:
        return should_cancel is not None and should_cancel()

    if store is not None and not isinstance(store, ResultStoreBase):
        store = open_store(store)
    stored: dict[str, dict] = {}
    if store is not None:
        # Only the sweep's own hashes, only at the current version: the
        # JSONL backend answers from a full load, the SQLite backend
        # from an indexed point lookup -- a huge warm store costs time
        # proportional to the sweep, not the store.
        unique = list(dict.fromkeys(point.config_hash() for point in points))
        stored = store.records_for(unique, version=EVAL_VERSION)

    # One held-open append handle for the whole stream: each completed
    # record is flushed to disk without a file open (or, on gzipped
    # stores, a fresh gzip member) per record.
    sink = store.appender() if store is not None else contextlib.nullcontext()
    tiers = {"memo": 0, "store": 0, "evaluated": 0}
    try:
        with sink as persist:
            seen: set[str] = set()
            pending: list[tuple[int, SweepPoint]] = []
            for index, point in enumerate(points):
                if cancelled():
                    return
                key = point.config_hash()
                if key in seen:
                    continue
                seen.add(key)
                if key in _MEMO:
                    if persist is not None and key not in stored:
                        persist(_MEMO[key])
                    tiers["memo"] += 1
                    yield SweepRecord(index, point, _MEMO[key], "memo")
                elif key in stored:
                    # A store hit warms the in-process memo: the next
                    # sweep over this config is served without touching
                    # the store.
                    _MEMO[key] = stored[key]
                    tiers["store"] += 1
                    yield SweepRecord(index, point, stored[key], "store")
                else:
                    pending.append((index, point))

            if not pending or cancelled():
                return
            by_hash = {
                point.config_hash(): (index, point) for index, point in pending
            }

            def _emit(record: dict) -> SweepRecord:
                _MEMO[record["hash"]] = record
                if persist is not None:
                    persist(record)
                index, point = by_hash[record["hash"]]
                tiers["evaluated"] += 1
                return SweepRecord(index, point, record, "evaluated")

            pending_points = [point for _, point in pending]
            if vectorize:
                chunks = _lowered_chunks(pending_points, chunk_size)
                if workers > 1 and len(chunks) > 1:
                    # An early return inside the `with` tears the pool
                    # down (terminate), so a cancelled sweep does not
                    # burn the remaining chunks.
                    with _pool_context().Pool(workers) as pool:
                        for records in pool.imap_unordered(
                            evaluate_points, chunks
                        ):
                            for record in records:
                                yield _emit(record)
                                if cancelled():
                                    return
                else:
                    for chunk in chunks:
                        if cancelled():
                            return
                        chunk_started = time.monotonic()
                        records = evaluate_points(chunk)
                        _EVAL_CHUNK_SECONDS.observe(
                            time.monotonic() - chunk_started
                        )
                        for record in records:
                            yield _emit(record)
                            if cancelled():
                                return
            elif workers > 1 and len(pending) > 1:
                chunk = max(
                    1, min(chunk_size, math.ceil(len(pending) / workers))
                )
                with _pool_context().Pool(workers) as pool:
                    results = pool.imap_unordered(
                        evaluate_point,
                        pending_points,
                        chunksize=chunk,
                    )
                    for record in results:
                        yield _emit(record)
                        if cancelled():
                            return
            else:
                for point in pending_points:
                    if cancelled():
                        return
                    yield _emit(evaluate_point(point))
    finally:
        # One registry touch per tier per sweep (never per record);
        # fires on normal exhaustion, cancellation, errors, and early
        # generator close alike.
        for tier, count in tiers.items():
            if count:
                _EVAL_POINTS.inc(count, tier=tier)


def run_sweep(
    sweep: SweepSpec | Iterable[SweepPoint],
    store: ResultStoreBase | str | os.PathLike | None = None,
    workers: int = 1,
    chunk_size: int = 32,
    vectorize: bool = True,
) -> SweepResult:
    """Evaluate a sweep through the memo -> store -> simulate tiers."""
    points = list(sweep.points) if isinstance(sweep, SweepSpec) else list(sweep)
    if not points:
        raise ValueError("empty sweep")
    hashes = [point.config_hash() for point in points]

    resolved: dict[str, dict] = {}
    counts = {"memo": 0, "store": 0, "evaluated": 0}
    stream = iter_sweep(
        points,
        store=store,
        workers=workers,
        chunk_size=chunk_size,
        vectorize=vectorize,
    )
    for sweep_record in stream:
        resolved[sweep_record.hash] = sweep_record.record
        counts[sweep_record.source] += 1

    return SweepResult(
        records=[resolved[key] for key in hashes],
        evaluated=counts["evaluated"],
        from_store=counts["store"],
        from_memo=counts["memo"],
    )


@dataclass
class DSEEngine:
    """Reusable engine configuration: store + parallelism settings."""

    store: ResultStoreBase | str | os.PathLike | None = None
    workers: int = 1
    chunk_size: int = 32
    vectorize: bool = True

    def run(self, sweep: SweepSpec | Iterable[SweepPoint]) -> SweepResult:
        return run_sweep(
            sweep,
            store=self.store,
            workers=self.workers,
            chunk_size=self.chunk_size,
            vectorize=self.vectorize,
        )

    def iter_sweep(
        self, sweep: SweepSpec | Iterable[SweepPoint]
    ) -> Iterator[SweepRecord]:
        return iter_sweep(
            sweep,
            store=self.store,
            workers=self.workers,
            chunk_size=self.chunk_size,
            vectorize=self.vectorize,
        )
