"""Hash-partitioned JSONL store: N part files under one manifest.

A single JSONL file serves a million records only by parsing all of
them for every operation, and compacting it rewrites the whole store.
:class:`PartitionedStore` spreads records across ``parts`` hash-range
JSONL part files inside one directory::

    results.parts/
        manifest.json       # format, parts, per-part line/live counts
        part-0000.jsonl     # records whose hash falls in range 0
        part-0001.jsonl
        ...

Each config hash maps to exactly one part by a *monotone* hash-range
rule (see :func:`part_index`): every key in ``part-0000`` sorts before
every key in ``part-0001``, and so on.  That ordering is what makes the
layout pay off at scale:

* point lookups (:meth:`~repro.dse.store.ResultStoreBase.records_for`)
  parse only the parts that hold the requested hashes;
* keyset pagination (:meth:`~repro.dse.store.ResultStoreBase.iter_page`)
  streams parts in order -- a full paginated dump parses each part once
  and holds one part in memory, instead of re-parsing the whole store
  per page;
* compaction rewrites only the parts that need it.  The manifest tracks
  per-part ``lines`` (record lines in the file) and ``live``
  (surviving records) counts, so the stale fraction of each part is
  known without parsing it.  Bulk appends keep the counts exact (they
  resolve against the part anyway, skipping stale and duplicate
  writes); streamed appends bump them optimistically and the next
  compaction or bulk append recounts.  The compaction policy
  (:meth:`PartitionedStore.compact_stale_parts`, applied automatically
  after appends when ``compact_threshold`` is set) rewrites exactly
  the parts whose stale fraction exceeds the threshold, keeping every
  resolution survivor -- unlike full
  :meth:`~repro.dse.store.ResultStoreBase.compact`, it never drops
  old-version records.

Every part is a plain :class:`~repro.dse.store.ResultStore`, so torn
tails from crashed appends are tolerated per part, part rewrites are
atomic (temp file + rename), and the shared resolution rule --
version-aware last-write-wins -- applies unchanged.  Gzip compression
is a single-file JSONL concept and is rejected like the SQLite
backend does.  :func:`~repro.dse.store.open_store` selects this
backend for any existing directory, or a fresh path with a ``.parts``
suffix.
"""

from __future__ import annotations

import hashlib
import json
import os
from bisect import bisect_right
from contextlib import ExitStack, contextmanager
from functools import lru_cache
from pathlib import Path
from typing import Callable, Iterable, Iterator, Mapping

from .store import ResultStore, ResultStoreBase, _keyed, _supersedes

__all__ = ["PartitionedStore", "part_index", "DEFAULT_PARTS"]

MANIFEST_NAME = "manifest.json"

#: Default part-file count for fresh stores.  16 parts keep a 10^6
#: record store at ~60k records per part -- small enough that loading
#: or rewriting one part is cheap -- without scattering small stores
#: across hundreds of files.
DEFAULT_PARTS = 16

#: Default stale-line fraction past which a part is rewritten by the
#: append-time compaction policy (``compact_threshold=None`` disables).
DEFAULT_COMPACT_THRESHOLD = 0.5

#: How many leading bytes of a key the range rule ranks on.  Config
#: hashes are 64 hex chars; 8 bytes of prefix splits them far finer
#: than any realistic part count.
_PREFIX_BYTES = 8


def _key_rank(key: str) -> int:
    """A monotone integer rank: ``k1 <= k2`` implies rank order.

    Big-endian value of the key's first UTF-8 bytes, zero-padded --
    UTF-8 byte order preserves code-point order, so ranks sort exactly
    like Python strings (ties only between keys sharing the full
    prefix, which land in the same part).
    """
    raw = key.encode("utf-8", "surrogatepass")[:_PREFIX_BYTES]
    return int.from_bytes(raw.ljust(_PREFIX_BYTES, b"\0"), "big")


@lru_cache(maxsize=64)
def _boundaries(parts: int) -> tuple[int, ...]:
    # Boundary i is the rank of the *hex string* at i/parts of the
    # sha-256 key space: hex config hashes then spread uniformly
    # across parts, while arbitrary keys still map monotonically
    # (everything above "f..." lands in the last part).
    width = 2 * _PREFIX_BYTES
    space = 16**width
    return tuple(
        _key_rank(format((index * space) // parts, f"0{width}x"))
        for index in range(1, parts)
    )


def part_index(key: str, parts: int) -> int:
    """The part a key belongs to: contiguous, monotone hash ranges.

    Monotone means every key in part ``i`` sorts strictly before every
    key in part ``i + 1``, so streaming parts in index order yields
    records in global hash order -- the property keyset pagination
    leans on.  Boundaries split the hex key space evenly, so sha-256
    config hashes balance uniformly.
    """
    if parts < 1:
        raise ValueError("parts must be >= 1")
    if parts == 1:
        return 0
    return bisect_right(_boundaries(parts), _key_rank(key))


def _resolve_part(part: ResultStore) -> tuple[int, dict[str, dict]]:
    """One part's parseable line count and resolved survivors."""
    lines = 0
    current: dict[str, dict] = {}
    for record in part.iter_lines():
        lines += 1
        key = record["hash"]
        if key not in current or _supersedes(record, current[key]):
            current[key] = record
    return lines, current


def _stale_fraction(entry: Mapping) -> float:
    lines = entry.get("lines", 0)
    if lines <= 0:
        return 0.0
    return max(0, lines - entry.get("live", 0)) / lines


class PartitionedStore(ResultStoreBase):
    """A directory of hash-range JSONL parts behind one manifest."""

    backend = "partitioned"

    def __init__(
        self,
        path: str | os.PathLike,
        parts: int = DEFAULT_PARTS,
        compact_threshold: float | None = DEFAULT_COMPACT_THRESHOLD,
    ):
        super().__init__(path)
        if parts < 1:
            raise ValueError("parts must be >= 1")
        if compact_threshold is not None and not (
            0 <= compact_threshold <= 1
        ):
            raise ValueError("compact_threshold must be in [0, 1] or None")
        #: Used only when creating a fresh store; an existing
        #: manifest's part count always wins (the routing of records
        #: already on disk depends on it).
        self._requested_parts = int(parts)
        self.compact_threshold = compact_threshold
        self._part_cache: dict[int, ResultStore] = {}

    # -- manifest -------------------------------------------------------
    @property
    def _manifest_path(self) -> Path:
        return self.path / MANIFEST_NAME

    def exists(self) -> bool:
        return self._manifest_path.exists()

    @property
    def parts(self) -> int:
        manifest = self._read_manifest()
        return (
            self._requested_parts if manifest is None else manifest["parts"]
        )

    def _read_manifest(self) -> dict | None:
        if self.path.exists() and not self.path.is_dir():
            raise ValueError(
                f"{self.path} is not a partitioned store (expected a "
                "store directory; open the file with the jsonl or "
                "sqlite backend, or pick a fresh path)"
            )
        try:
            raw = self._manifest_path.read_text(encoding="utf-8")
        except OSError:
            return None
        manifest = json.loads(raw)  # JSONDecodeError is a ValueError
        parts = int(manifest.get("parts") or 0)
        if parts < 1:
            raise ValueError(
                f"{self._manifest_path}: invalid manifest "
                f"(parts={manifest.get('parts')!r})"
            )
        manifest["parts"] = parts
        counts = [
            {"lines": int(entry.get("lines", 0)), "live": int(entry.get("live", 0))}
            for entry in (manifest.get("counts") or [])[:parts]
        ]
        counts += [{"lines": 0, "live": 0}] * (parts - len(counts))
        manifest["counts"] = counts
        return manifest

    def _ensure_manifest(self) -> dict:
        manifest = self._read_manifest()
        if manifest is not None:
            return manifest
        self.path.mkdir(parents=True, exist_ok=True)
        manifest = {
            "format": 1,
            "backend": self.backend,
            "parts": self._requested_parts,
            "scheme": {
                "kind": "hex-range-byte-prefix",
                "prefix_bytes": _PREFIX_BYTES,
            },
            "counts": [
                {"lines": 0, "live": 0}
                for _ in range(self._requested_parts)
            ],
        }
        self._write_manifest(manifest)
        return manifest

    def _write_manifest(self, manifest: dict) -> None:
        # Atomic like part rewrites: a crash mid-write leaves the old
        # manifest (counts may lag reality, which only skews the
        # compaction-policy estimate -- loads never read the counts).
        tmp = self._manifest_path.with_name(MANIFEST_NAME + ".tmp")
        tmp.write_text(
            json.dumps(manifest, sort_keys=True) + "\n", encoding="utf-8"
        )
        os.replace(tmp, self._manifest_path)

    # -- parts ----------------------------------------------------------
    def _part(self, index: int) -> ResultStore:
        part = self._part_cache.get(index)
        if part is None:
            part = ResultStore(self.path / f"part-{index:04d}.jsonl")
            self._part_cache[index] = part
        return part

    def _parts_on_disk(self) -> Iterator[tuple[int, ResultStore]]:
        """Existing parts in index (= hash) order, tolerant of a lost
        manifest: read paths glob the directory instead of trusting
        counts, so every record that landed is always served."""
        if not self.path.is_dir():
            if self.path.exists():
                # Forced onto a regular file: reading it as a store
                # directory would report an empty store -- hard error,
                # matching the other backends' mismatch handling.
                self._read_manifest()
            return
        for path in sorted(self.path.glob("part-*.jsonl")):
            stem = path.name[len("part-") : -len(".jsonl")]
            if stem.isdigit():
                yield int(stem), self._part(int(stem))

    # -- reads ----------------------------------------------------------
    def load(self) -> dict[str, dict]:
        records: dict[str, dict] = {}
        for _, part in self._parts_on_disk():
            for key, record in part.load().items():
                # Keys are disjoint across parts by construction;
                # resolving anyway keeps a tampered or hand-merged
                # store consistent with JSONL load semantics.
                if key not in records or _supersedes(record, records[key]):
                    records[key] = record
        return records

    def iter_lines(self) -> Iterator[dict]:
        for _, part in self._parts_on_disk():
            yield from part.iter_lines()

    def iter_records(self, version: int | None = None) -> Iterator[dict]:
        """Stream survivors one part at a time (memory: one part)."""
        for _, part in self._parts_on_disk():
            for record in part.load().values():
                if version is None or record.get("version", 0) == version:
                    yield record

    def iter_page(
        self,
        after: str | None = None,
        limit: int | None = None,
        version: int | None = None,
    ) -> Iterator[dict]:
        """Keyset page by walking parts in hash-range order.

        Parts before the cursor's part are skipped without opening
        them; a full paginated dump therefore parses each part exactly
        once across all pages, holding one resolved part in memory --
        not the store, and not a re-parse of it per page.
        """
        if limit is not None and limit < 1:
            raise ValueError("limit must be >= 1")
        manifest = self._read_manifest()
        if manifest is None:
            return
        start = 0
        if after is not None:
            start = part_index(after, manifest["parts"])
        remaining = limit
        for index, part in self._parts_on_disk():
            if index < start:
                continue
            records = part.load()
            for key in sorted(records):
                if after is not None and key <= after:
                    continue
                record = records[key]
                if (
                    version is not None
                    and record.get("version", 0) != version
                ):
                    continue
                yield record
                if remaining is not None:
                    remaining -= 1
                    if remaining <= 0:
                        return

    def records_for(
        self, hashes: Iterable[str], version: int | None = None
    ) -> dict[str, dict]:
        """Point lookups parse only the parts holding requested hashes."""
        keys = list(dict.fromkeys(hashes))
        manifest = self._read_manifest() if keys else None
        if not keys or manifest is None:
            return {}
        parts = manifest["parts"]
        grouped: dict[int, list[str]] = {}
        for key in keys:
            grouped.setdefault(part_index(key, parts), []).append(key)
        out: dict[str, dict] = {}
        for index, part_keys in grouped.items():
            out.update(
                self._part(index).records_for(part_keys, version=version)
            )
        return out

    def hashes(self, version: int | None = None) -> set[str]:
        found: set[str] = set()
        for _, part in self._parts_on_disk():
            found |= part.hashes(version=version)
        return found

    def __contains__(self, config_hash: str) -> bool:
        manifest = self._read_manifest()
        if manifest is None:
            return False
        part = self._part(part_index(config_hash, manifest["parts"]))
        return config_hash in part.load()

    def change_token(self) -> tuple | None:
        """Manifest fingerprint: every API write rewrites the manifest.

        Appends, merges, and compactions all end by writing updated
        counts (a no-change append still bumps the manifest mtime), so
        the manifest's stat + content hash moves with every write this
        API makes -- without fingerprinting N part files per check.
        A writer bypassing the API and editing part files in place is
        outside the contract, same as editing a SQLite file's pages.
        """
        try:
            stat = self._manifest_path.stat()
            blob = self._manifest_path.read_bytes()
        except OSError:
            return None
        return (
            stat.st_mtime_ns,
            stat.st_size,
            hashlib.sha256(blob).hexdigest(),
        )

    def stats(self) -> dict:
        exists = self.exists()
        size = 0
        manifest = None
        if exists:
            manifest = self._read_manifest()
            try:
                size = self._manifest_path.stat().st_size
                for _, part in self._parts_on_disk():
                    if part.exists():
                        size += part.path.stat().st_size
            except OSError:
                pass
        total_lines = stale_lines = 0
        for entry in (manifest or {}).get("counts", []):
            total_lines += entry["lines"]
            stale_lines += max(0, entry["lines"] - entry["live"])
        return {
            "backend": self.backend,
            "path": str(self.path),
            "exists": exists,
            "records": len(self) if exists else 0,
            "size_bytes": size,
            "gzipped": False,
            "parts": manifest["parts"] if manifest else self._requested_parts,
            "total_lines": total_lines,
            "stale_lines": stale_lines,
        }

    # -- writes ---------------------------------------------------------
    def append(self, records: Iterable[dict]) -> int:
        """Route records to their parts; returns how many changed.

        Same contract as every backend: keyless records are skipped
        with a warning, records superseded by stored (or same-batch)
        ones are not written, and the return value counts lines that
        actually landed.  Each touched part is resolved once, which
        also makes the manifest's ``lines``/``live`` counts exact; the
        compaction policy then rewrites any touched part whose stale
        fraction exceeds ``compact_threshold``.
        """
        batch = [record for record in records if _keyed(record, self.path)]
        if not batch:
            return 0
        manifest = self._ensure_manifest()
        parts = manifest["parts"]
        grouped: dict[int, list[dict]] = {}
        for record in batch:
            grouped.setdefault(
                part_index(record["hash"], parts), []
            ).append(record)
        counts = manifest["counts"]
        written = 0
        for index in sorted(grouped):
            wrote, lines, live = self._append_part(index, grouped[index])
            written += wrote
            counts[index] = {"lines": lines, "live": live}
        self._write_manifest(manifest)
        if self.compact_threshold is not None:
            victims = [
                index
                for index in sorted(grouped)
                if _stale_fraction(counts[index]) > self.compact_threshold
            ]
            if victims:
                self._compact_parts(manifest, victims)
        return written

    def _append_part(
        self, index: int, group: list[dict]
    ) -> tuple[int, int, int]:
        """Append one part's records; returns (written, lines, live)."""
        part = self._part(index)
        lines, current = _resolve_part(part)
        to_write: list[dict] = []
        for record in group:
            key = record["hash"]
            prev = current.get(key)
            if prev is not None and not _supersedes(record, prev):
                continue
            current[key] = record
            to_write.append(record)
        if to_write:
            part.path.parent.mkdir(parents=True, exist_ok=True)
            with part._open_append() as handle:
                for record in to_write:
                    handle.write(json.dumps(record, sort_keys=True) + "\n")
        return len(to_write), lines + len(to_write), len(current)

    @contextmanager
    def appender(self) -> Iterator[Callable[[dict], None]]:
        """Streaming writes, one held-open handle per touched part.

        Flush-per-record like the JSONL appender (each part's appender
        does the flushing).  No stale resolution on this path -- that
        would cost a part parse per record -- so the manifest's
        ``live`` counts are bumped optimistically and corrected by the
        next bulk append or compaction of each part.  Nothing is
        created until something is written.
        """
        writes: dict[int, int] = {}
        state: dict[str, int] = {}
        try:
            with ExitStack() as stack:
                writers: dict[int, Callable[[dict], None]] = {}

                def write(record: dict) -> None:
                    if not _keyed(record, self.path):
                        return
                    if "parts" not in state:
                        state["parts"] = self._ensure_manifest()["parts"]
                    index = part_index(record["hash"], state["parts"])
                    writer = writers.get(index)
                    if writer is None:
                        writer = stack.enter_context(
                            self._part(index).appender()
                        )
                        writers[index] = writer
                    writer(record)
                    writes[index] = writes.get(index, 0) + 1

                yield write
        finally:
            if writes:
                manifest = self._ensure_manifest()
                counts = manifest["counts"]
                for index, count in writes.items():
                    entry = counts[index]
                    entry["lines"] += count
                    entry["live"] = min(
                        entry["live"] + count, entry["lines"]
                    )
                self._write_manifest(manifest)

    def _replace_all(
        self, records: Iterable[dict], gzip: bool | None = None
    ) -> None:
        if gzip:
            raise ValueError("partitioned stores do not support gzip")
        manifest = self._ensure_manifest()
        parts = manifest["parts"]
        grouped: dict[int, list[dict]] = {
            index: [] for index in range(parts)
        }
        for record in records:
            grouped[part_index(record["hash"], parts)].append(record)
        counts = []
        for index in range(parts):
            part = self._part(index)
            group = grouped[index]
            if group:
                part._replace_all(group, gzip=False)
            else:
                part.path.unlink(missing_ok=True)
            counts.append({"lines": len(group), "live": len(group)})
        # Drop stray parts outside the manifest's range (hand-copied
        # files): a full replace must define the store's entire content.
        for index, part in list(self._parts_on_disk()):
            if index >= parts:
                part.path.unlink(missing_ok=True)
        manifest["counts"] = counts
        self._write_manifest(manifest)

    def merge(
        self,
        sources: Iterable["ResultStoreBase | Mapping | str | os.PathLike"],
        gzip: bool | None = None,
    ) -> int:
        if gzip:
            raise ValueError("partitioned stores do not support gzip")
        return super().merge(sources, gzip=None)

    # -- compaction -----------------------------------------------------
    def compact(
        self, gzip: bool | None = None, drop_stale: bool = True
    ) -> tuple[int, int]:
        """Rewrite every part; returns ``(kept, dropped)`` line counts.

        Same semantics as the single-file backends: one line per hash
        (the resolution survivor), and with ``drop_stale`` only records
        at the current ``EVAL_VERSION``.  Each part rewrite is atomic;
        the manifest's counts come out exact.
        """
        if gzip:
            raise ValueError("partitioned stores do not support gzip")
        if not self.exists():
            return (0, 0)
        if drop_stale:
            from .evaluate import EVAL_VERSION
        manifest = self._ensure_manifest()
        known = {index for index, _ in self._parts_on_disk()}
        known.update(range(manifest["parts"]))
        kept = dropped = 0
        counts = [
            {"lines": 0, "live": 0} for _ in range(manifest["parts"])
        ]
        for index in sorted(known):
            part = self._part(index)
            lines, current = _resolve_part(part)
            if drop_stale:
                current = {
                    key: record
                    for key, record in current.items()
                    if record.get("version") == EVAL_VERSION
                }
            if current and index < manifest["parts"]:
                part._replace_all(current.values(), gzip=False)
                counts[index] = {
                    "lines": len(current),
                    "live": len(current),
                }
            elif current:
                # A stray part outside the manifest range: re-route its
                # survivors into the manifest's parts, then drop it.
                part.path.unlink(missing_ok=True)
                self.append(current.values())
                manifest = self._ensure_manifest()
                counts = manifest["counts"]
            else:
                part.path.unlink(missing_ok=True)
            kept += len(current)
            dropped += lines - len(current)
        manifest["counts"] = counts
        self._write_manifest(manifest)
        return (kept, dropped)

    def compact_stale_parts(self, threshold: float | None = None) -> dict:
        """The compaction policy: rewrite only stale-enough parts.

        A part qualifies when its manifest-estimated stale fraction
        (``1 - live/lines``) *exceeds* ``threshold`` (defaulting to the
        store's ``compact_threshold``).  Rewrites keep every resolution
        survivor whatever its version -- the policy reclaims dead
        lines, it never discards data -- and are atomic per part.
        Returns ``{"examined": n, "compacted": n, "dropped": lines}``.
        """
        if threshold is None:
            threshold = (
                DEFAULT_COMPACT_THRESHOLD
                if self.compact_threshold is None
                else self.compact_threshold
            )
        manifest = self._read_manifest()
        if manifest is None:
            return {"examined": 0, "compacted": 0, "dropped": 0}
        counts = manifest["counts"]
        victims = [
            index
            for index in range(manifest["parts"])
            if _stale_fraction(counts[index]) > threshold
        ]
        compacted, dropped = self._compact_parts(manifest, victims)
        return {
            "examined": manifest["parts"],
            "compacted": compacted,
            "dropped": dropped,
        }

    def _compact_parts(
        self, manifest: dict, indices: Iterable[int]
    ) -> tuple[int, int]:
        """Rewrite the given parts keeping all survivors; exact counts."""
        indices = sorted(set(indices))
        compacted = dropped = 0
        counts = manifest["counts"]
        for index in indices:
            part = self._part(index)
            lines, current = _resolve_part(part)
            if lines > len(current):
                if current:
                    part._replace_all(current.values(), gzip=False)
                else:
                    part.path.unlink(missing_ok=True)
                compacted += 1
                dropped += lines - len(current)
            counts[index] = {"lines": len(current), "live": len(current)}
        if indices:
            self._write_manifest(manifest)
        return compacted, dropped
