"""Point evaluation for the DSE engine.

``evaluate_point`` turns one :class:`~repro.dse.spec.SweepPoint` into a
flat, JSON-able *record*: the point's identity (hash + human-readable
keys) plus every aggregate metric the simulator produces.  Records are
what the engine memoizes, the store persists, and the queries consume.

The metrics are read off :class:`~repro.sim.simulator.NetworkResult`
(or :class:`~repro.baselines.gpu.GPUResult`) verbatim, so a record is
float-for-float identical to a direct simulation -- and because JSON
serialization of floats round-trips exactly, a record reloaded from the
store is bit-identical to the cold evaluation that produced it.
"""

from __future__ import annotations

from ..baselines.gpu import simulate_gpu
from ..sim.simulator import simulate_network
from .spec import SweepPoint, build_network, resolve_policy

__all__ = ["EVAL_VERSION", "evaluate_point", "evaluate_cached", "clear_memo"]

#: Bump whenever simulator or cost-model semantics change: stored records
#: carry the version and the engine ignores (and re-evaluates) stale ones.
EVAL_VERSION = 1

# Per-process memo of evaluated records, keyed by config hash.
_MEMO: dict[str, dict] = {}


def clear_memo() -> None:
    """Drop the in-process evaluation cache (tests and benchmarks)."""
    _MEMO.clear()


def evaluate_point(point: SweepPoint) -> dict:
    """Simulate one design point and return its record (no caching)."""
    network = build_network(point.workload, point.batch)
    resolve_policy(point.policy)(network)
    if point.kind == "gpu":
        result = simulate_gpu(network, point.gpu, precision=point.gpu_precision)
        metrics = {
            "total_seconds": result.total_seconds,
            "total_ops": result.total_ops,
            "ops_per_second": result.ops_per_second,
            "average_power_w": result.average_power_w,
            "total_energy_j": result.average_power_w * result.total_seconds,
            "perf_per_watt": result.perf_per_watt,
        }
    else:
        result = simulate_network(network, point.platform, point.memory)
        metrics = {
            "total_cycles": result.total_cycles,
            "total_seconds": result.total_seconds,
            "total_macs": result.total_macs,
            "total_traffic_bytes": result.total_traffic_bytes,
            "compute_energy_pj": result.compute_energy_pj,
            "sram_energy_pj": result.sram_energy_pj,
            "dram_energy_pj": result.dram_energy_pj,
            "uncore_energy_pj": result.uncore_energy_pj,
            "total_energy_pj": result.total_energy_pj,
            "total_energy_j": result.total_energy_j,
            "ops_per_second": result.ops_per_second,
            "average_power_w": result.average_power_w,
            "perf_per_watt": result.perf_per_watt,
            "memory_bound_fraction": result.memory_bound_fraction,
        }
    return {
        "hash": point.config_hash(),
        "version": EVAL_VERSION,
        "kind": point.kind,
        "workload": point.workload,
        "platform": point.target_name,
        "memory": point.memory.name if point.memory is not None else None,
        "policy": point.policy.lower(),
        "batch": point.batch,
        "metrics": metrics,
    }


def evaluate_cached(point: SweepPoint) -> dict:
    """Evaluate through the per-process memo."""
    key = point.config_hash()
    record = _MEMO.get(key)
    if record is None:
        record = evaluate_point(point)
        _MEMO[key] = record
    return record
