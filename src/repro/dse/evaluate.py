"""Point evaluation for the DSE engine.

``evaluate_point`` turns one :class:`~repro.dse.spec.SweepPoint` into a
flat, JSON-able *record*: the point's identity (hash + human-readable
keys) plus every aggregate metric the simulator produces.  Records are
what the engine memoizes, the store persists, and the queries consume.

``evaluate_points`` is the batched, vectorized sibling: it groups a
chunk of points by their lowered-workload key -- (workload, batch,
policy) -- lowers each group's network **once** into a
:class:`~repro.sim.lowered.LoweredNetwork`, and evaluates all of the
group's hardware points as numpy array expressions.  Records are
bit-identical to ``evaluate_point``'s (the equivalence and golden tests
pin this), just much cheaper to produce: a 1008-point grid typically
shares a few dozen lowered networks.

The metrics are read off :class:`~repro.sim.simulator.NetworkResult`
(or :class:`~repro.baselines.gpu.GPUResult`) verbatim, so a record is
float-for-float identical to a direct simulation -- and because JSON
serialization of floats round-trips exactly, a record reloaded from the
store is bit-identical to the cold evaluation that produced it.
"""

from __future__ import annotations

import functools
from typing import Sequence

from ..baselines.gpu import simulate_gpu
from ..hw import platforms as _platforms
from ..obs.metrics import get_registry
from ..sim import performance as _performance
from ..sim.lowered import LoweredNetwork, evaluate_lowered_many, lower_network
from ..sim.simulator import simulate_network
from . import spec as _spec
from .spec import SweepPoint, cached_network

__all__ = [
    "EVAL_VERSION",
    "evaluate_point",
    "evaluate_points",
    "evaluate_cached",
    "clear_memo",
    "clear_caches",
    "lowered_for",
]

#: Bump whenever simulator or cost-model semantics change: stored records
#: carry the version and the engine ignores (and re-evaluates) stale ones.
EVAL_VERSION = 1

# Per-process memo of evaluated records, keyed by config hash.
_MEMO: dict[str, dict] = {}


def clear_memo() -> None:
    """Drop the in-process evaluation cache (tests and benchmarks)."""
    _MEMO.clear()


def clear_caches() -> None:
    """Drop the record memo *and* every evaluation-path cache.

    ``clear_memo`` only forgets finished records; the evaluation path
    also memoizes network/policy builds, lowered IRs, per-spec
    multiplier/energy lookup tables, and factor pairs.  True-cold
    benchmarking (and tests that must observe first-fill behavior) go
    through this single hook instead of reaching into the private
    caches module by module.
    """
    clear_memo()
    lowered_for.cache_clear()
    _spec._cached_network.cache_clear()
    _spec._resolve_policy.cache_clear()
    _platforms._throughput_multiplier.cache_clear()
    _platforms._mac_energy_pj.cache_clear()
    _platforms._multiplier_table.cache_clear()
    _platforms._mac_energy_table.cache_clear()
    _performance.factor_pairs.cache_clear()


@functools.lru_cache(maxsize=512)
def lowered_for(workload: str, batch: int | None, policy: str) -> LoweredNetwork:
    """The cached lowered IR of a (workload, batch, policy) combination.

    Sized above the policy-axis working set: a quant-dse-shaped sweep
    multiplies (workload, batch) by generated per-layer policies (the
    policy-axis bench alone holds 168 distinct IRs), and an undersized
    LRU would evict cyclically and re-lower every warm pass.
    """
    return lower_network(cached_network(workload, batch, policy))


def _collect_evaluator(registry) -> None:
    """Collector: lowered-IR cache effectiveness + memo size, on scrape.

    Gauges rather than hot-path counters: ``lru_cache`` already tracks
    its own hit/miss totals, so the scrape just copies them out and the
    evaluation path pays nothing.
    """
    info = lowered_for.cache_info()
    lowered = registry.gauge(
        "repro_lowered_cache",
        "Lowered-IR lru_cache counters, by field.",
        labelnames=("field",),
    )
    lowered.set(info.hits, field="hits")
    lowered.set(info.misses, field="misses")
    lowered.set(info.currsize, field="size")
    registry.gauge(
        "repro_memo_records", "Records in the in-process eval memo."
    ).set(len(_MEMO))


get_registry().add_collector(_collect_evaluator, key="evaluator")


def _record(point: SweepPoint, metrics: dict) -> dict:
    return {
        "hash": point.config_hash(),
        "version": EVAL_VERSION,
        "kind": point.kind,
        "workload": point.workload,
        "platform": point.target_name,
        "memory": point.memory.name if point.memory is not None else None,
        "policy": point.policy.lower(),
        "batch": point.batch,
        "metrics": metrics,
    }


def _gpu_metrics(point: SweepPoint) -> dict:
    network = cached_network(point.workload, point.batch, point.policy)
    result = simulate_gpu(network, point.gpu, precision=point.gpu_precision)
    return {
        "total_seconds": result.total_seconds,
        "total_ops": result.total_ops,
        "ops_per_second": result.ops_per_second,
        "average_power_w": result.average_power_w,
        "total_energy_j": result.average_power_w * result.total_seconds,
        "perf_per_watt": result.perf_per_watt,
    }


def evaluate_point(point: SweepPoint) -> dict:
    """Simulate one design point, scalar path, and return its record.

    No record caching -- but the (workload, batch, policy) network build
    is shared through :func:`~repro.dse.spec.cached_network`, so repeated
    points of a sweep stop rebuilding identical networks.
    """
    if point.kind == "gpu":
        return _record(point, _gpu_metrics(point))
    network = cached_network(point.workload, point.batch, point.policy)
    result = simulate_network(network, point.platform, point.memory)
    metrics = {
        "total_cycles": result.total_cycles,
        "total_seconds": result.total_seconds,
        "total_macs": result.total_macs,
        "total_traffic_bytes": result.total_traffic_bytes,
        "compute_energy_pj": result.compute_energy_pj,
        "sram_energy_pj": result.sram_energy_pj,
        "dram_energy_pj": result.dram_energy_pj,
        "uncore_energy_pj": result.uncore_energy_pj,
        "total_energy_pj": result.total_energy_pj,
        "total_energy_j": result.total_energy_j,
        "ops_per_second": result.ops_per_second,
        "average_power_w": result.average_power_w,
        "perf_per_watt": result.perf_per_watt,
        "memory_bound_fraction": result.memory_bound_fraction,
    }
    return _record(point, metrics)


def evaluate_points(points: Sequence[SweepPoint]) -> list[dict]:
    """Evaluate a chunk of design points, vectorized, in input order.

    ASIC points are grouped by lowered-workload key; each group shares
    one :class:`~repro.sim.lowered.LoweredNetwork` and is evaluated as a
    batch of array expressions.  GPU points fall back to the scalar
    path.  Records are bit-identical to :func:`evaluate_point`.
    """
    records: list[dict | None] = [None] * len(points)
    groups: dict[tuple[str, int | None, str], list[int]] = {}
    for index, point in enumerate(points):
        if point.kind == "gpu":
            records[index] = evaluate_point(point)
        else:
            key = (point.workload, point.batch, point.policy.lower())
            groups.setdefault(key, []).append(index)
    for (workload, batch, policy), indices in groups.items():
        lowered = lowered_for(workload, batch, policy)
        metrics = evaluate_lowered_many(
            lowered,
            [(points[i].platform, points[i].memory) for i in indices],
        )
        for i, point_metrics in zip(indices, metrics):
            records[i] = _record(points[i], point_metrics)
    return records  # type: ignore[return-value]


def evaluate_cached(point: SweepPoint) -> dict:
    """Evaluate through the per-process memo."""
    key = point.config_hash()
    record = _MEMO.get(key)
    if record is None:
        record = evaluate_point(point)
        _MEMO[key] = record
    return record
