"""Queries over DSE records: Pareto frontiers, rankings, speedups."""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from ..sim.report import format_table, geomean

__all__ = [
    "metric",
    "pareto_frontier",
    "ParetoTracker",
    "top_k",
    "geomean_speedup",
    "attach_policy_metric",
    "accuracy_perf_frontier",
    "filter_records",
    "run_query",
    "render_records",
    "QUERY_NAMES",
]

DEFAULT_OBJECTIVES = ("total_seconds", "total_energy_j")


def metric(record: Mapping, name: str) -> float:
    """Read one metric off a record, with a helpful error."""
    try:
        return record["metrics"][name]
    except KeyError:
        have = sorted(record.get("metrics", {}))
        raise KeyError(f"record has no metric {name!r}; available: {have}")


def _signed(record: Mapping, objectives: Sequence[str], senses: Sequence[str]):
    """Objective vector with every component flipped to 'smaller is better'."""
    return tuple(
        metric(record, name) if sense == "min" else -metric(record, name)
        for name, sense in zip(objectives, senses)
    )


def _check_senses(
    objectives: Sequence[str], senses: Sequence[str] | None
) -> Sequence[str]:
    if senses is None:
        senses = ("min",) * len(objectives)
    if len(senses) != len(objectives):
        raise ValueError("need one sense per objective")
    for sense in senses:
        if sense not in ("min", "max"):
            raise ValueError(f"sense must be 'min' or 'max', got {sense!r}")
    return senses


def pareto_frontier(
    records: Iterable[Mapping],
    objectives: Sequence[str] = DEFAULT_OBJECTIVES,
    senses: Sequence[str] | None = None,
) -> list[Mapping]:
    """The non-dominated subset of ``records``.

    A record is dominated when another is no worse on every objective and
    strictly better on at least one.  Ties (identical vectors) all stay
    on the frontier.  Input order is preserved.
    """
    senses = _check_senses(objectives, senses)
    entries = [(record, _signed(record, objectives, senses)) for record in records]
    frontier = []
    for record, vec in entries:
        dominated = any(
            all(o <= v for o, v in zip(other, vec))
            and any(o < v for o, v in zip(other, vec))
            for _, other in entries
        )
        if not dominated:
            frontier.append(record)
    return frontier


class ParetoTracker:
    """Incrementally maintained Pareto frontier over streamed records.

    Feed records as they arrive (e.g. from ``iter_sweep``) and read
    :attr:`frontier` at any time for the frontier of everything seen so
    far.  After all records are fed, the frontier equals
    ``pareto_frontier(records)`` on the same input order: survivors
    keep their arrival order, and ties (identical objective vectors)
    all stay.
    """

    def __init__(
        self,
        objectives: Sequence[str] = DEFAULT_OBJECTIVES,
        senses: Sequence[str] | None = None,
    ):
        self.objectives = tuple(objectives)
        self.senses = tuple(_check_senses(self.objectives, senses))
        self._entries: list[tuple[Mapping, tuple]] = []
        self.seen = 0

    def add(self, record: Mapping) -> bool:
        """Offer one record; returns whether it joined the frontier."""
        self.seen += 1
        vec = _signed(record, self.objectives, self.senses)
        for _, other in self._entries:
            if all(o <= v for o, v in zip(other, vec)) and any(
                o < v for o, v in zip(other, vec)
            ):
                return False  # dominated by a current frontier member
        self._entries = [
            (rec, other)
            for rec, other in self._entries
            if not (
                all(v <= o for v, o in zip(vec, other))
                and any(v < o for v, o in zip(vec, other))
            )
        ]
        self._entries.append((record, vec))
        return True

    @property
    def frontier(self) -> list[Mapping]:
        return [record for record, _ in self._entries]

    def __len__(self) -> int:
        return len(self._entries)


def top_k(
    records: Iterable[Mapping], objective: str, k: int = 10, sense: str = "min"
) -> list[Mapping]:
    """The ``k`` best records by one metric."""
    (sense,) = _check_senses((objective,), (sense,))
    ordered = sorted(records, key=lambda r: _signed(r, (objective,), (sense,)))
    return ordered[: max(0, k)]


def _matches(record: Mapping, where: Mapping) -> bool:
    return all(record.get(key) == value for key, value in where.items())


def geomean_speedup(
    records: Iterable[Mapping],
    baseline: Mapping,
    candidate: Mapping,
    objective: str = "total_seconds",
) -> float:
    """Geomean of per-workload baseline/candidate ratios.

    ``baseline`` and ``candidate`` are field filters, e.g.
    ``{"platform": "BPVeC", "memory": "DDR4"}``; records are paired by
    (workload, policy, batch).  For time-like metrics the ratio
    baseline/candidate > 1 means the candidate is faster.
    """
    records = list(records)

    def select(where: Mapping) -> dict:
        picked: dict = {}
        for record in records:
            if not _matches(record, where):
                continue
            key = (record["workload"], record["policy"], record["batch"])
            if key in picked and picked[key] is not record:
                raise ValueError(
                    f"filter {dict(where)!r} is ambiguous for workload key {key}"
                )
            picked[key] = record
        return picked

    base, cand = select(baseline), select(candidate)
    common = [key for key in base if key in cand]
    if not common:
        raise ValueError("no common workloads between baseline and candidate")
    return geomean(
        metric(base[key], objective) / metric(cand[key], objective)
        for key in common
    )


def attach_policy_metric(
    records: Iterable[Mapping],
    values_by_policy: Mapping[str, float],
    name: str = "accuracy",
) -> list[dict]:
    """Join a per-policy value (e.g. searched accuracy) into records.

    Returns *copies* -- record dicts are shared with the engine memo and
    the store, so augmentation must never mutate them in place.  Every
    record's ``policy`` must have a value; a missing policy raises with
    the known keys listed.
    """
    augmented = []
    for record in records:
        policy = record.get("policy")
        if policy not in values_by_policy:
            raise KeyError(
                f"no {name} known for policy {policy!r}; "
                f"have {sorted(values_by_policy)}"
            )
        augmented.append(
            {
                **record,
                "metrics": {**record["metrics"], name: values_by_policy[policy]},
            }
        )
    return augmented


def accuracy_perf_frontier(
    records: Iterable[Mapping],
    accuracy_by_policy: Mapping[str, float],
    objective: str = "total_seconds",
    sense: str = "min",
) -> list[dict]:
    """Accuracy-vs-performance Pareto frontier of a policy-axis sweep.

    The co-exploration question: which (bitwidth policy, hardware
    point) pairs are worth keeping once both the policy's searched
    accuracy and the point's simulated performance count?  Joins
    ``accuracy_by_policy`` into the records (as metric ``"accuracy"``)
    and keeps the non-dominated set under (``objective`` at ``sense``,
    accuracy maximized).  Returned records carry the joined accuracy,
    so downstream rendering and queries see it as a regular metric.
    """
    augmented = attach_policy_metric(records, accuracy_by_policy, "accuracy")
    return pareto_frontier(
        augmented, objectives=(objective, "accuracy"), senses=(sense, "max")
    )


#: Query names `run_query` dispatches -- the server's /query/<name> routes.
QUERY_NAMES = ("pareto", "top-k", "accuracy-frontier")


def filter_records(
    records: Iterable[Mapping], where: Mapping | None = None
) -> list[Mapping]:
    """Records whose top-level fields equal every ``where`` entry.

    ``where={"workload": "LSTM", "memory": "DDR4"}`` keeps only that
    slice; ``None`` or an empty mapping keeps everything.  This is the
    shared pre-filter of every served query.
    """
    records = list(records)
    if where is None:
        return records
    if not isinstance(where, Mapping):
        # Type-check before the emptiness check: a falsy non-mapping
        # ([], "", 0) is a caller bug, not "no filter".
        raise ValueError(
            '"where" must be an object of {field: value} equality filters, '
            f"got {type(where).__name__}"
        )
    if not where:
        return records
    return [record for record in records if _matches(record, where)]


def run_query(
    records: Iterable[Mapping], query: str, params: Mapping | None = None
) -> list[Mapping]:
    """Dispatch one named reduction over records -- the served entry point.

    ``query`` is one of :data:`QUERY_NAMES`; ``params`` carries the
    query's keyword arguments plus an optional ``where`` equality
    filter applied first.  Unknown queries and unknown parameters raise
    (``KeyError`` / ``ValueError``), so a service can map them straight
    to a client error instead of silently ignoring a typo.
    """
    params = dict(params or {})
    records = filter_records(records, params.pop("where", None))
    if query == "pareto":
        objectives = params.pop("objectives", DEFAULT_OBJECTIVES)
        senses = params.pop("senses", None)
        # A bare string would iterate per character ("total_seconds" ->
        # 13 one-letter objectives) and fail with a baffling KeyError.
        if isinstance(objectives, str) or isinstance(senses, str):
            raise ValueError(
                '"objectives"/"senses" must be lists, not bare strings '
                '(top-k takes a singular "objective")'
            )
        result = pareto_frontier(
            records, objectives=tuple(objectives), senses=senses
        )
    elif query == "top-k":
        result = top_k(
            records,
            params.pop("objective", "total_seconds"),
            k=int(params.pop("k", 10)),
            sense=params.pop("sense", "min"),
        )
    elif query == "accuracy-frontier":
        accuracy = params.pop("accuracy_by_policy", None)
        if not isinstance(accuracy, Mapping) or not accuracy:
            raise ValueError(
                "accuracy-frontier needs a non-empty accuracy_by_policy "
                "mapping of {policy name: accuracy}"
            )
        result = accuracy_perf_frontier(
            records,
            accuracy,
            objective=params.pop("objective", "total_seconds"),
            sense=params.pop("sense", "min"),
        )
    else:
        raise KeyError(
            f"unknown query {query!r}; choose from {sorted(QUERY_NAMES)}"
        )
    if params:
        raise ValueError(f"unknown {query} parameters: {sorted(params)}")
    return result


def render_records(records: Sequence[Mapping]) -> str:
    """Plain-text table of records (the ``repro dse`` default output)."""
    rows = []
    for record in records:
        metrics = record["metrics"]
        rows.append(
            (
                record["workload"],
                record["platform"],
                record["memory"] or "-",
                record["policy"],
                record["batch"] if record["batch"] is not None else "-",
                metrics["total_seconds"] * 1e3,
                metrics["total_energy_j"] * 1e3,
                metrics["perf_per_watt"] / 1e9,
            )
        )
    return format_table(
        [
            "Workload",
            "Platform",
            "Memory",
            "Policy",
            "Batch",
            "Time (ms)",
            "Energy (mJ)",
            "GOPS/W",
        ],
        rows,
    )
