"""Batched, cached design-space exploration.

The paper's evaluation is a sweep: every figure fixes a bitwidth policy
and normalizes candidate (platform, memory) pairs against a reference
across the six workloads.  This package turns that pattern into a
reusable engine:

* :mod:`~repro.dse.spec` -- declarative sweep specs (grids or explicit
  point lists) that canonicalize to stable config hashes;
* :mod:`~repro.dse.evaluate` -- one-point evaluation producing flat,
  JSON-able records, memoized per process;
* :mod:`~repro.dse.store` / :mod:`~repro.dse.sqlite_store` /
  :mod:`~repro.dse.partitioned` -- persistent result stores keyed by
  config hash (append-only JSONL, SQLite with indexed point lookups
  for served warm paths, or hash-partitioned JSONL parts behind a
  manifest for 10^6+ records), picked by
  :func:`~repro.dse.store.open_store`; repeated sweeps skip finished
  points, per-shard stores merge into one (``merge``) and long-lived
  stores stay small (``compact``, optionally gzipped for single-file
  JSONL, per-part for partitioned);
* :mod:`~repro.dse.engine` -- ``iter_sweep``: memo -> store -> simulate
  resolution streamed in completion order with optional
  multiprocessing fan-out, and ``run_sweep``, the batch API on top;
* :mod:`~repro.dse.queries` -- Pareto frontier (batch and incremental),
  top-k, geomean-speedup, accuracy-vs-performance frontiers, and
  rendering over record sets;
* :mod:`~repro.dse.policies` -- bitwidth policies as first-class sweep
  axis values: hashable :class:`~repro.dse.policies.PolicySpec`
  per-layer assignments with self-describing ``perlayer-...`` names,
  plus the quant--hardware co-exploration driver
  (:func:`~repro.dse.policies.co_explore`, ``repro quant-dse``).

Sweeps partition across machines by hash range (``SweepSpec.shard``):
every process owns a disjoint slice of config hashes, evaluates it into
its own store, and the merged union is identical to the unsharded run.

Every figure driver (:mod:`repro.experiments.figures`), the scaling
study, and the ``repro dse`` CLI subcommand run on this engine.
"""

from .engine import DSEEngine, SweepRecord, SweepResult, iter_sweep, run_sweep
from .evaluate import (
    EVAL_VERSION,
    clear_caches,
    clear_memo,
    evaluate_cached,
    evaluate_point,
    evaluate_points,
    lowered_for,
)
from .policies import (
    PolicyAccuracy,
    PolicySpec,
    co_explore,
    policy_name,
    sensitivity_policies,
)
from .queries import (
    QUERY_NAMES,
    ParetoTracker,
    accuracy_perf_frontier,
    attach_policy_metric,
    filter_records,
    geomean_speedup,
    metric,
    pareto_frontier,
    render_records,
    run_query,
    top_k,
)
from .spec import (
    GPU_NAMES,
    MEMORY_NAMES,
    PLATFORM_NAMES,
    POLICY_NAMES,
    SweepPoint,
    SweepSpec,
    build_network,
    cached_network,
    expand_grid,
    resolve_gpu,
    resolve_memory,
    resolve_platform,
    resolve_policy,
    resolve_workload,
    shard_index,
)
from .partitioned import PartitionedStore
from .sqlite_store import SQLiteStore
from .store import ResultStore, ResultStoreBase, StoreWarning, open_store

__all__ = [
    "DSEEngine",
    "SweepRecord",
    "SweepResult",
    "iter_sweep",
    "run_sweep",
    "EVAL_VERSION",
    "clear_caches",
    "clear_memo",
    "evaluate_cached",
    "evaluate_point",
    "evaluate_points",
    "lowered_for",
    "PolicyAccuracy",
    "PolicySpec",
    "co_explore",
    "policy_name",
    "sensitivity_policies",
    "QUERY_NAMES",
    "ParetoTracker",
    "accuracy_perf_frontier",
    "attach_policy_metric",
    "filter_records",
    "geomean_speedup",
    "metric",
    "pareto_frontier",
    "render_records",
    "run_query",
    "top_k",
    "GPU_NAMES",
    "MEMORY_NAMES",
    "PLATFORM_NAMES",
    "POLICY_NAMES",
    "SweepPoint",
    "SweepSpec",
    "build_network",
    "cached_network",
    "expand_grid",
    "resolve_gpu",
    "resolve_memory",
    "resolve_platform",
    "resolve_policy",
    "resolve_workload",
    "shard_index",
    "PartitionedStore",
    "ResultStore",
    "ResultStoreBase",
    "SQLiteStore",
    "StoreWarning",
    "open_store",
]
