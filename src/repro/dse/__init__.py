"""Batched, cached design-space exploration.

The paper's evaluation is a sweep: every figure fixes a bitwidth policy
and normalizes candidate (platform, memory) pairs against a reference
across the six workloads.  This package turns that pattern into a
reusable engine:

* :mod:`~repro.dse.spec` -- declarative sweep specs (grids or explicit
  point lists) that canonicalize to stable config hashes;
* :mod:`~repro.dse.evaluate` -- one-point evaluation producing flat,
  JSON-able records, memoized per process;
* :mod:`~repro.dse.store` -- an append-only JSONL result store keyed by
  config hash, so repeated sweeps skip finished points;
* :mod:`~repro.dse.engine` -- ``run_sweep``: memo -> store -> simulate
  resolution with optional multiprocessing fan-out;
* :mod:`~repro.dse.queries` -- Pareto frontier, top-k, geomean-speedup
  and rendering over record sets.

Every figure driver (:mod:`repro.experiments.figures`), the scaling
study, and the ``repro dse`` CLI subcommand run on this engine.
"""

from .engine import DSEEngine, SweepResult, run_sweep
from .evaluate import EVAL_VERSION, clear_memo, evaluate_cached, evaluate_point
from .queries import (
    geomean_speedup,
    metric,
    pareto_frontier,
    render_records,
    top_k,
)
from .spec import (
    GPU_NAMES,
    MEMORY_NAMES,
    PLATFORM_NAMES,
    POLICY_NAMES,
    SweepPoint,
    SweepSpec,
    build_network,
    expand_grid,
    resolve_gpu,
    resolve_memory,
    resolve_platform,
    resolve_policy,
    resolve_workload,
)
from .store import ResultStore

__all__ = [
    "DSEEngine",
    "SweepResult",
    "run_sweep",
    "EVAL_VERSION",
    "clear_memo",
    "evaluate_cached",
    "evaluate_point",
    "geomean_speedup",
    "metric",
    "pareto_frontier",
    "render_records",
    "top_k",
    "GPU_NAMES",
    "MEMORY_NAMES",
    "PLATFORM_NAMES",
    "POLICY_NAMES",
    "SweepPoint",
    "SweepSpec",
    "build_network",
    "expand_grid",
    "resolve_gpu",
    "resolve_memory",
    "resolve_platform",
    "resolve_policy",
    "resolve_workload",
    "ResultStore",
]
