"""Bitwidth policies as first-class sweep-axis values.

The paper's core claim is that bit-parallel vector composability lets
the *same* datapath serve many bitwidth mixes, so the interesting design
question is joint: which bitwidth policy on which hardware point.  This
module makes arbitrary per-layer assignments sweepable:

* :class:`PolicySpec` -- a named, hashable per-layer bitwidth
  assignment.  Its identity is the **canonical name**
  ``perlayer-AxW-AxW-...`` (one ``activations x weights`` pair per
  weighted layer, in network order), which is self-describing: any
  process can rebuild the policy from the name alone, so specs travel
  across worker pools, result stores, and sweep-spec JSON as plain
  strings resolvable by :func:`~repro.dse.spec.resolve_policy`.
* :func:`sensitivity_policies` -- runs the greedy bitwidth search of
  :func:`repro.quant.sensitivity.assign_bitwidths` under a ladder of
  accuracy-drop budgets and returns one accuracy-annotated policy per
  budget (plus the all-``ladder[0]`` baseline).
* :func:`co_explore` -- the quant--hardware co-exploration driver behind
  ``repro quant-dse``: sensitivity search -> policy axis -> hardware
  sweep -> accuracy-vs-performance Pareto frontier.

Because canonical names feed the same ``(workload, batch, policy)``
grouping key as the built-in named policies, generated policies reuse
the lowered-IR vectorized fast path bit-identically to the scalar path.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..nn.graph import LayerBitwidth, Network

__all__ = [
    "PERLAYER_PREFIX",
    "MAX_PROXY_LAYERS",
    "PolicySpec",
    "policy_name",
    "PolicyAccuracy",
    "sensitivity_policies",
    "CoExploreResult",
    "co_explore",
]

PERLAYER_PREFIX = "perlayer"
_PERLAYER_NAME = re.compile(r"perlayer((?:-\d+x\d+)+)")
_PAIR = re.compile(r"(\d+)x(\d+)")

_MIN_BITS, _MAX_BITS = 1, 8  # LayerBitwidth's supported range


def _normalize_layers(layers) -> tuple[tuple[int, int], ...]:
    """Canonicalize any sequence of per-layer bitwidths.

    Accepts pairs (``(act, wgt)`` tuples *or* lists -- JSON round-trips
    turn tuples into lists) and bare ints (both operands at that width,
    the shape :func:`~repro.quant.sensitivity.assign_bitwidths` emits).
    Everything lands as a tuple of ``(int, int)`` tuples, so two specs
    describing the same assignment are equal, hash alike, and produce
    the same canonical name no matter which container spelled them.
    """
    normalized = []
    for entry in layers:
        if isinstance(entry, int):
            pair = (int(entry), int(entry))  # int(): bools render as 1, not True
        else:
            pair = tuple(int(bits) for bits in entry)
            if len(pair) != 2:
                raise ValueError(
                    f"per-layer entry must be a bitwidth or an "
                    f"(activations, weights) pair, got {entry!r}"
                )
        for bits in pair:
            if not _MIN_BITS <= bits <= _MAX_BITS:
                raise ValueError(
                    f"bitwidth {bits} outside supported range "
                    f"[{_MIN_BITS}, {_MAX_BITS}]"
                )
        normalized.append(pair)
    if not normalized:
        raise ValueError("a per-layer policy needs at least one layer")
    return tuple(normalized)


@dataclass(frozen=True)
class PolicySpec:
    """A named, hashable per-layer bitwidth assignment.

    ``layers`` holds one ``(activations, weights)`` pair per weighted
    layer, in network order; it is canonicalized on construction (lists
    become tuples, bare ints become symmetric pairs), so specs built
    from JSON round-trip bit-identically.  ``label`` is display-only
    metadata -- identity is :attr:`name`, the canonical
    ``perlayer-AxW-...`` string, which alone determines the sweep-point
    config hash.
    """

    layers: tuple[tuple[int, int], ...]
    label: str | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "layers", _normalize_layers(self.layers))

    @property
    def name(self) -> str:
        """Canonical, self-describing policy name (the spec's identity)."""
        pairs = "-".join(f"{act}x{wgt}" for act, wgt in self.layers)
        return f"{PERLAYER_PREFIX}-{pairs}"

    @property
    def num_layers(self) -> int:
        return len(self.layers)

    @property
    def average_bits(self) -> float:
        """Unweighted mean operand bitwidth across layers."""
        return sum(act + wgt for act, wgt in self.layers) / (2 * len(self.layers))

    @classmethod
    def from_name(cls, name: str, label: str | None = None) -> "PolicySpec":
        """Parse a canonical ``perlayer-AxW-...`` name back into a spec."""
        match = _PERLAYER_NAME.fullmatch(str(name).strip().lower())
        if not match:
            raise ValueError(
                f"not a per-layer policy name: {name!r} "
                f"(expected e.g. '{PERLAYER_PREFIX}-8x8-4x4')"
            )
        layers = [(int(act), int(wgt)) for act, wgt in _PAIR.findall(match.group(1))]
        return cls(layers=tuple(layers), label=label)

    @classmethod
    def from_assignment(
        cls,
        bits_per_layer: Sequence[int],
        bits_activations: Sequence[int] | None = None,
        label: str | None = None,
    ) -> "PolicySpec":
        """Build a spec from ``assign_bitwidths``-style per-layer ints.

        ``bits_per_layer`` sets the weight widths; activations default
        to the same widths (the symmetric regime the sensitivity search
        explores) unless given separately.
        """
        weights = list(bits_per_layer)
        acts = weights if bits_activations is None else list(bits_activations)
        if len(acts) != len(weights):
            raise ValueError(
                f"need one activation width per layer: got {len(acts)} "
                f"for {len(weights)} layers"
            )
        return cls(layers=tuple(zip(acts, weights)), label=label)

    @classmethod
    def from_dict(cls, data: Mapping) -> "PolicySpec":
        """Parse the JSON policy format: ``{"layers": [[a, w], ...]}``.

        JSON has no tuples, so ``layers`` arrives as nested lists;
        construction canonicalizes them back to tuples, keeping the
        reloaded spec equal (and equal-hashing) to the original.
        """
        if "layers" not in data:
            raise ValueError('policy dict needs a "layers" key')
        return cls(layers=data["layers"], label=data.get("label"))

    def to_dict(self) -> dict:
        """JSON-able form; ``from_dict`` round-trips it."""
        payload: dict = {"layers": [list(pair) for pair in self.layers]}
        if self.label is not None:
            payload["label"] = self.label
        return payload

    def apply(self, network: Network) -> Network:
        """Assign this policy to ``network``'s weighted layers, in order."""
        weighted = network.weighted_layers
        if len(weighted) != len(self.layers):
            raise ValueError(
                f"policy {self.name!r} assigns {len(self.layers)} layers "
                f"but {network.name} has {len(weighted)} weighted layers"
            )
        return network.set_bitwidths(
            {
                layer.name: LayerBitwidth(activations=act, weights=wgt)
                for layer, (act, wgt) in zip(weighted, self.layers)
            }
        )

    def __call__(self, network: Network) -> Network:
        # Policies are applied as callables by the sweep machinery.
        return self.apply(network)


def policy_name(ref) -> str:
    """Canonical policy-axis value: always a resolvable name string.

    Accepts a name string, a :class:`PolicySpec`, a policy dict
    (``{"layers": ...}``), or a bare per-layer sequence.  Per-layer
    name strings are re-canonicalized through :class:`PolicySpec`, so
    non-canonical spellings (``perlayer-08x8``) share the canonical
    spelling's config hash; other names are lowercased unvalidated --
    the sweep point validates eagerly.
    """
    if isinstance(ref, PolicySpec):
        return ref.name
    if isinstance(ref, str):
        name = ref.lower()
        if name.startswith(PERLAYER_PREFIX):
            return PolicySpec.from_name(name).name
        return name
    if isinstance(ref, Mapping):
        return PolicySpec.from_dict(ref).name
    if isinstance(ref, Sequence):
        return PolicySpec(layers=ref).name
    raise TypeError(
        f"cannot interpret {ref!r} as a bitwidth policy; pass a name, "
        f"a PolicySpec, a policy dict, or a per-layer sequence"
    )


# ----------------------------------------------------------------------
# Quant--hardware co-exploration
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PolicyAccuracy:
    """One searched policy with the accuracy that justified it."""

    policy: str  # canonical name (the sweep-axis value)
    label: str
    max_drop: float
    accuracy: float
    float_accuracy: float
    bits_per_layer: tuple[int, ...]
    search_steps: int

    @property
    def accuracy_drop(self) -> float:
        return self.float_accuracy - self.accuracy

    @property
    def spec(self) -> PolicySpec:
        return PolicySpec.from_name(self.policy, label=self.label)


#: Deepest proxy MLP the sensitivity search trains.  Beyond ~6 hidden
#: layers the numpy SGD proxy stops converging on two-spirals (and the
#: composed 8-bit baseline falls far below the float reference), so the
#: search would degenerate to the all-wide assignment for every budget.
#: Deeper workloads search a capped-depth proxy and stretch the result.
MAX_PROXY_LAYERS = 6


def sensitivity_policies(
    num_layers: int,
    max_drops: Sequence[float] = (0.0, 0.02, 0.05),
    ladder: tuple[int, ...] = (8, 4, 2),
    seed: int = 0,
    samples: int = 300,
    hidden: int = 16,
    epochs: int = 300,
    lr: float = 0.3,
) -> list[PolicyAccuracy]:
    """Greedy bitwidth search under a ladder of accuracy-drop budgets.

    Trains one proxy MLP on the two-spirals task (deterministic under
    ``seed``) with ``min(num_layers, MAX_PROXY_LAYERS)`` quantizable
    layers, then runs
    :func:`~repro.quant.sensitivity.assign_bitwidths` once per budget
    in ``max_drops``.  When the workload is deeper than the proxy, the
    searched per-layer assignment is stretched onto the workload's
    layers nearest-neighbor (layer ``i`` takes proxy layer
    ``i * depth // num_layers``), preserving the search's wide/narrow
    structure.  Returns the all-``ladder[0]`` baseline followed by one
    annotated policy per budget; every entry's ``policy`` is a
    canonical per-layer name directly usable as a sweep-axis value for
    any workload with ``num_layers`` weighted layers.
    """
    from ..quant.inference import MLP, make_two_spirals
    from ..quant.sensitivity import assign_bitwidths

    if num_layers < 1:
        raise ValueError("num_layers must be >= 1")
    if not max_drops:
        raise ValueError("need at least one accuracy-drop budget")
    depth = min(num_layers, MAX_PROXY_LAYERS)
    x, y = make_two_spirals(samples, seed=seed)
    mlp = MLP([2] + [hidden] * (depth - 1) + [2], seed=seed)
    mlp.train(x, y, epochs=epochs, lr=lr)
    float_accuracy = mlp.accuracy(x, y, backend="float")

    def stretch(bits: Sequence[int]) -> tuple[int, ...]:
        return tuple(bits[i * depth // num_layers] for i in range(num_layers))

    wide = ladder[0]
    baseline_bits = (wide,) * depth
    baseline = PolicyAccuracy(
        policy=PolicySpec.from_assignment(stretch(baseline_bits)).name,
        label=f"uniform-{wide}bit",
        max_drop=0.0,
        accuracy=mlp.accuracy(
            x,
            y,
            backend="composed",
            bits_weights=list(baseline_bits),
            bits_activations=list(baseline_bits),
        ),
        float_accuracy=float_accuracy,
        bits_per_layer=stretch(baseline_bits),
        search_steps=0,
    )

    policies = [baseline]
    for max_drop in max_drops:
        assignment = assign_bitwidths(mlp, x, y, max_drop=max_drop, ladder=ladder)
        workload_bits = stretch(assignment.bits_per_layer)
        policies.append(
            PolicyAccuracy(
                policy=PolicySpec.from_assignment(workload_bits).name,
                label=f"drop<={max_drop:g}",
                max_drop=max_drop,
                accuracy=assignment.accuracy,
                float_accuracy=assignment.float_accuracy,
                bits_per_layer=workload_bits,
                search_steps=assignment.steps,
            )
        )
    return policies


@dataclass
class CoExploreResult:
    """Outcome of one quant--hardware co-exploration run.

    Both ``records`` and ``frontier`` carry the searched accuracy as
    metric ``"accuracy"`` (joined once, copy-on-write -- the engine
    memo and the store keep the canonical evaluator records).
    """

    workload: str
    policies: list[PolicyAccuracy]
    records: list[dict] = field(repr=False)
    frontier: list[dict] = field(repr=False)
    evaluated: int
    from_store: int
    from_memo: int

    @property
    def accuracy_by_policy(self) -> dict[str, float]:
        return {p.policy: p.accuracy for p in self.policies}

    def summary(self) -> str:
        return (
            f"{self.workload}: {len(self.policies)} policies x "
            f"{len(self.records) // max(1, len(self.accuracy_by_policy))} "
            f"hardware points -> {len(self.records)} records "
            f"({self.evaluated} evaluated, {self.from_store} store hits, "
            f"{self.from_memo} memo hits); "
            f"accuracy/perf frontier keeps {len(self.frontier)}"
        )


def co_explore(
    workload: str,
    platforms: Sequence | None = None,
    memories: Sequence | None = None,
    batches: Sequence[int | None] = (None,),
    max_drops: Sequence[float] = (0.0, 0.02, 0.05),
    ladder: tuple[int, ...] = (8, 4, 2),
    seed: int = 0,
    objective: str = "total_seconds",
    sense: str = "min",
    store=None,
    workers: int = 1,
    vectorize: bool = True,
) -> CoExploreResult:
    """Co-explore bitwidth policies and hardware points for one workload.

    Runs :func:`sensitivity_policies` sized to the workload's weighted
    layer count, sweeps the resulting policy axis against the hardware
    grid through the cached DSE engine, and reduces the records to the
    accuracy-vs-performance Pareto frontier
    (:func:`~repro.dse.queries.accuracy_perf_frontier`).
    """
    # Local imports: the engine imports repro.dse.spec, which imports
    # this module at load time for per-layer name resolution.
    from .engine import run_sweep
    from .queries import attach_policy_metric, pareto_frontier
    from .spec import MEMORY_NAMES, PLATFORM_NAMES, SweepSpec, build_network

    network = build_network(workload)
    policies = sensitivity_policies(
        len(network.weighted_layers),
        max_drops=max_drops,
        ladder=ladder,
        seed=seed,
    )
    axis: list[str] = []
    for entry in policies:
        if entry.policy not in axis:
            axis.append(entry.policy)

    spec = SweepSpec.grid(
        workloads=(workload,),
        platforms=PLATFORM_NAMES if platforms is None else platforms,
        memories=MEMORY_NAMES if memories is None else memories,
        policies=axis,
        batches=batches,
    )
    result = run_sweep(spec, store=store, workers=workers, vectorize=vectorize)
    accuracy = {p.policy: p.accuracy for p in policies}
    records = attach_policy_metric(result.records, accuracy, "accuracy")
    frontier = pareto_frontier(
        records, objectives=(objective, "accuracy"), senses=(sense, "max")
    )
    return CoExploreResult(
        workload=network.name,
        policies=policies,
        records=records,
        frontier=frontier,
        evaluated=result.evaluated,
        from_store=result.from_store,
        from_memo=result.from_memo,
    )
