"""Persistent result stores for DSE records: JSONL and SQLite backends.

Stores are keyed by the point's config hash and share one resolution
rule, *version-aware last-write-wins*: a record only supersedes an
earlier record for the same hash when its ``version`` is at least as
new, so a stale re-append can never shadow a current record.  Two
backends implement the :class:`ResultStoreBase` interface:

* :class:`ResultStore` -- the append-only JSONL file.  One JSON record
  per line; appends are crash-safe in the usual JSONL sense (a torn
  final line is skipped with a warning on load), duplicate hashes
  resolve at load time, :meth:`~ResultStoreBase.compact` rewrites the
  file keeping only survivors (optionally gzip-compressed, detected by
  magic bytes on every operation).
* :class:`~repro.dse.sqlite_store.SQLiteStore` -- one row per hash in a
  SQLite table, with the same resolution rule applied at write time by
  a conditional upsert.  Point lookups (:meth:`~ResultStoreBase.
  records_for`) are indexed, so a large warm store resolves a sweep
  without re-parsing every record the way a JSONL load must.

A third backend, the hash-partitioned
:class:`~repro.dse.partitioned.PartitionedStore`, spreads records over
N hash-range JSONL part files under one directory with a JSON manifest,
so compaction and point lookups touch only the parts involved.

:func:`open_store` picks the backend from an explicit name, SQLite
magic bytes in an existing file, a store directory, or the path suffix
(``.sqlite`` / ``.sqlite3`` / ``.db`` select SQLite, ``.parts``
partitioned), so every CLI ``--store`` flag and every ``store=``
argument accepts any backend transparently.  Per-shard stores of any
backend union into one via :meth:`ResultStoreBase.merge` under the same
resolution rules (see :meth:`SweepSpec.shard
<repro.dse.spec.SweepSpec.shard>`).
"""

from __future__ import annotations

import gzip as gzip_module
import hashlib
import json
import os
import warnings
from contextlib import contextmanager
from pathlib import Path
from typing import IO, Callable, Iterable, Iterator, Mapping

__all__ = [
    "ResultStore",
    "ResultStoreBase",
    "StoreWarning",
    "open_store",
]

_GZIP_MAGIC = b"\x1f\x8b"
_SQLITE_MAGIC = b"SQLite format 3\x00"
_SQLITE_SUFFIXES = (".sqlite", ".sqlite3", ".db")
_PARTITIONED_SUFFIXES = (".parts",)

#: How much of each end of the file the content fingerprint hashes.
#: JSONL stores only ever change by appending (tail) or atomic rewrite
#: (everything shifts), so head+tail+size pins the content without a
#: full read of a million-record store.
_FINGERPRINT_BYTES = 64 * 1024


class StoreWarning(UserWarning):
    """A store file held lines that could not be parsed (and were skipped)."""


def _supersedes(new: dict, old: dict) -> bool:
    """Version-aware last-write-wins: newer-or-equal version replaces."""
    return new.get("version", 0) >= old.get("version", 0)


def _keyed(record, path) -> bool:
    """Whether a record has the ``hash`` key every backend requires.

    Keyless records are unloadable in any backend -- ``iter_lines``
    drops them on read and the SQLite row builder drops them on write
    -- so writers skip them with a warning instead of accumulating
    dead lines.
    """
    if isinstance(record, dict) and record.get("hash"):
        return True
    warnings.warn(
        f"{path}: dropping keyless record on append (records need a "
        '"hash" key to ever be read back)',
        StoreWarning,
        stacklevel=3,
    )
    return False


class ResultStoreBase:
    """The persistent-cache interface both store backends implement.

    Subclasses provide ``load``/``append``/``appender``/``iter_lines``/
    ``merge``/``compact``; the base supplies derived conveniences with
    load-everything fallbacks that indexed backends override.
    """

    #: Short backend name, reported by :meth:`stats` and the CLI.
    backend = "base"

    def __init__(self, path: str | os.PathLike):
        self.path = Path(path)

    def exists(self) -> bool:
        return self.path.exists()

    def is_gzipped(self) -> bool:
        return False

    # -- interface implemented per backend -----------------------------
    def load(self) -> dict[str, dict]:
        raise NotImplementedError

    def append(self, records: Iterable[dict]) -> int:
        raise NotImplementedError

    def appender(self) -> "contextmanager":
        raise NotImplementedError

    def iter_lines(self) -> Iterator[dict]:
        raise NotImplementedError

    def compact(
        self, gzip: bool | None = None, drop_stale: bool = True
    ) -> tuple[int, int]:
        raise NotImplementedError

    # -- derived queries (overridden where the backend can do better) --
    def records_for(
        self, hashes: Iterable[str], version: int | None = None
    ) -> dict[str, dict]:
        """The stored records for the given config hashes.

        ``version`` restricts hits to records at exactly that
        ``EVAL_VERSION`` -- the engine's warm path, which only wants
        records it will not re-evaluate anyway.  The JSONL backend must
        parse the whole file to answer; the SQLite backend answers from
        an indexed point lookup.
        """
        # Missing versions count as 0, matching _supersedes and the
        # SQLite column default -- the backends must agree on
        # versionless records.
        wanted = set(hashes)
        return {
            key: record
            for key, record in self.load().items()
            if key in wanted
            and (version is None or record.get("version", 0) == version)
        }

    def hashes(self, version: int | None = None) -> set[str]:
        """Every stored config hash (optionally at one version)."""
        return {
            key
            for key, record in self.load().items()
            if version is None or record.get("version", 0) == version
        }

    def iter_records(self, version: int | None = None) -> Iterator[dict]:
        """Stream every surviving record, optionally at one version.

        Post-resolution: exactly the values of :meth:`load`, but
        yielded instead of materialized, and with the version filter
        applied store-side -- the SQLite backend pushes it into SQL
        (``WHERE version = ?``) so a huge store never parses rows it
        will not serve.
        """
        for record in self.load().values():
            if version is None or record.get("version", 0) == version:
                yield record

    def iter_page(
        self,
        after: str | None = None,
        limit: int | None = None,
        version: int | None = None,
    ) -> Iterator[dict]:
        """One keyset page: surviving records in hash order.

        Yields up to ``limit`` post-resolution records whose hash sorts
        strictly after ``after`` (``None`` starts from the smallest
        hash), optionally restricted to one ``version``.  The cursor
        for the next page is the last yielded record's hash; an empty
        yield means the dump is complete.  Backends override this to
        avoid materializing the store: SQLite pages via ``ORDER BY
        hash LIMIT``, JSONL via a bounded two-pass scan, the
        partitioned store by walking parts in hash-range order.
        """
        if limit is not None and limit < 1:
            raise ValueError("limit must be >= 1")
        records = self.load()
        count = 0
        for key in sorted(records):
            if after is not None and key <= after:
                continue
            record = records[key]
            if version is not None and record.get("version", 0) != version:
                continue
            yield record
            count += 1
            if limit is not None and count >= limit:
                return

    def change_token(self) -> tuple | None:
        """An opaque value that changes whenever the contents may have.

        The cache-invalidation key for read caches over this store
        (e.g. the sweep service's ``/stats`` and query caches): equal
        tokens mean the cached view is still valid, ``None`` means
        "cannot tell, do not cache".  A bare ``(mtime, size)`` stat key
        is not enough -- an external same-size upsert inside one coarse
        mtime tick is invisible to it -- so the JSONL backend hashes
        the file's head and tail into a content fingerprint, and the
        SQLite backend overrides this with ``PRAGMA data_version``.
        """
        try:
            stat = self.path.stat()
        except OSError:
            return None
        digest = hashlib.sha256()
        try:
            with self.path.open("rb") as handle:
                digest.update(handle.read(_FINGERPRINT_BYTES))
                if stat.st_size > 2 * _FINGERPRINT_BYTES:
                    handle.seek(stat.st_size - _FINGERPRINT_BYTES)
                digest.update(handle.read(_FINGERPRINT_BYTES))
        except OSError:
            return None
        return (stat.st_mtime_ns, stat.st_size, digest.hexdigest())

    def stats(self) -> dict:
        """Store metadata for health/stats surfaces (no record bodies)."""
        exists = self.exists()
        return {
            "backend": self.backend,
            "path": str(self.path),
            "exists": exists,
            "records": len(self) if exists else 0,
            "size_bytes": self.path.stat().st_size if exists else 0,
            "gzipped": self.is_gzipped(),
        }

    def merge(
        self,
        sources: Iterable["ResultStoreBase | Mapping | str | os.PathLike"],
        gzip: bool | None = None,
    ) -> int:
        """Union source stores into this one; returns the record count.

        Existing records in this store participate too: for each hash
        the surviving record is picked version-aware last-write-wins
        across self and the sources, in argument order (a later source
        wins a same-version tie).  Sources may be either backend --
        paths go through :func:`open_store` -- or already-loaded
        ``{hash: record}`` mappings (a caller that just read a store
        need not re-parse it); missing source files are skipped, so
        empty shards that never produced a store merge cleanly.
        """
        merged = self.load()
        for source in _source_records(sources):
            for key, record in source:
                if key not in merged or _supersedes(record, merged[key]):
                    merged[key] = record
        self._replace_all(merged.values(), gzip=gzip)
        return len(merged)

    def _replace_all(
        self, records: Iterable[dict], gzip: bool | None = None
    ) -> None:
        raise NotImplementedError

    def __len__(self) -> int:
        return len(self.load())

    def __contains__(self, config_hash: str) -> bool:
        return config_hash in self.load()


class ResultStore(ResultStoreBase):
    """The append-only JSONL result store (one JSON record per line).

    Gzipped stores are detected by magic bytes, so every operation --
    load, append, merge, compact -- is transparent to whether the file
    is compressed; appends to a gzipped store add a new gzip member,
    which the multi-member reader handles natively.
    """

    backend = "jsonl"

    def is_gzipped(self) -> bool:
        """Whether the store file is gzip-compressed (magic-byte sniff)."""
        if not self.path.exists():
            return False
        with self.path.open("rb") as handle:
            return handle.read(2) == _GZIP_MAGIC

    def _reject_sqlite_file(self) -> None:
        # A forced jsonl backend on a SQLite file must hard-error:
        # treating the binary pages as torn lines would read as an
        # empty store, and appending JSONL after them would write
        # records no later open (which sniffs SQLite magic) can see.
        if not self.path.exists():
            return
        with self.path.open("rb") as handle:
            if handle.read(len(_SQLITE_MAGIC)) == _SQLITE_MAGIC:
                raise ValueError(
                    f"{self.path} is a SQLite store (open it with the "
                    "sqlite backend, or pick a fresh path)"
                )

    def _open_read(self) -> IO[bytes]:
        # Binary on purpose: a crash mid-append can tear a multi-byte
        # character, and a text-mode handle would raise mid-iteration.
        # ``json.loads`` decodes each line itself.
        self._reject_sqlite_file()
        if self.is_gzipped():
            return gzip_module.open(self.path, "rb")
        return self.path.open("rb")

    def _open_append(self) -> IO[str]:
        self._reject_sqlite_file()
        if self.is_gzipped():
            # A new gzip member; readers treat members as one stream.
            return gzip_module.open(self.path, "at", encoding="utf-8")
        return self.path.open("a", encoding="utf-8")

    def iter_lines(self) -> Iterator[dict]:
        """Every parseable record line in file order (no dedup).

        A line that fails to parse -- the torn tail of a
        crash-interrupted append, or a mid-file corruption -- is skipped
        with a :class:`StoreWarning` instead of aborting the load, so a
        crashed run's store keeps serving everything that landed.
        """
        if not self.path.exists():
            return
        try:
            with self._open_read() as handle:
                for lineno, raw in enumerate(handle, 1):
                    raw = raw.strip()
                    if not raw:
                        continue
                    try:
                        record = json.loads(raw)
                    except (json.JSONDecodeError, UnicodeDecodeError):
                        warnings.warn(
                            f"{self.path}: skipping unparseable record on "
                            f"line {lineno} (torn write from an interrupted "
                            "append?)",
                            StoreWarning,
                            stacklevel=2,
                        )
                        continue
                    if isinstance(record, dict) and record.get("hash"):
                        yield record
        except (EOFError, gzip_module.BadGzipFile):
            warnings.warn(
                f"{self.path}: torn gzip member at the tail; keeping the "
                "records that parsed",
                StoreWarning,
                stacklevel=2,
            )
            return

    def load(self) -> dict[str, dict]:
        """All stored records as ``{config_hash: record}``.

        Duplicate hashes resolve version-aware last-write-wins: among
        lines for one hash, the last line whose ``version`` ties or
        beats every earlier line survives, so a stale-``EVAL_VERSION``
        re-append never shadows a current record.
        """
        records: dict[str, dict] = {}
        for record in self.iter_lines():
            key = record["hash"]
            if key not in records or _supersedes(record, records[key]):
                records[key] = record
        return records

    def append(self, records: Iterable[dict]) -> int:
        """Append records; returns how many changed the resolved view.

        The shared :meth:`ResultStoreBase.append` contract: the count
        is lines that actually landed, not lines offered.  Keyless
        records are skipped with a :class:`StoreWarning` (they could
        never be read back -- ``iter_lines`` drops them -- and SQLite's
        row builder skips them too), and a record superseded by what
        the store already holds (or by an earlier record in the same
        batch) is not written at all, so a stale re-upload reports 0 on
        every backend instead of quietly growing the file with dead
        lines.
        """
        batch = [record for record in records if _keyed(record, self.path)]
        if not batch:
            return 0
        versions = {
            key: record.get("version", 0)
            for key, record in self.load().items()
        }
        written = 0
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self._open_append() as handle:
            for record in batch:
                key = record["hash"]
                version = record.get("version", 0)
                if key in versions and version < versions[key]:
                    continue
                handle.write(json.dumps(record, sort_keys=True) + "\n")
                versions[key] = version
                written += 1
        return written

    @contextmanager
    def appender(self) -> Iterator[Callable[[dict], None]]:
        """One held-open append handle for streaming writers.

        The yielded callable writes and flushes one record, so every
        completed record is on disk for crash recovery (gzip flushes
        with a sync point) without paying a file open per record -- and
        a gzipped store gains one member per run, not one per record.
        The file is only created once something is written.  Keyless
        records are skipped with a :class:`StoreWarning`; unlike bulk
        :meth:`append` there is no stale check -- resolving each write
        against the store would cost a full parse per record, and the
        engine only streams freshly evaluated records.
        """
        handle: IO[str] | None = None
        try:

            def write(record: dict) -> None:
                nonlocal handle
                if not _keyed(record, self.path):
                    return
                if handle is None:
                    self.path.parent.mkdir(parents=True, exist_ok=True)
                    handle = self._open_append()
                handle.write(json.dumps(record, sort_keys=True) + "\n")
                handle.flush()

            yield write
        finally:
            if handle is not None:
                handle.close()

    def iter_page(
        self,
        after: str | None = None,
        limit: int | None = None,
        version: int | None = None,
    ) -> Iterator[dict]:
        """Keyset page over the file in two bounded passes.

        A sorted full :meth:`load` would materialize every record body
        to serve one page.  Instead pass one resolves only each hash's
        surviving *version* (a ``{hash: int}`` map, no bodies), which
        pins the page's key set exactly; pass two re-scans collecting
        just those ``limit`` bodies.  Peak memory is the hash->version
        map plus one page, independent of record size.
        """
        if limit is not None and limit < 1:
            raise ValueError("limit must be >= 1")
        winners: dict[str, int] = {}
        for record in self.iter_lines():
            key = record["hash"]
            record_version = record.get("version", 0)
            if key not in winners or record_version >= winners[key]:
                winners[key] = record_version
        page_keys = sorted(
            key
            for key, survivor in winners.items()
            if (after is None or key > after)
            and (version is None or survivor == version)
        )[:limit]
        wanted = set(page_keys)
        if not wanted:
            return
        page: dict[str, dict] = {}
        for record in self.iter_lines():
            key = record["hash"]
            if key in wanted and (
                key not in page or _supersedes(record, page[key])
            ):
                page[key] = record
        for key in page_keys:
            yield page[key]

    def _rewrite(self, records: Iterable[dict], gzip: bool) -> None:
        """Atomically replace the file with one line per record."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_name(self.path.name + ".tmp")
        opener = gzip_module.open if gzip else open
        with opener(tmp, "wt", encoding="utf-8") as handle:
            for record in records:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
        os.replace(tmp, self.path)

    def _replace_all(
        self, records: Iterable[dict], gzip: bool | None = None
    ) -> None:
        if gzip is None:
            gzip = self.is_gzipped()
        self._rewrite(records, gzip=gzip)

    def compact(
        self, gzip: bool | None = None, drop_stale: bool = True
    ) -> tuple[int, int]:
        """Drop superseded lines; returns ``(kept, dropped)`` line counts.

        ``dropped`` counts parseable record lines that lost resolution;
        blank or torn lines are removed too but not counted.
        Keeps one line per hash (the version-aware last-write-wins
        survivor) and, when ``drop_stale``, only records at the current
        ``EVAL_VERSION`` -- anything else would be re-evaluated by the
        engine anyway.  ``gzip=True``/``False`` converts the file;
        ``None`` keeps its current compression.  The rewrite is atomic
        (temp file + rename), so a crash mid-compact leaves the
        original store intact.
        """
        if not self.path.exists():
            return (0, 0)
        total = 0
        records: dict[str, dict] = {}
        for record in self.iter_lines():
            total += 1
            key = record["hash"]
            if key not in records or _supersedes(record, records[key]):
                records[key] = record
        if drop_stale:
            from .evaluate import EVAL_VERSION

            records = {
                key: record
                for key, record in records.items()
                if record.get("version") == EVAL_VERSION
            }
        if gzip is None:
            gzip = self.is_gzipped()
        self._rewrite(records.values(), gzip=gzip)
        return (len(records), total - len(records))


def _source_records(
    sources: Iterable["ResultStoreBase | Mapping | str | os.PathLike"],
) -> Iterator[Iterable[tuple[str, dict]]]:
    """Each merge source as ``(hash, record)`` items, in source order."""
    for source in sources:
        if isinstance(source, Mapping):
            yield source.items()
        else:
            if not isinstance(source, ResultStoreBase):
                source = open_store(source)
            yield source.load().items()


def _sniff_backend(path: Path) -> str:
    """Pick a backend for a path: directory / file magic, then suffix."""
    try:
        if path.is_dir():
            # Stores-as-directories are partitioned; single-file
            # backends can never be one.
            return "partitioned"
        if path.exists() and path.stat().st_size > 0:
            with path.open("rb") as handle:
                head = handle.read(len(_SQLITE_MAGIC))
            return "sqlite" if head == _SQLITE_MAGIC else "jsonl"
    except OSError:
        pass
    suffix = path.suffix.lower()
    if suffix in _SQLITE_SUFFIXES:
        return "sqlite"
    if suffix in _PARTITIONED_SUFFIXES:
        return "partitioned"
    return "jsonl"


def open_store(
    path: "ResultStoreBase | str | os.PathLike", backend: str | None = None
) -> ResultStoreBase:
    """Open a result store, picking the backend when not forced.

    ``backend`` is ``"jsonl"``, ``"sqlite"``, ``"partitioned"``, or
    ``None`` to decide from the path itself: an existing directory is a
    partitioned store, an existing non-empty file goes by its magic
    bytes (so a mis-suffixed store still opens correctly), a fresh path
    by its suffix (``.sqlite`` / ``.sqlite3`` / ``.db`` select SQLite,
    ``.parts`` partitioned, anything else JSONL).  An
    already-constructed store passes through untouched, so every
    ``store=`` argument accepts paths and store objects
    interchangeably.
    """
    if isinstance(path, ResultStoreBase):
        return path
    resolved = Path(path)
    if backend is None:
        backend = _sniff_backend(resolved)
    if backend == "sqlite":
        from .sqlite_store import SQLiteStore

        return SQLiteStore(resolved)
    if backend == "jsonl":
        return ResultStore(resolved)
    if backend == "partitioned":
        from .partitioned import PartitionedStore

        return PartitionedStore(resolved)
    raise ValueError(
        f"unknown store backend {backend!r}; choose 'jsonl', 'sqlite', "
        "or 'partitioned'"
    )
