"""Append-only JSONL result store for DSE records.

One JSON record per line, keyed by the point's config hash.  Appends are
crash-safe in the usual JSONL sense: a torn final line is ignored on
load, and re-appending the same hash is harmless -- on load, duplicate
hashes resolve *version-aware last-write-wins*: a line only supersedes
an earlier line for the same hash when its ``version`` is at least as
new, so a stale re-append can never shadow a current record.

Long-lived stores grow one line per append; :meth:`ResultStore.compact`
rewrites the file keeping only the surviving record per hash (optionally
gzip-compressed), and :meth:`ResultStore.merge` unions per-shard stores
produced by a partitioned sweep (see :meth:`SweepSpec.shard
<repro.dse.spec.SweepSpec.shard>`) into one store under the same
resolution rules.  Gzipped stores are detected by magic bytes, so every
operation -- load, append, merge, compact -- is transparent to whether
the file is compressed; appends to a gzipped store add a new gzip
member, which the multi-member reader handles natively.
"""

from __future__ import annotations

import gzip as gzip_module
import json
import os
from contextlib import contextmanager
from pathlib import Path
from typing import IO, Callable, Iterable, Iterator

__all__ = ["ResultStore"]

_GZIP_MAGIC = b"\x1f\x8b"


def _supersedes(new: dict, old: dict) -> bool:
    """Version-aware last-write-wins: newer-or-equal version replaces."""
    return new.get("version", 0) >= old.get("version", 0)


class ResultStore:
    """Persistent cache of evaluated design points."""

    def __init__(self, path: str | os.PathLike):
        self.path = Path(path)

    def exists(self) -> bool:
        return self.path.exists()

    def is_gzipped(self) -> bool:
        """Whether the store file is gzip-compressed (magic-byte sniff)."""
        if not self.path.exists():
            return False
        with self.path.open("rb") as handle:
            return handle.read(2) == _GZIP_MAGIC

    def _open_read(self) -> IO[str]:
        if self.is_gzipped():
            return gzip_module.open(self.path, "rt", encoding="utf-8")
        return self.path.open("r", encoding="utf-8")

    def _open_append(self) -> IO[str]:
        if self.is_gzipped():
            # A new gzip member; readers treat members as one stream.
            return gzip_module.open(self.path, "at", encoding="utf-8")
        return self.path.open("a", encoding="utf-8")

    def iter_lines(self) -> Iterator[dict]:
        """Every parseable record line in file order (no dedup)."""
        if not self.path.exists():
            return
        try:
            with self._open_read() as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                    except json.JSONDecodeError:
                        continue  # torn write at the tail of a crashed run
                    if isinstance(record, dict) and record.get("hash"):
                        yield record
        except (EOFError, gzip_module.BadGzipFile):
            return  # torn gzip member at the tail; keep what parsed

    def load(self) -> dict[str, dict]:
        """All stored records as ``{config_hash: record}``.

        Duplicate hashes resolve version-aware last-write-wins: among
        lines for one hash, the last line whose ``version`` ties or
        beats every earlier line survives, so a stale-``EVAL_VERSION``
        re-append never shadows a current record.
        """
        records: dict[str, dict] = {}
        for record in self.iter_lines():
            key = record["hash"]
            if key not in records or _supersedes(record, records[key]):
                records[key] = record
        return records

    def append(self, records: Iterable[dict]) -> int:
        """Append records; returns how many lines were written."""
        count = 0
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self._open_append() as handle:
            for record in records:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
                count += 1
        return count

    @contextmanager
    def appender(self) -> Iterator[Callable[[dict], None]]:
        """One held-open append handle for streaming writers.

        The yielded callable writes and flushes one record, so every
        completed record is on disk for crash recovery (gzip flushes
        with a sync point) without paying a file open per record -- and
        a gzipped store gains one member per run, not one per record.
        The file is only created once something is written.
        """
        handle: IO[str] | None = None
        try:

            def write(record: dict) -> None:
                nonlocal handle
                if handle is None:
                    self.path.parent.mkdir(parents=True, exist_ok=True)
                    handle = self._open_append()
                handle.write(json.dumps(record, sort_keys=True) + "\n")
                handle.flush()

            yield write
        finally:
            if handle is not None:
                handle.close()

    def _rewrite(self, records: Iterable[dict], gzip: bool) -> None:
        """Atomically replace the file with one line per record."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_name(self.path.name + ".tmp")
        opener = gzip_module.open if gzip else open
        with opener(tmp, "wt", encoding="utf-8") as handle:
            for record in records:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
        os.replace(tmp, self.path)

    def merge(
        self,
        sources: Iterable[ResultStore | str | os.PathLike],
        gzip: bool | None = None,
    ) -> int:
        """Union per-shard stores into this one; returns the record count.

        Existing records in this store participate too: for each hash
        the surviving record is picked version-aware last-write-wins
        across self and the sources, in argument order (a later source
        wins a same-version tie).  Missing source files are skipped, so
        empty shards that never produced a store merge cleanly.  The
        merged store is rewritten compacted -- one line per hash.
        """
        merged = self.load()
        for source in sources:
            if not isinstance(source, ResultStore):
                source = ResultStore(source)
            for key, record in source.load().items():
                if key not in merged or _supersedes(record, merged[key]):
                    merged[key] = record
        if gzip is None:
            gzip = self.is_gzipped()
        self._rewrite(merged.values(), gzip=gzip)
        return len(merged)

    def compact(
        self, gzip: bool | None = None, drop_stale: bool = True
    ) -> tuple[int, int]:
        """Drop superseded lines; returns ``(kept, dropped)`` line counts.

        ``dropped`` counts parseable record lines that lost resolution;
        blank or torn lines are removed too but not counted.
        Keeps one line per hash (the version-aware last-write-wins
        survivor) and, when ``drop_stale``, only records at the current
        ``EVAL_VERSION`` -- anything else would be re-evaluated by the
        engine anyway.  ``gzip=True``/``False`` converts the file;
        ``None`` keeps its current compression.  The rewrite is atomic
        (temp file + rename), so a crash mid-compact leaves the
        original store intact.
        """
        if not self.path.exists():
            return (0, 0)
        total = 0
        records: dict[str, dict] = {}
        for record in self.iter_lines():
            total += 1
            key = record["hash"]
            if key not in records or _supersedes(record, records[key]):
                records[key] = record
        if drop_stale:
            from .evaluate import EVAL_VERSION

            records = {
                key: record
                for key, record in records.items()
                if record.get("version") == EVAL_VERSION
            }
        if gzip is None:
            gzip = self.is_gzipped()
        self._rewrite(records.values(), gzip=gzip)
        return (len(records), total - len(records))

    def __len__(self) -> int:
        return len(self.load())

    def __contains__(self, config_hash: str) -> bool:
        return config_hash in self.load()
