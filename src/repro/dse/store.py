"""Append-only JSONL result store for DSE records.

One JSON record per line, keyed by the point's config hash.  Appends are
crash-safe in the usual JSONL sense: a torn final line is ignored on
load, and re-appending the same hash is harmless (last record wins).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Iterable

__all__ = ["ResultStore"]


class ResultStore:
    """Persistent cache of evaluated design points."""

    def __init__(self, path: str | os.PathLike):
        self.path = Path(path)

    def exists(self) -> bool:
        return self.path.exists()

    def load(self) -> dict[str, dict]:
        """All stored records as ``{config_hash: record}`` (last wins)."""
        records: dict[str, dict] = {}
        if not self.path.exists():
            return records
        with self.path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn write at the tail of a crashed run
                key = record.get("hash")
                if key:
                    records[key] = record
        return records

    def append(self, records: Iterable[dict]) -> int:
        """Append records; returns how many lines were written."""
        count = 0
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as handle:
            for record in records:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
                count += 1
        return count

    def __len__(self) -> int:
        return len(self.load())

    def __contains__(self, config_hash: str) -> bool:
        return config_hash in self.load()
