"""Core of the paper's contribution: bit-parallel vector composability.

Exports the bit-slicing math (Eq. 1-4), the NBVE/CVU functional hardware
models, composition planning, and vectorised composed matrix multiplies.
"""

from .bitslice import (
    check_range,
    num_slices,
    recompose_vector,
    slice_vector,
    slice_weights,
    sliced_dot_product,
    sliced_dot_product_terms,
    value_range,
)
from .composition import CompositionPlan, NBVEAssignment, plan_composition
from .cvu import CVU, CVUConfig, CVUResult
from .dotprod import composed_matmul, composition_workload, reference_matmul
from .gates import (
    GateNBVE,
    adder_tree,
    array_multiply,
    bits_to_int,
    full_adder,
    gate_level_dot_product,
    int_to_bits,
    left_shift,
    ripple_add,
)
from .nbve import NBVE
from .sparsity import (
    SliceSparsity,
    effectual_fraction,
    ideal_skip_speedup,
    slice_sparsity,
)

__all__ = [
    "check_range",
    "num_slices",
    "recompose_vector",
    "slice_vector",
    "slice_weights",
    "sliced_dot_product",
    "sliced_dot_product_terms",
    "value_range",
    "CompositionPlan",
    "NBVEAssignment",
    "plan_composition",
    "CVU",
    "CVUConfig",
    "CVUResult",
    "NBVE",
    "composed_matmul",
    "composition_workload",
    "reference_matmul",
    "GateNBVE",
    "adder_tree",
    "array_multiply",
    "bits_to_int",
    "full_adder",
    "gate_level_dot_product",
    "int_to_bits",
    "left_shift",
    "ripple_add",
    "SliceSparsity",
    "effectual_fraction",
    "ideal_skip_speedup",
    "slice_sparsity",
]
