"""Gate-level (bit-true) golden model of the NBVE datapath.

The paper implements its accelerator in Verilog RTL.  This module is the
Python equivalent of that RTL's combinational datapath: full adders,
ripple-carry adders, array multipliers, adder trees and shifters operating
on explicit bit vectors.  It exists to validate the word-level functional
models (:mod:`repro.core.nbve` / :mod:`repro.core.cvu`) the way an RTL
testbench validates synthesized hardware -- every block is property-tested
against plain integer arithmetic.

Bit vectors are little-endian lists of 0/1 ints (``bits[0]`` is the LSB).
Signed values use two's complement; signed multiplication sign-extends to
the product width and multiplies modulo ``2^(2w)``, exactly as hardware
does.
"""

from __future__ import annotations

from typing import Sequence

__all__ = [
    "int_to_bits",
    "bits_to_int",
    "full_adder",
    "ripple_add",
    "array_multiply",
    "adder_tree",
    "left_shift",
    "GateNBVE",
    "gate_level_dot_product",
]

Bits = list


def int_to_bits(value: int, width: int, signed: bool = False) -> Bits:
    """Encode ``value`` as a little-endian two's-complement bit vector."""
    if width < 1:
        raise ValueError("width must be >= 1")
    lo = -(1 << (width - 1)) if signed else 0
    hi = (1 << (width - 1)) - 1 if signed else (1 << width) - 1
    if not lo <= value <= hi:
        raise ValueError(
            f"{value} does not fit {'signed' if signed else 'unsigned'} {width}-bit"
        )
    image = value & ((1 << width) - 1)
    return [(image >> i) & 1 for i in range(width)]


def bits_to_int(bits: Sequence[int], signed: bool = False) -> int:
    """Decode a little-endian bit vector (two's complement if signed)."""
    if not bits:
        raise ValueError("empty bit vector")
    if any(b not in (0, 1) for b in bits):
        raise ValueError("bit vector must contain only 0/1")
    value = sum(b << i for i, b in enumerate(bits))
    if signed and bits[-1]:
        value -= 1 << len(bits)
    return value


def full_adder(a: int, b: int, cin: int) -> tuple[int, int]:
    """One-bit full adder: returns (sum, carry-out)."""
    s = a ^ b ^ cin
    cout = (a & b) | (a & cin) | (b & cin)
    return s, cout


def ripple_add(a: Sequence[int], b: Sequence[int], signed: bool = True) -> Bits:
    """Ripple-carry addition with one bit of width growth (no overflow).

    Inputs are sign/zero extended to a common width plus one guard bit, so
    the result is always exact.
    """
    width = max(len(a), len(b)) + 1
    a = _extend(a, width, signed)
    b = _extend(b, width, signed)
    out = []
    carry = 0
    for bit_a, bit_b in zip(a, b):
        s, carry = full_adder(bit_a, bit_b, carry)
        out.append(s)
    return out


def _extend(bits: Sequence[int], width: int, signed: bool) -> Bits:
    if len(bits) >= width:
        return list(bits[:width])
    fill = bits[-1] if (signed and bits) else 0
    return list(bits) + [fill] * (width - len(bits))


def array_multiply(
    a: Sequence[int], b: Sequence[int], signed_a: bool = False, signed_b: bool = False
) -> Bits:
    """Array multiplier: AND-plane partial products + ripple reduction.

    Signed operands are sign-extended to the full product width and
    multiplied modulo ``2^(wa+wb)`` -- the standard two's-complement array
    multiplier behaviour.  The result has ``len(a) + len(b)`` bits and is
    signed iff either operand is.
    """
    width = len(a) + len(b)
    a_ext = _extend(a, width, signed_a)
    b_ext = _extend(b, width, signed_b)
    # Partial products: row i is (a AND b[i]) << i, truncated to width.
    acc = [0] * width
    for i in range(width):
        if b_ext[i] == 0:
            continue
        row = [0] * i + [a_ext[j] for j in range(width - i)]
        acc = ripple_add(acc, row, signed=False)[:width]
    return acc


def adder_tree(values: Sequence[Sequence[int]], signed: bool = True) -> Bits:
    """Binary adder tree over bit vectors (exact, widths grow per level)."""
    if not values:
        raise ValueError("adder tree needs at least one input")
    level = [list(v) for v in values]
    while len(level) > 1:
        nxt = []
        for i in range(0, len(level) - 1, 2):
            nxt.append(ripple_add(level[i], level[i + 1], signed=signed))
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
    return level[0]


def left_shift(bits: Sequence[int], amount: int) -> Bits:
    """Exact left shift: widens the vector by ``amount`` bits."""
    if amount < 0:
        raise ValueError("shift amount must be >= 0")
    return [0] * amount + list(bits)


class GateNBVE:
    """Bit-true NBVE: ``lanes`` array multipliers into a private adder tree."""

    def __init__(self, lanes: int = 16, slice_width: int = 2) -> None:
        if lanes < 1 or slice_width < 1:
            raise ValueError("lanes and slice_width must be >= 1")
        self.lanes = lanes
        self.slice_width = slice_width

    def compute(
        self,
        a_values: Sequence[int],
        b_values: Sequence[int],
        signed_a: bool = False,
        signed_b: bool = False,
    ) -> int:
        if len(a_values) != len(b_values):
            raise ValueError("operand length mismatch")
        if len(a_values) > self.lanes:
            raise ValueError(f"{len(a_values)} elements exceed {self.lanes} lanes")
        signed_out = signed_a or signed_b
        products = []
        for a, b in zip(a_values, b_values):
            bits_a = int_to_bits(a, self.slice_width, signed_a)
            bits_b = int_to_bits(b, self.slice_width, signed_b)
            products.append(array_multiply(bits_a, bits_b, signed_a, signed_b))
        if not products:
            return 0
        return bits_to_int(adder_tree(products, signed=signed_out), signed=signed_out)


def gate_level_dot_product(
    x: Sequence[int],
    w: Sequence[int],
    bw_x: int,
    bw_w: int,
    slice_width: int = 2,
    signed_x: bool = True,
    signed_w: bool = True,
    lanes: int = 16,
) -> int:
    """Full CVU datapath in gates: slice, NBVE-multiply, shift, aggregate.

    Slow (it simulates individual full adders) but bit-true; used as the
    golden reference for the word-level CVU model.
    """
    import numpy as np

    from .bitslice import slice_vector

    x = list(x)
    w = list(w)
    if len(x) != len(w):
        raise ValueError("vector length mismatch")
    x_slices = slice_vector(np.asarray(x), bw_x, slice_width, signed_x)
    w_slices = slice_vector(np.asarray(w), bw_w, slice_width, signed_w)
    nbve = GateNBVE(lanes=lanes, slice_width=slice_width)
    shifted: list[Bits] = []
    for j in range(x_slices.shape[0]):
        for k in range(w_slices.shape[0]):
            sa = signed_x and j == x_slices.shape[0] - 1
            sb = signed_w and k == w_slices.shape[0] - 1
            total = 0
            for lo in range(0, len(x), lanes):
                hi = min(len(x), lo + lanes)
                total += nbve.compute(
                    [int(v) for v in x_slices[j, lo:hi]],
                    [int(v) for v in w_slices[k, lo:hi]],
                    signed_a=sa,
                    signed_b=sb,
                )
            width = 2 * slice_width + max(1, len(x)).bit_length() + 2
            bits = int_to_bits(total, width + 4, signed=True)
            shifted.append(left_shift(bits, slice_width * (j + k)))
    return bits_to_int(adder_tree(shifted, signed=True), signed=True)
