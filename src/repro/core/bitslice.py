"""Bit-slicing arithmetic underlying bit-parallel vector composability.

This module implements the mathematical core of the paper (Section II,
Equations 1-4): any integer vector with elements of bitwidth ``b`` can be
decomposed into ``ceil(b / s)`` sub-vectors of ``s``-bit *slices*, and a
wide-bitwidth dot product can be reformulated as a shift-add combination of
narrow-bitwidth dot products between slices:

    X . W = sum_j sum_k 2^(s_x*j + s_w*k) * (X_slice_j . W_slice_k)

For **signed** (two's-complement) operands, all slices are unsigned except
the most-significant slice, which is interpreted as a signed ``s``-bit
value.  This mirrors how bit-composable hardware (BitFusion and the paper's
NBVEs) treats sign: only the top slice's multiplier needs signed support.

All functions are exact: recomposition and sliced dot products reproduce
plain integer arithmetic bit-for-bit.  The property-based tests in
``tests/core/test_bitslice.py`` verify this for every bitwidth/slicing
combination.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "num_slices",
    "value_range",
    "check_range",
    "slice_vector",
    "recompose_vector",
    "slice_weights",
    "sliced_dot_product",
    "sliced_dot_product_terms",
]


def num_slices(bitwidth: int, slice_width: int) -> int:
    """Number of ``slice_width``-bit slices needed to cover ``bitwidth`` bits.

    Bitwidths that are not multiples of the slice width are sign/zero
    extended to the next multiple (e.g. 3-bit operands with 2-bit slicing
    occupy two slices).
    """
    if bitwidth < 1:
        raise ValueError(f"bitwidth must be >= 1, got {bitwidth}")
    if slice_width < 1:
        raise ValueError(f"slice_width must be >= 1, got {slice_width}")
    return -(-bitwidth // slice_width)


def value_range(bitwidth: int, signed: bool) -> tuple[int, int]:
    """Inclusive (lo, hi) representable range for an integer of ``bitwidth``."""
    if bitwidth < 1:
        raise ValueError(f"bitwidth must be >= 1, got {bitwidth}")
    if signed:
        return -(1 << (bitwidth - 1)), (1 << (bitwidth - 1)) - 1
    return 0, (1 << bitwidth) - 1


def check_range(x: np.ndarray, bitwidth: int, signed: bool) -> None:
    """Raise ``ValueError`` if any element of ``x`` does not fit ``bitwidth``."""
    lo, hi = value_range(bitwidth, signed)
    x = np.asarray(x)
    if x.size and (x.min() < lo or x.max() > hi):
        kind = "signed" if signed else "unsigned"
        raise ValueError(
            f"values outside {kind} {bitwidth}-bit range [{lo}, {hi}]: "
            f"min={x.min()}, max={x.max()}"
        )


def slice_weights(bitwidth: int, slice_width: int) -> np.ndarray:
    """Powers of two (2^(j*slice_width)) applied to each slice at recompose."""
    n = num_slices(bitwidth, slice_width)
    return np.asarray([1 << (j * slice_width) for j in range(n)], dtype=np.int64)


def slice_vector(
    x: np.ndarray, bitwidth: int, slice_width: int, signed: bool
) -> np.ndarray:
    """Decompose integer vector ``x`` into bit slices.

    Parameters
    ----------
    x:
        Integer array (any shape); every element must fit ``bitwidth``.
    bitwidth:
        Logical operand bitwidth (1..64 supported; the paper uses 1..8).
    slice_width:
        Width of each slice (the paper's alpha / beta).
    signed:
        Two's-complement interpretation of ``x``.

    Returns
    -------
    np.ndarray
        Array of shape ``(num_slices, *x.shape)``.  Slice ``j`` holds bits
        ``[j*slice_width, (j+1)*slice_width)``.  All slices are unsigned
        values in ``[0, 2^slice_width)`` except, for signed inputs, the last
        slice which is a signed value in ``[-2^(s-1), 2^(s-1))``.
    """
    x = np.asarray(x, dtype=np.int64)
    check_range(x, bitwidth, signed)
    n = num_slices(bitwidth, slice_width)
    total_bits = n * slice_width
    # Work on the unsigned two's-complement image so bit extraction is
    # uniform; the top slice is re-signed afterwards.
    image = np.where(x < 0, x + (1 << total_bits), x).astype(np.uint64)
    mask = np.uint64((1 << slice_width) - 1)
    slices = np.empty((n,) + x.shape, dtype=np.int64)
    for j in range(n):
        slices[j] = ((image >> np.uint64(j * slice_width)) & mask).astype(np.int64)
    if signed and n > 0:
        top = slices[n - 1]
        wrap = 1 << slice_width
        half = 1 << (slice_width - 1)
        slices[n - 1] = np.where(top >= half, top - wrap, top)
    return slices


def recompose_vector(slices: np.ndarray, slice_width: int) -> np.ndarray:
    """Inverse of :func:`slice_vector`: shift-add slices back to values."""
    slices = np.asarray(slices, dtype=np.int64)
    if slices.ndim < 1 or slices.shape[0] == 0:
        raise ValueError("need at least one slice")
    out = np.zeros(slices.shape[1:], dtype=np.int64)
    for j in range(slices.shape[0]):
        out += slices[j] << (j * slice_width)
    return out


def sliced_dot_product_terms(
    x: np.ndarray,
    w: np.ndarray,
    bw_x: int,
    bw_w: int,
    slice_x: int,
    slice_w: int,
    signed_x: bool = True,
    signed_w: bool = True,
) -> list[tuple[int, int]]:
    """Per-(j, k) narrow dot products and their shift amounts (Eq. 4).

    Returns a list of ``(shift, partial)`` pairs where ``partial`` is the
    integer dot product of slice ``j`` of ``x`` with slice ``k`` of ``w``
    and ``shift = slice_x*j + slice_w*k``.  Summing ``partial << shift``
    over all pairs yields the exact wide dot product.  This is precisely
    the work distribution across NBVEs inside a CVU.
    """
    x = np.asarray(x, dtype=np.int64)
    w = np.asarray(w, dtype=np.int64)
    if x.shape != w.shape:
        raise ValueError(f"shape mismatch: {x.shape} vs {w.shape}")
    xs = slice_vector(x, bw_x, slice_x, signed_x)
    ws = slice_vector(w, bw_w, slice_w, signed_w)
    terms = []
    for j in range(xs.shape[0]):
        for k in range(ws.shape[0]):
            partial = int(np.dot(xs[j], ws[k]))
            terms.append((slice_x * j + slice_w * k, partial))
    return terms


def sliced_dot_product(
    x: np.ndarray,
    w: np.ndarray,
    bw_x: int,
    bw_w: int,
    slice_x: int,
    slice_w: int,
    signed_x: bool = True,
    signed_w: bool = True,
) -> int:
    """Exact dot product computed through bit-parallel composition (Eq. 4)."""
    terms = sliced_dot_product_terms(
        x, w, bw_x, bw_w, slice_x, slice_w, signed_x, signed_w
    )
    return sum(partial << shift for shift, partial in terms)
