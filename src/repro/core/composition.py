"""Composition planning for a Composable Vector Unit.

A CVU contains ``(max_bitwidth / slice_width)^2`` Narrow-Bitwidth Vector
Engines (NBVEs).  Depending on the runtime operand bitwidths, NBVEs are
grouped into clusters (paper Fig. 3-b/c):

* homogeneous 8-bit x 8-bit: all 16 NBVEs cooperate on one dot product,
* 8-bit x 2-bit: 4 clusters of 4 NBVEs each -> 4 independent dot-product
  lanes -> 4x throughput,
* 2-bit x 2-bit: 16 independent NBVEs -> 16x throughput.

The :class:`CompositionPlan` captures which NBVE computes which
(slice_j, slice_k) pair, the shift applied to its output, and the resulting
throughput multiplier relative to the full-bitwidth mode.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .bitslice import num_slices

__all__ = ["NBVEAssignment", "CompositionPlan", "plan_composition"]


@dataclass(frozen=True)
class NBVEAssignment:
    """One NBVE's role inside a cluster.

    Attributes
    ----------
    nbve_id:
        Flat index of the NBVE inside the CVU.
    group:
        Cluster index (independent dot-product lane).
    slice_x, slice_w:
        Which bit-slice of the input / weight operand this NBVE consumes.
    shift:
        Left shift applied to this NBVE's scalar output before cluster-level
        aggregation (``slice_width * (slice_x + slice_w)``).
    """

    nbve_id: int
    group: int
    slice_x: int
    slice_w: int
    shift: int


@dataclass(frozen=True)
class CompositionPlan:
    """Runtime configuration of a CVU for a given operand bitwidth pair."""

    slice_width: int
    max_bitwidth: int
    bw_x: int
    bw_w: int
    n_nbve_total: int
    slices_x: int
    slices_w: int
    nbves_per_group: int
    n_groups: int
    assignments: tuple[NBVEAssignment, ...] = field(repr=False)

    @property
    def n_nbve_used(self) -> int:
        return self.n_groups * self.nbves_per_group

    @property
    def utilization(self) -> float:
        """Fraction of NBVEs doing useful work in this mode."""
        return self.n_nbve_used / self.n_nbve_total

    @property
    def throughput_multiplier(self) -> int:
        """Independent dot-product lanes vs. the full-bitwidth mode (=1)."""
        return self.n_groups

    @property
    def max_shift(self) -> int:
        return max(a.shift for a in self.assignments)


def plan_composition(
    bw_x: int, bw_w: int, slice_width: int = 2, max_bitwidth: int = 8
) -> CompositionPlan:
    """Build the NBVE grouping for operand bitwidths ``(bw_x, bw_w)``.

    Raises
    ------
    ValueError
        If an operand bitwidth exceeds the CVU's supported maximum, or if
        the geometry is degenerate.
    """
    if not 1 <= bw_x <= max_bitwidth:
        raise ValueError(f"bw_x={bw_x} outside supported range [1, {max_bitwidth}]")
    if not 1 <= bw_w <= max_bitwidth:
        raise ValueError(f"bw_w={bw_w} outside supported range [1, {max_bitwidth}]")
    if max_bitwidth % slice_width != 0:
        raise ValueError(
            f"slice_width={slice_width} must divide max_bitwidth={max_bitwidth}"
        )

    slices_per_operand = max_bitwidth // slice_width
    n_nbve_total = slices_per_operand * slices_per_operand
    slices_x = num_slices(bw_x, slice_width)
    slices_w = num_slices(bw_w, slice_width)
    nbves_per_group = slices_x * slices_w
    n_groups = n_nbve_total // nbves_per_group

    assignments = []
    nbve_id = 0
    for group in range(n_groups):
        for j in range(slices_x):
            for k in range(slices_w):
                assignments.append(
                    NBVEAssignment(
                        nbve_id=nbve_id,
                        group=group,
                        slice_x=j,
                        slice_w=k,
                        shift=slice_width * (j + k),
                    )
                )
                nbve_id += 1
    return CompositionPlan(
        slice_width=slice_width,
        max_bitwidth=max_bitwidth,
        bw_x=bw_x,
        bw_w=bw_w,
        n_nbve_total=n_nbve_total,
        slices_x=slices_x,
        slices_w=slices_w,
        nbves_per_group=nbves_per_group,
        n_groups=n_groups,
        assignments=tuple(assignments),
    )
