"""Composable Vector Unit (CVU) functional model.

A CVU (paper Fig. 3) encapsulates ``(max_bitwidth/slice_width)^2`` NBVEs.
Per cycle it computes, depending on the active :class:`CompositionPlan`:

* one full-bitwidth dot product of length ``lanes`` (homogeneous mode), or
* ``n_groups`` independent reduced-bitwidth dot products of length
  ``lanes`` each (heterogeneous / bit-flexible modes).

Longer vectors are processed by temporal chunking with an accumulator,
exactly as the systolic array streams tiles through the unit.  The model is
bit-exact: results always equal plain integer dot products.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .bitslice import slice_vector
from .composition import CompositionPlan, plan_composition
from .nbve import NBVE

__all__ = ["CVUConfig", "CVUResult", "CVU"]


@dataclass(frozen=True)
class CVUConfig:
    """Static hardware parameters of a CVU.

    The paper's final design point: 2-bit slicing, 8-bit maximum operands,
    16 lanes per NBVE, hence 16 NBVEs and 256 2-bit multipliers per CVU.
    """

    slice_width: int = 2
    max_bitwidth: int = 8
    lanes: int = 16

    def __post_init__(self) -> None:
        if self.max_bitwidth % self.slice_width != 0:
            raise ValueError(
                f"slice_width={self.slice_width} must divide "
                f"max_bitwidth={self.max_bitwidth}"
            )
        if self.lanes < 1:
            raise ValueError(f"lanes must be >= 1, got {self.lanes}")

    @property
    def n_nbve(self) -> int:
        per_operand = self.max_bitwidth // self.slice_width
        return per_operand * per_operand

    @property
    def multipliers(self) -> int:
        """Total narrow multipliers in the CVU."""
        return self.n_nbve * self.lanes

    @property
    def peak_macs_per_cycle(self) -> int:
        """Full-bitwidth (8-bit x 8-bit) MAC throughput per cycle."""
        return self.lanes


@dataclass(frozen=True)
class CVUResult:
    """Outcome of streaming one (multi-lane) dot product through a CVU."""

    values: tuple[int, ...]
    cycles: int
    nbve_invocations: int

    @property
    def value(self) -> int:
        if len(self.values) != 1:
            raise ValueError(f"result holds {len(self.values)} lanes, not 1")
        return self.values[0]


class CVU:
    """Functional, cycle-counting model of one Composable Vector Unit."""

    def __init__(self, config: CVUConfig | None = None) -> None:
        self.config = config or CVUConfig()
        self.nbves = [
            NBVE(lanes=self.config.lanes, slice_width=self.config.slice_width)
            for _ in range(self.config.n_nbve)
        ]
        self.cycles = 0

    def plan(self, bw_x: int, bw_w: int) -> CompositionPlan:
        """Composition plan for a runtime operand bitwidth pair."""
        return plan_composition(
            bw_x, bw_w, self.config.slice_width, self.config.max_bitwidth
        )

    def dot_product(
        self,
        x: np.ndarray,
        w: np.ndarray,
        bw_x: int,
        bw_w: int,
        signed_x: bool = True,
        signed_w: bool = True,
    ) -> CVUResult:
        """Exact dot product of two vectors of arbitrary length (one lane)."""
        result = self.grouped_dot_products(
            [np.asarray(x)], [np.asarray(w)], bw_x, bw_w, signed_x, signed_w
        )
        return result

    def grouped_dot_products(
        self,
        xs: Sequence[np.ndarray],
        ws: Sequence[np.ndarray],
        bw_x: int,
        bw_w: int,
        signed_x: bool = True,
        signed_w: bool = True,
    ) -> CVUResult:
        """Compute up to ``n_groups`` independent dot products concurrently.

        ``xs[i] . ws[i]`` is computed on cluster ``i``.  The number of lane
        pairs must not exceed the plan's group count -- that is the
        hardware's parallelism limit for the given bitwidths.
        """
        plan = self.plan(bw_x, bw_w)
        if len(xs) != len(ws):
            raise ValueError(f"lane count mismatch: {len(xs)} vs {len(ws)}")
        if not xs:
            raise ValueError("need at least one lane")
        if len(xs) > plan.n_groups:
            raise ValueError(
                f"{len(xs)} concurrent dot products requested but the "
                f"{bw_x}b x {bw_w}b composition supports {plan.n_groups}"
            )

        lane_totals = [0] * len(xs)
        max_cycles = 0
        invocations = 0
        by_group: dict[int, list] = {}
        for a in plan.assignments:
            by_group.setdefault(a.group, []).append(a)

        for lane, (x, w) in enumerate(zip(xs, ws)):
            x = np.asarray(x, dtype=np.int64)
            w = np.asarray(w, dtype=np.int64)
            if x.shape != w.shape or x.ndim != 1:
                raise ValueError("each lane needs equal-length 1-D vectors")
            x_slices = slice_vector(x, bw_x, self.config.slice_width, signed_x)
            w_slices = slice_vector(w, bw_w, self.config.slice_width, signed_w)
            n = x.shape[0]
            chunks = max(1, -(-n // self.config.lanes))
            max_cycles = max(max_cycles, chunks)
            total = 0
            for c in range(chunks):
                lo, hi = c * self.config.lanes, min(n, (c + 1) * self.config.lanes)
                for a in by_group[lane]:
                    # The MSB slice of a signed operand is the only signed one.
                    sa = signed_x and a.slice_x == plan.slices_x - 1
                    sb = signed_w and a.slice_w == plan.slices_w - 1
                    partial = self.nbves[a.nbve_id].compute(
                        x_slices[a.slice_x, lo:hi],
                        w_slices[a.slice_w, lo:hi],
                        signed_a=sa,
                        signed_b=sb,
                    )
                    invocations += 1
                    total += partial << a.shift
            lane_totals[lane] = total

        self.cycles += max_cycles
        return CVUResult(
            values=tuple(lane_totals),
            cycles=max_cycles,
            nbve_invocations=invocations,
        )

    def effective_macs_per_cycle(self, bw_x: int, bw_w: int) -> int:
        """MAC throughput for a bitwidth pair (lanes x group parallelism)."""
        return self.config.lanes * self.plan(bw_x, bw_w).n_groups

    def reset_counters(self) -> None:
        self.cycles = 0
        for nbve in self.nbves:
            nbve.reset_counters()
