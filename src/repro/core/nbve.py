"""Narrow-Bitwidth Vector Engine (NBVE) functional model.

An NBVE is a spatial array of ``lanes`` narrow multipliers
(``slice_width x slice_width`` bits) feeding a private adder tree
(paper Fig. 3-a).  Per invocation it consumes two bit-sliced sub-vectors of
up to ``lanes`` elements and emits one scalar: their dot product.

Sign handling mirrors the hardware: each multiplier supports an
(signed, signed) mode pair selected per invocation, because the
most-significant slice of a two's-complement operand is signed while the
remaining slices are unsigned.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .bitslice import check_range

__all__ = ["NBVE"]


@dataclass
class NBVE:
    """Functional model of one narrow-bitwidth vector engine.

    Attributes
    ----------
    lanes:
        Number of narrow multipliers (the paper's L; 16 in the final design).
    slice_width:
        Operand width of each multiplier in bits (the paper's 2-bit slicing).
    """

    lanes: int = 16
    slice_width: int = 2
    invocations: int = field(default=0, repr=False)
    macs_performed: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.lanes < 1:
            raise ValueError(f"lanes must be >= 1, got {self.lanes}")
        if self.slice_width < 1:
            raise ValueError(f"slice_width must be >= 1, got {self.slice_width}")

    def compute(
        self,
        a: np.ndarray,
        b: np.ndarray,
        signed_a: bool = False,
        signed_b: bool = False,
    ) -> int:
        """Dot product of two slice sub-vectors (one NBVE invocation).

        Vectors shorter than ``lanes`` model an underutilised invocation
        (idle multipliers contribute zero).  Vectors longer than ``lanes``
        are rejected: the caller (the CVU) is responsible for temporal
        chunking.
        """
        a = np.asarray(a, dtype=np.int64)
        b = np.asarray(b, dtype=np.int64)
        if a.ndim != 1 or b.ndim != 1:
            raise ValueError("NBVE operands must be 1-D slice sub-vectors")
        if a.shape != b.shape:
            raise ValueError(f"operand length mismatch: {a.shape} vs {b.shape}")
        if a.shape[0] > self.lanes:
            raise ValueError(
                f"sub-vector length {a.shape[0]} exceeds NBVE lanes {self.lanes}"
            )
        check_range(a, self.slice_width, signed_a)
        check_range(b, self.slice_width, signed_b)
        self.invocations += 1
        self.macs_performed += int(a.shape[0])
        return int(np.dot(a, b))

    @property
    def adder_tree_inputs(self) -> int:
        """Width (element count) of the private adder tree."""
        return self.lanes

    @property
    def product_bits(self) -> int:
        """Bitwidth of each multiplier output feeding the adder tree."""
        return 2 * self.slice_width

    def reset_counters(self) -> None:
        self.invocations = 0
        self.macs_performed = 0
