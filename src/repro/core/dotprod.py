"""Vectorised bit-parallel matrix multiplication.

:mod:`repro.core.cvu` models a single hardware unit faithfully (per-NBVE
invocations, cycle counts).  For running whole quantized networks through
the composed arithmetic (``repro.quant.inference``) we need the same
mathematics executed over full matrices at numpy speed.  This module
provides that: a matmul computed slice-pair by slice-pair exactly as the
CVU array would, verified bit-exact against plain integer matmul.
"""

from __future__ import annotations

import numpy as np

from .bitslice import slice_vector

__all__ = ["reference_matmul", "composed_matmul", "composition_workload"]


def reference_matmul(x: np.ndarray, w: np.ndarray) -> np.ndarray:
    """Plain integer matmul used as the golden reference."""
    return np.matmul(np.asarray(x, dtype=np.int64), np.asarray(w, dtype=np.int64))


def composed_matmul(
    x: np.ndarray,
    w: np.ndarray,
    bw_x: int,
    bw_w: int,
    slice_width: int = 2,
    signed_x: bool = True,
    signed_w: bool = True,
) -> np.ndarray:
    """``x @ w`` computed through bit-parallel vector composition (Eq. 4).

    ``x`` has shape ``(..., K)`` and ``w`` shape ``(K, N)``.  Each
    (slice_j of x, slice_k of w) pair contributes a narrow-bitwidth matmul
    shifted by ``slice_width * (j + k)`` -- the exact computation the CVU
    array performs spatially.
    """
    x = np.asarray(x, dtype=np.int64)
    w = np.asarray(w, dtype=np.int64)
    if x.shape[-1] != w.shape[0]:
        raise ValueError(f"inner dims differ: {x.shape[-1]} vs {w.shape[0]}")
    x_slices = slice_vector(x, bw_x, slice_width, signed_x)
    w_slices = slice_vector(w, bw_w, slice_width, signed_w)
    out = np.zeros(x.shape[:-1] + (w.shape[1],), dtype=np.int64)
    for j in range(x_slices.shape[0]):
        for k in range(w_slices.shape[0]):
            shift = slice_width * (j + k)
            out += np.matmul(x_slices[j], w_slices[k]) << shift
    return out


def composition_workload(
    x_shape: tuple[int, ...],
    w_shape: tuple[int, int],
    bw_x: int,
    bw_w: int,
    slice_width: int = 2,
) -> int:
    """Narrow (slice x slice) multiply count for a composed matmul.

    Useful for cross-checking throughput models: the narrow-MAC count is
    ``wide_MACs * slices_x * slices_w``.
    """
    from .bitslice import num_slices

    wide_macs = int(np.prod(x_shape[:-1])) * x_shape[-1] * w_shape[1]
    return wide_macs * num_slices(bw_x, slice_width) * num_slices(bw_w, slice_width)
