"""Bit-slice sparsity analysis (the Laconic-style extension).

The paper's related work (Laconic, ISCA'19) combines spatial bit-level
composability with *bit-sparsity*: many bit slices of quantized DNN
tensors are zero, and hardware that skips zero slices can cut ineffectual
work.  The paper leaves this as an orthogonal direction; this module
quantifies the opportunity on the composed representation:

* :func:`slice_sparsity` -- fraction of zero slices per significance
  position;
* :func:`effectual_fraction` -- share of slice-pair multiplications with
  both slices non-zero (the work a slice-skipping CVU would perform);
* :func:`ideal_skip_speedup` -- the upper-bound speedup from skipping.

These feed the ``bench_ablation_bit_sparsity`` bench.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .bitslice import num_slices, slice_vector

__all__ = [
    "SliceSparsity",
    "slice_sparsity",
    "effectual_fraction",
    "ideal_skip_speedup",
]


@dataclass(frozen=True)
class SliceSparsity:
    """Zero-slice statistics of one tensor."""

    bitwidth: int
    slice_width: int
    per_slice_zero_fraction: tuple[float, ...]
    overall_zero_fraction: float

    @property
    def n_slices(self) -> int:
        return len(self.per_slice_zero_fraction)


def slice_sparsity(
    x: np.ndarray, bitwidth: int, slice_width: int = 2, signed: bool = True
) -> SliceSparsity:
    """Measure the fraction of zero slices at each significance position."""
    x = np.asarray(x)
    if x.size == 0:
        raise ValueError("cannot analyse an empty tensor")
    slices = slice_vector(x.reshape(-1), bitwidth, slice_width, signed)
    per_slice = tuple(float(np.mean(s == 0)) for s in slices)
    overall = float(np.mean(slices == 0))
    return SliceSparsity(
        bitwidth=bitwidth,
        slice_width=slice_width,
        per_slice_zero_fraction=per_slice,
        overall_zero_fraction=overall,
    )


def effectual_fraction(
    x: np.ndarray,
    w: np.ndarray,
    bw_x: int,
    bw_w: int,
    slice_width: int = 2,
    signed_x: bool = True,
    signed_w: bool = True,
) -> float:
    """Fraction of slice-pair products where both slices are non-zero.

    This is the work a zero-skipping composable unit would actually do;
    the complement is ineffectual computation the dense CVU performs
    anyway.
    """
    x = np.asarray(x).reshape(-1)
    w = np.asarray(w).reshape(-1)
    if x.shape != w.shape:
        raise ValueError("operand shapes must match")
    xs = slice_vector(x, bw_x, slice_width, signed_x) != 0
    ws = slice_vector(w, bw_w, slice_width, signed_w) != 0
    total = xs.shape[0] * ws.shape[0] * x.shape[0]
    effectual = 0
    for j in range(xs.shape[0]):
        for k in range(ws.shape[0]):
            effectual += int(np.sum(xs[j] & ws[k]))
    return effectual / total


def ideal_skip_speedup(
    x: np.ndarray,
    w: np.ndarray,
    bw_x: int,
    bw_w: int,
    slice_width: int = 2,
    signed_x: bool = True,
    signed_w: bool = True,
) -> float:
    """Upper-bound speedup of a slice-skipping CVU over the dense CVU.

    Assumes perfect load balance and zero skip overhead (the Laconic
    ideal); real designs recover a fraction of this.
    """
    fraction = effectual_fraction(
        x, w, bw_x, bw_w, slice_width, signed_x, signed_w
    )
    if fraction <= 0:
        return float(num_slices(bw_x, slice_width) * num_slices(bw_w, slice_width))
    return 1.0 / fraction
