"""Compiler stack: ISA, layer lowering, and program execution."""

from .executor import ExecutionResult, Executor, functional_check
from .isa import Barrier, GemmTile, Instruction, LoadTile, Program, SetMode, StoreTile
from .lowering import lower_layer, lower_network

__all__ = [
    "ExecutionResult",
    "Executor",
    "functional_check",
    "Barrier",
    "GemmTile",
    "Instruction",
    "LoadTile",
    "Program",
    "SetMode",
    "StoreTile",
    "lower_layer",
    "lower_network",
]
