"""Program execution: timing model and functional semantics checking.

:class:`Executor` runs a lowered :class:`~repro.compiler.isa.Program` on a
platform + memory pair using the same double-buffered timing rules as the
analytical simulator -- per barrier-delimited segment,
``cycles = max(compute, memory)``.  Executing the program lowered from a
network therefore reproduces ``simulate_network``'s cycle totals exactly
(an invariant the tests pin down).

:func:`functional_check` additionally validates ISA *semantics*: for each
GemmTile it draws random operands at the active mode's bitwidths and
verifies the composed bit-parallel GEMM matches plain integer arithmetic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..core.bitslice import value_range
from ..core.dotprod import composed_matmul, reference_matmul
from ..hw.dram import MemorySpec
from ..hw.platforms import AcceleratorSpec
from ..sim.performance import gemm_compute_cycles
from .isa import Barrier, GemmTile, LoadTile, Program, SetMode, StoreTile

__all__ = ["ExecutionResult", "Executor", "functional_check"]


@dataclass(frozen=True)
class ExecutionResult:
    """Timing outcome of one program run."""

    cycles: int
    compute_cycles: int
    memory_cycles: int
    traffic_bytes: int
    macs: int
    segments: int

    def seconds(self, frequency_hz: float) -> float:
        return self.cycles / frequency_hz


class Executor:
    """Double-buffered timing executor for lowered programs."""

    def __init__(self, spec: AcceleratorSpec, memory: MemorySpec) -> None:
        self.spec = spec
        self.memory = memory

    def run(self, program: Program) -> ExecutionResult:
        program.validate()
        bytes_per_cycle = self.memory.bytes_per_cycle(self.spec.frequency_hz)
        mode: tuple[int, int] | None = None
        total_cycles = 0
        total_compute = 0
        total_memory = 0
        traffic = 0
        macs = 0
        segments = 0

        seg_compute = 0
        seg_bytes = 0
        for instruction in program:
            if isinstance(instruction, SetMode):
                mode = (instruction.bw_act, instruction.bw_w)
            elif isinstance(instruction, (LoadTile, StoreTile)):
                seg_bytes += instruction.num_bytes
            elif isinstance(instruction, GemmTile):
                if mode is None:
                    raise ValueError("GemmTile before SetMode")
                seg_compute += gemm_compute_cycles(
                    instruction.m,
                    instruction.k,
                    instruction.n,
                    instruction.count,
                    self.spec,
                    mode[0],
                    mode[1],
                )
                macs += instruction.macs
            elif isinstance(instruction, Barrier):
                seg_memory = math.ceil(seg_bytes / bytes_per_cycle)
                total_cycles += max(seg_compute, seg_memory)
                total_compute += seg_compute
                total_memory += seg_memory
                traffic += seg_bytes
                segments += 1
                seg_compute = 0
                seg_bytes = 0
        return ExecutionResult(
            cycles=total_cycles,
            compute_cycles=total_compute,
            memory_cycles=total_memory,
            traffic_bytes=traffic,
            macs=macs,
            segments=segments,
        )


def functional_check(
    program: Program, max_elements: int = 4096, seed: int = 0
) -> int:
    """Prove ISA semantics: composed GEMMs equal integer GEMMs.

    For every GemmTile (downscaled to at most ``max_elements`` per operand
    so gate counts stay testable), random operands are drawn at the active
    mode's bitwidths and the composed bit-parallel product is compared to
    the integer reference.  Returns the number of GEMMs checked; raises on
    any mismatch.
    """
    rng = np.random.default_rng(seed)
    mode: tuple[int, int] | None = None
    checked = 0
    for instruction in program:
        if isinstance(instruction, SetMode):
            mode = (instruction.bw_act, instruction.bw_w)
        elif isinstance(instruction, GemmTile):
            if mode is None:
                raise ValueError("GemmTile before SetMode")
            bw_act, bw_w = mode
            scale = max(
                1.0,
                (instruction.m * instruction.k / max_elements) ** 0.5,
                (instruction.k * instruction.n / max_elements) ** 0.5,
            )
            m = max(1, int(instruction.m / scale))
            k = max(1, int(instruction.k / scale))
            n = max(1, int(instruction.n / scale))
            lo_a, hi_a = value_range(bw_act, True)
            lo_w, hi_w = value_range(bw_w, True)
            a = rng.integers(lo_a, hi_a + 1, size=(m, k))
            w = rng.integers(lo_w, hi_w + 1, size=(k, n))
            got = composed_matmul(a, w, bw_act, bw_w)
            if not np.array_equal(got, reference_matmul(a, w)):
                raise AssertionError(
                    f"composed GEMM mismatch at mode {bw_act}x{bw_w}"
                )
            checked += 1
    return checked
