"""Lowering: DNN layers -> accelerator instruction streams.

Mirrors the decisions the analytical simulator makes (same tiling planner,
same bitwidth modes) so that executing the lowered program reproduces the
simulator's cycle and traffic totals exactly -- tested in
``tests/compiler/test_compiler.py``.
"""

from __future__ import annotations

from ..hw.platforms import AcceleratorSpec
from ..nn.graph import Network
from ..nn.layers import Conv2D
from ..sim.tiling import BufferSplit, plan_traffic
from .isa import Barrier, GemmTile, LoadTile, Program, SetMode, StoreTile

__all__ = ["lower_layer", "lower_network"]


def lower_layer(
    layer,
    network: Network,
    spec: AcceleratorSpec,
    split: BufferSplit = BufferSplit(),
) -> Program | None:
    """Lower one weighted layer; ``None`` for compute-free layers."""
    gemms = layer.gemms(network.batch)
    if not gemms:
        return None
    bw = network.bitwidth(layer.name)
    program = Program()
    program.append(SetMode(bw.activations, bw.weights))
    for gemm in gemms:
        unique_inputs = None
        if isinstance(layer, Conv2D):
            unique_inputs = layer.input_elements(network.batch) // gemm.count
        plan = plan_traffic(
            gemm,
            bw.activations,
            bw.weights,
            spec,
            split=split,
            input_unique_elements=unique_inputs,
        )
        program.append(LoadTile("weights", plan.weight_traffic))
        program.append(LoadTile("activations", plan.input_traffic))
        program.append(GemmTile(gemm.m, gemm.k, gemm.n, gemm.count))
        program.append(StoreTile(plan.output_traffic))
    program.append(Barrier(label=layer.name))
    program.validate()
    return program


def lower_network(
    network: Network,
    spec: AcceleratorSpec,
    split: BufferSplit = BufferSplit(),
) -> Program:
    """Lower every weighted layer of ``network`` into one program."""
    program = Program()
    lowered_any = False
    for layer in network.layers:
        layer_program = lower_layer(layer, network, spec, split=split)
        if layer_program is None:
            continue
        lowered_any = True
        program.instructions.extend(layer_program.instructions)
    if not lowered_any:
        raise ValueError(f"{network.name} has no lowerable layers")
    program.validate()
    return program
