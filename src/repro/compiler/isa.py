"""Instruction set for the BPVeC-style accelerator.

The paper's accelerator, like BitFusion's, is driven by a small
tile-granular ISA: configure the composition mode, move tiles between DRAM
and the scratchpads, fire tile GEMMs, and synchronise at layer boundaries.
This module defines those instructions and the :class:`Program` container;
:mod:`repro.compiler.lowering` produces programs from networks and
:mod:`repro.compiler.executor` runs them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Union

__all__ = [
    "SetMode",
    "LoadTile",
    "StoreTile",
    "GemmTile",
    "Barrier",
    "Instruction",
    "Program",
]


@dataclass(frozen=True)
class SetMode:
    """Reconfigure the CVUs' composition for an operand bitwidth pair."""

    bw_act: int
    bw_w: int

    def __post_init__(self) -> None:
        if not 1 <= self.bw_act <= 8 or not 1 <= self.bw_w <= 8:
            raise ValueError(f"unsupported mode {self.bw_act}x{self.bw_w}")


@dataclass(frozen=True)
class LoadTile:
    """DRAM -> scratchpad transfer."""

    buffer: str  # "weights" or "activations"
    num_bytes: int

    def __post_init__(self) -> None:
        if self.buffer not in ("weights", "activations"):
            raise ValueError(f"unknown buffer {self.buffer!r}")
        if self.num_bytes < 0:
            raise ValueError("byte count must be non-negative")


@dataclass(frozen=True)
class StoreTile:
    """Scratchpad -> DRAM write-back of outputs."""

    num_bytes: int

    def __post_init__(self) -> None:
        if self.num_bytes < 0:
            raise ValueError("byte count must be non-negative")


@dataclass(frozen=True)
class GemmTile:
    """Stream one GEMM through the array under the current mode."""

    m: int
    k: int
    n: int
    count: int = 1

    def __post_init__(self) -> None:
        if min(self.m, self.k, self.n, self.count) < 1:
            raise ValueError(f"degenerate GEMM tile {self}")

    @property
    def macs(self) -> int:
        return self.m * self.k * self.n * self.count


@dataclass(frozen=True)
class Barrier:
    """Layer boundary: all outstanding transfers and GEMMs complete."""

    label: str = ""


Instruction = Union[SetMode, LoadTile, StoreTile, GemmTile, Barrier]


@dataclass
class Program:
    """An ordered instruction stream with aggregate accessors."""

    instructions: list = field(default_factory=list)

    def append(self, instruction: Instruction) -> None:
        self.instructions.append(instruction)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)

    # ------------------------------------------------------------------
    @property
    def total_load_bytes(self) -> int:
        return sum(i.num_bytes for i in self.instructions if isinstance(i, LoadTile))

    @property
    def total_store_bytes(self) -> int:
        return sum(i.num_bytes for i in self.instructions if isinstance(i, StoreTile))

    @property
    def total_traffic_bytes(self) -> int:
        return self.total_load_bytes + self.total_store_bytes

    @property
    def total_macs(self) -> int:
        return sum(i.macs for i in self.instructions if isinstance(i, GemmTile))

    def validate(self) -> None:
        """Static checks: every GEMM runs under an explicit mode; the
        program ends at a barrier (nothing left in flight)."""
        mode_set = False
        for instruction in self.instructions:
            if isinstance(instruction, SetMode):
                mode_set = True
            elif isinstance(instruction, GemmTile) and not mode_set:
                raise ValueError("GemmTile issued before any SetMode")
        if self.instructions and not isinstance(self.instructions[-1], Barrier):
            raise ValueError("program must end with a Barrier")

    def summary(self) -> str:
        kinds: dict[str, int] = {}
        for instruction in self.instructions:
            kinds[type(instruction).__name__] = (
                kinds.get(type(instruction).__name__, 0) + 1
            )
        parts = ", ".join(f"{v} {k}" for k, v in sorted(kinds.items()))
        return (
            f"Program({parts}; {self.total_macs / 1e6:.1f} MMACs, "
            f"{self.total_traffic_bytes / 1e6:.2f} MB traffic)"
        )
