"""Bitwidth assignment policies (paper Table I, rightmost column).

The paper evaluates two quantization regimes:

* **homogeneous**: every layer runs 8-bit x 8-bit (the fixed-bitwidth
  design points of Figs. 5/6);
* **heterogeneous**: deep-quantized bitwidths from the PACT/WRPN line of
  work that preserve full-precision accuracy -- AlexNet, Inception-v1 and
  ResNet-18 keep their first and last layers at 8-bit and run everything
  else at 4-bit; ResNet-50, RNN and LSTM run 4-bit everywhere
  (Figs. 7/8).
"""

from __future__ import annotations

from .graph import LayerBitwidth, Network

__all__ = [
    "homogeneous_8bit",
    "paper_heterogeneous",
    "uniform",
    "FIRST_LAST_8BIT_MODELS",
    "ALL_4BIT_MODELS",
]

FIRST_LAST_8BIT_MODELS = ("AlexNet", "Inception-v1", "ResNet-18")
ALL_4BIT_MODELS = ("ResNet-50", "RNN", "LSTM")


def uniform(network: Network, activations: int, weights: int) -> Network:
    """Assign one bitwidth pair to every weighted layer."""
    bw = LayerBitwidth(activations=activations, weights=weights)
    return network.set_bitwidths(
        {layer.name: bw for layer in network.weighted_layers}
    )


def homogeneous_8bit(network: Network) -> Network:
    """The fixed-bitwidth regime of Figs. 5/6."""
    return uniform(network, 8, 8)


def paper_heterogeneous(network: Network) -> Network:
    """The deep-quantized regime of Figs. 7/8 (Table I assignments)."""
    weighted = network.weighted_layers
    if not weighted:
        raise ValueError(f"{network.name} has no weighted layers to quantize")
    if network.name in ALL_4BIT_MODELS:
        return uniform(network, 4, 4)
    if network.name in FIRST_LAST_8BIT_MODELS:
        assignment = {
            layer.name: LayerBitwidth(4, 4) for layer in weighted
        }
        assignment[weighted[0].name] = LayerBitwidth(8, 8)
        assignment[weighted[-1].name] = LayerBitwidth(8, 8)
        return network.set_bitwidths(assignment)
    raise KeyError(
        f"no published heterogeneous assignment for {network.name!r}; "
        f"use uniform() to define one"
    )
