"""Layer shape algebra for the DNN intermediate representation.

Each layer type knows its multiply-accumulate count, parameter count, and
activation footprints, and can lower itself to one or more GEMM shapes --
the form the systolic simulator consumes (convolutions via implicit im2col,
recurrent cells as per-timestep matrix multiplies).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "Gemm",
    "Layer",
    "Conv2D",
    "Dense",
    "Pool2D",
    "RNNCell",
    "LSTMCell",
]


@dataclass(frozen=True)
class Gemm:
    """One (M x K) @ (K x N) matrix multiply, repeated ``count`` times.

    ``weight_resident_repeats`` marks repeats that *could* reuse on-chip
    weights if they fit (recurrent steps reuse weights across time).
    """

    m: int
    k: int
    n: int
    count: int = 1

    def __post_init__(self) -> None:
        if min(self.m, self.k, self.n, self.count) < 1:
            raise ValueError(f"degenerate GEMM {self}")

    @property
    def macs(self) -> int:
        return self.m * self.k * self.n * self.count

    @property
    def weight_elements(self) -> int:
        return self.k * self.n

    @property
    def input_elements(self) -> int:
        return self.m * self.k * self.count

    @property
    def output_elements(self) -> int:
        return self.m * self.n * self.count


class Layer:
    """Base class: a named layer with shape-derived statistics."""

    name: str

    # --- to be provided by subclasses ---------------------------------
    def macs(self, batch: int = 1) -> int:
        raise NotImplementedError

    def weight_count(self) -> int:
        raise NotImplementedError

    def input_elements(self, batch: int = 1) -> int:
        raise NotImplementedError

    def output_elements(self, batch: int = 1) -> int:
        raise NotImplementedError

    def gemms(self, batch: int = 1) -> list[Gemm]:
        raise NotImplementedError

    # --- shared -------------------------------------------------------
    @property
    def has_weights(self) -> bool:
        return self.weight_count() > 0

    def weight_bytes(self, bits: int = 8) -> int:
        return -(-self.weight_count() * bits // 8)

    def input_bytes(self, batch: int = 1, bits: int = 8) -> int:
        return -(-self.input_elements(batch) * bits // 8)

    def output_bytes(self, batch: int = 1, bits: int = 8) -> int:
        return -(-self.output_elements(batch) * bits // 8)


def _conv_out(size: int, kernel: int, stride: int, padding: int) -> int:
    out = (size + 2 * padding - kernel) // stride + 1
    if out < 1:
        raise ValueError(
            f"convolution output collapsed: size={size} kernel={kernel} "
            f"stride={stride} padding={padding}"
        )
    return out


@dataclass(frozen=True)
class Conv2D(Layer):
    """2-D convolution (optionally grouped)."""

    name: str
    in_channels: int
    out_channels: int
    kernel: int
    in_size: int
    stride: int = 1
    padding: int = 0
    groups: int = 1

    def __post_init__(self) -> None:
        if self.in_channels % self.groups or self.out_channels % self.groups:
            raise ValueError("groups must divide both channel counts")
        _conv_out(self.in_size, self.kernel, self.stride, self.padding)

    @property
    def out_size(self) -> int:
        return _conv_out(self.in_size, self.kernel, self.stride, self.padding)

    def weight_count(self) -> int:
        per_group_in = self.in_channels // self.groups
        return self.out_channels * per_group_in * self.kernel * self.kernel

    def macs(self, batch: int = 1) -> int:
        return batch * self.out_size * self.out_size * self.weight_count()

    def input_elements(self, batch: int = 1) -> int:
        return batch * self.in_channels * self.in_size * self.in_size

    def output_elements(self, batch: int = 1) -> int:
        return batch * self.out_channels * self.out_size * self.out_size

    def gemms(self, batch: int = 1) -> list[Gemm]:
        per_group_in = self.in_channels // self.groups
        per_group_out = self.out_channels // self.groups
        return [
            Gemm(
                m=batch * self.out_size * self.out_size,
                k=per_group_in * self.kernel * self.kernel,
                n=per_group_out,
                count=self.groups,
            )
        ]


@dataclass(frozen=True)
class Dense(Layer):
    """Fully connected layer."""

    name: str
    in_features: int
    out_features: int

    def weight_count(self) -> int:
        return self.in_features * self.out_features

    def macs(self, batch: int = 1) -> int:
        return batch * self.weight_count()

    def input_elements(self, batch: int = 1) -> int:
        return batch * self.in_features

    def output_elements(self, batch: int = 1) -> int:
        return batch * self.out_features

    def gemms(self, batch: int = 1) -> list[Gemm]:
        return [Gemm(m=batch, k=self.in_features, n=self.out_features)]


@dataclass(frozen=True)
class Pool2D(Layer):
    """Pooling: no MACs, but it moves activations and reshapes the net."""

    name: str
    channels: int
    kernel: int
    in_size: int
    stride: int = 2
    padding: int = 0

    @property
    def out_size(self) -> int:
        return _conv_out(self.in_size, self.kernel, self.stride, self.padding)

    def weight_count(self) -> int:
        return 0

    def macs(self, batch: int = 1) -> int:
        return 0

    def input_elements(self, batch: int = 1) -> int:
        return batch * self.channels * self.in_size * self.in_size

    def output_elements(self, batch: int = 1) -> int:
        return batch * self.channels * self.out_size * self.out_size

    def gemms(self, batch: int = 1) -> list[Gemm]:
        return []


@dataclass(frozen=True)
class RNNCell(Layer):
    """Elman RNN layer unrolled over ``steps`` timesteps.

    Per step: ``h_t = f(W_ih x_t + W_hh h_{t-1})`` -- one GEMM of
    ``K = input + hidden`` against ``N = hidden``.
    """

    name: str
    input_size: int
    hidden_size: int
    steps: int
    gates: int = 1  # 1 = vanilla RNN, 3 = GRU

    def weight_count(self) -> int:
        return self.gates * self.hidden_size * (self.input_size + self.hidden_size)

    def macs(self, batch: int = 1) -> int:
        return batch * self.steps * self.weight_count()

    def input_elements(self, batch: int = 1) -> int:
        return batch * self.steps * self.input_size

    def output_elements(self, batch: int = 1) -> int:
        return batch * self.steps * self.hidden_size

    def gemms(self, batch: int = 1) -> list[Gemm]:
        return [
            Gemm(
                m=batch,
                k=self.input_size + self.hidden_size,
                n=self.gates * self.hidden_size,
                count=self.steps,
            )
        ]


@dataclass(frozen=True)
class LSTMCell(RNNCell):
    """LSTM layer: four gates per step, same GEMM structure otherwise."""

    gates: int = 4
