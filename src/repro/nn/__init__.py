"""DNN intermediate representation and the paper's evaluated workloads."""

from .bitwidths import (
    ALL_4BIT_MODELS,
    FIRST_LAST_8BIT_MODELS,
    homogeneous_8bit,
    paper_heterogeneous,
    uniform,
)
from .graph import LayerBitwidth, Network
from .layers import Conv2D, Dense, Gemm, Layer, LSTMCell, Pool2D, RNNCell
from .models import (
    EVALUATION_CNN_BATCH,
    WORKLOAD_BUILDERS,
    evaluation_workloads,
    alexnet,
    inception_v1,
    lstm_workload,
    paper_workloads,
    resnet18,
    resnet50,
    rnn_workload,
)

__all__ = [
    "ALL_4BIT_MODELS",
    "FIRST_LAST_8BIT_MODELS",
    "homogeneous_8bit",
    "paper_heterogeneous",
    "uniform",
    "LayerBitwidth",
    "Network",
    "Conv2D",
    "Dense",
    "Gemm",
    "Layer",
    "LSTMCell",
    "Pool2D",
    "RNNCell",
    "EVALUATION_CNN_BATCH",
    "WORKLOAD_BUILDERS",
    "evaluation_workloads",
    "alexnet",
    "inception_v1",
    "lstm_workload",
    "paper_workloads",
    "resnet18",
    "resnet50",
    "rnn_workload",
]
