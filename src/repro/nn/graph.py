"""Network container and per-layer bitwidth assignment."""

from __future__ import annotations

from dataclasses import dataclass, field

from .layers import Layer

__all__ = ["LayerBitwidth", "Network"]


@dataclass(frozen=True)
class LayerBitwidth:
    """Operand bitwidths of one layer (activations x weights)."""

    activations: int = 8
    weights: int = 8

    def __post_init__(self) -> None:
        for bits in (self.activations, self.weights):
            if not 1 <= bits <= 8:
                raise ValueError(f"bitwidth {bits} outside supported range [1, 8]")


@dataclass
class Network:
    """A feed-forward DNN: ordered layers plus workload metadata.

    ``batch`` is the number of concurrent inputs the workload processes
    (for recurrent models: sequences).  Table I's operation counts
    correspond to one full batch.
    """

    name: str
    layers: list[Layer]
    batch: int = 1
    kind: str = "CNN"  # "CNN" or "RNN"
    _bitwidths: dict[str, LayerBitwidth] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.batch < 1:
            raise ValueError("batch must be >= 1")
        names = [layer.name for layer in self.layers]
        if len(names) != len(set(names)):
            raise ValueError(f"duplicate layer names in {self.name}")

    # ------------------------------------------------------------------
    # Bitwidths
    # ------------------------------------------------------------------
    def set_bitwidths(self, assignment: dict[str, LayerBitwidth]) -> "Network":
        unknown = set(assignment) - {layer.name for layer in self.layers}
        if unknown:
            raise KeyError(f"bitwidths assigned to unknown layers: {sorted(unknown)}")
        self._bitwidths = dict(assignment)
        return self

    def bitwidth(self, layer_name: str) -> LayerBitwidth:
        return self._bitwidths.get(layer_name, LayerBitwidth())

    @property
    def is_heterogeneous(self) -> bool:
        widths = {
            (self.bitwidth(l.name).activations, self.bitwidth(l.name).weights)
            for l in self.layers
            if l.has_weights
        }
        return len(widths) > 1

    # ------------------------------------------------------------------
    # Aggregate statistics (Table I columns)
    # ------------------------------------------------------------------
    @property
    def weighted_layers(self) -> list[Layer]:
        return [layer for layer in self.layers if layer.has_weights]

    def total_macs(self) -> int:
        return sum(layer.macs(self.batch) for layer in self.layers)

    def total_ops(self) -> int:
        """Multiply-adds counted as two operations each (Table I GOps)."""
        return 2 * self.total_macs()

    def model_bytes(self, bits: int = 8) -> int:
        return sum(layer.weight_bytes(bits) for layer in self.layers)

    def describe(self) -> str:
        rows = [f"{self.name} (batch={self.batch}, kind={self.kind})"]
        for layer in self.layers:
            bw = self.bitwidth(layer.name)
            rows.append(
                f"  {layer.name:<16} macs={layer.macs(self.batch):>14,} "
                f"params={layer.weight_count():>12,} "
                f"bw={bw.activations}x{bw.weights}"
            )
        return "\n".join(rows)
