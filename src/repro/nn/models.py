"""The six evaluated workloads (paper Table I).

Networks are defined layer-by-layer at standard ImageNet shapes
(AlexNet / Inception-v1 / ResNet-18 / ResNet-50) plus the two recurrent
workloads.  Batch sizes are chosen so each network's total operation count
matches Table I's GOps column; for the recurrent models the resulting
configuration (batch 16, 32 timesteps) also reproduces the paper's
memory-boundedness on DDR4 (Figs. 5/6).  See EXPERIMENTS.md, "Table I".
"""

from __future__ import annotations

from .graph import Network
from .layers import Conv2D, Dense, Layer, LSTMCell, Pool2D, RNNCell

__all__ = [
    "alexnet",
    "inception_v1",
    "resnet18",
    "resnet50",
    "rnn_workload",
    "lstm_workload",
    "WORKLOAD_BUILDERS",
    "paper_workloads",
]


def alexnet(batch: int = 1875) -> Network:
    """AlexNet (torchvision shape, 61M parameters, ~714M MACs/image)."""
    layers: list[Layer] = [
        Conv2D("conv1", 3, 64, kernel=11, in_size=224, stride=4, padding=2),
        Pool2D("pool1", 64, kernel=3, in_size=55, stride=2),
        Conv2D("conv2", 64, 192, kernel=5, in_size=27, padding=2),
        Pool2D("pool2", 192, kernel=3, in_size=27, stride=2),
        Conv2D("conv3", 192, 384, kernel=3, in_size=13, padding=1),
        Conv2D("conv4", 384, 256, kernel=3, in_size=13, padding=1),
        Conv2D("conv5", 256, 256, kernel=3, in_size=13, padding=1),
        Pool2D("pool5", 256, kernel=3, in_size=13, stride=2),
        Dense("fc6", 9216, 4096),
        Dense("fc7", 4096, 4096),
        Dense("fc8", 4096, 1000),
    ]
    return Network(name="AlexNet", layers=layers, batch=batch, kind="CNN")


def _inception_module(
    prefix: str,
    in_channels: int,
    size: int,
    b1: int,
    b3r: int,
    b3: int,
    b5r: int,
    b5: int,
    pool_proj: int,
) -> list[Layer]:
    """One GoogLeNet inception module (four parallel branches)."""
    return [
        Conv2D(f"{prefix}.1x1", in_channels, b1, kernel=1, in_size=size),
        Conv2D(f"{prefix}.3x3r", in_channels, b3r, kernel=1, in_size=size),
        Conv2D(f"{prefix}.3x3", b3r, b3, kernel=3, in_size=size, padding=1),
        Conv2D(f"{prefix}.5x5r", in_channels, b5r, kernel=1, in_size=size),
        Conv2D(f"{prefix}.5x5", b5r, b5, kernel=5, in_size=size, padding=2),
        Conv2D(f"{prefix}.pool", in_channels, pool_proj, kernel=1, in_size=size),
    ]


# GoogLeNet module table: (in_ch, size, 1x1, 3x3red, 3x3, 5x5red, 5x5, pool).
_INCEPTION_TABLE = {
    "3a": (192, 28, 64, 96, 128, 16, 32, 32),
    "3b": (256, 28, 128, 128, 192, 32, 96, 64),
    "4a": (480, 14, 192, 96, 208, 16, 48, 64),
    "4b": (512, 14, 160, 112, 224, 24, 64, 64),
    "4c": (512, 14, 128, 128, 256, 24, 64, 64),
    "4d": (512, 14, 112, 144, 288, 32, 64, 64),
    "4e": (528, 14, 256, 160, 320, 32, 128, 128),
    "5a": (832, 7, 256, 160, 320, 32, 128, 128),
    "5b": (832, 7, 384, 192, 384, 48, 128, 128),
}


def inception_v1(batch: int = 588) -> Network:
    """GoogLeNet / Inception-v1 (~6.6M parameters, ~1.5G MACs/image)."""
    layers: list[Layer] = [
        Conv2D("conv1", 3, 64, kernel=7, in_size=224, stride=2, padding=3),
        Pool2D("pool1", 64, kernel=3, in_size=112, stride=2, padding=1),
        Conv2D("conv2r", 64, 64, kernel=1, in_size=56),
        Conv2D("conv2", 64, 192, kernel=3, in_size=56, padding=1),
        Pool2D("pool2", 192, kernel=3, in_size=56, stride=2, padding=1),
    ]
    for name, (in_ch, size, b1, b3r, b3, b5r, b5, pp) in _INCEPTION_TABLE.items():
        layers.extend(_inception_module(name, in_ch, size, b1, b3r, b3, b5r, b5, pp))
        if name == "3b":
            layers.append(
                Pool2D("pool3", 480, kernel=3, in_size=28, stride=2, padding=1)
            )
        if name == "4e":
            layers.append(
                Pool2D("pool4", 832, kernel=3, in_size=14, stride=2, padding=1)
            )
    layers.append(Pool2D("avgpool", 1024, kernel=7, in_size=7, stride=1))
    layers.append(Dense("fc", 1024, 1000))
    return Network(name="Inception-v1", layers=layers, batch=batch, kind="CNN")


def _basic_block(
    prefix: str, in_ch: int, out_ch: int, size: int, stride: int
) -> list[Layer]:
    layers = [
        Conv2D(
            f"{prefix}.conv1",
            in_ch,
            out_ch,
            kernel=3,
            in_size=size,
            stride=stride,
            padding=1,
        ),
        Conv2D(
            f"{prefix}.conv2",
            out_ch,
            out_ch,
            kernel=3,
            in_size=size // stride,
            padding=1,
        ),
    ]
    if stride != 1 or in_ch != out_ch:
        layers.append(
            Conv2D(
                f"{prefix}.down", in_ch, out_ch, kernel=1, in_size=size, stride=stride
            )
        )
    return layers


def resnet18(batch: int = 1173) -> Network:
    """ResNet-18 (11.7M parameters, ~1.8G MACs/image)."""
    layers: list[Layer] = [
        Conv2D("conv1", 3, 64, kernel=7, in_size=224, stride=2, padding=3),
        Pool2D("pool1", 64, kernel=3, in_size=112, stride=2, padding=1),
    ]
    size, in_ch = 56, 64
    for stage, (out_ch, stride) in enumerate(
        [(64, 1), (128, 2), (256, 2), (512, 2)], start=1
    ):
        for block in range(2):
            s = stride if block == 0 else 1
            layers.extend(_basic_block(f"layer{stage}.{block}", in_ch, out_ch, size, s))
            size //= s
            in_ch = out_ch
    layers.append(Pool2D("avgpool", 512, kernel=7, in_size=7, stride=1))
    layers.append(Dense("fc", 512, 1000))
    return Network(name="ResNet-18", layers=layers, batch=batch, kind="CNN")


def _bottleneck(
    prefix: str, in_ch: int, mid: int, out_ch: int, size: int, stride: int
) -> list[Layer]:
    layers = [
        Conv2D(f"{prefix}.conv1", in_ch, mid, kernel=1, in_size=size),
        Conv2D(
            f"{prefix}.conv2",
            mid,
            mid,
            kernel=3,
            in_size=size,
            stride=stride,
            padding=1,
        ),
        Conv2D(f"{prefix}.conv3", mid, out_ch, kernel=1, in_size=size // stride),
    ]
    if stride != 1 or in_ch != out_ch:
        layers.append(
            Conv2D(
                f"{prefix}.down", in_ch, out_ch, kernel=1, in_size=size, stride=stride
            )
        )
    return layers


def resnet50(batch: int = 979) -> Network:
    """ResNet-50 (25.6M parameters, ~4.1G MACs/image)."""
    layers: list[Layer] = [
        Conv2D("conv1", 3, 64, kernel=7, in_size=224, stride=2, padding=3),
        Pool2D("pool1", 64, kernel=3, in_size=112, stride=2, padding=1),
    ]
    size, in_ch = 56, 64
    for stage, (mid, blocks, stride) in enumerate(
        [(64, 3, 1), (128, 4, 2), (256, 6, 2), (512, 3, 2)], start=1
    ):
        out_ch = mid * 4
        for block in range(blocks):
            s = stride if block == 0 else 1
            layers.extend(
                _bottleneck(f"layer{stage}.{block}", in_ch, mid, out_ch, size, s)
            )
            size //= s
            in_ch = out_ch
    layers.append(Pool2D("avgpool", 2048, kernel=7, in_size=7, stride=1))
    layers.append(Dense("fc", 2048, 1000))
    return Network(name="ResNet-50", layers=layers, batch=batch, kind="CNN")


def rnn_workload(batch: int = 16, steps: int = 32) -> Network:
    """Two-layer Elman RNN, 2048 hidden units (~16.8M parameters)."""
    layers: list[Layer] = [
        RNNCell("rnn1", input_size=2048, hidden_size=2048, steps=steps),
        RNNCell("rnn2", input_size=2048, hidden_size=2048, steps=steps),
    ]
    return Network(name="RNN", layers=layers, batch=batch, kind="RNN")


def lstm_workload(batch: int = 16, steps: int = 32) -> Network:
    """Single-layer LSTM, 2048 inputs x 1024 hidden (~12.6M parameters)."""
    layers: list[Layer] = [
        LSTMCell("lstm1", input_size=2048, hidden_size=1024, steps=steps),
    ]
    return Network(name="LSTM", layers=layers, batch=batch, kind="RNN")


WORKLOAD_BUILDERS = {
    "AlexNet": alexnet,
    "Inception-v1": inception_v1,
    "ResNet-18": resnet18,
    "ResNet-50": resnet50,
    "RNN": rnn_workload,
    "LSTM": lstm_workload,
}


def paper_workloads() -> list[Network]:
    """All six Table I workloads at their paper-scale batch sizes."""
    return [builder() for builder in WORKLOAD_BUILDERS.values()]


#: Batch used by the figure experiments for CNNs.  Table I's GOps column
#: implies large throughput batches; the speedup/energy figures, however,
#: reflect inference-style batching (EXPERIMENTS.md, "workload calibration").
EVALUATION_CNN_BATCH = 8


def evaluation_workloads(cnn_batch: int = EVALUATION_CNN_BATCH) -> list[Network]:
    """The six workloads at the batch sizes used for Figs. 5-9."""
    nets = []
    for name, builder in WORKLOAD_BUILDERS.items():
        if name in ("RNN", "LSTM"):
            nets.append(builder())
        else:
            nets.append(builder(batch=cnn_batch))
    return nets
