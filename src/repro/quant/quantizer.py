"""Linear (affine/symmetric) quantization.

The paper leans on the algorithmic result that DNN layers tolerate
heterogeneous sub-8-bit quantization (PACT, WRPN, QNN -- its refs [4, 8,
13]).  This module provides the quantizers the examples and the quantized
inference path use: per-tensor linear quantization with symmetric
(weights) and asymmetric (activations) variants.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.bitslice import value_range
from .tensors import QTensor

__all__ = ["LinearQuantizer", "quantization_error"]


@dataclass
class LinearQuantizer:
    """Per-tensor linear quantizer: ``q = clip(round(x / scale) + zero)``.

    Attributes
    ----------
    bits:
        Target bitwidth (1..8 on the evaluated hardware).
    signed:
        Two's-complement codes (typical for weights).
    symmetric:
        Force ``zero_point = 0``; preferred for weights so that integer
        dot products need no zero-point correction terms.
    """

    bits: int = 8
    signed: bool = True
    symmetric: bool = True
    scale: float | None = None
    zero_point: int = 0

    def __post_init__(self) -> None:
        if not 1 <= self.bits <= 16:
            raise ValueError(f"bits must be in [1, 16], got {self.bits}")
        if self.symmetric and not self.signed and self.bits < 2:
            raise ValueError("symmetric unsigned quantization needs >= 2 bits")

    @property
    def code_range(self) -> tuple[int, int]:
        return value_range(self.bits, self.signed)

    def fit(self, x: np.ndarray) -> "LinearQuantizer":
        """Choose scale/zero-point from the data range (min/max calibration)."""
        x = np.asarray(x, dtype=np.float64)
        if x.size == 0:
            raise ValueError("cannot calibrate on an empty tensor")
        lo_code, hi_code = self.code_range
        if self.symmetric:
            absmax = float(np.max(np.abs(x)))
            limit = max(abs(lo_code), hi_code)
            self.scale = absmax / limit if absmax > 0 else 1.0
            self.zero_point = 0
        else:
            x_min, x_max = float(x.min()), float(x.max())
            if x_max == x_min:
                self.scale = 1.0
                self.zero_point = int(np.clip(-round(x_min), lo_code, hi_code))
            else:
                self.scale = (x_max - x_min) / (hi_code - lo_code)
                self.zero_point = int(
                    np.clip(round(lo_code - x_min / self.scale), lo_code, hi_code)
                )
        return self

    def quantize(self, x: np.ndarray) -> QTensor:
        if self.scale is None:
            raise RuntimeError("quantizer not calibrated; call fit() first")
        lo, hi = self.code_range
        codes = np.clip(
            np.round(np.asarray(x, dtype=np.float64) / self.scale) + self.zero_point,
            lo,
            hi,
        ).astype(np.int64)
        return QTensor(
            values=codes,
            scale=self.scale,
            zero_point=self.zero_point,
            bits=self.bits,
            signed=self.signed,
        )

    def __call__(self, x: np.ndarray) -> QTensor:
        """Calibrate on ``x`` and quantize it in one step."""
        return self.fit(x).quantize(x)


def quantization_error(x: np.ndarray, q: QTensor) -> float:
    """RMS error introduced by quantizing ``x`` to ``q``."""
    diff = np.asarray(x, dtype=np.float64) - q.dequantize()
    return float(np.sqrt(np.mean(diff * diff)))
