"""Layer-wise quantization sensitivity and automatic bitwidth assignment.

The paper's heterogeneous mode rests on the algorithmic results of PACT /
WRPN / QNN / ReLeQ (its refs [4, 5, 8, 13, 16]): individual DNN layers
tolerate different bitwidths, and an assignment that keeps sensitive
layers (typically first and last) wide while deep-quantizing the rest
preserves full-precision accuracy.  This module reproduces that substrate
in miniature on the numpy models:

* :func:`layer_sensitivity` -- quantize one layer at a time and measure
  the accuracy drop (the standard sensitivity scan);
* :func:`assign_bitwidths` -- greedy bitwidth search: repeatedly narrow
  the layer whose narrowing costs the least accuracy, while a validation
  accuracy floor holds (a deterministic stand-in for ReLeQ's RL search);
* :func:`average_bitwidth` / :func:`footprint_reduction` -- the metrics
  such searches optimize.

Everything runs on the ``composed`` backend, so the searched assignments
are exactly executable on the modelled hardware.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .inference import MLP

__all__ = [
    "SensitivityRecord",
    "layer_sensitivity",
    "BitwidthAssignment",
    "assign_bitwidths",
    "average_bitwidth",
    "footprint_reduction",
]


@dataclass(frozen=True)
class SensitivityRecord:
    """Accuracy impact of quantizing one layer to one bitwidth."""

    layer_index: int
    bits: int
    accuracy: float
    accuracy_drop: float


def layer_sensitivity(
    mlp: MLP,
    x: np.ndarray,
    y: np.ndarray,
    bits_candidates: tuple[int, ...] = (8, 4, 2),
    backend: str = "composed",
) -> list[SensitivityRecord]:
    """One-layer-at-a-time sensitivity scan.

    Each record quantizes layer ``i`` (weights and activations) to
    ``bits`` while every other layer stays at 8-bit, and reports the
    accuracy against the float reference.
    """
    if not bits_candidates:
        raise ValueError("need at least one candidate bitwidth")
    reference = mlp.accuracy(x, y, backend="float")
    records = []
    n_layers = len(mlp.layers)
    for index in range(n_layers):
        for bits in bits_candidates:
            per_layer = [8] * n_layers
            per_layer[index] = bits
            acc = mlp.accuracy(
                x,
                y,
                backend=backend,
                bits_weights=per_layer,
                bits_activations=per_layer,
            )
            records.append(
                SensitivityRecord(
                    layer_index=index,
                    bits=bits,
                    accuracy=acc,
                    accuracy_drop=reference - acc,
                )
            )
    return records


@dataclass(frozen=True)
class BitwidthAssignment:
    """Result of the greedy bitwidth search."""

    bits_per_layer: tuple[int, ...]
    accuracy: float
    float_accuracy: float
    steps: int

    @property
    def accuracy_drop(self) -> float:
        return self.float_accuracy - self.accuracy


def assign_bitwidths(
    mlp: MLP,
    x: np.ndarray,
    y: np.ndarray,
    max_drop: float = 0.02,
    ladder: tuple[int, ...] = (8, 4, 2),
    backend: str = "composed",
) -> BitwidthAssignment:
    """Greedy heterogeneous bitwidth assignment under an accuracy floor.

    Starting from all layers at ``ladder[0]``, repeatedly evaluates
    narrowing each layer one rung down the ladder and commits the
    narrowing with the highest resulting accuracy, as long as accuracy
    stays within ``max_drop`` of the float reference.  Terminates when no
    narrowing survives the floor.
    """
    if max_drop < 0:
        raise ValueError("max_drop must be non-negative")
    if len(ladder) < 2 or any(a <= b for a, b in zip(ladder, ladder[1:])):
        raise ValueError("ladder must be strictly decreasing, e.g. (8, 4, 2)")
    n_layers = len(mlp.layers)
    float_acc = mlp.accuracy(x, y, backend="float")
    floor = float_acc - max_drop
    current = [0] * n_layers  # rung index per layer
    steps = 0

    def acc_for(rungs: list[int]) -> float:
        bits = [ladder[r] for r in rungs]
        return mlp.accuracy(
            x, y, backend=backend, bits_weights=bits, bits_activations=bits
        )

    while True:
        best_choice: tuple[float, int] | None = None
        for layer in range(n_layers):
            if current[layer] == len(ladder) - 1:
                continue
            trial = list(current)
            trial[layer] += 1
            acc = acc_for(trial)
            if acc >= floor and (best_choice is None or acc > best_choice[0]):
                best_choice = (acc, layer)
        if best_choice is None:
            break
        current[best_choice[1]] += 1
        steps += 1

    final_bits = tuple(ladder[r] for r in current)
    return BitwidthAssignment(
        bits_per_layer=final_bits,
        accuracy=acc_for(current),
        float_accuracy=float_acc,
        steps=steps,
    )


def average_bitwidth(mlp: MLP, bits_per_layer: tuple[int, ...]) -> float:
    """Parameter-weighted mean bitwidth (the metric deep-quantization
    papers report)."""
    if len(bits_per_layer) != len(mlp.layers):
        raise ValueError("one bitwidth per layer required")
    weights = [layer.weight.size for layer in mlp.layers]
    total = sum(weights)
    return sum(b * w for b, w in zip(bits_per_layer, weights)) / total


def footprint_reduction(mlp: MLP, bits_per_layer: tuple[int, ...]) -> float:
    """Model-size reduction factor vs uniform 8-bit storage."""
    return 8.0 / average_bitwidth(mlp, bits_per_layer)
