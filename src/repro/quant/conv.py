"""Quantized 2-D convolution on the composed arithmetic.

Convolutions lower to GEMMs via im2col -- exactly how the systolic array
consumes them (paper Section III-C).  This module provides the quantized
conv/pool operators used to run small CNNs through the same three backends
as :mod:`repro.quant.inference`: ``float``, ``integer``, and ``composed``
(bit-parallel, CVU-equivalent).  ``integer`` and ``composed`` agree
bit-for-bit.

Tensors are NHWC; weights are ``(kh, kw, in_ch, out_ch)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.dotprod import composed_matmul
from .inference import BACKENDS, _centered_bitwidth
from .quantizer import LinearQuantizer
from .tensors import QTensor

__all__ = ["im2col", "QuantizedConv2D", "max_pool2d", "avg_pool2d"]


def im2col(x: np.ndarray, kernel: int, stride: int = 1, padding: int = 0) -> np.ndarray:
    """Unfold NHWC input into ``(N * oh * ow, kernel * kernel * C)`` patches."""
    if x.ndim != 4:
        raise ValueError(f"expected NHWC input, got shape {x.shape}")
    if kernel < 1 or stride < 1 or padding < 0:
        raise ValueError("invalid convolution geometry")
    n, h, w, c = x.shape
    oh = (h + 2 * padding - kernel) // stride + 1
    ow = (w + 2 * padding - kernel) // stride + 1
    if oh < 1 or ow < 1:
        raise ValueError("convolution output collapsed")
    padded = np.pad(x, ((0, 0), (padding, padding), (padding, padding), (0, 0)))
    patches = np.empty((n, oh, ow, kernel, kernel, c), dtype=x.dtype)
    for i in range(kernel):
        for j in range(kernel):
            patches[:, :, :, i, j, :] = padded[
                :, i : i + oh * stride : stride, j : j + ow * stride : stride, :
            ]
    return patches.reshape(n * oh * ow, kernel * kernel * c)


@dataclass
class QuantizedConv2D:
    """A conv layer with float master weights and quantized execution."""

    weight: np.ndarray  # (kh, kw, in_ch, out_ch)
    bias: np.ndarray  # (out_ch,)
    stride: int = 1
    padding: int = 0
    bits_weights: int = 8
    bits_activations: int = 8
    slice_width: int = 2
    _wq: QTensor | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.weight.ndim != 4:
            raise ValueError("conv weights must be (kh, kw, in_ch, out_ch)")
        if self.weight.shape[0] != self.weight.shape[1]:
            raise ValueError("only square kernels supported")
        if self.bias.shape != (self.weight.shape[3],):
            raise ValueError("bias shape must match output channels")

    @property
    def kernel(self) -> int:
        return self.weight.shape[0]

    def _weight_matrix(self) -> np.ndarray:
        k, _, c_in, c_out = self.weight.shape
        return self.weight.reshape(k * k * c_in, c_out)

    def quantize_weights(self) -> QTensor:
        if self._wq is None:
            quantizer = LinearQuantizer(
                bits=self.bits_weights, signed=True, symmetric=True
            )
            self._wq = quantizer(self._weight_matrix())
        return self._wq

    def forward(self, x: np.ndarray, backend: str = "composed") -> np.ndarray:
        """Convolve NHWC ``x``; returns NHWC output."""
        if backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
        n, h, w, _ = x.shape
        oh = (h + 2 * self.padding - self.kernel) // self.stride + 1
        ow = (w + 2 * self.padding - self.kernel) // self.stride + 1
        cols = im2col(x, self.kernel, self.stride, self.padding)

        if backend == "float":
            out = cols @ self._weight_matrix() + self.bias
            return out.reshape(n, oh, ow, -1)

        wq = self.quantize_weights()
        aq = LinearQuantizer(
            bits=self.bits_activations, signed=False, symmetric=False
        )(cols)
        a_codes = aq.centered()
        w_codes = wq.centered()
        if backend == "integer":
            acc = a_codes @ w_codes
        else:
            bw_a, signed_a = _centered_bitwidth(aq)
            bw_w, signed_w = _centered_bitwidth(wq)
            acc = composed_matmul(
                a_codes,
                w_codes,
                bw_a,
                bw_w,
                slice_width=self.slice_width,
                signed_x=signed_a,
                signed_w=signed_w,
            )
        out = acc.astype(np.float64) * (aq.scale * wq.scale) + self.bias
        return out.reshape(n, oh, ow, -1)


def _pool(x: np.ndarray, kernel: int, stride: int, reducer) -> np.ndarray:
    if x.ndim != 4:
        raise ValueError(f"expected NHWC input, got shape {x.shape}")
    n, h, w, c = x.shape
    oh = (h - kernel) // stride + 1
    ow = (w - kernel) // stride + 1
    if oh < 1 or ow < 1:
        raise ValueError("pool output collapsed")
    out = np.empty((n, oh, ow, c), dtype=x.dtype)
    for i in range(oh):
        for j in range(ow):
            window = x[
                :, i * stride : i * stride + kernel, j * stride : j * stride + kernel, :
            ]
            out[:, i, j, :] = reducer(window, axis=(1, 2))
    return out


def max_pool2d(x: np.ndarray, kernel: int = 2, stride: int | None = None) -> np.ndarray:
    """Max pooling over NHWC input."""
    return _pool(x, kernel, stride or kernel, np.max)


def avg_pool2d(x: np.ndarray, kernel: int = 2, stride: int | None = None) -> np.ndarray:
    """Average pooling over NHWC input."""
    return _pool(x, kernel, stride or kernel, np.mean)
