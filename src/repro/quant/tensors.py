"""Quantized tensor container."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.bitslice import check_range

__all__ = ["QTensor"]


@dataclass(frozen=True)
class QTensor:
    """An integer-coded tensor with its affine dequantization parameters.

    ``float value ~= (codes - zero_point) * scale``
    """

    values: np.ndarray
    scale: float
    zero_point: int
    bits: int
    signed: bool

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ValueError(f"scale must be positive, got {self.scale}")
        check_range(self.values, self.bits, self.signed)

    @property
    def shape(self) -> tuple[int, ...]:
        return self.values.shape

    @property
    def is_symmetric(self) -> bool:
        return self.zero_point == 0

    def dequantize(self) -> np.ndarray:
        return (self.values.astype(np.float64) - self.zero_point) * self.scale

    def centered(self) -> np.ndarray:
        """Zero-point-corrected integer codes (what the MAC array consumes)."""
        return self.values.astype(np.int64) - self.zero_point

    def storage_bytes(self) -> int:
        return -(-self.values.size * self.bits // 8)
