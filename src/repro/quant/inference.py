"""Quantized inference executed on the composed (CVU) arithmetic.

This is the end-to-end proof that the accelerator's bit-parallel
composition is *lossless* relative to ordinary integer arithmetic: a small
numpy-trained MLP is quantized to arbitrary bitwidths and evaluated through
three interchangeable backends --

* ``"float"``: float32 reference;
* ``"integer"``: plain integer GEMM on the quantized codes;
* ``"composed"``: the same GEMM computed slice-pair by slice-pair exactly
  as the CVU array does (:func:`repro.core.composed_matmul`).

``integer`` and ``composed`` agree bit-for-bit on every input; the examples
and tests rely on that invariant.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.dotprod import composed_matmul
from .quantizer import LinearQuantizer
from .tensors import QTensor

__all__ = ["QuantizedLinear", "MLP", "make_two_spirals"]

BACKENDS = ("float", "integer", "composed")


def _centered_bitwidth(q: QTensor) -> tuple[int, bool]:
    """Bitwidth/signedness of zero-point-corrected codes.

    Symmetric tensors keep their code width; asymmetric centring widens the
    range by the zero point, needing one extra signed bit -- exactly the
    correction hardware applies before the MAC array.
    """
    if q.is_symmetric:
        return q.bits, q.signed
    return q.bits + 1, True


@dataclass
class QuantizedLinear:
    """A dense layer with float master weights and quantized execution."""

    weight: np.ndarray  # (in_features, out_features)
    bias: np.ndarray  # (out_features,)
    bits_weights: int = 8
    bits_activations: int = 8
    slice_width: int = 2
    _wq: QTensor | None = field(default=None, repr=False)

    def quantize_weights(self) -> QTensor:
        if self._wq is None:
            quantizer = LinearQuantizer(
                bits=self.bits_weights, signed=True, symmetric=True
            )
            self._wq = quantizer(self.weight)
        return self._wq

    def forward(self, x: np.ndarray, backend: str = "composed") -> np.ndarray:
        if backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
        if backend == "float":
            return x @ self.weight + self.bias

        wq = self.quantize_weights()
        aq = LinearQuantizer(
            bits=self.bits_activations, signed=False, symmetric=False
        )(x)
        a_codes = aq.centered()
        w_codes = wq.centered()
        if backend == "integer":
            acc = a_codes @ w_codes
        else:
            bw_a, signed_a = _centered_bitwidth(aq)
            bw_w, signed_w = _centered_bitwidth(wq)
            acc = composed_matmul(
                a_codes,
                w_codes,
                bw_a,
                bw_w,
                slice_width=self.slice_width,
                signed_x=signed_a,
                signed_w=signed_w,
            )
        return acc.astype(np.float64) * (aq.scale * wq.scale) + self.bias


def make_two_spirals(
    n: int = 400, noise: float = 0.15, seed: int = 0
) -> tuple[np.ndarray, np.ndarray]:
    """Classic two-spirals binary classification dataset."""
    if n < 2:
        raise ValueError("need at least two samples")
    rng = np.random.default_rng(seed)
    half = n // 2
    theta = np.sqrt(rng.uniform(0, 1, half)) * 3 * np.pi
    r = theta / (3 * np.pi)
    x0 = np.stack([r * np.cos(theta), r * np.sin(theta)], axis=1)
    x1 = -x0
    x = np.concatenate([x0, x1]) + rng.normal(0, noise * 0.1, (2 * half, 2))
    y = np.concatenate([np.zeros(half, dtype=int), np.ones(half, dtype=int)])
    perm = rng.permutation(2 * half)
    return x[perm], y[perm]


class MLP:
    """A small numpy MLP with SGD training and quantized inference paths."""

    def __init__(self, sizes: list[int], seed: int = 0) -> None:
        if len(sizes) < 2:
            raise ValueError("need at least input and output sizes")
        rng = np.random.default_rng(seed)
        self.layers: list[QuantizedLinear] = []
        for fan_in, fan_out in zip(sizes, sizes[1:]):
            w = rng.normal(0, np.sqrt(2.0 / fan_in), (fan_in, fan_out))
            self.layers.append(QuantizedLinear(weight=w, bias=np.zeros(fan_out)))

    # --- float training ------------------------------------------------
    def _forward_cache(self, x: np.ndarray) -> list[np.ndarray]:
        activations = [x]
        for i, layer in enumerate(self.layers):
            z = activations[-1] @ layer.weight + layer.bias
            if i < len(self.layers) - 1:
                z = np.maximum(z, 0.0)
            activations.append(z)
        return activations

    def train(
        self,
        x: np.ndarray,
        y: np.ndarray,
        epochs: int = 200,
        lr: float = 0.1,
    ) -> float:
        """Full-batch softmax-cross-entropy SGD; returns final loss."""
        n = x.shape[0]
        loss = float("inf")
        for _ in range(epochs):
            acts = self._forward_cache(x)
            logits = acts[-1]
            logits = logits - logits.max(axis=1, keepdims=True)
            probs = np.exp(logits)
            probs /= probs.sum(axis=1, keepdims=True)
            loss = float(-np.mean(np.log(probs[np.arange(n), y] + 1e-12)))
            grad = probs
            grad[np.arange(n), y] -= 1.0
            grad /= n
            for i in reversed(range(len(self.layers))):
                layer = self.layers[i]
                a_prev = acts[i]
                grad_w = a_prev.T @ grad
                grad_b = grad.sum(axis=0)
                if i > 0:
                    grad = (grad @ layer.weight.T) * (acts[i] > 0)
                layer.weight -= lr * grad_w
                layer.bias -= lr * grad_b
                layer._wq = None  # weights moved; invalidate cached codes
        return loss

    # --- inference -----------------------------------------------------
    def _per_layer(self, bits) -> list[int]:
        """Broadcast an int, or validate a per-layer list, of bitwidths."""
        if isinstance(bits, int):
            return [bits] * len(self.layers)
        bits = list(bits)
        if len(bits) != len(self.layers):
            raise ValueError(
                f"need {len(self.layers)} per-layer bitwidths, got {len(bits)}"
            )
        return bits

    def forward(
        self,
        x: np.ndarray,
        backend: str = "float",
        bits_weights: "int | list[int]" = 8,
        bits_activations: "int | list[int]" = 8,
    ) -> np.ndarray:
        """Run the network; bitwidths may be scalar or per-layer lists
        (the heterogeneous regime of the paper's Table I)."""
        bw = self._per_layer(bits_weights)
        ba = self._per_layer(bits_activations)
        h = x
        for i, layer in enumerate(self.layers):
            layer.bits_weights = bw[i]
            layer.bits_activations = ba[i]
            layer._wq = None
            h = layer.forward(h, backend=backend)
            if i < len(self.layers) - 1:
                h = np.maximum(h, 0.0)
        return h

    def accuracy(self, x: np.ndarray, y: np.ndarray, **kwargs) -> float:
        pred = np.argmax(self.forward(x, **kwargs), axis=1)
        return float(np.mean(pred == y))
