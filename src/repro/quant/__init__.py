"""Quantization library and quantized inference on the composed arithmetic."""

from .conv import QuantizedConv2D, avg_pool2d, im2col, max_pool2d
from .inference import MLP, QuantizedLinear, make_two_spirals
from .quantizer import LinearQuantizer, quantization_error
from .sensitivity import (
    BitwidthAssignment,
    SensitivityRecord,
    assign_bitwidths,
    average_bitwidth,
    footprint_reduction,
    layer_sensitivity,
)
from .tensors import QTensor

__all__ = [
    "QuantizedConv2D",
    "avg_pool2d",
    "im2col",
    "max_pool2d",
    "MLP",
    "QuantizedLinear",
    "make_two_spirals",
    "LinearQuantizer",
    "quantization_error",
    "QTensor",
    "BitwidthAssignment",
    "SensitivityRecord",
    "assign_bitwidths",
    "average_bitwidth",
    "footprint_reduction",
    "layer_sensitivity",
]
