"""repro: reproduction of Bit-Parallel Vector Composability (BPVeC, DAC 2020).

Subpackages
-----------
core:
    The paper's contribution -- bit-slicing math, NBVE/CVU functional models,
    composition planning (Section II-III).
hw:
    Hardware cost substrate -- gate-level power/area models, SRAM/DRAM
    models, Table II platform configurations.
nn:
    DNN intermediate representation and the six evaluated workloads
    (Table I).
quant:
    Linear quantization and numpy quantized inference running on the
    composed arithmetic.
sim:
    Tiled systolic-accelerator performance/energy simulator.
baselines:
    TPU-like, BitFusion, and RTX 2080 Ti comparison models.
dse:
    Batched, cached design-space exploration: declarative sweep specs,
    a memoized evaluation layer with a persistent JSONL result store,
    multiprocessing fan-out, and Pareto/top-k/geomean queries.
experiments:
    Drivers that regenerate every figure and table of the evaluation
    (running on the DSE engine).
"""

__version__ = "1.0.0"
