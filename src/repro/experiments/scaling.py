"""Power-budget scaling study (beyond the paper).

The paper evaluates one 250 mW design point per style.  Because the
Table II unit counts *derive* from the per-MAC costs and the budget, the
comparison generalizes: this driver sweeps the core budget, resizes every
platform accordingly (same derivation as Table II), and reruns the
Fig. 5-style study -- showing the BPVeC advantage is a property of the
design style, not of one operating point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..hw.costmodel import CONVENTIONAL_MAC_POWER_MW, PaperCostModel, units_under_power_budget
from ..hw.dram import MemorySpec
from ..hw.platforms import BITFUSION, BPVEC, TPU_LIKE, AcceleratorSpec, with_units
from ..nn.bitwidths import homogeneous_8bit
from ..nn.models import evaluation_workloads
from ..sim.report import geomean
from ..sim.simulator import simulate_network

__all__ = ["BudgetPoint", "budget_sweep", "resize_for_budget"]

_COSTS = PaperCostModel()


def resize_for_budget(spec: AcceleratorSpec, budget_mw: float) -> AcceleratorSpec:
    """Resize a platform to a different core power budget (Table II rule)."""
    if budget_mw <= 0:
        raise ValueError("budget must be positive")
    if spec.style == "conventional":
        per_mac = CONVENTIONAL_MAC_POWER_MW
    else:
        per_mac = _COSTS.mac_power_mw(spec.slice_width, spec.lanes)
    units = units_under_power_budget(per_mac, budget_mw=budget_mw)
    resized = with_units(spec, units)
    return resized


@dataclass(frozen=True)
class BudgetPoint:
    """Geomean outcome of one budget point."""

    budget_mw: float
    baseline_macs: int
    bpvec_macs: int
    bitfusion_macs: int
    speedup_vs_baseline: float
    energy_vs_baseline: float


def budget_sweep(
    budgets_mw: Sequence[float],
    memory: MemorySpec,
) -> list[BudgetPoint]:
    """Fig. 5-style geomeans across core power budgets."""
    if not budgets_mw:
        raise ValueError("need at least one budget")
    points = []
    for budget in budgets_mw:
        baseline = resize_for_budget(TPU_LIKE, budget)
        bpvec = resize_for_budget(BPVEC, budget)
        bitfusion = resize_for_budget(BITFUSION, budget)
        speedups, energies = [], []
        for net in evaluation_workloads():
            homogeneous_8bit(net)
            base = simulate_network(net, baseline, memory)
            ours = simulate_network(net, bpvec, memory)
            speedups.append(base.total_seconds / ours.total_seconds)
            energies.append(base.total_energy_pj / ours.total_energy_pj)
        points.append(
            BudgetPoint(
                budget_mw=budget,
                baseline_macs=baseline.num_macs,
                bpvec_macs=bpvec.num_macs,
                bitfusion_macs=bitfusion.num_macs,
                speedup_vs_baseline=geomean(speedups),
                energy_vs_baseline=geomean(energies),
            )
        )
    return points
