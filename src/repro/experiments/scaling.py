"""Power-budget scaling study (beyond the paper).

The paper evaluates one 250 mW design point per style.  Because the
Table II unit counts *derive* from the per-MAC costs and the budget, the
comparison generalizes: this driver sweeps the core budget, resizes every
platform accordingly (same derivation as Table II), and reruns the
Fig. 5-style study -- showing the BPVeC advantage is a property of the
design style, not of one operating point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..dse.engine import run_sweep
from ..dse.queries import geomean_speedup
from ..dse.spec import SweepPoint
from ..hw.costmodel import (
    CONVENTIONAL_MAC_POWER_MW,
    PaperCostModel,
    units_under_power_budget,
)
from ..hw.dram import MemorySpec
from ..hw.platforms import BITFUSION, BPVEC, TPU_LIKE, AcceleratorSpec, with_units
from .figures import HOMOGENEOUS, _evaluation_batches

__all__ = ["BudgetPoint", "budget_sweep", "resize_for_budget"]

_COSTS = PaperCostModel()


def resize_for_budget(spec: AcceleratorSpec, budget_mw: float) -> AcceleratorSpec:
    """Resize a platform to a different core power budget (Table II rule)."""
    if budget_mw <= 0:
        raise ValueError("budget must be positive")
    if spec.style == "conventional":
        per_mac = CONVENTIONAL_MAC_POWER_MW
    else:
        per_mac = _COSTS.mac_power_mw(spec.slice_width, spec.lanes)
    units = units_under_power_budget(per_mac, budget_mw=budget_mw)
    resized = with_units(spec, units)
    return resized


@dataclass(frozen=True)
class BudgetPoint:
    """Geomean outcome of one budget point."""

    budget_mw: float
    baseline_macs: int
    bpvec_macs: int
    bitfusion_macs: int
    speedup_vs_baseline: float
    energy_vs_baseline: float


def budget_sweep(
    budgets_mw: Sequence[float],
    memory: MemorySpec,
) -> list[BudgetPoint]:
    """Fig. 5-style geomeans across core power budgets."""
    if not budgets_mw:
        raise ValueError("need at least one budget")
    batches = _evaluation_batches(cnn_batch=None)
    points = []
    for budget in budgets_mw:
        baseline = resize_for_budget(TPU_LIKE, budget)
        bpvec = resize_for_budget(BPVEC, budget)
        bitfusion = resize_for_budget(BITFUSION, budget)
        sweep = [
            SweepPoint(
                workload=name,
                policy=HOMOGENEOUS,
                platform=platform,
                memory=memory,
                batch=batch,
            )
            for name, batch in batches.items()
            for platform in (baseline, bpvec)
        ]
        records = run_sweep(sweep).records
        base, ours = {"platform": baseline.name}, {"platform": bpvec.name}
        points.append(
            BudgetPoint(
                budget_mw=budget,
                baseline_macs=baseline.num_macs,
                bpvec_macs=bpvec.num_macs,
                bitfusion_macs=bitfusion.num_macs,
                speedup_vs_baseline=geomean_speedup(
                    records, base, ours, objective="total_seconds"
                ),
                energy_vs_baseline=geomean_speedup(
                    records, base, ours, objective="total_energy_pj"
                ),
            )
        )
    return points
