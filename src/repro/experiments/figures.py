"""Experiment drivers regenerating the paper's Figures 4-9.

Each ``fig*`` function returns structured result rows (and can render the
same table the paper plots), so the benchmark harness, the tests, and the
examples all share one implementation.  Paper-vs-measured numbers for every
experiment live in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from ..baselines.gpu import GPUSpec, RTX_2080_TI, simulate_gpu
from ..hw.calibration import SWEEP_LENGTHS
from ..hw.costmodel import AnalyticalCostModel, CostModel, PaperCostModel
from ..hw.dram import DDR4, HBM2, MemorySpec
from ..hw.platforms import BITFUSION, BPVEC, TPU_LIKE, AcceleratorSpec
from ..nn.bitwidths import homogeneous_8bit, paper_heterogeneous
from ..nn.graph import Network
from ..nn.models import evaluation_workloads
from ..sim.report import compare, format_table, geomean
from ..sim.simulator import simulate_network

__all__ = [
    "DSEPoint",
    "fig4_design_space",
    "SpeedupRow",
    "fig5_homogeneous_ddr4",
    "fig6_homogeneous_hbm2",
    "fig7_heterogeneous_ddr4",
    "fig8_heterogeneous_hbm2",
    "PerfPerWattRow",
    "fig9_gpu_comparison",
    "render_speedup_rows",
]

GEOMEAN = "GEOMEAN"


# ----------------------------------------------------------------------
# Figure 4: design-space exploration
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DSEPoint:
    """One bar of Fig. 4: cost per 8-bit MAC, normalized to conventional."""

    slice_width: int
    lanes: int
    metric: str
    multiplication: float
    addition: float
    shifting: float
    registering: float

    @property
    def total(self) -> float:
        return self.multiplication + self.addition + self.shifting + self.registering


def fig4_design_space(
    model: CostModel | None = None,
    slice_widths: Sequence[int] = (1, 2),
    lanes_sweep: Sequence[int] = SWEEP_LENGTHS,
) -> list[DSEPoint]:
    """Power and area sweeps over slicing and NBVE vector length."""
    model = model or PaperCostModel()
    points = []
    for metric in ("power", "area"):
        for sw in slice_widths:
            for lanes in lanes_sweep:
                b = model.breakdown(sw, lanes, metric)
                points.append(
                    DSEPoint(
                        slice_width=sw,
                        lanes=lanes,
                        metric=metric,
                        multiplication=b.multiplication,
                        addition=b.addition,
                        shifting=b.shifting,
                        registering=b.registering,
                    )
                )
    return points


def fig4_both_models() -> dict[str, list[DSEPoint]]:
    """The sweep under the calibrated and the first-principles models."""
    return {
        "paper-calibrated": fig4_design_space(PaperCostModel()),
        "analytical": fig4_design_space(AnalyticalCostModel()),
    }


# ----------------------------------------------------------------------
# Figures 5-8: speedup / energy-reduction studies
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SpeedupRow:
    """One workload's bars in a Fig. 5-8 style chart."""

    workload: str
    platform: str
    memory: str
    speedup: float
    energy_reduction: float


def _speedup_study(
    policy: Callable[[Network], Network],
    reference: tuple[AcceleratorSpec, MemorySpec],
    candidates: Sequence[tuple[AcceleratorSpec, MemorySpec]],
    cnn_batch: int | None = None,
) -> list[SpeedupRow]:
    """Normalize ``candidates`` to ``reference`` over the six workloads."""
    workloads = (
        evaluation_workloads()
        if cnn_batch is None
        else evaluation_workloads(cnn_batch=cnn_batch)
    )
    rows: list[SpeedupRow] = []
    per_candidate: dict[int, list[SpeedupRow]] = {i: [] for i in range(len(candidates))}
    for net in workloads:
        policy(net)
        ref_result = simulate_network(net, reference[0], reference[1])
        for i, (spec, memory) in enumerate(candidates):
            c = compare(ref_result, simulate_network(net, spec, memory))
            row = SpeedupRow(
                workload=net.name,
                platform=spec.name,
                memory=memory.name,
                speedup=c.speedup,
                energy_reduction=c.energy_reduction,
            )
            rows.append(row)
            per_candidate[i].append(row)
    for i, (spec, memory) in enumerate(candidates):
        group = per_candidate[i]
        rows.append(
            SpeedupRow(
                workload=GEOMEAN,
                platform=spec.name,
                memory=memory.name,
                speedup=geomean(r.speedup for r in group),
                energy_reduction=geomean(r.energy_reduction for r in group),
            )
        )
    return rows


def fig5_homogeneous_ddr4(cnn_batch: int | None = None) -> list[SpeedupRow]:
    """BPVeC vs the TPU-like baseline; DDR4; homogeneous 8-bit."""
    return _speedup_study(
        homogeneous_8bit,
        reference=(TPU_LIKE, DDR4),
        candidates=[(BPVEC, DDR4)],
        cnn_batch=cnn_batch,
    )


def fig6_homogeneous_hbm2(cnn_batch: int | None = None) -> list[SpeedupRow]:
    """Baseline+HBM2 and BPVeC+HBM2, normalized to baseline+DDR4."""
    return _speedup_study(
        homogeneous_8bit,
        reference=(TPU_LIKE, DDR4),
        candidates=[(TPU_LIKE, HBM2), (BPVEC, HBM2)],
        cnn_batch=cnn_batch,
    )


def fig7_heterogeneous_ddr4(cnn_batch: int | None = None) -> list[SpeedupRow]:
    """BPVeC vs BitFusion; DDR4; heterogeneous quantized bitwidths."""
    return _speedup_study(
        paper_heterogeneous,
        reference=(BITFUSION, DDR4),
        candidates=[(BPVEC, DDR4)],
        cnn_batch=cnn_batch,
    )


def fig8_heterogeneous_hbm2(cnn_batch: int | None = None) -> list[SpeedupRow]:
    """BitFusion+HBM2 and BPVeC+HBM2, normalized to BitFusion+DDR4."""
    return _speedup_study(
        paper_heterogeneous,
        reference=(BITFUSION, DDR4),
        candidates=[(BITFUSION, HBM2), (BPVEC, HBM2)],
        cnn_batch=cnn_batch,
    )


def render_speedup_rows(rows: Sequence[SpeedupRow]) -> str:
    return format_table(
        ["Workload", "Platform", "Memory", "Speedup", "Energy reduction"],
        [
            (r.workload, r.platform, r.memory, r.speedup, r.energy_reduction)
            for r in rows
        ],
    )


# ----------------------------------------------------------------------
# Figure 9: Performance-per-Watt vs the GPU
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PerfPerWattRow:
    """One workload's Fig. 9 bars: BPVeC Perf/W relative to the GPU."""

    workload: str
    regime: str  # "homogeneous" or "heterogeneous"
    ddr4_ratio: float
    hbm2_ratio: float


def fig9_gpu_comparison(
    gpu: GPUSpec = RTX_2080_TI, cnn_batch: int | None = None
) -> list[PerfPerWattRow]:
    """Both panels of Fig. 9 (homogeneous INT8 and heterogeneous INT4)."""
    rows: list[PerfPerWattRow] = []
    for regime, policy, precision in (
        ("homogeneous", homogeneous_8bit, 8),
        ("heterogeneous", paper_heterogeneous, 4),
    ):
        ddr4_ratios, hbm2_ratios = [], []
        workloads = (
            evaluation_workloads()
            if cnn_batch is None
            else evaluation_workloads(cnn_batch=cnn_batch)
        )
        for net in workloads:
            policy(net)
            gpu_result = simulate_gpu(net, gpu, precision=precision)
            ddr4 = simulate_network(net, BPVEC, DDR4).perf_per_watt
            hbm2 = simulate_network(net, BPVEC, HBM2).perf_per_watt
            ddr4_ratios.append(ddr4 / gpu_result.perf_per_watt)
            hbm2_ratios.append(hbm2 / gpu_result.perf_per_watt)
            rows.append(
                PerfPerWattRow(
                    workload=net.name,
                    regime=regime,
                    ddr4_ratio=ddr4_ratios[-1],
                    hbm2_ratio=hbm2_ratios[-1],
                )
            )
        rows.append(
            PerfPerWattRow(
                workload=GEOMEAN,
                regime=regime,
                ddr4_ratio=geomean(ddr4_ratios),
                hbm2_ratio=geomean(hbm2_ratios),
            )
        )
    return rows
