"""Experiment drivers regenerating the paper's Figures 4-9.

Each ``fig*`` function returns structured result rows (and can render the
same table the paper plots), so the benchmark harness, the tests, and the
examples all share one implementation.  Paper-vs-measured numbers for every
experiment live in EXPERIMENTS.md.

All network simulations run on the batched DSE engine
(:mod:`repro.dse`): the drivers declare their sweep points, the engine
resolves them through its memo (so e.g. the reference platform is
simulated once per workload no matter how many figures need it), and the
rows are assembled from the returned records.  The numbers are
float-for-float identical to direct ``simulate_network`` calls, pinned
by the golden regression tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..baselines.gpu import GPUSpec, RTX_2080_TI
from ..dse.engine import run_sweep
from ..dse.queries import metric
from ..dse.spec import SweepPoint, expand_grid
from ..hw.calibration import SWEEP_LENGTHS
from ..hw.costmodel import AnalyticalCostModel, CostModel, PaperCostModel
from ..hw.dram import DDR4, HBM2, MemorySpec
from ..hw.platforms import BITFUSION, BPVEC, TPU_LIKE, AcceleratorSpec
from ..nn.models import EVALUATION_CNN_BATCH, WORKLOAD_BUILDERS
from ..sim.report import format_table, geomean

__all__ = [
    "DSEPoint",
    "fig4_design_space",
    "SpeedupRow",
    "fig5_homogeneous_ddr4",
    "fig6_homogeneous_hbm2",
    "fig7_heterogeneous_ddr4",
    "fig8_heterogeneous_hbm2",
    "PerfPerWattRow",
    "fig9_gpu_comparison",
    "render_speedup_rows",
]

GEOMEAN = "GEOMEAN"

HOMOGENEOUS = "homogeneous-8bit"
HETEROGENEOUS = "paper-heterogeneous"

#: Workloads that ignore the figure-level CNN batch (recurrent models run
#: at their Table I configuration).
_RECURRENT = ("RNN", "LSTM")


def _evaluation_batches(cnn_batch: int | None) -> dict[str, int | None]:
    """Per-workload batch mirroring ``evaluation_workloads``."""
    batch = EVALUATION_CNN_BATCH if cnn_batch is None else cnn_batch
    return {
        name: (None if name in _RECURRENT else batch)
        for name in WORKLOAD_BUILDERS
    }


# ----------------------------------------------------------------------
# Figure 4: design-space exploration
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DSEPoint:
    """One bar of Fig. 4: cost per 8-bit MAC, normalized to conventional."""

    slice_width: int
    lanes: int
    metric: str
    multiplication: float
    addition: float
    shifting: float
    registering: float

    @property
    def total(self) -> float:
        return self.multiplication + self.addition + self.shifting + self.registering


def fig4_design_space(
    model: CostModel | None = None,
    slice_widths: Sequence[int] = (1, 2),
    lanes_sweep: Sequence[int] = SWEEP_LENGTHS,
) -> list[DSEPoint]:
    """Power and area sweeps over slicing and NBVE vector length."""
    model = model or PaperCostModel()
    points = []
    for cell in expand_grid(
        {
            "metric": ("power", "area"),
            "slice_width": tuple(slice_widths),
            "lanes": tuple(lanes_sweep),
        }
    ):
        b = model.breakdown(cell["slice_width"], cell["lanes"], cell["metric"])
        points.append(
            DSEPoint(
                slice_width=cell["slice_width"],
                lanes=cell["lanes"],
                metric=cell["metric"],
                multiplication=b.multiplication,
                addition=b.addition,
                shifting=b.shifting,
                registering=b.registering,
            )
        )
    return points


def fig4_both_models() -> dict[str, list[DSEPoint]]:
    """The sweep under the calibrated and the first-principles models."""
    return {
        "paper-calibrated": fig4_design_space(PaperCostModel()),
        "analytical": fig4_design_space(AnalyticalCostModel()),
    }


# ----------------------------------------------------------------------
# Figures 5-8: speedup / energy-reduction studies
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SpeedupRow:
    """One workload's bars in a Fig. 5-8 style chart."""

    workload: str
    platform: str
    memory: str
    speedup: float
    energy_reduction: float


def _speedup_study(
    policy: str,
    reference: tuple[AcceleratorSpec, MemorySpec],
    candidates: Sequence[tuple[AcceleratorSpec, MemorySpec]],
    cnn_batch: int | None = None,
) -> list[SpeedupRow]:
    """Normalize ``candidates`` to ``reference`` over the six workloads."""
    batches = _evaluation_batches(cnn_batch)
    points = [
        SweepPoint(
            workload=name, policy=policy, platform=spec, memory=memory, batch=batch
        )
        for name, batch in batches.items()
        for spec, memory in (reference, *candidates)
    ]
    records = iter(run_sweep(points).records)

    rows: list[SpeedupRow] = []
    per_candidate: dict[int, list[SpeedupRow]] = {i: [] for i in range(len(candidates))}
    for name in batches:
        ref = next(records)
        for i, (spec, memory) in enumerate(candidates):
            cand = next(records)
            row = SpeedupRow(
                workload=name,
                platform=spec.name,
                memory=memory.name,
                speedup=metric(ref, "total_seconds") / metric(cand, "total_seconds"),
                energy_reduction=metric(ref, "total_energy_pj")
                / metric(cand, "total_energy_pj"),
            )
            rows.append(row)
            per_candidate[i].append(row)
    for i, (spec, memory) in enumerate(candidates):
        group = per_candidate[i]
        rows.append(
            SpeedupRow(
                workload=GEOMEAN,
                platform=spec.name,
                memory=memory.name,
                speedup=geomean(r.speedup for r in group),
                energy_reduction=geomean(r.energy_reduction for r in group),
            )
        )
    return rows


def fig5_homogeneous_ddr4(cnn_batch: int | None = None) -> list[SpeedupRow]:
    """BPVeC vs the TPU-like baseline; DDR4; homogeneous 8-bit."""
    return _speedup_study(
        HOMOGENEOUS,
        reference=(TPU_LIKE, DDR4),
        candidates=[(BPVEC, DDR4)],
        cnn_batch=cnn_batch,
    )


def fig6_homogeneous_hbm2(cnn_batch: int | None = None) -> list[SpeedupRow]:
    """Baseline+HBM2 and BPVeC+HBM2, normalized to baseline+DDR4."""
    return _speedup_study(
        HOMOGENEOUS,
        reference=(TPU_LIKE, DDR4),
        candidates=[(TPU_LIKE, HBM2), (BPVEC, HBM2)],
        cnn_batch=cnn_batch,
    )


def fig7_heterogeneous_ddr4(cnn_batch: int | None = None) -> list[SpeedupRow]:
    """BPVeC vs BitFusion; DDR4; heterogeneous quantized bitwidths."""
    return _speedup_study(
        HETEROGENEOUS,
        reference=(BITFUSION, DDR4),
        candidates=[(BPVEC, DDR4)],
        cnn_batch=cnn_batch,
    )


def fig8_heterogeneous_hbm2(cnn_batch: int | None = None) -> list[SpeedupRow]:
    """BitFusion+HBM2 and BPVeC+HBM2, normalized to BitFusion+DDR4."""
    return _speedup_study(
        HETEROGENEOUS,
        reference=(BITFUSION, DDR4),
        candidates=[(BITFUSION, HBM2), (BPVEC, HBM2)],
        cnn_batch=cnn_batch,
    )


def render_speedup_rows(rows: Sequence[SpeedupRow]) -> str:
    return format_table(
        ["Workload", "Platform", "Memory", "Speedup", "Energy reduction"],
        [
            (r.workload, r.platform, r.memory, r.speedup, r.energy_reduction)
            for r in rows
        ],
    )


# ----------------------------------------------------------------------
# Figure 9: Performance-per-Watt vs the GPU
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PerfPerWattRow:
    """One workload's Fig. 9 bars: BPVeC Perf/W relative to the GPU."""

    workload: str
    regime: str  # "homogeneous" or "heterogeneous"
    ddr4_ratio: float
    hbm2_ratio: float


def fig9_gpu_comparison(
    gpu: GPUSpec = RTX_2080_TI, cnn_batch: int | None = None
) -> list[PerfPerWattRow]:
    """Both panels of Fig. 9 (homogeneous INT8 and heterogeneous INT4)."""
    rows: list[PerfPerWattRow] = []
    for regime, policy, precision in (
        ("homogeneous", HOMOGENEOUS, 8),
        ("heterogeneous", HETEROGENEOUS, 4),
    ):
        batches = _evaluation_batches(cnn_batch)
        points = []
        for name, batch in batches.items():
            points.append(
                SweepPoint(
                    workload=name,
                    policy=policy,
                    gpu=gpu,
                    gpu_precision=precision,
                    batch=batch,
                )
            )
            for memory in (DDR4, HBM2):
                points.append(
                    SweepPoint(
                        workload=name,
                        policy=policy,
                        platform=BPVEC,
                        memory=memory,
                        batch=batch,
                    )
                )
        records = iter(run_sweep(points).records)
        ddr4_ratios, hbm2_ratios = [], []
        for name in batches:
            gpu_ppw = metric(next(records), "perf_per_watt")
            ddr4_ratios.append(metric(next(records), "perf_per_watt") / gpu_ppw)
            hbm2_ratios.append(metric(next(records), "perf_per_watt") / gpu_ppw)
            rows.append(
                PerfPerWattRow(
                    workload=name,
                    regime=regime,
                    ddr4_ratio=ddr4_ratios[-1],
                    hbm2_ratio=hbm2_ratios[-1],
                )
            )
        rows.append(
            PerfPerWattRow(
                workload=GEOMEAN,
                regime=regime,
                ddr4_ratio=geomean(ddr4_ratios),
                hbm2_ratio=geomean(hbm2_ratios),
            )
        )
    return rows
