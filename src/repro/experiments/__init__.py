"""Drivers that regenerate every table and figure of the evaluation."""

from .figures import (
    GEOMEAN,
    DSEPoint,
    PerfPerWattRow,
    SpeedupRow,
    fig4_both_models,
    fig4_design_space,
    fig5_homogeneous_ddr4,
    fig6_homogeneous_hbm2,
    fig7_heterogeneous_ddr4,
    fig8_heterogeneous_hbm2,
    fig9_gpu_comparison,
    render_speedup_rows,
)
from .report import generate_report
from .scaling import BudgetPoint, budget_sweep, resize_for_budget
from .tables import Table1Row, render_table1, render_table2, table1, table2

__all__ = [
    "GEOMEAN",
    "DSEPoint",
    "PerfPerWattRow",
    "SpeedupRow",
    "fig4_both_models",
    "fig4_design_space",
    "fig5_homogeneous_ddr4",
    "fig6_homogeneous_hbm2",
    "fig7_heterogeneous_ddr4",
    "fig8_heterogeneous_hbm2",
    "fig9_gpu_comparison",
    "render_speedup_rows",
    "generate_report",
    "BudgetPoint",
    "budget_sweep",
    "resize_for_budget",
    "Table1Row",
    "render_table1",
    "render_table2",
    "table1",
    "table2",
]
