"""Drivers regenerating the paper's Tables I and II."""

from __future__ import annotations

from dataclasses import dataclass

from ..baselines.gpu import GPUSpec, RTX_2080_TI
from ..hw.platforms import ALL_ASIC_PLATFORMS, AcceleratorSpec
from ..nn.bitwidths import ALL_4BIT_MODELS, FIRST_LAST_8BIT_MODELS
from ..nn.models import paper_workloads
from ..sim.report import format_table

__all__ = ["Table1Row", "table1", "table2", "render_table1", "render_table2"]


@dataclass(frozen=True)
class Table1Row:
    """One evaluated DNN (Table I)."""

    model: str
    kind: str
    model_size_mb: float
    giga_ops: float
    heterogeneous_bitwidths: str


def _bitwidth_description(name: str) -> str:
    if name in FIRST_LAST_8BIT_MODELS:
        return "First and last layer 8-bit, the rest 4-bit"
    if name in ALL_4BIT_MODELS:
        return "All layers with 4-bit"
    return "n/a"


def table1() -> list[Table1Row]:
    """Model size (INT8), operation count, and bitwidth policy per workload."""
    rows = []
    for net in paper_workloads():
        rows.append(
            Table1Row(
                model=net.name,
                kind=net.kind,
                model_size_mb=net.model_bytes(bits=8) / 1e6,
                giga_ops=net.total_ops() / 1e9,
                heterogeneous_bitwidths=_bitwidth_description(net.name),
            )
        )
    return rows


def render_table1() -> str:
    return format_table(
        [
            "DNN Model",
            "Type",
            "Model Size (INT8, MB)",
            "Multiply-Adds (GOps)",
            "Heterogeneous Bitwidths",
        ],
        [
            (r.model, r.kind, r.model_size_mb, r.giga_ops, r.heterogeneous_bitwidths)
            for r in table1()
        ],
        precision=1,
    )


def table2() -> tuple[tuple[AcceleratorSpec, ...], GPUSpec]:
    """The evaluated hardware platforms (Table II)."""
    return ALL_ASIC_PLATFORMS, RTX_2080_TI


def render_table2() -> str:
    asics, gpu = table2()
    asic_table = format_table(
        ["Chip", "# of MACs", "Architecture", "On-chip memory", "Frequency", "Node"],
        [
            (
                spec.name,
                spec.num_macs,
                "Systolic",
                f"{spec.onchip_bytes // 1024} KB",
                f"{spec.frequency_hz / 1e6:.0f} MHz",
                f"{spec.technology_nm} nm",
            )
            for spec in asics
        ],
    )
    gpu_table = format_table(
        ["Chip", "Tensor Cores", "Architecture", "Memory", "Frequency", "Node"],
        [
            (
                gpu.name,
                gpu.tensor_cores,
                "Turing",
                f"{gpu.memory_gb:.0f} GB ({gpu.memory})",
                f"{gpu.frequency_hz / 1e6:.0f} MHz",
                "12 nm",
            )
        ],
    )
    return f"ASIC platforms\n{asic_table}\n\nGPU platform\n{gpu_table}"
