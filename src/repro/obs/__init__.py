"""``repro.obs`` -- stdlib-only observability for the serving stack.

* :mod:`~repro.obs.metrics` -- :class:`MetricsRegistry` (thread-safe
  counters/gauges/histograms with log-scale latency buckets), the
  process-global :func:`get_registry`, Prometheus text rendering
  (``GET /metrics``) and the compact JSON snapshot worker heartbeats
  carry;
* :mod:`~repro.obs.trace` -- :class:`Trace`, the span tracer stamping
  every job and fleet chunk with a trace id and contiguous,
  non-overlapping timed phases (monotonic clock throughout);
* :mod:`~repro.obs.logs` -- the ``repro.*`` logger hierarchy:
  :func:`get_logger` for libraries, :func:`configure_logging` (plain
  or one-line-JSON) for the CLI entry points;
* :mod:`~repro.obs.watch` -- ``repro watch URL``: the poll-and-render
  live dashboard over ``/stats`` + ``/metrics`` (curses with a plain
  fallback; ``--once --format json`` for scripts and CI).
"""

from .logs import JsonLineFormatter, configure_logging, get_logger
from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
)
from .trace import Trace

# ``watch`` pulls in ``repro.serve`` (for :class:`ServeClient`), and the
# serve stack itself imports ``repro.obs.metrics`` -- which initializes
# this package.  Re-export the dashboard lazily so instrumented modules
# can import the registry without closing that cycle.
_WATCH_EXPORTS = (
    "build_snapshot",
    "parse_prometheus_text",
    "render_text",
    "watch",
)


def __getattr__(name: str):
    if name in _WATCH_EXPORTS:
        import importlib

        return getattr(importlib.import_module(f"{__name__}.watch"), name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "JsonLineFormatter",
    "configure_logging",
    "get_logger",
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "Trace",
    "build_snapshot",
    "parse_prometheus_text",
    "render_text",
    "watch",
]
