"""Structured logging for the serving stack: one ``repro.*`` hierarchy.

Library modules call :func:`get_logger` and log; nothing configures
handlers at import time, so embedding applications keep full control.
The CLI entry points (``repro serve --log-level/--log-json``, ``repro
worker`` likewise, ``repro watch``) call :func:`configure_logging`
once, which installs exactly one stderr handler on the ``repro`` root
-- plain text by default, or one-line JSON (timestamp, level, logger,
message, plus ``job``/``trace``/``worker``/``chunk`` ids when a log
call passed them via ``extra=``) for log shippers.

Operational announce lines the CI smokes grep ("serving DSE sweeps
on ...", "server shut down cleanly") stay on the ``announce`` print
path in :mod:`repro.serve.server`; this module covers diagnostics.
"""

from __future__ import annotations

import json
import logging
import sys
from datetime import datetime, timezone

__all__ = ["get_logger", "configure_logging", "JsonLineFormatter"]

ROOT_LOGGER = "repro"

#: ``extra=`` keys the JSON formatter promotes to top-level fields.
_CONTEXT_KEYS = ("job", "trace", "worker", "chunk", "endpoint")

_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
    "critical": logging.CRITICAL,
}


def get_logger(name: str | None = None) -> logging.Logger:
    """A logger under the ``repro`` hierarchy (``repro.serve.fleet``...)."""
    if not name:
        return logging.getLogger(ROOT_LOGGER)
    if name == ROOT_LOGGER or name.startswith(ROOT_LOGGER + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER}.{name}")


class JsonLineFormatter(logging.Formatter):
    """One JSON object per line: machine-parseable service logs."""

    def format(self, record: logging.LogRecord) -> str:
        entry = {
            "ts": datetime.fromtimestamp(
                record.created, tz=timezone.utc
            ).isoformat(timespec="milliseconds"),
            "level": record.levelname.lower(),
            "logger": record.name,
            "message": record.getMessage(),
        }
        for key in _CONTEXT_KEYS:
            value = getattr(record, key, None)
            if value is not None:
                entry[key] = value
        if record.exc_info:
            entry["exc"] = self.formatException(record.exc_info)
        return json.dumps(entry, sort_keys=True)


def configure_logging(
    level: str = "info",
    json_lines: bool = False,
    stream=None,
) -> logging.Logger:
    """Install the ``repro`` root handler (idempotent: replaces its own).

    ``level`` is a name from debug/info/warning/error/critical;
    ``json_lines`` switches the formatter to one-line JSON.  Returns
    the configured root logger.  Only handlers this function installed
    are replaced -- a host application's own handlers survive.
    """
    try:
        resolved = _LEVELS[str(level).lower()]
    except KeyError:
        raise ValueError(
            f"unknown log level {level!r} (want one of {sorted(_LEVELS)})"
        ) from None
    root = logging.getLogger(ROOT_LOGGER)
    root.setLevel(resolved)
    root.propagate = False
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(
        JsonLineFormatter()
        if json_lines
        else logging.Formatter(
            "%(asctime)s %(levelname)s %(name)s: %(message)s"
        )
    )
    handler._repro_obs_handler = True  # type: ignore[attr-defined]
    root.handlers = [
        existing
        for existing in root.handlers
        if not getattr(existing, "_repro_obs_handler", False)
    ]
    root.addHandler(handler)
    return root
