"""``repro watch URL`` -- a live ops dashboard for a sweep server.

A poll-and-render monitor in the gridworks-admin mold: every interval
it pulls ``GET /stats``, ``GET /jobs``, ``GET /workers``, ``GET
/readyz``, and ``GET /metrics``, folds them into one snapshot dict,
and redraws -- a job table (state, progress, current phase, duration),
a worker table (liveness, leases, last-heartbeat age, reported
throughput), frontier-so-far sizes for running sweeps, and cache/eval
hit rates derived from the scrape.

Rendering is layered for testability: :func:`build_snapshot` (pure
HTTP -> dict), :func:`render_text` (dict -> str), and :func:`watch`
(the loop -- curses when stdout is a real terminal, a plain
clear-and-reprint fallback otherwise).  ``repro watch --once --format
json`` prints one snapshot as JSON and exits, which is what scripts
and the CI smoke consume.
"""

from __future__ import annotations

import json
import re
import time

from ..serve.client import ServeClient, ServeError
from .logs import get_logger

__all__ = [
    "build_snapshot",
    "parse_prometheus_text",
    "render_text",
    "watch",
]

log = get_logger(__name__)

_SAMPLE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(.*)\})?\s+(\S+)$"
)
_LABEL = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')

#: Jobs shown in the table (newest first past this are summarized).
MAX_JOB_ROWS = 12

#: Running sweep jobs whose frontier-so-far is fetched per poll.
MAX_FRONTIER_PROBES = 4


def _unescape(value: str) -> str:
    return (
        value.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")
    )


def parse_prometheus_text(text: str) -> dict[str, list[dict]]:
    """Parse exposition text into ``{name: [{"labels", "value"}, ...]}``.

    Histogram series keep their ``_bucket``/``_sum``/``_count``
    suffixed names.  Lines that do not parse are skipped -- the watch
    loop degrades, it does not crash on a foreign exporter.
    """
    samples: dict[str, list[dict]] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE.match(line)
        if match is None:
            continue
        name, labels, value = match.groups()
        try:
            parsed = float(value)
        except ValueError:
            continue
        samples.setdefault(name, []).append(
            {
                "labels": {
                    key: _unescape(raw)
                    for key, raw in _LABEL.findall(labels or "")
                },
                "value": parsed,
            }
        )
    return samples


def _series_total(samples: dict, name: str, **where) -> float | None:
    """Sum a series' samples, optionally filtered by label equality."""
    rows = samples.get(name)
    if rows is None:
        return None
    return sum(
        row["value"]
        for row in rows
        if all(row["labels"].get(k) == v for k, v in where.items())
    )


def _hit_rate(hits: float | None, misses: float | None) -> float | None:
    if hits is None or misses is None or hits + misses == 0:
        return None
    return hits / (hits + misses)


def _derive(samples: dict[str, list[dict]]) -> dict:
    """The headline numbers the dashboard derives from a scrape."""
    tiers = {
        tier: _series_total(samples, "repro_eval_points_total", tier=tier)
        or 0.0
        for tier in ("memo", "store", "evaluated")
    }
    return {
        "http_requests": _series_total(samples, "repro_http_requests_total"),
        "eval_points": tiers,
        "record_cache_hit_rate": _hit_rate(
            _series_total(samples, "repro_record_cache_hits_total"),
            _series_total(samples, "repro_record_cache_misses_total"),
        ),
        "journal_degraded_writes": _series_total(
            samples, "repro_journal_writes_total", result="degraded"
        ),
    }


def build_snapshot(client: ServeClient, frontiers: bool = True) -> dict:
    """One poll of a live server folded into a JSON-able snapshot.

    Endpoints a server predating this PR lacks (``/metrics``,
    ``/readyz``) degrade to ``None`` fields instead of failing the
    whole snapshot.
    """
    snapshot: dict = {
        "url": client.base_url,
        "polled_at": time.time(),
        "ready": None,
        "stats": None,
        "jobs": [],
        "workers": [],
        "metrics": None,
        "frontiers": {},
    }
    snapshot["stats"] = client.stats()
    snapshot["jobs"] = client.jobs()
    snapshot["workers"] = client.workers()
    try:
        snapshot["ready"] = client.ready()
    except ServeError:
        pass
    try:
        samples = parse_prometheus_text(client.metrics())
        snapshot["metrics"] = _derive(samples)
    except ServeError:
        pass
    if frontiers:
        running = [
            job
            for job in snapshot["jobs"]
            if job.get("kind") == "sweep" and job.get("state") == "running"
        ]
        for job in running[:MAX_FRONTIER_PROBES]:
            try:
                status = client.job_status(job["job"])
            except ServeError:
                continue
            snapshot["frontiers"][job["job"]] = len(
                status.get("frontier") or []
            )
    return snapshot


# -- rendering ----------------------------------------------------------
def _age(now: float, then: float | None) -> str:
    if then is None:
        return "-"
    seconds = max(0.0, now - then)
    if seconds < 120:
        return f"{seconds:.0f}s"
    return f"{seconds / 60:.1f}m"


def _current_phase(job: dict) -> str:
    timings = job.get("timings") or {}
    for phase in timings.get("phases") or []:
        if phase.get("open"):
            return phase["phase"]
    return "-"


def _fmt_duration(seconds) -> str:
    if seconds is None:
        return "-"
    if seconds < 60:
        return f"{seconds:.1f}s"
    return f"{seconds / 60:.1f}m"


def _table(headers: list[str], rows: list[list[str]]) -> list[str]:
    widths = [
        max(len(str(cell)) for cell in column)
        for column in zip(headers, *rows)
    ] if rows else [len(h) for h in headers]
    lines = [
        "  ".join(str(h).ljust(w) for h, w in zip(headers, widths)).rstrip()
    ]
    for row in rows:
        lines.append(
            "  ".join(str(c).ljust(w) for c, w in zip(row, widths)).rstrip()
        )
    return lines


def render_text(snapshot: dict) -> str:
    """The plain-text dashboard for one snapshot (also the curses body)."""
    stats = snapshot.get("stats") or {}
    derived = snapshot.get("metrics") or {}
    now = snapshot.get("polled_at") or time.time()
    lines: list[str] = []
    ready = snapshot.get("ready")
    readiness = "ready" if ready else ("NOT READY" if ready is not None else "?")
    store = stats.get("store") or {}
    lines.append(
        f"repro watch — {snapshot.get('url', '?')} [{readiness}] "
        f"eval v{stats.get('eval_version', '?')}"
    )
    cache = stats.get("record_cache") or {}
    cache_rate = derived.get("record_cache_hit_rate")
    lines.append(
        f"store: {store.get('backend', '-')} {store.get('records', 0)} records"
        f" | memo: {stats.get('memo_records', 0)}"
        f" | cache: {cache.get('records', 0)}/{cache.get('capacity', 0)}"
        + (f" ({cache_rate:.0%} hit)" if cache_rate is not None else "")
    )
    tiers = derived.get("eval_points") or {}
    if tiers:
        lines.append(
            "eval points: "
            f"{tiers.get('evaluated', 0):.0f} evaluated, "
            f"{tiers.get('store', 0):.0f} store, "
            f"{tiers.get('memo', 0):.0f} memo"
            + (
                f" | http requests: {derived['http_requests']:.0f}"
                if derived.get("http_requests") is not None
                else ""
            )
        )
    jobs = snapshot.get("jobs") or []
    counts = stats.get("jobs") or {}
    lines.append("")
    lines.append(
        f"jobs ({counts.get('running', 0)} running, "
        f"{counts.get('queued', 0)} queued, {counts.get('total', 0)} total)"
    )
    rows = []
    frontiers = snapshot.get("frontiers") or {}
    for job in sorted(
        jobs, key=lambda j: j.get("submitted_at") or 0, reverse=True
    )[:MAX_JOB_ROWS]:
        progress = job.get("progress") or {}
        points = progress.get("points")
        completed = progress.get("completed", progress.get("appended", 0))
        pct = (
            f"{completed}/{points}"
            if points
            else str(completed or progress.get("offered", "-"))
        )
        frontier = frontiers.get(job.get("job"))
        rows.append(
            [
                job.get("job", "?"),
                job.get("kind", "?"),
                job.get("state", "?"),
                pct,
                _current_phase(job),
                _fmt_duration(job.get("duration")),
                str(frontier) if frontier is not None else "-",
            ]
        )
    lines.extend(
        _table(
            ["job", "kind", "state", "progress", "phase", "dur", "frontier"],
            rows,
        )
    )
    workers = snapshot.get("workers") or []
    lines.append("")
    fleet = stats.get("fleet") or {}
    fleet_workers = fleet.get("workers") or {}
    lines.append(
        f"workers ({fleet_workers.get('alive', 0)} alive / "
        f"{fleet_workers.get('registered', 0)} registered)"
    )
    rows = []
    for worker in workers:
        metrics = worker.get("metrics") or {}
        rows.append(
            [
                worker.get("name") or worker.get("worker", "?"),
                "alive" if worker.get("alive") else "DEAD",
                str(worker.get("leases", 0)),
                str(worker.get("chunks_done", 0)),
                (
                    f"{metrics['points_total']:.0f}"
                    if metrics.get("points_total") is not None
                    else "-"
                ),
                (
                    f"{metrics['eval_seconds_sum']:.1f}s"
                    if metrics.get("eval_seconds_sum") is not None
                    else "-"
                ),
                _age(now, worker.get("last_seen")),
            ]
        )
    lines.extend(
        _table(
            ["worker", "state", "leases", "chunks", "points", "eval", "beat"],
            rows,
        )
    )
    chunks = fleet.get("chunks") or {}
    if chunks.get("total"):
        lines.append(
            f"chunks: {chunks.get('completed', 0)}/{chunks['total']} done, "
            f"{chunks.get('leased', 0)} leased, "
            f"{chunks.get('pending', 0)} pending, "
            f"{fleet.get('requeued', 0)} requeued"
        )
    return "\n".join(lines)


# -- the loop -----------------------------------------------------------
def _watch_plain(client: ServeClient, interval: float, out) -> int:
    while True:
        try:
            snapshot = build_snapshot(client)
        except ServeError as error:
            print(f"repro watch: {error}", file=out, flush=True)
            time.sleep(interval)
            continue
        # ANSI clear screen + home; harmless on a dumb pipe, where each
        # frame simply appends.
        print("\x1b[2J\x1b[H" + render_text(snapshot), file=out, flush=True)
        time.sleep(interval)


def _watch_curses(client: ServeClient, interval: float) -> int:
    import curses

    def loop(screen):
        curses.curs_set(0)
        screen.nodelay(True)
        screen.timeout(int(interval * 1000))
        while True:
            try:
                snapshot = build_snapshot(client)
                body = render_text(snapshot)
            except ServeError as error:
                body = f"repro watch: {error}"
            screen.erase()
            max_y, max_x = screen.getmaxyx()
            for y, line in enumerate(body.splitlines()[: max_y - 1]):
                try:
                    screen.addnstr(y, 0, line, max_x - 1)
                except curses.error:  # pragma: no cover - tiny terminal
                    pass
            screen.refresh()
            key = screen.getch()  # doubles as the interval sleep
            if key in (ord("q"), 27):
                return 0

    return curses.wrapper(loop)


def watch(
    url: str,
    interval: float = 2.0,
    once: bool = False,
    fmt: str = "table",
    plain: bool = False,
    timeout: float = 30.0,
    out=None,
) -> int:
    """The ``repro watch`` entry point; returns a process exit code."""
    import sys

    out = out if out is not None else sys.stdout
    client = ServeClient(url, timeout=timeout)
    if once:
        snapshot = build_snapshot(client)
        if fmt == "json":
            print(json.dumps(snapshot, sort_keys=True), file=out, flush=True)
        else:
            print(render_text(snapshot), file=out, flush=True)
        return 0
    if fmt == "json":
        raise ValueError("--format json requires --once (one snapshot)")
    use_curses = not plain
    if use_curses:
        try:
            isatty = out.isatty()
        except (AttributeError, ValueError):
            isatty = False
        use_curses = isatty
    if use_curses:
        try:
            return _watch_curses(client, interval)
        except Exception as error:  # noqa: BLE001 - curses is optional
            log.debug("curses dashboard unavailable (%s); plain fallback", error)
    try:
        return _watch_plain(client, interval, out)
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        return 0
