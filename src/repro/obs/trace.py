"""Lightweight span tracing for jobs and fleet chunks.

A :class:`Trace` stamps one unit of work (a job, a chunk) with a trace
id and a sequence of *timed phases*.  The API is deliberately smaller
than a general tracer: :meth:`Trace.mark` closes the current phase and
opens the next at the same monotonic instant, so phases are contiguous
and non-overlapping **by construction** -- the trace test asserts it,
but the data structure cannot express a violation.  All timing is
``time.monotonic()``: an NTP step during a sweep can never produce a
negative span (the wall-clock ``submitted_at``-style fields jobs keep
for display are a separate concern).

The canonical phase sequences::

    job:   validate -> queue-wait -> evaluate [-> stage-merge]
    ingest: validate -> queue-wait -> ingest
    chunk: lease-wait -> worker-eval -> upload -> ack

Callers observe each closed phase into a registry histogram as
:meth:`mark`/:meth:`end` return it, so ``/metrics`` aggregates what
``GET /jobs/{id}`` reports per job.
"""

from __future__ import annotations

import threading
import time
import uuid

__all__ = ["Trace"]


def new_trace_id() -> str:
    """A short, URL-safe, collision-improbable trace id."""
    return uuid.uuid4().hex[:16]


class Trace:
    """One traced unit of work: an id plus contiguous timed phases."""

    def __init__(self, phase: str | None = None, trace_id: str | None = None):
        self.trace_id = trace_id or new_trace_id()
        self._lock = threading.Lock()
        # Each phase is ``[name, start_mono, end_mono | None]``; at most
        # the last one is open.
        self._phases: list[list] = []
        self._started = time.monotonic()
        self._ended: float | None = None
        if phase is not None:
            self._phases.append([phase, self._started, None])

    # -- recording ------------------------------------------------------
    def mark(self, phase: str) -> tuple[str, float] | None:
        """Close the current phase and open ``phase`` at the same instant.

        Returns ``(closed phase name, seconds)`` -- the sample callers
        feed a latency histogram -- or ``None`` when no phase was open.
        Marking after :meth:`end` is a no-op returning ``None``
        (duplicate terminal transitions must not reopen a trace).
        """
        now = time.monotonic()
        with self._lock:
            if self._ended is not None:
                return None
            closed = self._close_open(now)
            self._phases.append([phase, now, None])
            return closed

    def end(self) -> tuple[str, float] | None:
        """Close the open phase and seal the trace (idempotent)."""
        now = time.monotonic()
        with self._lock:
            if self._ended is not None:
                return None
            self._ended = now
            return self._close_open(now)

    def _close_open(self, now: float) -> tuple[str, float] | None:
        # Called under self._lock.
        if self._phases and self._phases[-1][2] is None:
            open_phase = self._phases[-1]
            open_phase[2] = now
            return open_phase[0], open_phase[2] - open_phase[1]
        return None

    # -- observation ----------------------------------------------------
    @property
    def complete(self) -> bool:
        """True once :meth:`end` sealed the trace (no phase is open)."""
        with self._lock:
            return self._ended is not None

    def phases(self) -> list[dict]:
        """Every phase so far: name, seconds, and whether it is open.

        An open phase reports seconds elapsed so far -- live status
        polls want to see where a running job is spending time.
        """
        now = time.monotonic()
        with self._lock:
            return [
                {
                    "phase": name,
                    "seconds": (end if end is not None else now) - start,
                    "open": end is None,
                }
                for name, start, end in self._phases
            ]

    def total_seconds(self) -> float:
        """Monotonic span from trace start to end (or to now, if open)."""
        with self._lock:
            end = self._ended if self._ended is not None else time.monotonic()
            return end - self._started

    def summary(self) -> dict:
        """The JSON shape ``GET /jobs/{id}`` embeds as ``timings``."""
        return {
            "trace_id": self.trace_id,
            "complete": self.complete,
            "total_seconds": self.total_seconds(),
            "phases": self.phases(),
        }
