"""A thread-safe, stdlib-only metrics registry for the serving stack.

The service's counters used to live as ad-hoc instance attributes
(``Fleet.leases_granted``, ``RecordCache.hits``) surfaced only through
``GET /stats`` JSON -- fine for a quick poll, useless for a scraper or
a rate panel.  :class:`MetricsRegistry` is the shared substrate:

* **counters** (monotone floats), **gauges** (set-or-add floats), and
  **histograms** (fixed log-scale latency buckets with ``sum`` and
  ``count``), all label-aware with a bounded, fixed label-name set per
  family;
* one process-global default registry (:func:`get_registry`) that the
  server, engine, journal, and record cache instrument into, plus
  private per-instance registries where isolation matters (each
  :class:`~repro.serve.fleet.FleetWorker` keeps its own so heartbeats
  carry worker-local numbers even when embedded in-process);
* :meth:`MetricsRegistry.render` emits the Prometheus text exposition
  format behind ``GET /metrics``; :meth:`MetricsRegistry.snapshot`
  emits the compact JSON twin that worker heartbeats ship;
* **collectors** -- callbacks run at render/snapshot time -- pull in
  values that are cheaper to read than to maintain (lru_cache info,
  job-table counts, per-worker heartbeat age);
* ``enabled=False`` turns every mutation into a no-op, which is how
  ``benchmarks/bench_obs_overhead.py`` measures the instrumentation
  tax against an uninstrumented run of the same code path.

Everything mutates under one lock per registry; increments are a dict
update inside it, cheap enough that the hot evaluation path amortizes
them per chunk, not per record (the overhead gate in CI pins ≤5%).
"""

from __future__ import annotations

import threading
from typing import Callable, Iterable

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "DEFAULT_LATENCY_BUCKETS",
]

#: Fixed log-scale (1-2.5-5 ladder) latency buckets, in seconds: fine
#: enough at the bottom for cache hits and journal writes, wide enough
#: at the top for multi-minute fleet chunks.  ``+Inf`` is implicit.
DEFAULT_LATENCY_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)


def _escape_label(value: str) -> str:
    """Escape a label value per the text exposition format."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _escape_help(text: str) -> str:
    return str(text).replace("\\", "\\\\").replace("\n", "\\n")


def _format_value(value: float) -> str:
    # Integral values render without a trailing ``.0`` -- counters are
    # overwhelmingly integers and scrapers prefer them bare.
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _label_body(labelnames: tuple[str, ...], key: tuple) -> str:
    return ",".join(
        f'{name}="{_escape_label(value)}"'
        for name, value in zip(labelnames, key)
    )


class _Family:
    """Shared machinery: one named metric with a fixed label-name set."""

    kind = "untyped"

    def __init__(self, registry: "MetricsRegistry", name: str, help: str,
                 labelnames: Iterable[str] = ()):
        self._registry = registry
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)

    def _key(self, labels: dict) -> tuple:
        if tuple(sorted(labels)) != tuple(sorted(self.labelnames)):
            raise ValueError(
                f"{self.name} wants labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}"
            )
        return tuple(str(labels[name]) for name in self.labelnames)


class Counter(_Family):
    """A monotone counter; negative increments are rejected."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        registry = self._registry
        if not registry.enabled:
            return
        key = self._key(labels)
        with registry._lock:
            values = registry._values[self.name]
            values[key] = values.get(key, 0.0) + amount


class Gauge(_Family):
    """A value that can go anywhere; ``set`` replaces, ``inc`` adds."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        registry = self._registry
        if not registry.enabled:
            return
        key = self._key(labels)
        with registry._lock:
            registry._values[self.name][key] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        registry = self._registry
        if not registry.enabled:
            return
        key = self._key(labels)
        with registry._lock:
            values = registry._values[self.name]
            values[key] = values.get(key, 0.0) + amount


class Histogram(_Family):
    """Fixed-bucket distribution; per label set: buckets + sum + count."""

    kind = "histogram"

    def __init__(self, registry: "MetricsRegistry", name: str, help: str,
                 labelnames: Iterable[str] = (),
                 buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS):
        super().__init__(registry, name, help, labelnames)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("a histogram needs at least one bucket")
        self.buckets = bounds

    def observe(self, value: float, **labels) -> None:
        registry = self._registry
        if not registry.enabled:
            return
        value = float(value)
        key = self._key(labels)
        with registry._lock:
            values = registry._values[self.name]
            state = values.get(key)
            if state is None:
                state = values[key] = [[0] * len(self.buckets), 0.0, 0]
            counts, _, _ = state
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    counts[index] += 1
                    break
            state[1] += value
            state[2] += 1


class MetricsRegistry:
    """A set of metric families behind one lock.

    Families are created idempotently -- asking for an existing name
    returns the existing family object (a mismatched kind raises), so
    modules can declare their instruments at import time without
    coordinating.  ``enabled=False`` (or :meth:`set_enabled`) turns
    every mutation into a cheap no-op; :meth:`reset` clears sample
    values but keeps families and collectors, which is what tests and
    the overhead benchmark want between runs.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._lock = threading.Lock()
        self._families: dict[str, _Family] = {}
        # name -> {label-value tuple: float | [bucket counts, sum, count]}
        self._values: dict[str, dict] = {}
        self._collectors: dict[object, Callable[["MetricsRegistry"], None]] = {}

    # -- family creation ------------------------------------------------
    def _family(self, cls, name: str, help: str, labelnames, **kwargs):
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if not isinstance(family, cls):
                    raise ValueError(
                        f"metric {name} already registered as {family.kind}"
                    )
                return family
            family = cls(self, name, help, labelnames, **kwargs)
            self._families[name] = family
            self._values[name] = {}
            return family

    def counter(self, name: str, help: str = "",
                labelnames: Iterable[str] = ()) -> Counter:
        return self._family(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "",
              labelnames: Iterable[str] = ()) -> Gauge:
        return self._family(Gauge, name, help, labelnames)

    def histogram(self, name: str, help: str = "",
                  labelnames: Iterable[str] = (),
                  buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS,
                  ) -> Histogram:
        return self._family(Histogram, name, help, labelnames,
                            buckets=buckets)

    # -- lifecycle ------------------------------------------------------
    def set_enabled(self, enabled: bool) -> None:
        self.enabled = bool(enabled)

    def reset(self) -> None:
        """Clear every sample value; families and collectors survive."""
        with self._lock:
            for values in self._values.values():
                values.clear()

    def add_collector(
        self, collector: Callable[["MetricsRegistry"], None],
        key: object = None,
    ) -> None:
        """Run ``collector(registry)`` before every render/snapshot.

        A ``key`` makes registration replacing instead of appending --
        a restarted service re-registers its collector under the same
        key and the stale closure is dropped with it.
        """
        with self._lock:
            self._collectors[key if key is not None else collector] = collector

    def _collect(self) -> None:
        if not self.enabled:
            return
        with self._lock:
            collectors = list(self._collectors.values())
        for collector in collectors:
            try:
                collector(self)
            except Exception:  # noqa: BLE001 - a scrape must not 500
                # A collector reading live service state can race a
                # teardown; losing its gauges beats failing the scrape.
                pass

    # -- output ---------------------------------------------------------
    def render(self) -> str:
        """The Prometheus text exposition format (version 0.0.4)."""
        self._collect()
        lines: list[str] = []
        with self._lock:
            for name in sorted(self._families):
                family = self._families[name]
                values = self._values[name]
                lines.append(f"# HELP {name} {_escape_help(family.help)}")
                lines.append(f"# TYPE {name} {family.kind}")
                for key in sorted(values):
                    body = _label_body(family.labelnames, key)
                    if isinstance(family, Histogram):
                        counts, total, count = values[key]
                        cumulative = 0
                        for bound, bucket in zip(family.buckets, counts):
                            cumulative += bucket
                            le = f'le="{_format_value(bound)}"'
                            label = f"{{{body},{le}}}" if body else f"{{{le}}}"
                            lines.append(
                                f"{name}_bucket{label} {cumulative}"
                            )
                        inf = 'le="+Inf"'
                        label = f"{{{body},{inf}}}" if body else f"{{{inf}}}"
                        lines.append(f"{name}_bucket{label} {count}")
                        suffix = f"{{{body}}}" if body else ""
                        lines.append(
                            f"{name}_sum{suffix} {_format_value(total)}"
                        )
                        lines.append(f"{name}_count{suffix} {count}")
                    else:
                        suffix = f"{{{body}}}" if body else ""
                        lines.append(
                            f"{name}{suffix} {_format_value(values[key])}"
                        )
        return "\n".join(lines) + "\n"

    def snapshot(self) -> dict:
        """A compact JSON-able dump (what worker heartbeats carry).

        ``{"counters": {...}, "gauges": {...}, "histograms": {...}}``,
        each keyed by family name; sample values pair a label dict with
        a value (histograms: ``sum`` and ``count`` -- buckets stay
        local, a heartbeat does not need them).
        """
        self._collect()
        out: dict = {"counters": {}, "gauges": {}, "histograms": {}}
        with self._lock:
            for name, family in self._families.items():
                samples = []
                for key, value in self._values[name].items():
                    labels = dict(zip(family.labelnames, key))
                    if isinstance(family, Histogram):
                        _, total, count = value
                        samples.append(
                            {"labels": labels, "sum": total, "count": count}
                        )
                    else:
                        samples.append({"labels": labels, "value": value})
                if samples:
                    out[family.kind + "s"][name] = samples
        return out


#: The process-global registry the serving stack instruments into.
_DEFAULT = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-global default registry."""
    return _DEFAULT
