"""Command-line interface: regenerate paper results and run custom sims.

Examples
--------
::

    python -m repro table1
    python -m repro fig5
    python -m repro simulate --model ResNet-18 --platform bpvec --memory hbm2
    python -m repro roofline --model LSTM --platform bpvec --memory ddr4
    python -m repro dse --workload LSTM --workload RNN --store results.jsonl
    python -m repro dse --spec sweep.json --workers 4 --format jsonl
    python -m repro dse --shard 0/2 --store shard0.jsonl --stream
    python -m repro dse-merge merged.jsonl shard0.jsonl shard1.jsonl
    python -m repro dse-compact merged.jsonl --gzip
    python -m repro chips
"""

from __future__ import annotations

import argparse
import json
import re
import sys

from .dse import (
    MEMORY_NAMES,
    PLATFORM_NAMES,
    ResultStore,
    SweepSpec,
    iter_sweep,
    pareto_frontier,
    render_records,
    run_sweep,
    top_k,
)
from .experiments import (
    fig4_design_space,
    fig5_homogeneous_ddr4,
    fig6_homogeneous_hbm2,
    fig7_heterogeneous_ddr4,
    fig8_heterogeneous_hbm2,
    fig9_gpu_comparison,
    render_speedup_rows,
    render_table1,
    render_table2,
)
from .hw import BITFUSION, BPVEC, DDR4, HBM2, TPU_LIKE, all_chip_reports
from .nn import WORKLOAD_BUILDERS, homogeneous_8bit, paper_heterogeneous
from .sim import format_table, simulate_network
from .sim.roofline import ridge_point, roofline_analysis

__all__ = ["main", "build_parser"]

_PLATFORMS = {
    "tpu": TPU_LIKE,
    "bitfusion": BITFUSION,
    "bpvec": BPVEC,
}
_MEMORIES = {"ddr4": DDR4, "hbm2": HBM2}


def _workload(name: str, heterogeneous: bool, batch: int | None):
    matches = {k.lower(): k for k in WORKLOAD_BUILDERS}
    key = matches.get(name.lower())
    if key is None:
        raise SystemExit(
            f"unknown model {name!r}; choose from {sorted(WORKLOAD_BUILDERS)}"
        )
    builder = WORKLOAD_BUILDERS[key]
    net = builder() if batch is None else builder(batch=batch)
    return paper_heterogeneous(net) if heterogeneous else homogeneous_8bit(net)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Bit-Parallel Vector Composability (DAC'20) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for name in (
        "table1",
        "table2",
        "fig4",
        "fig5",
        "fig6",
        "fig7",
        "fig8",
        "fig9",
        "chips",
    ):
        sub.add_parser(name, help=f"regenerate {name}")

    report = sub.add_parser("report", help="full reproduction report (markdown)")
    report.add_argument(
        "--output", default=None, help="write to file instead of stdout"
    )

    sim = sub.add_parser("simulate", help="simulate one workload on one platform")
    sim.add_argument("--model", required=True)
    sim.add_argument("--platform", choices=sorted(_PLATFORMS), default="bpvec")
    sim.add_argument("--memory", choices=sorted(_MEMORIES), default="ddr4")
    sim.add_argument("--heterogeneous", action="store_true")
    sim.add_argument("--batch", type=int, default=None)

    roof = sub.add_parser("roofline", help="per-layer roofline analysis")
    roof.add_argument("--model", required=True)
    roof.add_argument("--platform", choices=sorted(_PLATFORMS), default="bpvec")
    roof.add_argument("--memory", choices=sorted(_MEMORIES), default="ddr4")
    roof.add_argument("--heterogeneous", action="store_true")
    roof.add_argument("--batch", type=int, default=None)

    dse = sub.add_parser(
        "dse", help="batched design-space sweep on the cached DSE engine"
    )
    dse.add_argument("--spec", default=None, help="JSON sweep-spec file")
    dse.add_argument("--workload", action="append", dest="workloads", default=None)
    dse.add_argument(
        "--platform",
        action="append",
        dest="platforms",
        choices=PLATFORM_NAMES,
        default=None,
    )
    dse.add_argument(
        "--memory",
        action="append",
        dest="memories",
        choices=MEMORY_NAMES,
        default=None,
    )
    dse.add_argument("--policy", action="append", dest="policies", default=None)
    dse.add_argument(
        "--batch", action="append", dest="batches", type=int, default=None
    )
    dse.add_argument("--store", default=None, help="JSONL result store path")
    dse.add_argument("--workers", type=int, default=1)
    dse.add_argument(
        "--no-vectorize",
        action="store_true",
        help="evaluate points one-by-one on the scalar simulator instead of "
        "the batched numpy evaluator (records are bit-identical either way)",
    )
    dse.add_argument(
        "--shard",
        default=None,
        metavar="I/N",
        help="evaluate only hash-range shard I of N (0-based), e.g. 0/2",
    )
    dse.add_argument(
        "--stream",
        action="store_true",
        help="print records as JSONL the moment each completes",
    )
    dse.add_argument("--format", choices=("table", "jsonl"), default="table")
    dse.add_argument(
        "--pareto", action="store_true", help="print only the Pareto frontier"
    )
    dse.add_argument("--top-k", type=int, default=None, dest="top_k")
    dse.add_argument("--objective", default="total_seconds")
    dse.add_argument("--sense", choices=("min", "max"), default="min")

    merge = sub.add_parser(
        "dse-merge", help="union per-shard result stores into one"
    )
    merge.add_argument("dest", help="destination store (created or extended)")
    merge.add_argument("sources", nargs="+", help="per-shard JSONL stores")
    merge.add_argument(
        "--gzip", action="store_true", help="write the merged store gzipped"
    )

    compact = sub.add_parser(
        "dse-compact", help="drop superseded/stale lines from a result store"
    )
    compact.add_argument("store", help="JSONL result store path")
    compact.add_argument(
        "--gzip", action="store_true", help="gzip-compress the compacted store"
    )
    compact.add_argument(
        "--keep-stale",
        action="store_true",
        help="keep records from older EVAL_VERSIONs",
    )
    return parser


def _dse_spec(args) -> SweepSpec:
    if args.spec:
        with open(args.spec) as handle:
            return SweepSpec.from_dict(json.load(handle))
    return SweepSpec.grid(
        workloads=args.workloads or list(WORKLOAD_BUILDERS),
        platforms=args.platforms or PLATFORM_NAMES,
        memories=args.memories or MEMORY_NAMES,
        policies=args.policies or ("homogeneous-8bit",),
        batches=args.batches or (None,),
    )


def _parse_shard(text: str) -> tuple[int, int]:
    match = re.fullmatch(r"(\d+)/(\d+)", text.strip())
    if not match:
        raise ValueError(f"--shard wants I/N (e.g. 0/2), got {text!r}")
    return int(match.group(1)), int(match.group(2))


def _run_dse(args) -> None:
    if args.stream and (args.pareto or args.top_k is not None):
        raise SystemExit("dse: --stream cannot be combined with --pareto/--top-k")
    try:
        spec = _dse_spec(args)
        if args.shard is not None:
            index, count = _parse_shard(args.shard)
            spec = spec.shard(index, count)
            if len(spec) == 0:
                print(
                    f"dse: shard {index}/{count} owns no points of this sweep",
                    file=sys.stderr,
                )
                return
        vectorize = not args.no_vectorize
        if args.stream:
            for sweep_record in iter_sweep(
                spec, store=args.store, workers=args.workers, vectorize=vectorize
            ):
                print(json.dumps(sweep_record.record, sort_keys=True), flush=True)
            return
        result = run_sweep(
            spec, store=args.store, workers=args.workers, vectorize=vectorize
        )
        records = result.records
        if args.pareto:
            records = pareto_frontier(records)
        if args.top_k is not None:
            records = top_k(records, args.objective, k=args.top_k, sense=args.sense)
    except (KeyError, TypeError, ValueError, OSError) as error:
        raise SystemExit(f"dse: {error}")
    if args.format == "jsonl":
        for record in records:
            print(json.dumps(record, sort_keys=True))
    else:
        print(render_records(records))
        print()
        print(result.summary())


def _run_dse_merge(args) -> None:
    try:
        dest = ResultStore(args.dest)
        total = dest.merge(args.sources, gzip=True if args.gzip else None)
    except (TypeError, ValueError, OSError) as error:
        raise SystemExit(f"dse-merge: {error}")
    print(f"merged {len(args.sources)} stores into {args.dest}: {total} records")


def _run_dse_compact(args) -> None:
    store = ResultStore(args.store)
    if not store.exists():
        raise SystemExit(f"dse-compact: no such store: {args.store}")
    try:
        before = store.path.stat().st_size
        kept, dropped = store.compact(
            gzip=True if args.gzip else None, drop_stale=not args.keep_stale
        )
        after = store.path.stat().st_size
    except (TypeError, ValueError, OSError) as error:
        raise SystemExit(f"dse-compact: {error}")
    print(
        f"compacted {args.store}: kept {kept} records, dropped {dropped} "
        f"superseded lines ({before} -> {after} bytes)"
    )


def _run_figure(command: str) -> str:
    if command == "fig4":
        rows = [
            (p.metric, f"{p.slice_width}-bit", p.lanes, p.total)
            for p in fig4_design_space()
        ]
        return format_table(["Metric", "Slicing", "L", "Total (vs conv. MAC)"], rows)
    driver = {
        "fig5": fig5_homogeneous_ddr4,
        "fig6": fig6_homogeneous_hbm2,
        "fig7": fig7_heterogeneous_ddr4,
        "fig8": fig8_heterogeneous_hbm2,
    }[command]
    return render_speedup_rows(driver())


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    command = args.command

    if command == "report":
        from .experiments.report import generate_report

        text = generate_report()
        if args.output:
            with open(args.output, "w") as handle:
                handle.write(text)
            print(f"wrote {args.output}")
        else:
            print(text)
    elif command == "table1":
        print(render_table1())
    elif command == "table2":
        print(render_table2())
    elif command in ("fig4", "fig5", "fig6", "fig7", "fig8"):
        print(_run_figure(command))
    elif command == "fig9":
        rows = [
            (r.workload, r.regime, r.ddr4_ratio, r.hbm2_ratio)
            for r in fig9_gpu_comparison()
        ]
        print(
            format_table(
                ["Workload", "Regime", "vs GPU (DDR4)", "vs GPU (HBM2)"],
                rows,
                precision=1,
            )
        )
    elif command == "chips":
        for report in all_chip_reports():
            print(report)
    elif command == "dse":
        _run_dse(args)
    elif command == "dse-merge":
        _run_dse_merge(args)
    elif command == "dse-compact":
        _run_dse_compact(args)
    elif command == "simulate":
        net = _workload(args.model, args.heterogeneous, args.batch)
        result = simulate_network(
            net, _PLATFORMS[args.platform], _MEMORIES[args.memory]
        )
        print(result.summary())
        rows = [
            (
                l.layer_name,
                f"{l.bw_act}x{l.bw_w}",
                l.cycles,
                "memory" if l.is_memory_bound else "compute",
            )
            for l in result.layers
        ]
        print(format_table(["Layer", "Bits", "Cycles", "Bound"], rows))
    elif command == "roofline":
        net = _workload(args.model, args.heterogeneous, args.batch)
        spec = _PLATFORMS[args.platform]
        memory = _MEMORIES[args.memory]
        ridge = ridge_point(spec, memory)
        print(f"ridge point: {ridge:.1f} MACs/byte on {spec.name} + {memory.name}")
        rows = [
            (
                p.layer_name,
                p.operational_intensity,
                p.attained_macs_per_cycle,
                p.roof_fraction,
                "memory" if p.memory_bound else "compute",
            )
            for p in roofline_analysis(net, spec, memory)
        ]
        print(
            format_table(
                ["Layer", "MACs/byte", "MACs/cycle", "of roof", "Bound"], rows
            )
        )
    else:  # pragma: no cover - argparse enforces choices
        raise SystemExit(f"unknown command {command}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
