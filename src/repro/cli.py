"""Command-line interface: regenerate paper results and run custom sims.

Examples
--------
::

    python -m repro table1
    python -m repro fig5
    python -m repro simulate --model ResNet-18 --platform bpvec --memory hbm2
    python -m repro roofline --model LSTM --platform bpvec --memory ddr4
    python -m repro dse --workload LSTM --workload RNN --store results.jsonl
    python -m repro dse --spec sweep.json --workers 4 --format jsonl
    python -m repro dse --shard 0/2 --store shard0.jsonl --stream
    python -m repro dse --workload RNN --policy-axis policies.json
    python -m repro dse --workload LSTM --store results.sqlite --format json
    python -m repro quant-dse --workload LSTM --max-drop 0.02 --max-drop 0.05
    python -m repro dse-merge merged.jsonl shard0.jsonl shard1.jsonl
    python -m repro dse-compact merged.jsonl --gzip
    python -m repro serve --store results.sqlite --port 8000
    python -m repro dse --workload LSTM --server http://127.0.0.1:8000
    python -m repro dse --spec big.json --server http://127.0.0.1:8000 --detach
    python -m repro dse --spec big.json --server http://127.0.0.1:8000 --fleet
    python -m repro worker --server http://127.0.0.1:8000 --name box-a
    python -m repro watch http://127.0.0.1:8000 --interval 2
    python -m repro dse-launch --workload LSTM --shards 4 --store merged.jsonl
    python -m repro dse-launch --workload LSTM --fleet 4 --store merged.sqlite
    python -m repro chips
"""

from __future__ import annotations

import argparse
import json
import re
import sys
import time
from pathlib import Path

from .dse import (
    MEMORY_NAMES,
    PLATFORM_NAMES,
    PartitionedStore,
    SweepResult,
    SweepSpec,
    co_explore,
    iter_sweep,
    open_store,
    pareto_frontier,
    policy_name,
    render_records,
    run_sweep,
    top_k,
)
from .obs.logs import configure_logging
from .serve import (
    FleetWorker,
    JobJournal,
    ServeClient,
    ServeError,
    default_journal_path,
    launch,
    launch_fleet,
    render_commands,
    serve,
    shard_commands,
    shard_store_path,
)
from .serve.fleet import (
    DEFAULT_HEARTBEAT_TTL,
    DEFAULT_LEASE_TTL,
    DEFAULT_RECONNECT_GRACE,
)
from .serve.server import (
    DEFAULT_DRAIN_TIMEOUT,
    DEFAULT_JOB_RETENTION,
    DEFAULT_RECORD_CACHE,
)
from .serve.serializers import (
    co_explore_payload,
    records_payload,
    result_summary,
)
from .serve.serializers import dumps as payload_json
from .experiments import (
    fig4_design_space,
    fig5_homogeneous_ddr4,
    fig6_homogeneous_hbm2,
    fig7_heterogeneous_ddr4,
    fig8_heterogeneous_hbm2,
    fig9_gpu_comparison,
    render_speedup_rows,
    render_table1,
    render_table2,
)
from .hw import BITFUSION, BPVEC, DDR4, HBM2, TPU_LIKE, all_chip_reports
from .nn import WORKLOAD_BUILDERS, homogeneous_8bit, paper_heterogeneous
from .sim import format_table, simulate_network
from .sim.roofline import ridge_point, roofline_analysis

__all__ = ["main", "build_parser"]

_PLATFORMS = {
    "tpu": TPU_LIKE,
    "bitfusion": BITFUSION,
    "bpvec": BPVEC,
}
_MEMORIES = {"ddr4": DDR4, "hbm2": HBM2}


def _workload(name: str, heterogeneous: bool, batch: int | None):
    matches = {k.lower(): k for k in WORKLOAD_BUILDERS}
    key = matches.get(name.lower())
    if key is None:
        raise SystemExit(
            f"unknown model {name!r}; choose from {sorted(WORKLOAD_BUILDERS)}"
        )
    builder = WORKLOAD_BUILDERS[key]
    net = builder() if batch is None else builder(batch=batch)
    return paper_heterogeneous(net) if heterogeneous else homogeneous_8bit(net)


def _add_spec_arguments(parser: argparse.ArgumentParser) -> None:
    """The sweep-building flags shared by ``dse`` and ``dse-launch``."""
    parser.add_argument("--spec", default=None, help="JSON sweep-spec file")
    parser.add_argument(
        "--workload", action="append", dest="workloads", default=None
    )
    parser.add_argument(
        "--platform",
        action="append",
        dest="platforms",
        choices=PLATFORM_NAMES,
        default=None,
    )
    parser.add_argument(
        "--memory",
        action="append",
        dest="memories",
        choices=MEMORY_NAMES,
        default=None,
    )
    parser.add_argument(
        "--policy", action="append", dest="policies", default=None
    )
    parser.add_argument(
        "--policy-axis",
        default=None,
        metavar="FILE",
        help="JSON file with a list of bitwidth policies (names, "
        '{"layers": [[a, w], ...]} dicts, or bare per-layer lists) to '
        "sweep as the policy axis, in addition to any --policy names",
    )
    parser.add_argument(
        "--batch", action="append", dest="batches", type=int, default=None
    )


def _add_store_arguments(
    parser: argparse.ArgumentParser, required: bool = False
) -> None:
    """``--store`` + ``--backend``, shared by every store-touching command."""
    parser.add_argument(
        "--store",
        default=None,
        required=required,
        help="result store path (JSONL; SQLite for .sqlite/.db paths; "
        "a hash-partitioned directory for .parts paths)",
    )
    parser.add_argument(
        "--backend",
        choices=("jsonl", "sqlite", "partitioned"),
        default=None,
        help="force the store backend instead of sniffing magic "
        "bytes/suffix",
    )


def _add_logging_arguments(parser: argparse.ArgumentParser) -> None:
    """``--log-level`` + ``--log-json``, shared by the service commands."""
    parser.add_argument(
        "--log-level",
        choices=("debug", "info", "warning", "error"),
        default="info",
        help="threshold for the repro.* structured logs on stderr",
    )
    parser.add_argument(
        "--log-json",
        action="store_true",
        help="emit logs as JSON lines instead of human-readable text",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Bit-Parallel Vector Composability (DAC'20) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for name in (
        "table1",
        "table2",
        "fig4",
        "fig5",
        "fig6",
        "fig7",
        "fig8",
        "fig9",
        "chips",
    ):
        sub.add_parser(name, help=f"regenerate {name}")

    report = sub.add_parser("report", help="full reproduction report (markdown)")
    report.add_argument(
        "--output", default=None, help="write to file instead of stdout"
    )

    sim = sub.add_parser("simulate", help="simulate one workload on one platform")
    sim.add_argument("--model", required=True)
    sim.add_argument("--platform", choices=sorted(_PLATFORMS), default="bpvec")
    sim.add_argument("--memory", choices=sorted(_MEMORIES), default="ddr4")
    sim.add_argument("--heterogeneous", action="store_true")
    sim.add_argument("--batch", type=int, default=None)

    roof = sub.add_parser("roofline", help="per-layer roofline analysis")
    roof.add_argument("--model", required=True)
    roof.add_argument("--platform", choices=sorted(_PLATFORMS), default="bpvec")
    roof.add_argument("--memory", choices=sorted(_MEMORIES), default="ddr4")
    roof.add_argument("--heterogeneous", action="store_true")
    roof.add_argument("--batch", type=int, default=None)

    dse = sub.add_parser(
        "dse", help="batched design-space sweep on the cached DSE engine"
    )
    _add_spec_arguments(dse)
    _add_store_arguments(dse)
    # Default None, not 1: in --server mode an unset flag must defer to
    # the server's own configured default instead of overriding it.
    dse.add_argument("--workers", type=int, default=None)
    dse.add_argument(
        "--no-vectorize",
        action="store_true",
        help="evaluate points one-by-one on the scalar simulator instead of "
        "the batched numpy evaluator (records are bit-identical either way)",
    )
    dse.add_argument(
        "--shard",
        default=None,
        metavar="I/N",
        help="evaluate only hash-range shard I of N (0-based), e.g. 0/2",
    )
    dse.add_argument(
        "--stream",
        action="store_true",
        help="print records as JSONL the moment each completes",
    )
    dse.add_argument(
        "--server",
        default=None,
        metavar="URL",
        help="submit the sweep to a running 'repro serve' instance instead "
        "of evaluating locally (records are bit-identical either way)",
    )
    dse.add_argument(
        "--timeout",
        type=float,
        default=600.0,
        metavar="SECONDS",
        help="socket timeout for --server requests (raise it when long "
        "sweeps may queue behind others server-side)",
    )
    dse.add_argument(
        "--detach",
        action="store_true",
        help="with --server: submit the sweep as a job and print its id "
        "instead of streaming it to completion (poll GET /jobs/{id}, "
        "stream /jobs/{id}/records, cancel with POST /jobs/{id}/cancel)",
    )
    dse.add_argument(
        "--priority",
        type=int,
        default=None,
        metavar="N",
        help="with --server: job priority (lower schedules sooner; "
        "FIFO within a level)",
    )
    dse.add_argument(
        "--fleet",
        action="store_true",
        help="with --server: submit as a fleet job evaluated by "
        "pull-based 'repro worker' processes (records land in the "
        "server store; combine with --detach to just print the id)",
    )
    dse.add_argument(
        "--chunks",
        type=int,
        default=None,
        metavar="N",
        help="with --fleet: lease-queue chunk count "
        "(default min(points, 16))",
    )
    dse.add_argument(
        "--format", choices=("table", "jsonl", "json"), default="table"
    )
    dse.add_argument(
        "--pareto", action="store_true", help="print only the Pareto frontier"
    )
    dse.add_argument("--top-k", type=int, default=None, dest="top_k")
    dse.add_argument("--objective", default="total_seconds")
    dse.add_argument("--sense", choices=("min", "max"), default="min")

    quant = sub.add_parser(
        "quant-dse",
        help="co-explore bitwidth policies (sensitivity search) and "
        "hardware points; reduce to the accuracy/performance frontier",
    )
    quant.add_argument("--workload", required=True)
    quant.add_argument(
        "--platform",
        action="append",
        dest="platforms",
        choices=PLATFORM_NAMES,
        default=None,
    )
    quant.add_argument(
        "--memory",
        action="append",
        dest="memories",
        choices=MEMORY_NAMES,
        default=None,
    )
    quant.add_argument(
        "--batch", action="append", dest="batches", type=int, default=None
    )
    quant.add_argument(
        "--max-drop",
        action="append",
        dest="max_drops",
        type=float,
        default=None,
        help="accuracy-drop budget for the greedy bitwidth search; "
        "repeat for several budgets (default: 0.0 0.02 0.05)",
    )
    quant.add_argument(
        "--ladder",
        default="8,4,2",
        help="strictly decreasing bitwidth ladder for the search",
    )
    quant.add_argument("--seed", type=int, default=0)
    quant.add_argument("--objective", default="total_seconds")
    quant.add_argument("--sense", choices=("min", "max"), default="min")
    _add_store_arguments(quant)
    quant.add_argument("--workers", type=int, default=1)
    quant.add_argument(
        "--no-vectorize",
        action="store_true",
        help="evaluate points one-by-one on the scalar simulator instead of "
        "the batched numpy evaluator (records are bit-identical either way)",
    )
    quant.add_argument(
        "--format", choices=("table", "jsonl", "json"), default="table"
    )
    quant.add_argument(
        "--frontier-only",
        action="store_true",
        help="emit only the accuracy/performance Pareto frontier",
    )

    merge = sub.add_parser(
        "dse-merge", help="union per-shard result stores into one"
    )
    merge.add_argument("dest", help="destination store (created or extended)")
    merge.add_argument(
        "sources", nargs="+", help="per-shard stores (either backend)"
    )
    merge.add_argument(
        "--gzip",
        action="store_true",
        help="write the merged store gzipped (JSONL destinations only)",
    )
    merge.add_argument(
        "--backend",
        choices=("jsonl", "sqlite", "partitioned"),
        default=None,
        help="force the destination backend instead of sniffing",
    )

    compact = sub.add_parser(
        "dse-compact", help="drop superseded/stale lines from a result store"
    )
    compact.add_argument("store", help="result store path (any backend)")
    compact.add_argument(
        "--gzip", action="store_true", help="gzip-compress the compacted store"
    )
    compact.add_argument(
        "--keep-stale",
        action="store_true",
        help="keep records from older EVAL_VERSIONs",
    )
    compact.add_argument(
        "--stale-threshold",
        type=float,
        default=None,
        metavar="FRACTION",
        help="partitioned stores only: rewrite just the parts whose "
        "stale-line fraction exceeds FRACTION (keeps all record "
        "versions) instead of a full compaction",
    )

    server = sub.add_parser(
        "serve",
        help="serve the result store + DSE engine over HTTP (submit "
        "sweeps, stream records, query frontiers server-side)",
    )
    _add_store_arguments(server)
    server.add_argument("--host", default="127.0.0.1")
    server.add_argument(
        "--port", type=int, default=8000, help="0 binds an ephemeral port"
    )
    server.add_argument(
        "--workers", type=int, default=1, help="default workers per sweep"
    )
    server.add_argument(
        "--job-workers",
        type=int,
        default=2,
        metavar="N",
        help="sweep jobs that may run concurrently (the bounded worker "
        "pool behind POST /sweep)",
    )
    server.add_argument(
        "--client-timeout",
        type=float,
        default=600.0,
        metavar="SECONDS",
        help="socket timeout per client connection -- a stalled client "
        "frees its handler thread after this long",
    )
    server.add_argument(
        "--lease-ttl",
        type=float,
        default=DEFAULT_LEASE_TTL,
        metavar="SECONDS",
        help="seconds a fleet worker's chunk lease stays valid without "
        "an ack before the chunk requeues",
    )
    server.add_argument(
        "--heartbeat-ttl",
        type=float,
        default=DEFAULT_HEARTBEAT_TTL,
        metavar="SECONDS",
        help="seconds of heartbeat silence before a fleet worker counts "
        "as dead (its leases requeue immediately)",
    )
    server.add_argument(
        "--journal",
        default=None,
        metavar="PATH",
        help="durable job/lease journal (crash recovery); defaults to "
        "<store>.journal when --store is set",
    )
    server.add_argument(
        "--no-journal",
        action="store_true",
        help="disable the job journal (no crash recovery)",
    )
    server.add_argument(
        "--drain-timeout",
        type=float,
        default=DEFAULT_DRAIN_TIMEOUT,
        metavar="SECONDS",
        help="seconds a graceful drain (SIGTERM or POST "
        "/shutdown?drain=true) waits for running jobs before "
        "cancelling stragglers",
    )
    server.add_argument(
        "--max-queue-depth",
        type=int,
        default=None,
        metavar="N",
        help="reject sweep submissions beyond N queued jobs with "
        "429 + Retry-After (unset: unbounded)",
    )
    server.add_argument(
        "--job-retention",
        type=int,
        default=DEFAULT_JOB_RETENTION,
        metavar="N",
        help="keep at most N terminal jobs in the table and journal "
        "(0: unbounded)",
    )
    server.add_argument(
        "--job-ttl",
        type=float,
        default=None,
        metavar="SECONDS",
        help="evict terminal jobs finished more than SECONDS ago",
    )
    server.add_argument(
        "--inspect-journal",
        action="store_true",
        help="print the journal's job/chunk/recovery summary as JSON "
        "and exit instead of serving",
    )
    server.add_argument(
        "--record-cache",
        type=int,
        default=DEFAULT_RECORD_CACHE,
        metavar="N",
        help="cache up to N resolved records (and their served pages) "
        "between store changes; 0 disables the cache",
    )
    server.add_argument("--no-vectorize", action="store_true")
    server.add_argument(
        "--verbose", action="store_true", help="log every request"
    )
    _add_logging_arguments(server)

    worker = sub.add_parser(
        "worker",
        help="join a sweep server's worker fleet: pull chunk leases, "
        "evaluate them locally, stream the records back, ack",
    )
    worker.add_argument(
        "--server", required=True, metavar="URL", help="'repro serve' URL"
    )
    worker.add_argument(
        "--name", default=None, help="worker name shown in GET /workers"
    )
    worker.add_argument(
        "--capacity",
        type=int,
        default=1,
        help="chunk leases this worker may hold at once",
    )
    worker.add_argument(
        "--poll",
        type=float,
        default=0.5,
        metavar="SECONDS",
        help="idle wait between lease attempts when the queue is empty",
    )
    worker.add_argument(
        "--timeout",
        type=float,
        default=60.0,
        metavar="SECONDS",
        help="socket timeout for server requests",
    )
    worker.add_argument(
        "--workers", type=int, default=1, help="processes per chunk evaluation"
    )
    worker.add_argument("--no-vectorize", action="store_true")
    worker.add_argument(
        "--exit-when-drained",
        action="store_true",
        help="exit 0 when the server reports no active fleet jobs "
        "instead of idling for more work",
    )
    worker.add_argument(
        "--max-chunks",
        type=int,
        default=None,
        metavar="N",
        help="exit after completing N chunks",
    )
    worker.add_argument(
        "--throttle",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="hold each lease this long before evaluating "
        "(fault-injection/testing aid)",
    )
    worker.add_argument(
        "--reconnect-grace",
        type=float,
        default=DEFAULT_RECONNECT_GRACE,
        metavar="SECONDS",
        help="keep retrying this long when the server is unreachable "
        "(a restart in progress) before exiting 1 (0 disables)",
    )
    _add_logging_arguments(worker)

    watch_cmd = sub.add_parser(
        "watch",
        help="live ops dashboard for a running 'repro serve' instance "
        "(polls /metrics, /stats, /jobs, /workers)",
    )
    watch_cmd.add_argument("url", metavar="URL", help="'repro serve' URL")
    watch_cmd.add_argument(
        "--interval",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="refresh period between polls",
    )
    watch_cmd.add_argument(
        "--once",
        action="store_true",
        help="render a single snapshot and exit",
    )
    watch_cmd.add_argument(
        "--format",
        choices=("table", "json"),
        default="table",
        help="json (requires --once) dumps the raw snapshot",
    )
    watch_cmd.add_argument(
        "--plain",
        action="store_true",
        help="plain line-per-refresh output instead of the full-screen "
        "dashboard (automatic when stdout is not a TTY)",
    )
    watch_cmd.add_argument(
        "--timeout",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="socket timeout for server requests",
    )

    dse_launch = sub.add_parser(
        "dse-launch",
        help="shard a sweep N ways, run every shard as a local process "
        "(or print per-machine command lines), and auto-merge the "
        "shard stores",
    )
    _add_spec_arguments(dse_launch)
    _add_store_arguments(dse_launch, required=True)
    dse_launch.add_argument(
        "--shards", type=int, default=2, metavar="N", help="shard count"
    )
    dse_launch.add_argument(
        "--workers", type=int, default=1, help="workers per shard process"
    )
    dse_launch.add_argument("--no-vectorize", action="store_true")
    dse_launch.add_argument(
        "--print-cmds",
        action="store_true",
        help="print the per-shard command lines instead of spawning them "
        "(run each line on any machine, then 'repro dse-merge')",
    )
    dse_launch.add_argument(
        "--post",
        default=None,
        metavar="URL",
        help="after merging, post the merged records to a running "
        "'repro serve' instance",
    )
    dse_launch.add_argument(
        "--keep-shards",
        action="store_true",
        help="keep the per-shard stores after a successful merge",
    )
    dse_launch.add_argument(
        "--no-fail-fast",
        action="store_true",
        help="let surviving shards run to completion when one crashes "
        "instead of terminating them promptly (partial shard stores "
        "are kept either way)",
    )
    dse_launch.add_argument(
        "--fleet",
        type=int,
        default=None,
        metavar="N",
        help="spawn N pull-based fleet workers against an ephemeral "
        "in-process server instead of a fixed shard plan "
        "(work-stealing; a dead worker's leases requeue)",
    )
    dse_launch.add_argument(
        "--chunks",
        type=int,
        default=None,
        metavar="M",
        help="with --fleet: lease-queue chunk count (default 4x workers)",
    )
    return parser


def _policy_axis(path: str) -> list[str]:
    """Load a JSON policy-axis file into canonical policy names."""
    with open(path) as handle:
        entries = json.load(handle)
    if not isinstance(entries, list) or not entries:
        raise ValueError(f"policy-axis file {path!r} must hold a non-empty JSON list")
    return [policy_name(entry) for entry in entries]


def _dse_spec(args) -> SweepSpec:
    if args.spec:
        if args.policy_axis:
            raise ValueError("--policy-axis cannot be combined with --spec")
        with open(args.spec) as handle:
            return SweepSpec.from_dict(json.load(handle))
    # Canonicalize before deduplicating: "Homogeneous-8BIT" via --policy
    # and "homogeneous-8bit" via --policy-axis are the same axis value.
    policies = []
    for entry in args.policies or ():
        name = policy_name(entry)
        if name not in policies:
            policies.append(name)
    if args.policy_axis:
        for name in _policy_axis(args.policy_axis):
            if name not in policies:
                policies.append(name)
    return SweepSpec.grid(
        workloads=args.workloads or list(WORKLOAD_BUILDERS),
        platforms=args.platforms or PLATFORM_NAMES,
        memories=args.memories or MEMORY_NAMES,
        policies=policies or ("homogeneous-8bit",),
        batches=args.batches or (None,),
    )


def _open_cli_store(args):
    """The ``--store`` flag as a store object (honoring ``--backend``)."""
    if not args.store:
        return None
    return open_store(args.store, backend=args.backend)


def _parse_shard(text: str) -> tuple[int, int]:
    match = re.fullmatch(r"(\d+)/(\d+)", text.strip())
    if not match:
        raise ValueError(f"--shard wants I/N (e.g. 0/2), got {text!r}")
    return int(match.group(1)), int(match.group(2))


def _server_options(args) -> dict:
    """Engine options to forward to a server: only the explicit ones.

    Flags the user did not pass are omitted from the request so the
    server's own ``--workers`` / ``--no-vectorize`` defaults apply.
    """
    options: dict = {}
    if args.workers is not None:
        options["workers"] = args.workers
    if args.no_vectorize:
        options["vectorize"] = False
    if getattr(args, "priority", None) is not None:
        options["priority"] = args.priority
    return options


def _fleet_payload(args):
    """The ``"fleet"`` field of a sweep submission, or ``None``."""
    if not getattr(args, "fleet", False):
        return None
    if args.chunks is not None:
        return {"chunks": args.chunks}
    return True


def _fleet_sweep(args, spec) -> tuple[list[dict], dict]:
    """Run the sweep as a fleet job; returns (records, final status).

    Registered ``repro worker`` processes do the evaluation; this
    client submits, polls with retried idempotent GETs, then reads the
    records back out of the server's store reordered to the local
    spec's point order -- the same bit-identical records-out contract
    as ``--server`` sweeps.
    """
    if len(spec) == 0:
        raise ValueError("empty sweep")
    client = ServeClient(args.server, timeout=args.timeout)
    job_id = client.submit_job(
        spec.to_dict(), fleet=_fleet_payload(args), **_server_options(args)
    )["job"]
    outage_started = None
    while True:
        try:
            status = client.job_status(job_id)
        except ServeError as error:
            # Tolerate a server restart mid-poll (its journal recovers
            # the job): keep polling through transient failures for up
            # to a minute before giving up.  Monotonic: a wall-clock
            # step mid-outage must not stretch or cut the window.
            now = time.monotonic()
            if not error.transient:
                raise
            if outage_started is None:
                outage_started = now
            if now - outage_started > 60.0:
                raise
            time.sleep(0.5)
            continue
        outage_started = None
        if status["state"] not in ("queued", "running"):
            break
        time.sleep(0.2)
    if status["state"] != "done":
        raise ServeError(
            f"fleet job {job_id} {status['state']}"
            + (f": {status['error']}" if status.get("error") else "")
        )
    by_hash = {record["hash"]: record for record in client.records()}
    try:
        records = [by_hash[point.config_hash()] for point in spec.points]
    except KeyError as missing:
        raise SystemExit(f"dse: server store is missing record {missing}")
    return records, status


def _fleet_summary(status: dict) -> dict:
    """The ``--format json`` summary object for a fleet sweep."""
    progress = status.get("progress", {})
    return {
        "points": progress.get("points", 0),
        "fleet": {
            "job": status.get("job"),
            "chunks": progress.get("chunks", {}),
        },
    }


def _fleet_summary_text(status: dict) -> str:
    progress = status.get("progress", {})
    chunks = progress.get("chunks", {})
    text = (
        f"{progress.get('points', 0)} points over "
        f"{chunks.get('total', 0)} fleet chunks (job {status.get('job')})"
    )
    if chunks.get("requeues"):
        text += f", {chunks['requeues']} leases requeued"
    return text


def _server_sweep(args, spec) -> SweepResult:
    """Run the sweep on a remote ``repro serve`` instance.

    The server streams records in completion order; reordering them by
    the local spec's config hashes reproduces ``run_sweep``'s
    point-order records exactly (the parity test pins bit-identity).
    """
    if len(spec) == 0:
        raise ValueError("empty sweep")  # parity with local run_sweep
    client = ServeClient(args.server, timeout=args.timeout)
    raw, summary = client.sweep(spec.to_dict(), **_server_options(args))
    by_hash = {record["hash"]: record for record in raw}
    try:
        records = [by_hash[point.config_hash()] for point in spec.points]
    except KeyError as missing:
        raise SystemExit(f"dse: server response is missing record {missing}")
    # sweep() raised already if the stream ended without a summary.
    return SweepResult(
        records=records,
        evaluated=summary["evaluated"],
        from_store=summary["store_hits"],
        from_memo=summary["memo_hits"],
    )


def _run_dse(args) -> None:
    if args.stream and (
        args.pareto or args.top_k is not None or args.format == "json"
    ):
        raise SystemExit(
            "dse: --stream cannot be combined with --pareto/--top-k/"
            "--format json (streams are JSONL by nature)"
        )
    if args.server and args.store:
        raise SystemExit(
            "dse: --server and --store are mutually exclusive "
            "(the server owns the store)"
        )
    if args.detach and not args.server:
        raise SystemExit("dse: --detach requires --server")
    if args.detach and args.stream:
        raise SystemExit(
            "dse: --detach and --stream are mutually exclusive "
            "(stream the job later via GET /jobs/{id}/records)"
        )
    if args.fleet and not args.server:
        raise SystemExit("dse: --fleet requires --server (workers pull from it)")
    if args.chunks is not None and not args.fleet:
        raise SystemExit("dse: --chunks requires --fleet")
    if args.fleet and args.stream:
        raise SystemExit(
            "dse: --fleet cannot --stream (fleet records land in the "
            "server store; they are fetched when the job completes)"
        )
    if args.fleet and args.shard is not None:
        raise SystemExit(
            "dse: --fleet and --shard are mutually exclusive "
            "(the lease queue chunks the sweep itself)"
        )
    try:
        spec = _dse_spec(args)
        if args.shard is not None:
            index, count = _parse_shard(args.shard)
            spec = spec.shard(index, count)
            if len(spec) == 0:
                print(
                    f"dse: shard {index}/{count} owns no points of this sweep",
                    file=sys.stderr,
                )
                return
        vectorize = not args.no_vectorize
        # Local default; servers keep their own (0 still reaches the
        # engine's workers >= 1 validation).
        workers = 1 if args.workers is None else args.workers
        if args.detach:
            if len(spec) == 0:
                raise ValueError("empty sweep")
            client = ServeClient(args.server, timeout=args.timeout)
            job = client.submit_job(
                spec.to_dict(),
                fleet=_fleet_payload(args),
                **_server_options(args),
            )
            # Just the id on stdout (scriptable); where to follow it on
            # stderr for humans.
            print(job["job"])
            print(
                f"dse: submitted job {job['job']} ({len(spec)} points, "
                f"state {job['state']}); follow it at "
                f"{args.server}/jobs/{job['job']}",
                file=sys.stderr,
            )
            return
        if args.stream:
            if args.server:
                stream = ServeClient(args.server, timeout=args.timeout).submit(
                    spec.to_dict(), **_server_options(args)
                )
            else:
                stream = (
                    sweep_record.record
                    for sweep_record in iter_sweep(
                        spec,
                        store=_open_cli_store(args),
                        workers=workers,
                        vectorize=vectorize,
                    )
                )
            for record in stream:
                print(json.dumps(record, sort_keys=True), flush=True)
            return
        result = None
        fleet_status: dict | None = None
        if args.fleet:
            records, fleet_status = _fleet_sweep(args, spec)
        elif args.server:
            result = _server_sweep(args, spec)
            records = result.records
        else:
            result = run_sweep(
                spec,
                store=_open_cli_store(args),
                workers=workers,
                vectorize=vectorize,
            )
            records = result.records
        if args.pareto:
            records = pareto_frontier(records)
        if args.top_k is not None:
            records = top_k(records, args.objective, k=args.top_k, sense=args.sense)
    except ServeError as error:
        raise SystemExit(f"dse: {error}")
    except (KeyError, TypeError, ValueError, OSError) as error:
        raise SystemExit(f"dse: {error}")
    if args.format == "jsonl":
        for record in records:
            print(json.dumps(record, sort_keys=True))
    elif args.format == "json":
        summary = (
            result_summary(result)
            if result is not None
            else _fleet_summary(fleet_status)
        )
        print(payload_json(records_payload(records, summary=summary)))
    else:
        print(render_records(records))
        print()
        print(
            result.summary()
            if result is not None
            else _fleet_summary_text(fleet_status)
        )


def _parse_ladder(text: str) -> tuple[int, ...]:
    try:
        return tuple(int(rung) for rung in str(text).split(","))
    except ValueError:
        raise ValueError(f"--ladder wants comma-separated ints, got {text!r}")


def _run_quant_dse(args) -> None:
    try:
        result = co_explore(
            args.workload,
            platforms=args.platforms,
            memories=args.memories,
            batches=args.batches or (None,),
            max_drops=args.max_drops or (0.0, 0.02, 0.05),
            ladder=_parse_ladder(args.ladder),
            seed=args.seed,
            objective=args.objective,
            sense=args.sense,
            store=_open_cli_store(args),
            workers=args.workers,
            vectorize=not args.no_vectorize,
        )
    except (KeyError, TypeError, ValueError, OSError) as error:
        raise SystemExit(f"quant-dse: {error}")
    emitted = result.frontier if args.frontier_only else result.records

    if args.format == "json":
        print(
            payload_json(
                co_explore_payload(result, frontier_only=args.frontier_only)
            )
        )
        return
    if args.format == "jsonl":
        for record in emitted:
            print(json.dumps(record, sort_keys=True))
        return

    policy_rows = [
        (
            p.label,
            p.policy,
            p.accuracy,
            p.accuracy_drop,
            p.search_steps,
        )
        for p in result.policies
    ]
    print("Searched bitwidth policies (greedy sensitivity search):")
    print(
        format_table(
            ["Label", "Policy", "Accuracy", "Drop", "Steps"],
            policy_rows,
            precision=3,
        )
    )
    print()
    frontier_hashes = {record["hash"] for record in result.frontier}
    # Canonical per-layer names grow with workload depth (54 pairs for
    # ResNet-50); the records table shows the short search labels and
    # leaves full names to the policies table above (and JSONL output).
    label_by_policy: dict = {}
    for entry in result.policies:
        label_by_policy.setdefault(entry.policy, entry.label)
    record_rows = [
        (
            "*" if record["hash"] in frontier_hashes else "",
            record["platform"],
            record["memory"] or "-",
            label_by_policy.get(record["policy"], record["policy"]),
            record["batch"] if record["batch"] is not None else "-",
            record["metrics"]["total_seconds"] * 1e3,
            record["metrics"]["total_energy_j"] * 1e3,
            record["metrics"]["accuracy"],
        )
        for record in emitted
    ]
    print(f"Accuracy vs {args.objective} ('*' = Pareto frontier):")
    print(
        format_table(
            [
                "*",
                "Platform",
                "Memory",
                "Policy",
                "Batch",
                "Time (ms)",
                "Energy (mJ)",
                "Accuracy",
            ],
            record_rows,
            precision=3,
        )
    )
    print()
    print(result.summary())


def _run_dse_merge(args) -> None:
    try:
        dest = open_store(args.dest, backend=args.backend)
        total = dest.merge(args.sources, gzip=True if args.gzip else None)
    except (TypeError, ValueError, OSError) as error:
        raise SystemExit(f"dse-merge: {error}")
    print(f"merged {len(args.sources)} stores into {args.dest}: {total} records")


def _run_dse_compact(args) -> None:
    store = open_store(args.store)
    if not store.exists():
        raise SystemExit(f"dse-compact: no such store: {args.store}")
    try:
        if args.stale_threshold is not None:
            if not isinstance(store, PartitionedStore):
                raise SystemExit(
                    "dse-compact: --stale-threshold only applies to "
                    "partitioned stores"
                )
            report = store.compact_stale_parts(threshold=args.stale_threshold)
            print(
                f"compacted {args.store}: rewrote "
                f"{report['compacted']}/{report['examined']} parts, dropped "
                f"{report['dropped']} superseded lines"
            )
            return
        before = store.stats()["size_bytes"]
        kept, dropped = store.compact(
            gzip=True if args.gzip else None, drop_stale=not args.keep_stale
        )
        after = store.stats()["size_bytes"]
    except (TypeError, ValueError, OSError) as error:
        raise SystemExit(f"dse-compact: {error}")
    print(
        f"compacted {args.store}: kept {kept} records, dropped {dropped} "
        f"superseded lines ({before} -> {after} bytes)"
    )


def _serve_journal(args):
    """The ``serve`` subcommand's journal argument (False disables)."""
    if args.no_journal:
        if args.journal:
            raise ValueError("--journal and --no-journal are exclusive")
        return False
    if args.journal:
        return args.journal
    return None  # serve() colocates one with the store, if any


def _run_serve(args) -> int:
    configure_logging(args.log_level, json_lines=args.log_json)
    try:
        journal = _serve_journal(args)
        if args.inspect_journal:
            if journal is False:
                raise ValueError("--inspect-journal needs a journal")
            if journal is None:
                if not args.store:
                    raise ValueError(
                        "--inspect-journal needs --journal or --store"
                    )
                journal = default_journal_path(args.store)
            reader = JobJournal(journal)
            try:
                print(payload_json(reader.summary()))
            finally:
                reader.close()
            return 0
        return serve(
            store=_open_cli_store(args),
            host=args.host,
            port=args.port,
            workers=args.workers,
            vectorize=not args.no_vectorize,
            job_workers=args.job_workers,
            client_timeout=args.client_timeout,
            lease_ttl=args.lease_ttl,
            heartbeat_ttl=args.heartbeat_ttl,
            journal=journal,
            drain_timeout=args.drain_timeout,
            max_queue_depth=args.max_queue_depth,
            job_retention=args.job_retention,
            job_ttl=args.job_ttl,
            record_cache=args.record_cache or None,
            verbose=args.verbose,
        )
    except ValueError as error:  # e.g. a non-positive TTL
        raise SystemExit(f"serve: {error}")
    except OSError as error:  # e.g. port already bound
        raise SystemExit(f"serve: {error}")


def _run_worker(args) -> int:
    configure_logging(args.log_level, json_lines=args.log_json)
    worker = FleetWorker(
        args.server,
        name=args.name,
        capacity=args.capacity,
        poll=args.poll,
        timeout=args.timeout,
        workers=args.workers,
        vectorize=not args.no_vectorize,
        exit_when_drained=args.exit_when_drained,
        max_chunks=args.max_chunks,
        throttle=args.throttle,
        reconnect_grace=args.reconnect_grace,
    )
    try:
        return worker.run()
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        worker.stop()
        return 0


def _run_watch(args) -> int:
    from .obs.watch import watch

    if args.format == "json" and not args.once:
        raise SystemExit("watch: --format json requires --once")
    try:
        return watch(
            args.url,
            interval=args.interval,
            once=args.once,
            fmt=args.format,
            plain=args.plain,
            timeout=args.timeout,
        )
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        return 0


def _run_dse_launch(args) -> None:
    try:
        spec = _dse_spec(args)
        if len(spec) == 0:
            raise ValueError("the sweep has no points")
        if args.fleet is not None:
            if args.print_cmds or args.post:
                raise ValueError(
                    "--fleet is incompatible with --print-cmds/--post "
                    "(fleet workers pull from an embedded server)"
                )
            result = launch_fleet(
                spec,
                args.fleet,
                args.store,
                backend=args.backend,
                chunks=args.chunks,
                vectorize=not args.no_vectorize,
            )
            print(f"dse-launch: {result.summary()}")
            return
        if args.chunks is not None:
            raise ValueError("--chunks requires --fleet")
        if args.shards < 1:
            raise ValueError("shard count must be >= 1")
        dest = Path(args.store)
        if args.spec:
            spec_path, temp_spec = args.spec, False
        else:
            # Inline grids need a spec file the shard processes (or the
            # printed per-machine commands) can read back.
            spec_path = dest.with_name(dest.name + ".spec.json")
            spec_path.parent.mkdir(parents=True, exist_ok=True)
            spec_path.write_text(json.dumps(spec.to_dict()))
            temp_spec = not args.print_cmds
        if args.print_cmds:
            commands = shard_commands(
                spec_path,
                args.shards,
                args.store,
                workers=args.workers,
                vectorize=not args.no_vectorize,
            )
            print(render_commands(commands))
            shards = " ".join(
                str(shard_store_path(args.store, i)) for i in range(args.shards)
            )
            print(f"# then: repro dse-merge {args.store} {shards}")
            return
        try:
            result = launch(
                spec_path,
                args.shards,
                args.store,
                backend=args.backend,
                workers=args.workers,
                vectorize=not args.no_vectorize,
                post=args.post,
                keep_shards=args.keep_shards,
                fail_fast=not args.no_fail_fast,
            )
        finally:
            if temp_spec:
                spec_path.unlink(missing_ok=True)
    except ServeError as error:
        raise SystemExit(f"dse-launch: {error}")
    except (KeyError, TypeError, ValueError, OSError, RuntimeError) as error:
        raise SystemExit(f"dse-launch: {error}")
    print(f"dse-launch: {len(spec)} points over {result.summary()}")


def _run_figure(command: str) -> str:
    if command == "fig4":
        rows = [
            (p.metric, f"{p.slice_width}-bit", p.lanes, p.total)
            for p in fig4_design_space()
        ]
        return format_table(["Metric", "Slicing", "L", "Total (vs conv. MAC)"], rows)
    driver = {
        "fig5": fig5_homogeneous_ddr4,
        "fig6": fig6_homogeneous_hbm2,
        "fig7": fig7_heterogeneous_ddr4,
        "fig8": fig8_heterogeneous_hbm2,
    }[command]
    return render_speedup_rows(driver())


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    command = args.command

    if command == "report":
        from .experiments.report import generate_report

        text = generate_report()
        if args.output:
            with open(args.output, "w") as handle:
                handle.write(text)
            print(f"wrote {args.output}")
        else:
            print(text)
    elif command == "table1":
        print(render_table1())
    elif command == "table2":
        print(render_table2())
    elif command in ("fig4", "fig5", "fig6", "fig7", "fig8"):
        print(_run_figure(command))
    elif command == "fig9":
        rows = [
            (r.workload, r.regime, r.ddr4_ratio, r.hbm2_ratio)
            for r in fig9_gpu_comparison()
        ]
        print(
            format_table(
                ["Workload", "Regime", "vs GPU (DDR4)", "vs GPU (HBM2)"],
                rows,
                precision=1,
            )
        )
    elif command == "chips":
        for report in all_chip_reports():
            print(report)
    elif command == "dse":
        _run_dse(args)
    elif command == "quant-dse":
        _run_quant_dse(args)
    elif command == "dse-merge":
        _run_dse_merge(args)
    elif command == "dse-compact":
        _run_dse_compact(args)
    elif command == "serve":
        return _run_serve(args)
    elif command == "worker":
        return _run_worker(args)
    elif command == "watch":
        return _run_watch(args)
    elif command == "dse-launch":
        _run_dse_launch(args)
    elif command == "simulate":
        net = _workload(args.model, args.heterogeneous, args.batch)
        result = simulate_network(
            net, _PLATFORMS[args.platform], _MEMORIES[args.memory]
        )
        print(result.summary())
        rows = [
            (
                l.layer_name,
                f"{l.bw_act}x{l.bw_w}",
                l.cycles,
                "memory" if l.is_memory_bound else "compute",
            )
            for l in result.layers
        ]
        print(format_table(["Layer", "Bits", "Cycles", "Bound"], rows))
    elif command == "roofline":
        net = _workload(args.model, args.heterogeneous, args.batch)
        spec = _PLATFORMS[args.platform]
        memory = _MEMORIES[args.memory]
        ridge = ridge_point(spec, memory)
        print(f"ridge point: {ridge:.1f} MACs/byte on {spec.name} + {memory.name}")
        rows = [
            (
                p.layer_name,
                p.operational_intensity,
                p.attained_macs_per_cycle,
                p.roof_fraction,
                "memory" if p.memory_bound else "compute",
            )
            for p in roofline_analysis(net, spec, memory)
        ]
        print(
            format_table(
                ["Layer", "MACs/byte", "MACs/cycle", "of roof", "Bound"], rows
            )
        )
    else:  # pragma: no cover - argparse enforces choices
        raise SystemExit(f"unknown command {command}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
