"""RTX 2080 Ti analytical model for the Fig. 9 Performance-per-Watt study.

The paper measures an RTX 2080 Ti (Turing, 544 tensor cores, 1545 MHz,
GDDR6) running TensorRT 5.1 with INT8 (homogeneous) and INT4
(heterogeneous) kernels.  With no GPU available offline, we substitute an
analytical model:

* peak tensor throughput from the public datasheet (INT8 ~215 TOPS,
  INT4 ~430 TOPS at boost clock);
* per-layer *achieved efficiency* factors calibrated to public TensorRT
  measurements -- convolutions reach a modest fraction of tensor peak,
  fully-connected GEMMs less, and recurrent cells (sequential
  matrix-vector work) orders of magnitude less, which is what drives the
  paper's 145-225x Perf/Watt gaps on RNN/LSTM;
* a two-term power model (idle + activity-scaled dynamic power).

The calibration constants are honest knobs, not measurements; see
EXPERIMENTS.md ("GPU substitution") for paper-vs-model deltas.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..nn.graph import Network
from ..nn.layers import Conv2D, Dense, Layer, RNNCell

__all__ = ["GPUSpec", "RTX_2080_TI", "GPUResult", "simulate_gpu"]


@dataclass(frozen=True)
class GPUSpec:
    """Datasheet-level description of a tensor-core GPU (Table II, right)."""

    name: str
    tensor_cores: int
    frequency_hz: float
    int8_peak_tops: float
    int4_peak_tops: float
    tdp_w: float
    idle_w: float
    memory: str = "GDDR6"
    memory_gb: float = 11.0

    def peak_ops(self, precision: int) -> float:
        if precision == 8:
            return self.int8_peak_tops * 1e12
        if precision == 4:
            return self.int4_peak_tops * 1e12
        raise ValueError(f"unsupported GPU tensor precision INT{precision}")


RTX_2080_TI = GPUSpec(
    name="RTX 2080 TI",
    tensor_cores=544,
    frequency_hz=1545e6,
    int8_peak_tops=215.2,
    int4_peak_tops=430.3,
    tdp_w=250.0,
    idle_w=55.0,
)

# Achieved fraction of tensor peak per layer class, calibrated to public
# TensorRT 5.x measurements on Turing (small-batch inference).
_EFFICIENCY = {
    "conv": 0.055,
    "dense": 0.015,
    "recurrent": 0.0009,
}
# Fraction of (TDP - idle) dynamic power drawn while running each class.
_ACTIVITY = {
    "conv": 0.80,
    "dense": 0.55,
    "recurrent": 0.35,
}


def _layer_class(layer: Layer) -> str:
    if isinstance(layer, RNNCell):  # covers LSTMCell subclass
        return "recurrent"
    if isinstance(layer, Conv2D):
        return "conv"
    if isinstance(layer, Dense):
        return "dense"
    raise TypeError(f"GPU model has no efficiency class for {type(layer).__name__}")


@dataclass(frozen=True)
class GPUResult:
    """Modelled GPU execution of one workload."""

    network_name: str
    gpu_name: str
    precision: int
    total_seconds: float
    average_power_w: float
    total_ops: float

    @property
    def ops_per_second(self) -> float:
        return self.total_ops / self.total_seconds

    @property
    def perf_per_watt(self) -> float:
        return self.ops_per_second / self.average_power_w


def simulate_gpu(
    network: Network, gpu: GPUSpec = RTX_2080_TI, precision: int = 8
) -> GPUResult:
    """Model TensorRT-style execution of ``network`` at INT8 or INT4."""
    peak = gpu.peak_ops(precision)
    total_seconds = 0.0
    dynamic_energy = 0.0
    total_ops = 0.0
    for layer in network.layers:
        if not layer.has_weights:
            continue
        ops = 2.0 * layer.macs(network.batch)
        cls = _layer_class(layer)
        seconds = ops / (peak * _EFFICIENCY[cls])
        total_seconds += seconds
        total_ops += ops
        dynamic_energy += seconds * (gpu.tdp_w - gpu.idle_w) * _ACTIVITY[cls]
    if total_seconds == 0:
        raise ValueError(f"{network.name} has no weighted layers for the GPU model")
    average_power = gpu.idle_w + dynamic_energy / total_seconds
    return GPUResult(
        network_name=network.name,
        gpu_name=gpu.name,
        precision=precision,
        total_seconds=total_seconds,
        average_power_w=average_power,
        total_ops=total_ops,
    )
