"""TPU-like conventional systolic baseline (paper Table II, column 1).

A fixed-bitwidth 8-bit systolic array: 512 conventional MACs, 112 KB
scratchpad, 500 MHz, 45 nm, 250 mW core budget.  Reduced operand bitwidths
bring neither speedup nor energy savings -- the datapath always switches
all eight bits.  The spec itself lives in :mod:`repro.hw.platforms`; this
module adds baseline-specific derivations used by tests and benches.
"""

from __future__ import annotations

from ..hw.costmodel import CONVENTIONAL_MAC_POWER_MW
from ..hw.platforms import TPU_LIKE, AcceleratorSpec

__all__ = ["TPU_LIKE", "core_power_mw", "supports_bitwidth_speedup"]


def core_power_mw(spec: AcceleratorSpec = TPU_LIKE) -> float:
    """Aggregate MAC power -- should saturate the 250 mW budget."""
    return spec.num_macs * CONVENTIONAL_MAC_POWER_MW


def supports_bitwidth_speedup(spec: AcceleratorSpec = TPU_LIKE) -> bool:
    """Conventional units cannot exploit reduced bitwidths."""
    return spec.throughput_multiplier(2, 2) > 1
