"""Temporal (bit-serial) baselines: Stripes and Loom.

The paper's Fig. 1 places accelerator designs on three axes -- functional
unit type (scalar/vectorized), bit flexibility (fixed/flexible), and
composability (temporal/spatial) -- and cites Stripes [10], Loom [18] and
UNPU [11] as the *temporal* bit-flexible family: instead of regrouping
spatial 2-bit units, they process operand bits serially, finishing a
product in fewer cycles when operands are narrow.

These platforms let the taxonomy comparison the paper sketches be run as
an experiment (``benchmarks/bench_taxonomy.py``):

* **Stripes**: activation-serial.  An 8b x 8b MAC takes 8 cycles; b-bit
  activations take b cycles -> throughput multiplier ``8 / bw_act``,
  insensitive to weight bitwidth.
* **Loom**: fully serial.  Throughput multiplier ``64 / (bw_act * bw_w)``
  -- the same mode scaling as the spatial designs, paid in cycles rather
  than units.

Unit counts follow the same 250 mW discipline as Table II using published
serial-lane overheads (~15% / ~25% per MAC-equivalent); see
``_SERIAL_POWER_RATIOS`` in :mod:`repro.hw.platforms`.
"""

from __future__ import annotations

from ..hw.costmodel import CONVENTIONAL_MAC_POWER_MW, units_under_power_budget
from ..hw.platforms import AcceleratorSpec

__all__ = ["STRIPES", "LOOM", "TAXONOMY"]


def _serial_units(power_ratio: float) -> int:
    return units_under_power_budget(
        CONVENTIONAL_MAC_POWER_MW * power_ratio, granularity=64
    )


STRIPES = AcceleratorSpec(
    name="Stripes (temporal)",
    style="stripes",
    num_macs=_serial_units(1.15),  # 384 MAC-equivalents under 250 mW
    array_rows=16,
    array_cols=_serial_units(1.15) // 16,
)

LOOM = AcceleratorSpec(
    name="Loom (temporal)",
    style="loom",
    num_macs=_serial_units(1.25),
    array_rows=16,
    array_cols=_serial_units(1.25) // 16,
)

#: The paper's Fig. 1 landscape, as runnable platforms: (label, spec,
#: (functional unit, flexibility, composability)).
TAXONOMY = (
    ("TPU-like", "conventional", ("scalar", "fixed", "-")),
    ("Stripes", "stripes", ("scalar", "flexible", "temporal")),
    ("Loom", "loom", ("scalar", "flexible", "temporal")),
    ("BitFusion", "bitfusion", ("scalar", "flexible", "spatial")),
    ("BPVeC", "bpvec", ("vectorized", "flexible", "spatial")),
)
