"""Comparison platforms: TPU-like, BitFusion, and the RTX 2080 Ti GPU."""

from .bitfusion import BITFUSION, FusionUnit
from .bitserial import LOOM, STRIPES, TAXONOMY
from .gpu import GPUResult, GPUSpec, RTX_2080_TI, simulate_gpu
from .tpu_like import TPU_LIKE, core_power_mw, supports_bitwidth_speedup

__all__ = [
    "BITFUSION",
    "FusionUnit",
    "LOOM",
    "STRIPES",
    "TAXONOMY",
    "GPUResult",
    "GPUSpec",
    "RTX_2080_TI",
    "simulate_gpu",
    "TPU_LIKE",
    "core_power_mw",
    "supports_bitwidth_speedup",
]
