"""BitFusion baseline (Sharma et al., ISCA'18): scalar bit-composability.

BitFusion's Fusion Unit (FU) spatially combines 16 *BitBricks* (2-bit x
2-bit multipliers) to form one 8b x 8b multiplier, four 4b x 4b
multipliers, sixteen 2b x 2b multipliers, and the rectangular mixes in
between.  It is exactly the ``L = 1`` point of the paper's design space
(one scalar per unit, no vector amortization of the aggregation logic) --
which is why its per-MAC power/area sit at the 2-bit/L=1 bars of Fig. 4.

The platform spec (448 FUs under the 250 mW budget) lives in
:mod:`repro.hw.platforms`; this module adds the FU-level algebra used by
tests, ablations, and documentation.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.composition import plan_composition
from ..hw.calibration import calibrated_total
from ..hw.platforms import BITFUSION

__all__ = ["BITFUSION", "FusionUnit"]


@dataclass(frozen=True)
class FusionUnit:
    """One BitFusion fusion unit: a 4x4 spatial array of 2-bit BitBricks."""

    bitbrick_width: int = 2
    max_bitwidth: int = 8

    @property
    def num_bitbricks(self) -> int:
        per_operand = self.max_bitwidth // self.bitbrick_width
        return per_operand * per_operand

    def multiplies_per_cycle(self, bw_x: int, bw_w: int) -> int:
        """Parallel multiplies the FU delivers for an operand bitwidth pair.

        Same composition algebra as a CVU with ``lanes=1``: bricks group
        into ``slices_x * slices_w`` clusters per scalar product.
        """
        plan = plan_composition(
            bw_x, bw_w, slice_width=self.bitbrick_width, max_bitwidth=self.max_bitwidth
        )
        return plan.n_groups

    def bitbricks_per_product(self, bw_x: int, bw_w: int) -> int:
        plan = plan_composition(
            bw_x, bw_w, slice_width=self.bitbrick_width, max_bitwidth=self.max_bitwidth
        )
        return plan.nbves_per_group

    @property
    def power_ratio_vs_conventional(self) -> float:
        """Per-MAC power vs a conventional 8-bit MAC (Fig. 4, 2-bit, L=1)."""
        return calibrated_total(self.bitbrick_width, 1, "power")

    @property
    def area_ratio_vs_conventional(self) -> float:
        """The paper's '40% area overhead' point."""
        return calibrated_total(self.bitbrick_width, 1, "area")
