"""Cycle-accurate weight-stationary systolic array model.

The analytical performance model (:mod:`repro.sim.performance`) charges
``M`` cycles per (K-pass, N-pass) tile.  This module simulates the array
register-by-register -- activations skewed along rows, partial sums
flowing down columns, weights resident in PEs -- to validate both the
*functional* output (exact GEMM) and the *timing* (the analytical count is
the steady-state limit; the cycle-accurate count adds the pipeline
fill/drain ``R + C - 1`` and the weight-load ``R`` per tile, which
amortize away for realistic ``M``).

This is the TPU-style organization the paper builds BPVeC on; each "PE"
here stands for one CVU column slot (the CVU's internal vector/bit
parallelism is validated separately by :mod:`repro.core`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SystolicTileResult", "SystolicArray"]


@dataclass(frozen=True)
class SystolicTileResult:
    """Outcome of streaming one tile GEMM through the array."""

    output: np.ndarray
    cycles: int
    weight_load_cycles: int
    fill_drain_cycles: int

    @property
    def steady_state_cycles(self) -> int:
        return self.cycles - self.weight_load_cycles - self.fill_drain_cycles


class SystolicArray:
    """A ``rows x cols`` weight-stationary systolic array.

    ``rows`` spans the reduction (K) dimension, ``cols`` the output (N)
    dimension.  One tile holds a ``rows x cols`` weight block; activations
    stream M rows through it.
    """

    def __init__(self, rows: int, cols: int) -> None:
        if rows < 1 or cols < 1:
            raise ValueError("array dimensions must be >= 1")
        self.rows = rows
        self.cols = cols

    # ------------------------------------------------------------------
    def tile_cycles(self, m: int) -> int:
        """Closed-form cycle count for one tile of M activation rows."""
        if m < 1:
            raise ValueError("m must be >= 1")
        return self.rows + (m + self.rows + self.cols - 2)

    def run_tile(
        self, activations: np.ndarray, weights: np.ndarray
    ) -> SystolicTileResult:
        """Cycle-by-cycle simulation of one weight-stationary tile.

        ``activations`` is ``(M, rows)`` and ``weights`` ``(rows, cols)``;
        smaller operands are zero-padded (modelling an underutilized tile).
        Returns the exact ``activations @ weights`` alongside the cycle
        count.
        """
        activations = np.asarray(activations, dtype=np.int64)
        weights = np.asarray(weights, dtype=np.int64)
        if activations.ndim != 2 or weights.ndim != 2:
            raise ValueError("operands must be 2-D")
        m, k = activations.shape
        kw, n = weights.shape
        if k > self.rows or kw > self.rows:
            raise ValueError(f"reduction {max(k, kw)} exceeds {self.rows} rows")
        if k != kw:
            raise ValueError(f"inner dimensions differ: {k} vs {kw}")
        if n > self.cols:
            raise ValueError(f"{n} output columns exceed {self.cols}")

        r, c = self.rows, self.cols
        a = np.zeros((m, r), dtype=np.int64)
        a[:, :k] = activations
        w = np.zeros((r, c), dtype=np.int64)
        w[:k, :n] = weights

        weight_load = r  # one weight row shifted in per cycle
        fill_drain = r + c - 2
        stream_cycles = m + fill_drain  # last output at t = m + r + c - 3

        act_reg = np.zeros((r, c), dtype=np.int64)
        psum_reg = np.zeros((r, c), dtype=np.int64)

        # Skewed column-0 injection, precomputed for every cycle: row
        # ``row`` sees activation row ``t - row`` at cycle ``t`` (zero
        # outside the stream).  One gather replaces the per-cycle
        # per-row Python loop.  A zero-row tile has nothing to gather
        # (and ``a`` has no rows to index), only zeros to stream.
        rows = np.arange(r)
        if m:
            src = np.arange(stream_cycles)[:, None] - rows[None, :]
            inject = np.where(
                (src >= 0) & (src < m), a[src.clip(0, m - 1), rows[None, :]], 0
            )
        else:
            inject = np.zeros((stream_cycles, r), dtype=np.int64)
        # Bottom-row history: output row m_out for column c_out drains at
        # t == m_out + (r - 1) + c_out, so keeping each cycle's bottom
        # row lets one gather after the loop replace the per-cycle
        # per-column emission loop.
        bottom = np.empty((stream_cycles, c), dtype=np.int64)

        for t in range(stream_cycles):
            # Shift activations one PE right; inject the skewed column 0.
            new_act = np.empty_like(act_reg)
            new_act[:, 1:] = act_reg[:, :-1]
            new_act[:, 0] = inject[t]
            # Partial sums advance one PE down as each PE fires its MAC.
            new_psum = np.empty_like(psum_reg)
            new_psum[0] = w[0] * new_act[0]
            new_psum[1:] = psum_reg[:-1] + w[1:] * new_act[1:]
            act_reg, psum_reg = new_act, new_psum
            bottom[t] = psum_reg[r - 1]

        cols = np.arange(c)
        drain = np.arange(m)[:, None] + (r - 1) + cols[None, :]
        out = bottom[drain, cols[None, :]]

        expected = activations @ weights
        if not np.array_equal(out[:, :n], expected):
            raise AssertionError("systolic dataflow produced a wrong GEMM result")
        return SystolicTileResult(
            output=out[:, :n],
            cycles=weight_load + stream_cycles,
            weight_load_cycles=weight_load,
            fill_drain_cycles=fill_drain,
        )

    def run_gemm(self, a: np.ndarray, w: np.ndarray) -> tuple[np.ndarray, int]:
        """Tile a full GEMM over the array; returns (result, total cycles)."""
        a = np.asarray(a, dtype=np.int64)
        w = np.asarray(w, dtype=np.int64)
        m, k = a.shape
        _, n = w.shape
        out = np.zeros((m, n), dtype=np.int64)
        cycles = 0
        for k0 in range(0, k, self.rows):
            k1 = min(k, k0 + self.rows)
            for n0 in range(0, n, self.cols):
                n1 = min(n, n0 + self.cols)
                tile = self.run_tile(a[:, k0:k1], w[k0:k1, n0:n1])
                out[:, n0:n1] += tile.output
                cycles += tile.cycles
        if not np.array_equal(out, a @ w):
            raise AssertionError("tiled systolic GEMM mismatch")
        return out, cycles
