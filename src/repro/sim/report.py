"""Comparison utilities: speedups, energy reductions, geometric means."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

from .simulator import NetworkResult

__all__ = ["Comparison", "compare", "geomean", "format_table"]


def geomean(values: Iterable[float]) -> float:
    vals = list(values)
    if not vals:
        raise ValueError("geomean of empty sequence")
    if any(v <= 0 for v in vals):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


@dataclass(frozen=True)
class Comparison:
    """Speedup and energy reduction of a candidate over a reference run."""

    workload: str
    reference: str
    candidate: str
    speedup: float
    energy_reduction: float

    def __str__(self) -> str:
        return (
            f"{self.workload}: {self.candidate} vs {self.reference} -> "
            f"{self.speedup:.2f}x speedup, {self.energy_reduction:.2f}x energy"
        )


def compare(reference: NetworkResult, candidate: NetworkResult) -> Comparison:
    """Speedup / energy-reduction of ``candidate`` normalized to ``reference``."""
    if reference.network_name != candidate.network_name:
        raise ValueError(
            f"comparing different workloads: {reference.network_name} vs "
            f"{candidate.network_name}"
        )
    return Comparison(
        workload=reference.network_name,
        reference=f"{reference.platform_name}+{reference.memory_name}",
        candidate=f"{candidate.platform_name}+{candidate.memory_name}",
        speedup=reference.total_seconds / candidate.total_seconds,
        energy_reduction=reference.total_energy_pj / candidate.total_energy_pj,
    )


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], precision: int = 2
) -> str:
    """Render an aligned plain-text table (benchmark harness output)."""

    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.{precision}f}"
        return str(cell)

    text_rows = [[fmt(c) for c in row] for row in rows]
    widths = [
        (
            max(len(headers[i]), *(len(r[i]) for r in text_rows))
            if text_rows
            else len(headers[i])
        )
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in text_rows:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)
