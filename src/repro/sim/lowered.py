"""Lowered workload IR and vectorized design-point evaluation.

The analytical model is, mathematically, a closed-form expression over a
network's GEMM descriptors: per layer ``max(compute, memory)`` cycles
with bit-composable throughput multipliers, three candidate tiling
schedules, and an energy breakdown that only depends on layer-level
aggregates.  The scalar path (:func:`repro.sim.performance.simulate_layer`)
walks that expression in Python per GEMM; this module lowers a network
*once* into flat numpy arrays (:class:`LoweredNetwork`) and evaluates
whole batches of hardware design points as array expressions.

Bit-identity contract: every metric produced here is **bit-identical** to
the scalar path.  Integer cycle/traffic math is exact in ``int64``; float
energy terms are computed with the same operations, in the same order and
dtype as the scalar kernels (including their ``float``-division-then-
``ceil`` pass counts), and network-level float aggregates are summed
sequentially in layer order exactly like :class:`~repro.sim.simulator.
NetworkResult`'s ``sum()`` properties.  The golden-value tests pin this.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..hw.dram import MemorySpec
from ..hw.platforms import AcceleratorSpec
from ..nn.graph import Network
from ..nn.layers import Conv2D
from .performance import factor_pairs
from .tiling import OUTPUT_BYTES_PER_ELEMENT, BufferSplit, buffer_partition

__all__ = [
    "LoweredNetwork",
    "lower_network",
    "compute_cycles_batch",
    "traffic_batch",
    "evaluate_lowered",
    "evaluate_lowered_many",
]


def _frozen(array: np.ndarray) -> np.ndarray:
    array.setflags(write=False)
    return array


@dataclass(frozen=True)
class LoweredNetwork:
    """A network lowered to flat per-GEMM numpy descriptors.

    One instance captures everything the analytical model needs about a
    (workload, batch, bitwidth-policy) combination; it is hardware-free,
    so a single lowering serves every design point of a sweep.  All
    arrays are read-only ``int64``; per-GEMM arrays have length ``G``
    (GEMMs in network order), per-layer arrays length ``L`` (weighted
    layers in network order), and ``layer_offsets[l]`` is the index of
    layer ``l``'s first GEMM.
    """

    network_name: str
    batch: int
    layer_names: tuple[str, ...]
    # Per-GEMM shape descriptors.
    m: np.ndarray = field(repr=False)
    k: np.ndarray = field(repr=False)
    n: np.ndarray = field(repr=False)
    count: np.ndarray = field(repr=False)
    weight_elements: np.ndarray = field(repr=False)
    unique_input_elements: np.ndarray = field(repr=False)
    macs: np.ndarray = field(repr=False)
    bw_act: np.ndarray = field(repr=False)
    bw_w: np.ndarray = field(repr=False)
    # Per-GEMM derived byte counts (bitwidths already applied).
    weight_bytes: np.ndarray = field(repr=False)
    input_bytes: np.ndarray = field(repr=False)
    output_bytes: np.ndarray = field(repr=False)
    # Layer structure.
    layer_offsets: np.ndarray = field(repr=False)
    layer_bw_act: np.ndarray = field(repr=False)
    layer_bw_w: np.ndarray = field(repr=False)

    @property
    def num_gemms(self) -> int:
        return int(self.m.shape[0])

    @property
    def num_layers(self) -> int:
        return len(self.layer_names)


def lower_network(network: Network) -> LoweredNetwork:
    """Lower every weighted layer of ``network`` to flat GEMM descriptors.

    Mirrors :func:`~repro.sim.simulator.simulate_network`'s layer walk:
    compute-free layers are skipped, and a network with nothing to
    simulate raises the same ``ValueError``.
    """
    layer_names: list[str] = []
    offsets: list[int] = []
    rows: list[tuple[int, int, int, int, int, int]] = []
    layer_bws: list[tuple[int, int]] = []
    for layer in network.layers:
        gemms = layer.gemms(network.batch)
        if not gemms:
            continue
        bw = network.bitwidth(layer.name)
        layer_names.append(layer.name)
        offsets.append(len(rows))
        layer_bws.append((bw.activations, bw.weights))
        for gemm in gemms:
            unique = (
                layer.input_elements(network.batch) // gemm.count
                if isinstance(layer, Conv2D)
                else gemm.m * gemm.k
            )
            rows.append(
                (gemm.m, gemm.k, gemm.n, gemm.count, gemm.weight_elements, unique)
            )
    if not rows:
        raise ValueError(f"{network.name} has no simulatable layers")

    def column(index: int) -> np.ndarray:
        return np.array([row[index] for row in rows], dtype=np.int64)

    m, k, n, count = column(0), column(1), column(2), column(3)
    weight_elements, unique_inputs = column(4), column(5)
    layer_sizes = np.diff(np.array(offsets + [len(rows)], dtype=np.int64))
    bw_act = np.repeat(
        np.array([b for b, _ in layer_bws], dtype=np.int64), layer_sizes
    )
    bw_w = np.repeat(
        np.array([b for _, b in layer_bws], dtype=np.int64), layer_sizes
    )
    return LoweredNetwork(
        network_name=network.name,
        batch=network.batch,
        layer_names=tuple(layer_names),
        m=_frozen(m),
        k=_frozen(k),
        n=_frozen(n),
        count=_frozen(count),
        weight_elements=_frozen(weight_elements),
        unique_input_elements=_frozen(unique_inputs),
        macs=_frozen(m * k * n * count),
        bw_act=_frozen(bw_act),
        bw_w=_frozen(bw_w),
        # element_bytes() as an array expression: ceil(elements * bits / 8).
        weight_bytes=_frozen(-((-weight_elements * bw_w) // 8)),
        input_bytes=_frozen(-((-unique_inputs * bw_act) // 8)),
        output_bytes=_frozen(m * n * OUTPUT_BYTES_PER_ELEMENT),
        layer_offsets=_frozen(np.array(offsets, dtype=np.int64)),
        layer_bw_act=_frozen(np.array([b for b, _ in layer_bws], dtype=np.int64)),
        layer_bw_w=_frozen(np.array([b for _, b in layer_bws], dtype=np.int64)),
    )


# ----------------------------------------------------------------------
# Vectorized kernels (P design points x G GEMMs)
# ----------------------------------------------------------------------
def _compute_cycles_matrix(
    lowered: LoweredNetwork, specs: Sequence[AcceleratorSpec]
) -> np.ndarray:
    """Per-GEMM best-factorisation compute cycles, shape ``(P, G)``.

    The scalar kernel (:func:`~repro.sim.performance.gemm_compute_cycles`)
    enumerates factor pairs of the throughput multiplier per GEMM; here
    each distinct multiplier value's pairs are enumerated once across all
    GEMMs (and points) sharing it.
    """
    reduction = np.array([s.reduction_lanes for s in specs], dtype=np.int64)[:, None]
    cols = np.array([s.array_cols for s in specs], dtype=np.int64)[:, None]
    mult = np.stack(
        [s.multiplier_table()[lowered.bw_act - 1, lowered.bw_w - 1] for s in specs]
    )
    if not mult.all():
        # Sentinel 0: this spec cannot run that bitwidth pair.  Re-ask the
        # scalar kernel so the caller sees the exact scalar-path error.
        point, gemm = map(int, np.argwhere(mult == 0)[0])
        specs[point].throughput_multiplier(
            int(lowered.bw_act[gemm]), int(lowered.bw_w[gemm])
        )
        raise AssertionError("multiplier sentinel without a scalar error")
    best = np.zeros_like(mult)
    for value in np.unique(mult):
        candidate = None
        for k_ext, n_ext in factor_pairs(int(value)):
            # Same float-divide-then-ceil as math.ceil in the scalar path.
            k_passes = np.ceil(lowered.k / (reduction * k_ext)).astype(np.int64)
            n_passes = np.ceil(lowered.n / (cols * n_ext)).astype(np.int64)
            cycles = lowered.count * lowered.m * k_passes * n_passes
            candidate = cycles if candidate is None else np.minimum(candidate, cycles)
        best = np.where(mult == value, candidate, best)
    return best


def _traffic_matrix(
    lowered: LoweredNetwork,
    specs: Sequence[AcceleratorSpec],
    split: BufferSplit,
) -> np.ndarray:
    """Per-GEMM cheapest-schedule DRAM traffic (bytes), shape ``(P, G)``.

    All three :func:`~repro.sim.tiling.plan_traffic` schedules as array
    expressions, reduced with an elementwise min (the scalar ``min()``
    over candidates picks the same total).
    """
    partitions = [buffer_partition(spec, split) for spec in specs]
    w_buf = np.array([p[0] for p in partitions], dtype=np.int64)[:, None]
    a_buf = np.array([p[1] for p in partitions], dtype=np.int64)[:, None]
    acc_elems = np.array([p[2] for p in partitions], dtype=np.int64)[:, None]
    tile = np.array(
        [max(1, int(math.sqrt(p[2]))) for p in partitions], dtype=np.int64
    )[:, None]

    weight_bytes, input_bytes = lowered.weight_bytes, lowered.input_bytes
    output_traffic = lowered.output_bytes * lowered.count

    # Weight-stationary.
    w_passes = np.maximum(1, np.ceil(weight_bytes / w_buf).astype(np.int64))
    weight_stationary = (
        np.where(weight_bytes <= w_buf, weight_bytes, weight_bytes * lowered.count)
        + input_bytes * w_passes * lowered.count
        + output_traffic
    )

    # Activation-stationary.
    a_passes = np.maximum(1, np.ceil(input_bytes / a_buf).astype(np.int64))
    activation_stationary = (
        weight_bytes * a_passes * lowered.count
        + input_bytes * lowered.count
        + output_traffic
    )

    # Output-stationary.
    m_tile = np.minimum(lowered.m, tile)
    n_tile = np.minimum(lowered.n, np.maximum(1, acc_elems // m_tile))
    m_passes = np.ceil(lowered.m / m_tile).astype(np.int64)
    n_passes = np.ceil(lowered.n / n_tile).astype(np.int64)
    output_stationary = (
        weight_bytes * m_passes * lowered.count
        + input_bytes * n_passes * lowered.count
        + output_traffic
    )

    return np.minimum(
        np.minimum(weight_stationary, activation_stationary), output_stationary
    )


def compute_cycles_batch(
    lowered: LoweredNetwork, spec: AcceleratorSpec
) -> np.ndarray:
    """Compute cycles of every GEMM on ``spec``, shape ``(G,)``."""
    return _compute_cycles_matrix(lowered, (spec,))[0]


def traffic_batch(
    lowered: LoweredNetwork,
    spec: AcceleratorSpec,
    split: BufferSplit = BufferSplit(),
) -> np.ndarray:
    """Cheapest-schedule traffic of every GEMM on ``spec``, shape ``(G,)``."""
    return _traffic_matrix(lowered, (spec,), split)[0]


def evaluate_lowered_many(
    lowered: LoweredNetwork,
    targets: Sequence[tuple[AcceleratorSpec, MemorySpec]],
    split: BufferSplit = BufferSplit(),
) -> list[dict]:
    """Evaluate many (platform, memory) design points against one IR.

    Returns one metrics dict per target, with exactly the keys -- and
    bit-for-bit the values -- of the scalar path's
    :class:`~repro.sim.simulator.NetworkResult`-derived record metrics.
    """
    if not targets:
        return []
    specs = [spec for spec, _ in targets]
    offsets = lowered.layer_offsets

    compute_cycles = np.add.reduceat(
        _compute_cycles_matrix(lowered, specs), offsets, axis=1
    )
    traffic = np.add.reduceat(_traffic_matrix(lowered, specs, split), offsets, axis=1)
    macs = np.add.reduceat(lowered.macs, offsets)

    bytes_per_cycle = np.array(
        [memory.bytes_per_cycle(spec.frequency_hz) for spec, memory in targets]
    )[:, None]
    memory_cycles = np.ceil(traffic / bytes_per_cycle).astype(np.int64)
    layer_cycles = np.maximum(compute_cycles, memory_cycles)

    mac_energy = np.stack(
        [
            spec.mac_energy_table()[lowered.layer_bw_act - 1, lowered.layer_bw_w - 1]
            for spec in specs
        ]
    )
    sram_per_byte = np.array(
        [spec.scratchpad.energy_per_byte_pj for spec in specs]
    )[:, None]
    frequency = np.array([spec.frequency_hz for spec in specs])[:, None]
    uncore_w_pj = np.array([spec.uncore_power_mw * 1e-3 for spec in specs])[:, None]
    dram_pj_per_bit = np.array([memory.energy_pj_per_bit for _, memory in targets])[
        :, None
    ]
    background_w = np.array([memory.background_power_w for _, memory in targets])[
        :, None
    ]

    # Same operation order as simulate_layer's scalar energy accounting.
    layer_seconds = layer_cycles / frequency
    compute_energy = macs * mac_energy
    sram_energy = traffic * sram_per_byte
    dram_energy = (
        (traffic * 8) * dram_pj_per_bit + (background_w * layer_seconds) * 1e12
    )
    uncore_energy = (uncore_w_pj * layer_seconds) * 1e12

    memory_bound = memory_cycles > compute_cycles
    total_macs = int(macs.sum())

    results = []
    for index, (spec, memory) in enumerate(targets):
        total_cycles = int(layer_cycles[index].sum())
        total_seconds = total_cycles / spec.frequency_hz
        # Network-level float aggregates are summed sequentially in layer
        # order, exactly like NetworkResult's sum() properties.
        compute_pj = sum(compute_energy[index].tolist())
        sram_pj = sum(sram_energy[index].tolist())
        dram_pj = sum(dram_energy[index].tolist())
        uncore_pj = sum(uncore_energy[index].tolist())
        total_pj = compute_pj + sram_pj + dram_pj + uncore_pj
        total_j = total_pj * 1e-12
        average_power_w = total_j / total_seconds
        ops_per_second = 2.0 * total_macs / total_seconds
        bound_cycles = int(layer_cycles[index][memory_bound[index]].sum())
        results.append(
            {
                "total_cycles": total_cycles,
                "total_seconds": total_seconds,
                "total_macs": total_macs,
                "total_traffic_bytes": int(traffic[index].sum()),
                "compute_energy_pj": compute_pj,
                "sram_energy_pj": sram_pj,
                "dram_energy_pj": dram_pj,
                "uncore_energy_pj": uncore_pj,
                "total_energy_pj": total_pj,
                "total_energy_j": total_j,
                "ops_per_second": ops_per_second,
                "average_power_w": average_power_w,
                "perf_per_watt": ops_per_second / average_power_w,
                "memory_bound_fraction": (
                    bound_cycles / total_cycles if total_cycles else 0.0
                ),
            }
        )
    return results


def evaluate_lowered(
    lowered: LoweredNetwork,
    spec: AcceleratorSpec,
    memory: MemorySpec,
    split: BufferSplit = BufferSplit(),
) -> dict:
    """Evaluate one design point against a lowered network."""
    return evaluate_lowered_many(lowered, ((spec, memory),), split)[0]
