"""Roofline analysis for the modelled accelerators.

Places each layer of a workload on the classic roofline: operational
intensity (MACs per DRAM byte, from the tiling planner) against the
platform's compute roof and the memory system's bandwidth slope.  This is
the analytical lens behind the paper's DDR4-vs-HBM2 story -- recurrent
layers sit far left of the DDR4 ridge point, convolutions far right --
and a diagnostic downstream users get for their own networks.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hw.dram import MemorySpec
from ..hw.platforms import AcceleratorSpec
from ..nn.graph import Network
from .performance import simulate_layer
from .tiling import BufferSplit

__all__ = ["RooflinePoint", "ridge_point", "roofline_analysis"]


@dataclass(frozen=True)
class RooflinePoint:
    """One layer's position on the roofline."""

    layer_name: str
    operational_intensity: float  # MACs per DRAM byte
    attained_macs_per_cycle: float
    peak_macs_per_cycle: float
    memory_bound: bool

    @property
    def roof_fraction(self) -> float:
        return self.attained_macs_per_cycle / self.peak_macs_per_cycle


def ridge_point(
    spec: AcceleratorSpec, memory: MemorySpec, bw_x: int = 8, bw_w: int = 8
) -> float:
    """Operational intensity (MACs/byte) where compute and memory roofs meet."""
    peak = spec.macs_per_cycle(bw_x, bw_w)
    bytes_per_cycle = memory.bytes_per_cycle(spec.frequency_hz)
    return peak / bytes_per_cycle


def roofline_analysis(
    network: Network,
    spec: AcceleratorSpec,
    memory: MemorySpec,
    split: BufferSplit = BufferSplit(),
) -> list[RooflinePoint]:
    """Per-layer roofline placement for ``network`` on ``spec`` + ``memory``."""
    points = []
    for layer in network.layers:
        result = simulate_layer(layer, network, spec, memory, split=split)
        if result is None:
            continue
        intensity = result.macs / result.traffic_bytes
        attained = result.macs / result.cycles
        peak = spec.macs_per_cycle(result.bw_act, result.bw_w)
        points.append(
            RooflinePoint(
                layer_name=result.layer_name,
                operational_intensity=intensity,
                attained_macs_per_cycle=attained,
                peak_macs_per_cycle=peak,
                memory_bound=result.is_memory_bound,
            )
        )
    if not points:
        raise ValueError(f"{network.name} has no layers to analyse")
    return points
