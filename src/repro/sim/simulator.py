"""End-to-end accelerator simulation: a network on a platform + memory."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..hw.dram import MemorySpec
from ..hw.platforms import AcceleratorSpec
from ..nn.graph import Network
from .performance import LayerResult, simulate_layer
from .tiling import BufferSplit

__all__ = ["NetworkResult", "simulate_network"]


@dataclass(frozen=True)
class NetworkResult:
    """Aggregate simulation result for one (network, platform, memory) run."""

    network_name: str
    platform_name: str
    memory_name: str
    frequency_hz: float
    layers: tuple[LayerResult, ...] = field(repr=False)

    @property
    def total_cycles(self) -> int:
        return sum(layer.cycles for layer in self.layers)

    @property
    def total_seconds(self) -> float:
        return self.total_cycles / self.frequency_hz

    @property
    def total_macs(self) -> int:
        return sum(layer.macs for layer in self.layers)

    @property
    def total_traffic_bytes(self) -> int:
        return sum(layer.traffic_bytes for layer in self.layers)

    @property
    def compute_energy_pj(self) -> float:
        return sum(layer.compute_energy_pj for layer in self.layers)

    @property
    def sram_energy_pj(self) -> float:
        return sum(layer.sram_energy_pj for layer in self.layers)

    @property
    def dram_energy_pj(self) -> float:
        return sum(layer.dram_energy_pj for layer in self.layers)

    @property
    def uncore_energy_pj(self) -> float:
        return sum(layer.uncore_energy_pj for layer in self.layers)

    @property
    def total_energy_pj(self) -> float:
        return (
            self.compute_energy_pj
            + self.sram_energy_pj
            + self.dram_energy_pj
            + self.uncore_energy_pj
        )

    @property
    def total_energy_j(self) -> float:
        return self.total_energy_pj * 1e-12

    @property
    def average_power_w(self) -> float:
        return self.total_energy_j / self.total_seconds

    @property
    def ops_per_second(self) -> float:
        """Achieved throughput, counting a MAC as two operations."""
        return 2.0 * self.total_macs / self.total_seconds

    @property
    def perf_per_watt(self) -> float:
        return self.ops_per_second / self.average_power_w

    @property
    def memory_bound_fraction(self) -> float:
        """Fraction of runtime spent in memory-bound layers."""
        bound = sum(l.cycles for l in self.layers if l.is_memory_bound)
        return bound / self.total_cycles if self.total_cycles else 0.0

    def layer(self, name: str) -> LayerResult:
        for result in self.layers:
            if result.layer_name == name:
                return result
        raise KeyError(f"no layer named {name!r} in results")

    def summary(self) -> str:
        return (
            f"{self.network_name} on {self.platform_name} + {self.memory_name}: "
            f"{self.total_seconds * 1e3:.2f} ms, "
            f"{self.total_energy_j * 1e3:.2f} mJ, "
            f"{self.ops_per_second / 1e12:.3f} TOPS, "
            f"{self.memory_bound_fraction * 100:.0f}% memory-bound"
        )


def simulate_network(
    network: Network,
    spec: AcceleratorSpec,
    memory: MemorySpec,
    split: BufferSplit = BufferSplit(),
) -> NetworkResult:
    """Simulate every weighted layer of ``network`` on ``spec`` + ``memory``."""
    results = []
    for layer in network.layers:
        result = simulate_layer(layer, network, spec, memory, split=split)
        if result is not None:
            results.append(result)
    if not results:
        raise ValueError(f"{network.name} has no simulatable layers")
    return NetworkResult(
        network_name=network.name,
        platform_name=spec.name,
        memory_name=memory.name,
        frequency_hz=spec.frequency_hz,
        layers=tuple(results),
    )
