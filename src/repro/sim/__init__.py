"""Tiled systolic-accelerator performance and energy simulator."""

from .lowered import (
    LoweredNetwork,
    compute_cycles_batch,
    evaluate_lowered,
    evaluate_lowered_many,
    lower_network,
    traffic_batch,
)
from .performance import (
    LayerResult,
    factor_pairs,
    gemm_compute_cycles,
    simulate_layer,
)
from .report import Comparison, compare, format_table, geomean
from .roofline import RooflinePoint, ridge_point, roofline_analysis
from .simulator import NetworkResult, simulate_network
from .systolic import SystolicArray, SystolicTileResult
from .tiling import BufferSplit, TrafficPlan, buffer_partition, plan_traffic

__all__ = [
    "LayerResult",
    "simulate_layer",
    "factor_pairs",
    "gemm_compute_cycles",
    "LoweredNetwork",
    "lower_network",
    "compute_cycles_batch",
    "traffic_batch",
    "evaluate_lowered",
    "evaluate_lowered_many",
    "Comparison",
    "compare",
    "format_table",
    "geomean",
    "NetworkResult",
    "simulate_network",
    "BufferSplit",
    "TrafficPlan",
    "plan_traffic",
    "buffer_partition",
    "SystolicArray",
    "SystolicTileResult",
    "RooflinePoint",
    "ridge_point",
    "roofline_analysis",
]
