"""Tiled systolic-accelerator performance and energy simulator."""

from .performance import LayerResult, simulate_layer
from .report import Comparison, compare, format_table, geomean
from .roofline import RooflinePoint, ridge_point, roofline_analysis
from .simulator import NetworkResult, simulate_network
from .systolic import SystolicArray, SystolicTileResult
from .tiling import BufferSplit, TrafficPlan, plan_traffic

__all__ = [
    "LayerResult",
    "simulate_layer",
    "Comparison",
    "compare",
    "format_table",
    "geomean",
    "NetworkResult",
    "simulate_network",
    "BufferSplit",
    "TrafficPlan",
    "plan_traffic",
    "SystolicArray",
    "SystolicTileResult",
    "RooflinePoint",
    "ridge_point",
    "roofline_analysis",
]
