"""Per-layer cycle and energy model for systolic accelerators.

Timing: the array streams ``M`` result rows through ``ceil(K / R_eff)``
reduction passes and ``ceil(N / cols)`` column passes -- reduced operand
bitwidths widen the effective reduction ``R_eff`` on bit-composable
datapaths.  Compute and DRAM transfers are double-buffered, so a layer
takes ``max(compute, memory)`` time (the paper's simulator makes the same
assumption).

Energy: MAC switching energy (bitwidth-mode dependent) + scratchpad fill
on every DRAM byte + DRAM access energy and interface background power +
runtime-proportional uncore power (scratchpad leakage, control, clocks).
"""

from __future__ import annotations

import functools
import math
from dataclasses import dataclass

from ..hw.dram import MemorySpec
from ..hw.platforms import AcceleratorSpec
from ..nn.graph import Network
from ..nn.layers import Conv2D, Layer
from .tiling import BufferSplit, plan_traffic

__all__ = [
    "LayerResult",
    "simulate_layer",
    "factor_pairs",
    "gemm_compute_cycles",
]


@dataclass(frozen=True)
class LayerResult:
    """Simulated outcome of one layer on one platform + memory system."""

    layer_name: str
    bw_act: int
    bw_w: int
    macs: int
    compute_cycles: int
    memory_cycles: int
    traffic_bytes: int
    compute_energy_pj: float
    sram_energy_pj: float
    dram_energy_pj: float
    uncore_energy_pj: float
    schedule: str

    @property
    def cycles(self) -> int:
        """Double-buffered layer latency in cycles."""
        return max(self.compute_cycles, self.memory_cycles)

    @property
    def is_memory_bound(self) -> bool:
        return self.memory_cycles > self.compute_cycles

    @property
    def energy_pj(self) -> float:
        return (
            self.compute_energy_pj
            + self.sram_energy_pj
            + self.dram_energy_pj
            + self.uncore_energy_pj
        )

    def seconds(self, frequency_hz: float) -> float:
        return self.cycles / frequency_hz


@functools.cache
def factor_pairs(n: int) -> tuple[tuple[int, int], ...]:
    """All ordered factorisations ``(a, b)`` with ``a * b == n``."""
    return tuple((a, n // a) for a in range(1, n + 1) if n % a == 0)


def gemm_compute_cycles(
    gemm_m: int,
    gemm_k: int,
    gemm_n: int,
    count: int,
    spec: AcceleratorSpec,
    bw_act: int,
    bw_w: int,
) -> int:
    """Cycles for one GEMM on the systolic array, including padding waste.

    Bit-composable modes unlock ``multiplier`` independent dot-product
    clusters per unit.  Clusters either chain along the reduction dimension
    (longer effective dot products, paper Fig. 3-c) or map to additional
    output columns (independent results); the compiler picks the split that
    minimises padding waste, so we take the best factorisation.
    """
    multiplier = spec.throughput_multiplier(bw_act, bw_w)
    best = None
    for k_ext, n_ext in factor_pairs(multiplier):
        k_passes = math.ceil(gemm_k / (spec.reduction_lanes * k_ext))
        n_passes = math.ceil(gemm_n / (spec.array_cols * n_ext))
        cycles = count * gemm_m * k_passes * n_passes
        if best is None or cycles < best:
            best = cycles
    assert best is not None
    return best


def simulate_layer(
    layer: Layer,
    network: Network,
    spec: AcceleratorSpec,
    memory: MemorySpec,
    split: BufferSplit = BufferSplit(),
) -> LayerResult | None:
    """Simulate one weighted layer; returns ``None`` for compute-free layers."""
    gemms = layer.gemms(network.batch)
    if not gemms:
        return None
    bw = network.bitwidth(layer.name)

    compute_cycles = 0
    traffic = 0
    macs = 0
    schedules: list[str] = []
    for gemm in gemms:
        compute_cycles += gemm_compute_cycles(
            gemm.m, gemm.k, gemm.n, gemm.count, spec, bw.activations, bw.weights
        )
        unique_inputs = None
        if isinstance(layer, Conv2D):
            unique_inputs = layer.input_elements(network.batch) // gemm.count
        plan = plan_traffic(
            gemm,
            bw.activations,
            bw.weights,
            spec,
            split=split,
            input_unique_elements=unique_inputs,
        )
        traffic += plan.total_traffic
        macs += gemm.macs
        schedules.append(plan.schedule)

    bytes_per_cycle = memory.bytes_per_cycle(spec.frequency_hz)
    memory_cycles = math.ceil(traffic / bytes_per_cycle)

    mac_energy = spec.mac_energy_pj(bw.activations, bw.weights)
    spad = spec.scratchpad
    compute_energy = macs * mac_energy
    sram_energy = traffic * spad.energy_per_byte_pj  # scratchpad fill
    dram_energy = memory.transfer_energy_pj(traffic)
    layer_cycles = max(compute_cycles, memory_cycles)
    layer_seconds = layer_cycles / spec.frequency_hz
    uncore_energy = spec.uncore_power_mw * 1e-3 * layer_seconds * 1e12
    dram_energy += memory.background_power_w * layer_seconds * 1e12

    return LayerResult(
        layer_name=layer.name,
        bw_act=bw.activations,
        bw_w=bw.weights,
        macs=macs,
        compute_cycles=compute_cycles,
        memory_cycles=memory_cycles,
        traffic_bytes=traffic,
        compute_energy_pj=compute_energy,
        sram_energy_pj=sram_energy,
        dram_energy_pj=dram_energy,
        uncore_energy_pj=uncore_energy,
        schedule="+".join(sorted(set(schedules))),
    )
