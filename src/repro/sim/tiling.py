"""Scratchpad-constrained tiling and DRAM traffic estimation.

For every GEMM the simulator evaluates the three canonical dataflow
schedules an accelerator compiler would consider and keeps the cheapest:

* **weight-stationary**: weights resident in their scratchpad partition;
  activations are re-streamed once per weight pass;
* **activation-stationary**: the converse;
* **output-stationary**: a square-ish output tile accumulates on-chip while
  both operands stream; operand traffic multiplies by the number of
  column/row tile passes.

Traffic never drops below the compulsory minimum (each operand byte and
each output byte crosses the DRAM interface at least once -- weights only
once across repeated GEMMs when they fit on chip, e.g. recurrent steps).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..hw.platforms import AcceleratorSpec
from ..nn.layers import Gemm

__all__ = [
    "BufferSplit",
    "TrafficPlan",
    "plan_traffic",
    "buffer_partition",
    "element_bytes",
    "OUTPUT_BYTES_PER_ELEMENT",
    "ACCUMULATOR_BYTES",
]

OUTPUT_BYTES_PER_ELEMENT = 1  # outputs are requantized to 8-bit on write-back
ACCUMULATOR_BYTES = 4


@dataclass(frozen=True)
class BufferSplit:
    """How the unified scratchpad is partitioned between operand classes."""

    weight_fraction: float = 0.4
    activation_fraction: float = 0.4
    accumulator_fraction: float = 0.2

    def __post_init__(self) -> None:
        total = (
            self.weight_fraction
            + self.activation_fraction
            + self.accumulator_fraction
        )
        if not math.isclose(total, 1.0, rel_tol=1e-6):
            raise ValueError(f"buffer fractions must sum to 1, got {total}")
        if min(
            self.weight_fraction,
            self.activation_fraction,
            self.accumulator_fraction,
        ) <= 0:
            raise ValueError("every buffer fraction must be positive")


@dataclass(frozen=True)
class TrafficPlan:
    """DRAM traffic (bytes) chosen for one GEMM workload."""

    schedule: str
    weight_traffic: int
    input_traffic: int
    output_traffic: int
    weight_bytes: int
    input_bytes_per_repeat: int

    @property
    def total_traffic(self) -> int:
        return self.weight_traffic + self.input_traffic + self.output_traffic


def element_bytes(elements: int, bits: int) -> int:
    """Bytes occupied by ``elements`` packed values of ``bits`` each."""
    return -(-elements * bits // 8)


def buffer_partition(
    spec: AcceleratorSpec, split: BufferSplit = BufferSplit()
) -> tuple[int, int, int]:
    """Scratchpad partition ``(weight_bytes, act_bytes, accumulator_elems)``.

    The scalar kernel behind :func:`plan_traffic`'s buffer sizing, shared
    with the vectorized evaluator (:mod:`repro.sim.lowered`) so both paths
    truncate fractions identically.
    """
    w_buf = int(spec.onchip_bytes * split.weight_fraction)
    a_buf = int(spec.onchip_bytes * split.activation_fraction)
    acc_elems = (
        int(spec.onchip_bytes * split.accumulator_fraction) // ACCUMULATOR_BYTES
    )
    return w_buf, a_buf, acc_elems


def plan_traffic(
    gemm: Gemm,
    bw_act: int,
    bw_w: int,
    spec: AcceleratorSpec,
    split: BufferSplit = BufferSplit(),
    input_unique_elements: int | None = None,
) -> TrafficPlan:
    """Pick the cheapest schedule for ``gemm`` on ``spec``.

    ``input_unique_elements`` is the true activation footprint when the GEMM
    is an im2col lowering of a convolution (the sliding-window overlap is
    served from on-chip line buffers, so DRAM only sees each input element
    once per pass).
    """
    if not 1 <= bw_act <= 8 or not 1 <= bw_w <= 8:
        raise ValueError(f"unsupported bitwidths {bw_act}x{bw_w}")

    w_buf, a_buf, acc_elems = buffer_partition(spec, split)

    weight_bytes = element_bytes(gemm.weight_elements, bw_w)
    unique_inputs = (
        input_unique_elements
        if input_unique_elements is not None
        else gemm.m * gemm.k
    )
    input_bytes = element_bytes(unique_inputs, bw_act)
    output_bytes = gemm.m * gemm.n * OUTPUT_BYTES_PER_ELEMENT
    count = gemm.count

    candidates: list[TrafficPlan] = []

    # Weight-stationary: weights tiled into the weight buffer; activations
    # re-streamed once per weight pass.  When all weights fit, repeated
    # GEMMs (recurrent steps) reuse them without reloading.
    w_passes = max(1, math.ceil(weight_bytes / w_buf))
    w_traffic = weight_bytes if weight_bytes <= w_buf else weight_bytes * count
    candidates.append(
        TrafficPlan(
            schedule="weight-stationary",
            weight_traffic=w_traffic,
            input_traffic=input_bytes * w_passes * count,
            output_traffic=output_bytes * count,
            weight_bytes=weight_bytes,
            input_bytes_per_repeat=input_bytes,
        )
    )

    # Activation-stationary: the converse.
    a_passes = max(1, math.ceil(input_bytes / a_buf))
    candidates.append(
        TrafficPlan(
            schedule="activation-stationary",
            weight_traffic=weight_bytes * a_passes * count,
            input_traffic=input_bytes * count,
            output_traffic=output_bytes * count,
            weight_bytes=weight_bytes,
            input_bytes_per_repeat=input_bytes,
        )
    )

    # Output-stationary: square-ish accumulator tile; both operands stream
    # once per opposing tile pass.
    tile = max(1, int(math.sqrt(acc_elems)))
    m_tile = min(gemm.m, tile)
    n_tile = min(gemm.n, max(1, acc_elems // m_tile))
    m_passes = math.ceil(gemm.m / m_tile)
    n_passes = math.ceil(gemm.n / n_tile)
    candidates.append(
        TrafficPlan(
            schedule="output-stationary",
            weight_traffic=weight_bytes * m_passes * count,
            input_traffic=input_bytes * n_passes * count,
            output_traffic=output_bytes * count,
            weight_bytes=weight_bytes,
            input_bytes_per_repeat=input_bytes,
        )
    )

    return min(candidates, key=lambda plan: plan.total_traffic)
