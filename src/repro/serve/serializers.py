"""Shared JSON shapes for served and machine-readable sweep output.

The HTTP endpoints (:mod:`repro.serve.server`) and the CLI's
``--format json`` emit the *same* payloads through these helpers, so a
script written against ``repro dse --format json`` parses a server's
``/query/*`` responses unchanged -- and vice versa.
"""

from __future__ import annotations

import json
from typing import Iterable, Mapping, Sequence

__all__ = [
    "dumps",
    "records_payload",
    "summary_payload",
    "result_summary",
    "co_explore_payload",
]


def dumps(payload) -> str:
    """Canonical JSON text: sorted keys, 2-space indent, exact floats."""
    return json.dumps(payload, sort_keys=True, indent=2)


def summary_payload(
    *, points: int, evaluated: int, store_hits: int, memo_hits: int
) -> dict:
    """Per-sweep tier accounting in one flat, self-describing object."""
    return {
        "points": points,
        "unique_points": evaluated + store_hits + memo_hits,
        "evaluated": evaluated,
        "store_hits": store_hits,
        "memo_hits": memo_hits,
    }


def result_summary(result) -> dict:
    """The summary payload of a :class:`~repro.dse.engine.SweepResult`."""
    return summary_payload(
        points=len(result.records),
        evaluated=result.evaluated,
        store_hits=result.from_store,
        memo_hits=result.from_memo,
    )


def records_payload(
    records: Sequence[Mapping], summary: Mapping | None = None
) -> dict:
    """A record list wrapped with its count (and optional sweep summary)."""
    payload: dict = {"count": len(records), "records": list(records)}
    if summary is not None:
        payload["summary"] = dict(summary)
    return payload


def _policy_payload(entry) -> dict:
    """One searched policy of a co-exploration run, flattened."""
    return {
        "label": entry.label,
        "policy": entry.policy,
        "max_drop": entry.max_drop,
        "accuracy": entry.accuracy,
        "float_accuracy": entry.float_accuracy,
        "accuracy_drop": entry.accuracy_drop,
        "bits_per_layer": list(entry.bits_per_layer),
        "search_steps": entry.search_steps,
    }


def co_explore_payload(result, frontier_only: bool = False) -> dict:
    """The machine-readable shape of a quant--hardware co-exploration.

    Mirrors the human-readable ``repro quant-dse`` tables: the searched
    policies, the swept records (unless ``frontier_only``), and the
    accuracy/performance frontier, plus the tier summary.
    """
    records: Iterable[Mapping] = () if frontier_only else result.records
    # CoExploreResult is SweepResult-shaped for summary purposes.
    payload = records_payload(list(records), summary=result_summary(result))
    payload["workload"] = result.workload
    payload["policies"] = [_policy_payload(p) for p in result.policies]
    payload["frontier"] = list(result.frontier)
    return payload
