"""Shard orchestration: run one sweep as N coordinated shard processes.

``repro dse-launch`` turns the coordination-free hash-range partition
(:meth:`SweepSpec.shard <repro.dse.spec.SweepSpec.shard>`) into a
one-command workflow: shard the spec ``n`` ways, spawn one local
``repro dse --shard i/n`` process per shard (or ``--print-cmds`` the
exact per-machine command lines), auto-merge the per-shard stores into
the destination store on completion, and optionally post the merged
records to a running sweep server
(:mod:`repro.serve.server`).  Every shard evaluates into its own JSONL
store, so a crashed shard keeps its partials and a re-launch resumes
warm.

``repro dse-launch --fleet N`` replaces the fixed shard plan with the
elastic pull model (:func:`launch_fleet`): an ephemeral in-process
sweep server chunks the spec into a lease queue and N local ``repro
worker`` processes pull, evaluate, ingest, and ack -- a dead worker's
leases expire and requeue instead of losing a shard.
"""

from __future__ import annotations

import os
import shlex
import subprocess
import sys
import threading
import time
from dataclasses import dataclass
from pathlib import Path

from ..dse.store import ResultStoreBase, open_store

__all__ = [
    "FleetLaunchResult",
    "LaunchResult",
    "launch",
    "launch_fleet",
    "shard_commands",
    "shard_store_path",
]

#: Records per /records upload request when posting a merged store to a
#: server -- keeps each body far under the server's request-size cap no
#: matter how large the merge is.
POST_CHUNK_RECORDS = 20_000


def shard_store_path(dest: str | os.PathLike, index: int) -> Path:
    """Where shard ``index``'s private store lives, next to the dest store."""
    dest = Path(dest)
    return dest.with_name(f"{dest.name}.shard{index}.jsonl")


def _shard_argv(
    spec_path: str | os.PathLike,
    index: int,
    count: int,
    store_path: str | os.PathLike,
    workers: int = 1,
    vectorize: bool = True,
) -> list[str]:
    argv = [
        "dse",
        "--spec",
        str(spec_path),
        "--shard",
        f"{index}/{count}",
        "--store",
        str(store_path),
        "--workers",
        str(workers),
        "--format",
        "jsonl",
    ]
    if not vectorize:
        argv.append("--no-vectorize")
    return argv


def shard_commands(
    spec_path: str | os.PathLike,
    count: int,
    dest: str | os.PathLike,
    workers: int = 1,
    vectorize: bool = True,
    program: tuple[str, ...] = ("repro",),
) -> list[list[str]]:
    """The ``count`` command lines that together cover the sweep.

    Each line is independent -- run them on one machine or many, in any
    order; the hash-range partition guarantees disjoint coverage.  The
    default ``program`` spells the installed console script (what
    ``--print-cmds`` emits for other machines); the launcher itself
    substitutes ``sys.executable -m repro`` so it works from a source
    tree too.
    """
    return [
        list(program)
        + _shard_argv(
            spec_path,
            index,
            count,
            shard_store_path(dest, index),
            workers=workers,
            vectorize=vectorize,
        )
        for index in range(count)
    ]


def render_commands(commands: list[list[str]]) -> str:
    """Shell-quoted, one command per line (the ``--print-cmds`` output)."""
    return "\n".join(shlex.join(command) for command in commands)


@dataclass
class LaunchResult:
    """What one orchestrated launch produced."""

    shards: int
    merged_records: int
    store_path: Path
    shard_paths: list[Path]
    posted: int | None = None  # records posted to --post, if any

    def summary(self) -> str:
        text = (
            f"{self.shards} shards -> merged {self.merged_records} records "
            f"into {self.store_path}"
        )
        if self.posted is not None:
            text += f"; posted {self.posted} records to the server"
        return text


def _subprocess_env() -> dict[str, str]:
    """Child env that can import this exact ``repro``, installed or not.

    The launcher may run from a source tree (``PYTHONPATH=src``) where
    the child's ``python -m repro`` would otherwise not resolve; put the
    package's parent directory first on the child's path either way.
    """
    src_dir = str(Path(__file__).resolve().parents[2])
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        src_dir if not existing else src_dir + os.pathsep + existing
    )
    return env


def _wait_for_shards(
    processes: list[subprocess.Popen],
    shards: int,
    fail_fast: bool,
    poll_interval: float = 0.05,
) -> list[str]:
    """Wait for shard children; returns failure descriptions (if any).

    With ``fail_fast`` the first non-zero exit terminates every still
    running sibling immediately, so a poisoned shard surfaces in
    seconds instead of after the surviving N-1 shards burn to
    completion.  Terminated siblings are reaped but not reported as
    failures -- the shard that actually crashed is the story.  Without
    ``fail_fast`` every child runs to its own exit (the pre-existing
    behaviour, kept behind ``--no-fail-fast`` for runs where maximal
    partial coverage matters more than fast failure).
    """
    terminated: set[int] = set()
    if fail_fast:
        pending = set(range(len(processes)))
        while pending:
            crashed = False
            for index in sorted(pending):
                code = processes[index].poll()
                if code is None:
                    continue
                pending.discard(index)
                if code != 0:
                    crashed = True
            if crashed:
                for index in pending:
                    processes[index].terminate()
                    terminated.add(index)
                break
            if pending:
                time.sleep(poll_interval)
    failures = []
    for index, process in enumerate(processes):
        _, stderr = process.communicate()
        if process.returncode != 0 and index not in terminated:
            detail = stderr.decode(errors="replace").strip().splitlines()
            failures.append(
                f"shard {index}/{shards} exited {process.returncode}"
                + (f": {detail[-1]}" if detail else "")
            )
    return failures


def launch(
    spec_path: str | os.PathLike,
    shards: int,
    store: "ResultStoreBase | str | os.PathLike",
    backend: str | None = None,
    workers: int = 1,
    vectorize: bool = True,
    post: str | None = None,
    keep_shards: bool = False,
    fail_fast: bool = True,
) -> LaunchResult:
    """Run every shard of ``spec_path`` locally and merge the stores.

    Spawns ``shards`` child processes (each ``repro dse --shard i/n``
    against its own JSONL shard store), waits for them, then merges the
    shard stores into ``store`` (either backend, forced by ``backend``
    or sniffed from the path).  A shard failure raises ``RuntimeError``
    naming the shard and its last stderr line; with ``fail_fast`` (the
    default) the failure surfaces promptly -- surviving siblings are
    terminated instead of burning to completion -- while
    ``fail_fast=False`` waits for every child.  Either way the
    per-shard partial stores are kept on failure, so a re-launch
    resumes warm.  With ``post``, the records this launch produced
    (the shard delta, not the whole destination store) are uploaded to
    a running server's ``/records`` endpoint in chunks.  Shard stores
    are deleted after a successful merge unless ``keep_shards``.
    """
    if shards < 1:
        raise ValueError("shard count must be >= 1")
    dest = open_store(store, backend=backend)
    commands = shard_commands(
        spec_path,
        shards,
        dest.path,
        workers=workers,
        vectorize=vectorize,
        program=(sys.executable, "-m", "repro"),
    )
    env = _subprocess_env()
    processes = [
        subprocess.Popen(
            command,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE,
            env=env,
        )
        for command in commands
    ]
    failures = _wait_for_shards(processes, shards, fail_fast=fail_fast)
    if failures:
        raise RuntimeError("; ".join(failures))

    shard_paths = [shard_store_path(dest.path, i) for i in range(shards)]
    # Parse each shard store once: the same loaded records feed the
    # merge and (when posting) the upload delta.  Shards are
    # hash-disjoint, so a plain union is exact.
    delta: dict[str, dict] = {}
    for path in shard_paths:
        if path.exists():
            delta.update(open_store(path).load())
    merged_records = dest.merge([delta])

    posted = None
    if post:
        from .client import ServeClient

        client = ServeClient(post)
        # Only this launch's delta goes up, not everything the
        # destination store accumulated over earlier runs -- chunked,
        # so one giant delta never exceeds the server's body cap.
        records = list(delta.values())
        posted = 0
        for start in range(0, len(records), POST_CHUNK_RECORDS):
            chunk = records[start : start + POST_CHUNK_RECORDS]
            posted += client.post_records(chunk)["appended"]

    if not keep_shards:
        for path in shard_paths:
            path.unlink(missing_ok=True)

    return LaunchResult(
        shards=shards,
        merged_records=merged_records,
        store_path=dest.path,
        shard_paths=shard_paths,
        posted=posted,
    )


@dataclass
class FleetLaunchResult:
    """What one self-hosted fleet launch produced."""

    workers: int
    points: int
    chunks: dict  # the fleet job's final chunk counts
    requeued: int
    store_path: Path
    job: str

    def summary(self) -> str:
        text = (
            f"{self.points} points over {self.chunks.get('total', 0)} chunks "
            f"pulled by {self.workers} workers -> {self.store_path}"
        )
        if self.requeued:
            text += f" ({self.requeued} leases requeued)"
        return text


def _worker_argv(url: str, poll: float, vectorize: bool) -> list[str]:
    argv = [
        sys.executable,
        "-m",
        "repro",
        "worker",
        "--server",
        url,
        "--exit-when-drained",
        "--poll",
        str(poll),
    ]
    if not vectorize:
        argv.append("--no-vectorize")
    return argv


def launch_fleet(
    spec,
    workers: int,
    store: "ResultStoreBase | str | os.PathLike",
    backend: str | None = None,
    chunks: int | None = None,
    vectorize: bool = True,
    lease_ttl: float | None = None,
    heartbeat_ttl: float | None = None,
    poll: float = 0.2,
    timeout: float | None = None,
) -> FleetLaunchResult:
    """Run one sweep as an elastic worker fleet, self-hosting the server.

    The pull-based counterpart to :func:`launch`: instead of a fixed
    shard plan, an ephemeral in-process sweep server over ``store``
    takes the spec as a fleet job split into ``chunks`` hash-range
    chunks (default ``4 * workers``, so work-stealing has slack), and
    ``workers`` local ``repro worker`` processes lease, evaluate,
    ingest, and ack until the job drains.  A worker that dies
    mid-chunk costs one lease TTL -- survivors steal the requeued
    chunk.  Raises ``RuntimeError`` if the job fails, times out, or
    every worker exits while chunks remain.
    """
    from .client import ServeClient
    from .fleet import DEFAULT_HEARTBEAT_TTL, DEFAULT_LEASE_TTL
    from .server import SweepServer, SweepService

    if workers < 1:
        raise ValueError("fleet worker count must be >= 1")
    if len(spec) == 0:
        raise ValueError("the sweep has no points")
    if chunks is None:
        chunks = max(1, min(len(spec), 4 * workers))
    service = SweepService(
        store=open_store(store, backend=backend),
        lease_ttl=lease_ttl or DEFAULT_LEASE_TTL,
        heartbeat_ttl=heartbeat_ttl or DEFAULT_HEARTBEAT_TTL,
    )
    server = SweepServer(service, port=0)
    server_thread = threading.Thread(
        target=lambda: server.serve_forever(poll_interval=0.05),
        name="fleet-launch-server",
        daemon=True,
    )
    server_thread.start()
    env = _subprocess_env()
    processes: list[subprocess.Popen] = []
    try:
        client = ServeClient(server.url)
        job_id = client.submit_job(spec.to_dict(), fleet={"chunks": chunks})[
            "job"
        ]
        argv = _worker_argv(server.url, poll, vectorize)
        processes = [
            subprocess.Popen(
                argv,
                stdout=subprocess.DEVNULL,
                stderr=subprocess.PIPE,
                env=env,
            )
            for _ in range(workers)
        ]
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            status = client.job_status(job_id)
            if status["state"] not in ("queued", "running"):
                break
            if all(process.poll() is not None for process in processes):
                raise RuntimeError(
                    "every fleet worker exited with the job unfinished"
                )
            if deadline is not None and time.monotonic() > deadline:
                raise RuntimeError(
                    f"fleet sweep timed out after {timeout} seconds"
                )
            time.sleep(0.05)
        if status["state"] != "done":
            raise RuntimeError(
                f"fleet job {job_id} {status['state']}"
                + (f": {status['error']}" if status.get("error") else "")
            )
        # Drain the workers gracefully: the job is terminal, so their
        # next lease reports zero active jobs and they exit themselves.
        for process in processes:
            try:
                process.communicate(timeout=30)
            except subprocess.TimeoutExpired:  # pragma: no cover - wedged
                process.kill()
                process.communicate()
        progress = status["progress"]
    finally:
        for process in processes:
            if process.returncode is None and process.poll() is None:
                process.kill()
                process.communicate()
        server.shutdown()
        server.server_close()
        service.close()
        server_thread.join(timeout=5)
    chunk_counts = progress.get("chunks", {})
    return FleetLaunchResult(
        workers=workers,
        points=progress.get("points", 0),
        chunks=chunk_counts,
        requeued=chunk_counts.get("requeues", 0),
        store_path=service.store.path,
        job=job_id,
    )
