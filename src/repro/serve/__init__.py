"""``repro.serve`` -- the sweep service built over the DSE engine.

The file-based DSE cache served as a system: a long-lived HTTP process
that owns a warm result store and hands records, frontiers, and
rankings to many clients, plus the shard orchestration that feeds it.

* :mod:`~repro.serve.server` -- the stdlib-only HTTP service
  (:class:`SweepService` state + :class:`SweepServer` +
  blocking :func:`serve`): submit sweeps as jobs, poll/stream/cancel
  them by id, run Pareto / top-k / accuracy-frontier reductions
  server-side, ingest merged shard stores, health and store stats;
* :mod:`~repro.serve.jobs` -- the job queue under the service:
  :class:`Job` (queued -> running -> done/failed/cancelled) and
  :class:`JobManager`, the bounded priority-FIFO worker pool;
* :mod:`~repro.serve.journal` -- crash safety: the durable job/lease
  journal (``repro serve --journal``) whose startup replay recovers
  queued, running, and fleet jobs after a server death;
* :mod:`~repro.serve.fleet` -- the elastic worker fleet:
  :class:`Fleet` (the coordinator's lease table: registration,
  heartbeats, pull-based chunk leases with expiry/requeue) and
  :class:`FleetWorker`, the ``repro worker`` pull loop;
* :mod:`~repro.serve.client` -- :class:`ServeClient`, the thin urllib
  client behind ``repro dse --server URL`` (records bit-identical to a
  local run), with bounded-backoff retries on transient failures of
  idempotent requests;
* :mod:`~repro.serve.launch` -- ``repro dse-launch`` orchestration:
  spawn N local shard processes or print per-machine command lines and
  auto-merge shard stores, or ``--fleet N`` to self-host a lease queue
  and pull workers instead of a fixed shard plan;
* :mod:`~repro.serve.serializers` -- the JSON shapes shared between
  the HTTP endpoints and the CLI's ``--format json``.
"""

from .client import ServeClient, ServeError
from .fleet import Fleet, FleetJob, FleetWorker
from .jobs import Job, JobManager
from .journal import JobJournal, JournalWarning, default_journal_path
from .launch import (
    FleetLaunchResult,
    LaunchResult,
    launch,
    launch_fleet,
    render_commands,
    shard_commands,
    shard_store_path,
)
from .serializers import (
    co_explore_payload,
    dumps,
    records_payload,
    result_summary,
    summary_payload,
)
from .server import (
    DrainingError,
    QueueFullError,
    SweepServer,
    SweepService,
    serve,
)

__all__ = [
    "ServeClient",
    "ServeError",
    "Fleet",
    "FleetJob",
    "FleetWorker",
    "Job",
    "JobManager",
    "JobJournal",
    "JournalWarning",
    "default_journal_path",
    "DrainingError",
    "QueueFullError",
    "FleetLaunchResult",
    "LaunchResult",
    "launch",
    "launch_fleet",
    "render_commands",
    "shard_commands",
    "shard_store_path",
    "co_explore_payload",
    "dumps",
    "records_payload",
    "result_summary",
    "summary_payload",
    "SweepServer",
    "SweepService",
    "serve",
]
