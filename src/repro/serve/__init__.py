"""``repro.serve`` -- the sweep service built over the DSE engine.

The file-based DSE cache served as a system: a long-lived HTTP process
that owns a warm result store and hands records, frontiers, and
rankings to many clients, plus the shard orchestration that feeds it.

* :mod:`~repro.serve.server` -- the stdlib-only HTTP service
  (:class:`SweepService` state + :class:`SweepServer` +
  blocking :func:`serve`): submit sweeps as jobs, poll/stream/cancel
  them by id, run Pareto / top-k / accuracy-frontier reductions
  server-side, ingest merged shard stores, health and store stats;
* :mod:`~repro.serve.jobs` -- the job queue under the service:
  :class:`Job` (queued -> running -> done/failed/cancelled) and
  :class:`JobManager`, the bounded priority-FIFO worker pool;
* :mod:`~repro.serve.client` -- :class:`ServeClient`, the thin urllib
  client behind ``repro dse --server URL`` (records bit-identical to a
  local run);
* :mod:`~repro.serve.launch` -- ``repro dse-launch`` shard
  orchestration: spawn N local shard processes or print per-machine
  command lines, auto-merge shard stores, optionally post the merge to
  a running server;
* :mod:`~repro.serve.serializers` -- the JSON shapes shared between
  the HTTP endpoints and the CLI's ``--format json``.
"""

from .client import ServeClient, ServeError
from .jobs import Job, JobManager
from .launch import (
    LaunchResult,
    launch,
    render_commands,
    shard_commands,
    shard_store_path,
)
from .serializers import (
    co_explore_payload,
    dumps,
    records_payload,
    result_summary,
    summary_payload,
)
from .server import SweepServer, SweepService, serve

__all__ = [
    "ServeClient",
    "ServeError",
    "Job",
    "JobManager",
    "LaunchResult",
    "launch",
    "render_commands",
    "shard_commands",
    "shard_store_path",
    "co_explore_payload",
    "dumps",
    "records_payload",
    "result_summary",
    "summary_payload",
    "SweepServer",
    "SweepService",
    "serve",
]
