"""The sweep service: a stdlib-only HTTP server over the DSE engine.

One long-lived process owns a result store and the warm in-process
memo; many clients submit sweeps, stream records, and run server-side
reductions against the shared cache instead of each re-evaluating (or
re-loading) the design space.  The protocol is deliberately plain --
JSON requests, JSON or NDJSON responses, ``http.server`` underneath --
so any HTTP client works; :class:`repro.serve.client.ServeClient` is
the thin reference client.

Sweeps run through an async job queue (:mod:`repro.serve.jobs`):
``POST /sweep`` validates the spec and returns a job id immediately,
a bounded worker pool runs jobs concurrently (FIFO within priority
levels), and clients poll ``GET /jobs/{id}``, stream
``GET /jobs/{id}/records``, or ``POST /jobs/{id}/cancel``.  A slow
sweep no longer head-of-line blocks anyone.

Endpoints
---------
``GET /healthz``
    Liveness: status, ``EVAL_VERSION``, sweeps served so far.
``GET /readyz``
    Readiness: 200 once recovery replay finished and the server is
    accepting work; 503 while starting, draining, or closed.
``GET /metrics``
    The process metrics registry in Prometheus text exposition format
    (requests, jobs, fleet, cache, journal, evaluator series).
``GET /stats``
    Store metadata (backend, records, bytes) + memo size + job counts
    + aggregated job phase timings.
``GET /records``
    With ``?after=HASH&limit=N``: one keyset page of current-version
    records in hash order, ending with ``{"count": n, "next": cursor}``
    -- the server holds one page, never the store, so million-record
    dumps stream in bounded memory (``ServeClient.records()`` follows
    pages transparently).  Without parameters: the legacy full dump,
    every current-version record, streamed as NDJSON, ending with a
    ``{"count": n}`` terminal line (truncation detection).
``POST /sweep``
    Body ``{"spec": {...}, "workers"?: n, "vectorize"?: bool,
    "priority"?: n, "fleet"?: true | {"chunks": n}}`` where ``spec``
    is the JSON sweep-spec format (grid or explicit points).
    Validates, enqueues, and immediately returns the job's status
    object (its ``job`` field is the id).  With ``fleet`` the job goes
    to the pull-based lease queue (:mod:`repro.serve.fleet`) instead
    of the server's own pool: registered workers lease its hash-range
    chunks, evaluate them, ingest the records, and ack.
``GET /jobs`` / ``GET /jobs/{id}``
    The job table / one job's status, progress counts, and
    Pareto-frontier-so-far over its completed records.
``GET /jobs/{id}/records``
    NDJSON stream of the job's completed records in completion order,
    live until the job is terminal; ``?after=N`` skips the first N
    records so a dropped client resumes exactly where it left off.
    Ends with one terminal line: ``{"summary": ...}`` (done),
    ``{"error": ...}`` (failed), or ``{"cancelled": true, ...}``.
``POST /jobs/{id}/cancel``
    Cooperative cancellation: queued jobs die immediately, running
    jobs stop at the next record boundary (nothing half-appended).
``POST /query/pareto`` / ``POST /query/top-k`` /
``POST /query/accuracy-frontier``
    Server-side reductions over the stored records via
    :func:`~repro.dse.queries.run_query`; the body carries the query's
    parameters plus an optional ``where`` equality filter.
``POST /records``
    Ingest a JSON list of records (e.g. a merged shard store posted by
    ``repro dse-launch --post``, or a fleet worker streaming a chunk's
    results back); tracked as an ingest job.
``POST /workers/register`` / ``GET /workers``
    Join the worker fleet (body ``{"name"?: str, "capacity"?: n}``;
    returns the worker id and heartbeat cadence) / list every
    registered worker with liveness and lease counts.
``POST /workers/{id}/heartbeat`` / ``POST /workers/{id}/lease`` /
``POST /workers/{id}/ack``
    The fleet pull loop: prove liveness; lease the next pending chunk
    (``{"lease": {...}}`` with the chunk's spec, or ``{"idle": true,
    "active_jobs": n}``); report a chunk done or failed (body
    ``{"job": id, "chunk": n, "error"?: str}``).  Unknown worker ids
    answer 404 -- the cue to re-register after a server restart.
``POST /shutdown``
    Stop serving after the response -- the clean-exit path.
    ``?drain=true`` drains instead: admission stops (new submissions
    503), running jobs get up to ``--drain-timeout`` seconds to
    finish, then the server exits 0.

Crash safety: with a journal (``--journal``, on by default next to the
store), every job/lease transition is durable and a restarted server
replays it -- queued jobs re-enqueue in order, running jobs resume via
their merged staging prefix and the store warm path, fleet lease
tables rebuild with in-flight chunks requeued (see
:mod:`repro.serve.journal`).  ``--max-queue-depth`` sheds load with
429 + ``Retry-After``; ``--job-retention``/``--job-ttl`` bound the job
table on long-lived servers.
"""

from __future__ import annotations

import json
import os
import re
import signal
import threading
import time
import warnings
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Iterator, Mapping
from urllib.parse import parse_qs, urlsplit

from ..dse.engine import iter_sweep
from ..dse.evaluate import _MEMO, EVAL_VERSION
from ..dse.queries import pareto_frontier, run_query
from ..dse.spec import SweepSpec
from ..dse.store import ResultStore, ResultStoreBase, StoreWarning, open_store
from ..obs.logs import get_logger
from ..obs.metrics import get_registry
from ..obs.trace import Trace
from .cache import DEFAULT_RECORD_CACHE, RecordCache
from .fleet import (
    DEFAULT_FLEET_CHUNKS,
    DEFAULT_HEARTBEAT_TTL,
    DEFAULT_LEASE_TTL,
    Fleet,
    FleetJob,
)
from .jobs import (
    CANCELLED,
    DEFAULT_PRIORITY,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    TERMINAL_STATES,
    IngestJob,
    Job,
    JobManager,
    StagedWrites,
)
from .journal import JobJournal, default_journal_path
from .serializers import dumps, records_payload, summary_payload

__all__ = [
    "SweepService",
    "SweepServer",
    "serve",
    "DrainingError",
    "QueueFullError",
]

#: Reject request bodies past this size (a million-point explicit spec
#: is ~300 MB of JSON; nobody submits that in one request by accident).
MAX_BODY_BYTES = 64 * 1024 * 1024

#: Default socket timeout for handler connections; override per server
#: with ``repro serve --client-timeout``.
DEFAULT_CLIENT_TIMEOUT = 600.0

#: Default seconds a graceful drain waits for running jobs before
#: cancelling the stragglers (``repro serve --drain-timeout``).
DEFAULT_DRAIN_TIMEOUT = 30.0

#: The ``Retry-After`` a 429 queue-full rejection advertises.  Queue
#: depth turns over at job, not request, cadence; one second is a
#: polite first retry for both humans and ServeClient's backoff.
DEFAULT_RETRY_AFTER = 1.0

#: Default number of terminal jobs the retention policy keeps
#: (``repro serve --job-retention``; ``0`` disables the count bound).
DEFAULT_JOB_RETENTION = 1000

#: Default ``limit`` for ``GET /records?after=``: big enough that a
#: full dump of a small store is one page, small enough that a page
#: never strains server or client memory.
DEFAULT_PAGE_LIMIT = 5_000

_JOB_PATH = re.compile(r"^/jobs/([0-9a-f]+)(/records|/cancel)?$")
_WORKER_PATH = re.compile(r"^/workers/([0-9a-f]+)/(heartbeat|lease|ack)$")

_LOG = get_logger(__name__)

_METRICS = get_registry()
_HTTP_REQUESTS = _METRICS.counter(
    "repro_http_requests_total",
    "HTTP requests served, by endpoint template, method, and status.",
    labelnames=("endpoint", "method", "status"),
)
_HTTP_SECONDS = _METRICS.histogram(
    "repro_http_request_seconds",
    "HTTP request handling latency, by endpoint template and method.",
    labelnames=("endpoint", "method"),
)

#: Fixed paths the endpoint label passes through verbatim.  Everything
#: else normalizes to a template (``/jobs/{id}``) or ``other`` so label
#: cardinality stays bounded no matter what clients request.
_STATIC_ENDPOINTS = frozenset(
    {
        "/",
        "/healthz",
        "/readyz",
        "/stats",
        "/metrics",
        "/records",
        "/jobs",
        "/workers",
        "/sweep",
        "/shutdown",
        "/workers/register",
    }
)


def _endpoint_label(path: str) -> str:
    """Collapse a request path to its endpoint template."""
    if path in _STATIC_ENDPOINTS:
        return path
    if match := _JOB_PATH.match(path):
        return "/jobs/{id}" + (match.group(2) or "")
    if match := _WORKER_PATH.match(path):
        return "/workers/{id}/" + match.group(2)
    if path.startswith("/query/"):
        return "/query/{name}"
    return "other"


class DrainingError(RuntimeError):
    """The server is draining: no new submissions, 503 the client."""


class QueueFullError(RuntimeError):
    """Admission control rejected a submission: 429 + ``Retry-After``.

    A rejection leaves no server-side state behind, which is what lets
    :class:`~repro.serve.client.ServeClient` retry it on *any* request,
    idempotent or not.
    """

    def __init__(self, message: str, retry_after: float = DEFAULT_RETRY_AFTER):
        super().__init__(message)
        self.retry_after = retry_after


class SweepService:
    """The service state: one store, one memo, one job queue.

    Handlers delegate here; the class is HTTP-free so tests (and other
    frontends) can drive it directly.  Sweeps are jobs on a bounded
    worker pool -- ``job_workers`` of them run concurrently while every
    read endpoint stays lock-free under the threading server.
    """

    def __init__(
        self,
        store: ResultStoreBase | str | os.PathLike | None = None,
        workers: int = 1,
        vectorize: bool = True,
        job_workers: int = 2,
        lease_ttl: float = DEFAULT_LEASE_TTL,
        heartbeat_ttl: float = DEFAULT_HEARTBEAT_TTL,
        journal: JobJournal | str | os.PathLike | None = None,
        max_queue_depth: int | None = None,
        job_retention: int | None = None,
        job_ttl: float | None = None,
        record_cache: int | None = DEFAULT_RECORD_CACHE,
    ):
        self.store = open_store(store) if store is not None else None
        self.workers = workers
        self.vectorize = vectorize
        self.sweeps_served = 0
        if max_queue_depth is not None and max_queue_depth < 1:
            raise ValueError("max queue depth must be >= 1")
        self.max_queue_depth = max_queue_depth
        self.job_retention = job_retention
        self.job_ttl = job_ttl
        self.jobs = JobManager(self._run_sweep_job, pool_size=job_workers)
        self.fleet = Fleet(lease_ttl=lease_ttl, heartbeat_ttl=heartbeat_ttl)
        # Serializes every *direct* write to the shared store (ingest
        # appends, staged-job merges).  JSONL needs it -- interleaved
        # appends tear lines and a merge rewrites the file wholesale --
        # and holding SQLite to the same rule keeps one invariant.
        # Sweep jobs never take it: SQLite jobs go through the upsert,
        # JSONL jobs write to private staging stores.
        self._store_lock = threading.Lock()
        # Bounded LRU for records/pages (``record_cache`` entries; 0 or
        # None disables), synced against the store's change token.
        self.record_cache = (
            RecordCache(record_cache) if record_cache else None
        )
        self._stats_cache: tuple | None = None  # (change token, store stats)
        self._draining = False
        self._closed = False
        self._ready = False  # flips true once recovery replay finishes
        self.rejected_jobs = 0
        self.evicted_jobs = 0
        self.recovery_info: dict | None = None
        if journal is None:
            self.journal: JobJournal | None = None
        elif isinstance(journal, JobJournal):
            self.journal = journal
        else:
            self.journal = JobJournal(journal)
        if self.journal is not None:
            self.recovery_info = self._recover()
        self._ready = True
        # Keyed registration: a test suite constructing many services
        # replaces the previous one's collector instead of leaking a
        # closure over every dead service.
        _METRICS.add_collector(self._collect_metrics, key="service")

    def health(self) -> dict:
        return {
            "status": "ok",
            "eval_version": EVAL_VERSION,
            "sweeps_served": self.sweeps_served,
        }

    def readiness(self) -> dict:
        """The ``GET /readyz`` body: can this server accept work *now*?

        Distinct from liveness (``/healthz``): a server mid-recovery or
        draining is alive but not ready, and load balancers or scripts
        waiting to submit should hold off (503) until it is.
        """
        if not self._ready:
            reason = "starting: journal recovery in progress"
        elif self._closed:
            reason = "closed"
        elif self._draining:
            reason = "draining"
        else:
            reason = None
        return {
            "ready": reason is None,
            **({"reason": reason} if reason else {}),
        }

    def _collect_metrics(self, registry) -> None:
        """The scrape-time collector: state cheaper to read than track.

        Runs under the registry's ``key="service"`` slot on every
        render/snapshot; gauges overwrite, so stale values never
        accumulate.  Liveness expiry runs as a side effect of
        ``fleet.stats()`` -- the same lazy sweep every fleet entry
        point performs.
        """
        jobs = registry.gauge(
            "repro_jobs", "Jobs in the table, by state.", labelnames=("state",)
        )
        for state, count in self.jobs.counts().items():
            if state != "total":
                jobs.set(count, state=state)
        fleet_stats = self.fleet.stats()
        workers = registry.gauge(
            "repro_fleet_workers",
            "Fleet workers, registered and heartbeat-alive.",
            labelnames=("state",),
        )
        workers.set(fleet_stats["workers"]["registered"], state="registered")
        workers.set(fleet_stats["workers"]["alive"], state="alive")
        chunks = registry.gauge(
            "repro_fleet_chunks",
            "Chunks of active fleet jobs, by lease state.",
            labelnames=("state",),
        )
        for state, count in fleet_stats["chunks"].items():
            if state != "total":
                chunks.set(count, state=state)
        if self.record_cache is not None:
            registry.gauge(
                "repro_record_cache_records",
                "Records held by the bounded record/page cache.",
            ).set(self.record_cache.stats().get("records", 0))
        registry.gauge(
            "repro_draining", "1 while the server is draining, else 0."
        ).set(1 if self._draining else 0)

    # -- crash recovery -------------------------------------------------
    def _recover(self) -> dict:
        """Replay the journal: rebuild the job table a dead server lost.

        Runs once, from ``__init__``, before the server accepts a
        single request.  Queued jobs re-enqueue in their original
        priority-FIFO order (the journal's ``seq`` is submission order
        and rows come back pre-sorted); running jobs merge their staged
        prefix first and then re-enqueue -- the store warm path
        resolves every already-evaluated hash, so recovered work is
        never recomputed; fleet jobs rebuild their lease tables with
        previously-leased chunks requeued; staging files without a
        running owner are swept as orphans.
        """
        journal = self.journal
        marker = journal.consume_clean_shutdown()
        rows = journal.jobs()
        info = {
            "prior_shutdown": (
                marker.get("mode") if marker else ("crash" if rows else None)
            ),
            "recovered_queued": 0,
            "recovered_running": 0,
            "recovered_fleet": 0,
            "recovered_terminal": 0,
            "requeued_chunks": 0,
            "cancelled_on_recovery": 0,
            "staging_merged": 0,
            "staging_merged_records": 0,
            "staging_orphans_deleted": 0,
        }
        running_sweeps = {
            row["id"]
            for row in rows
            if row["kind"] == "sweep" and row["state"] == RUNNING
        }
        if self.store is not None:
            self._sweep_staging(running_sweeps, info)
        for row in rows:  # already in (priority, seq) replay order
            if row["kind"] == "fleet":
                self._recover_fleet_job(row, info)
            else:
                self._recover_pool_job(row, info)
        journal.set_recovery_info(info)
        return info

    def _sweep_staging(self, running_sweeps: set, info: dict) -> None:
        """Merge-or-delete per-job staging files a dead server left.

        A staging file whose owner the journal last saw *running* holds
        that job's fully-appended record prefix -- merge it, so the
        warm path skips those points when the job resumes.  Any other
        staging file is an orphan: its owner is terminal (already
        merged), unknown to the journal, or never journaled; deleting
        is the only safe move, and it warns so operators see that data
        was discarded.
        """
        store = self.store
        prefix = f"{store.path.name}.job-"
        for path in sorted(store.path.parent.glob(f"{prefix}*.staging")):
            job_id = path.name[len(prefix) : -len(".staging")]
            if job_id in running_sweeps:
                staging = ResultStore(path)
                records = len(staging.load())
                with self._store_lock:
                    store.merge([staging])
                self.journal.record_merged(job_id, records)
                info["staging_merged"] += 1
                info["staging_merged_records"] += records
            else:
                warnings.warn(
                    f"deleting orphaned staging file {path}: no running "
                    "job in the journal owns it",
                    StoreWarning,
                    stacklevel=2,
                )
                info["staging_orphans_deleted"] += 1
            path.unlink(missing_ok=True)
        if info["staging_merged"]:
            self._invalidate_caches()

    def _recover_pool_job(self, row: dict, info: dict) -> None:
        if not row["spec"]:
            return  # nothing actionable without a spec
        job = Job(
            spec=SweepSpec.from_dict(json.loads(row["spec"])),
            workers=int(row["workers"] or self.workers),
            vectorize=bool(
                self.vectorize if row["vectorize"] is None else row["vectorize"]
            ),
            priority=int(row["priority"]),
            job_id=row["id"],
        )
        job.submitted_at = row["submitted_at"] or job.submitted_at
        job.started_at = row["started_at"]
        if row["state"] in TERMINAL_STATES:
            # Kept for visibility (status polls still answer), subject
            # to the retention policy like any other terminal job.  Its
            # records live in the store; the in-memory record list died
            # with the old process.
            job.state = row["state"]
            job.error = row["error"]
            job.finished_at = row["finished_at"]
            job.journal = self.journal
            self.jobs.register(job)
            info["recovered_terminal"] += 1
            return
        job.journal = self.journal
        if row["cancel_requested"]:
            # The cancel outran the crash; honor it instead of rerunning.
            self.jobs.register(job)
            job.cancel()
            info["cancelled_on_recovery"] += 1
            return
        was_running = row["state"] == RUNNING
        job.started_at = None  # it will start again, on this server
        self.journal.record_submit(job)  # normalize the row back to queued
        self.jobs.submit(job)
        info["recovered_running" if was_running else "recovered_queued"] += 1

    def _recover_fleet_job(self, row: dict, info: dict) -> None:
        job = FleetJob(
            spec=SweepSpec.from_dict(json.loads(row["spec"])),
            chunks=int(row["chunks"] or DEFAULT_FLEET_CHUNKS),
            priority=int(row["priority"]),
            job_id=row["id"],
        )
        job.submitted_at = row["submitted_at"] or job.submitted_at
        if row["state"] in TERMINAL_STATES:
            job.state = row["state"]
            job.error = row["error"]
            job.started_at = row["started_at"]
            job.finished_at = row["finished_at"]
            job.journal = self.journal
            self.jobs.register(job)
            info["recovered_terminal"] += 1
            return
        job.journal = self.journal
        outcome = job.restore_chunks(self.journal.leases(job.id))
        info["requeued_chunks"] += outcome["requeued"]
        self.jobs.register(job)
        if row["cancel_requested"]:
            job.cancel()
            info["cancelled_on_recovery"] += 1
            return
        if not job.done:
            # restore_chunks finishes a fully-acked job itself; anything
            # else goes back on the lease queue for workers to drain.
            job.mark_running()
            job.started_at = row["started_at"] or job.started_at
            self.fleet.add_job(job)
        self.journal.record_submit(job)  # re-snapshot the lease table
        info["recovered_fleet"] += 1

    def _invalidate_caches(self) -> None:
        """Drop cached records/stats after a write this process made."""
        if self.record_cache is not None:
            self.record_cache.clear()
        self._stats_cache = None

    def _store_token(self) -> tuple | None:
        """The store's change token -- the cache-invalidation key.

        ``None`` (no store file yet, or the token read failed) disables
        caching for that call.  SQLite tokens carry ``PRAGMA
        data_version``, JSONL tokens a head/tail content fingerprint,
        so an external same-size upsert inside one coarse mtime tick
        still invalidates -- a bare ``(mtime, size)`` key would not.
        """
        return self.store.change_token()

    def stats(self) -> dict:
        self._evict_terminal()  # /stats is polled: the TTL clock tick
        store_stats = None
        if self.store is not None:
            # Cached like records(): a JSONL store's record count is a
            # full parse, and /stats is the endpoint monitors poll.
            key = self._store_token()
            cached = self._stats_cache
            if key is not None and cached is not None and cached[0] == key:
                store_stats = cached[1]
            else:
                store_stats = self.store.stats()
                if key is not None:
                    self._stats_cache = (key, store_stats)
        journal_stats = None
        if self.journal is not None:
            journal_stats = {
                "path": str(self.journal.path),
                "recovery": self.recovery_info,
            }
        return {
            "eval_version": EVAL_VERSION,
            "sweeps_served": self.sweeps_served,
            "phases": self._job_phase_summary(),
            "memo_records": len(_MEMO),
            "record_cache": (
                self.record_cache.stats()
                if self.record_cache is not None
                else None
            ),
            "store": store_stats,
            "jobs": self.jobs.counts(),
            "fleet": self.fleet.stats(),
            "journal": journal_stats,
            "admission": {
                "draining": self._draining,
                "max_queue_depth": self.max_queue_depth,
                "rejected": self.rejected_jobs,
                "evicted": self.evicted_jobs,
            },
        }

    def _job_phase_summary(self) -> dict:
        """Aggregate job phase timings for ``/stats``: kind -> phase.

        The per-job breakdown lives on ``GET /jobs/{id}`` (``timings``);
        this is the fleet-wide roll-up of the same trace phases, read
        back out of the registry so one instrument feeds both surfaces.
        """
        histograms = _METRICS.snapshot().get("histograms", {})
        summary: dict = {}
        for sample in histograms.get("repro_job_phase_seconds", []):
            labels = sample.get("labels", {})
            by_kind = summary.setdefault(labels.get("kind", "?"), {})
            by_kind[labels.get("phase", "?")] = {
                "seconds": sample.get("sum", 0.0),
                "count": sample.get("count", 0),
            }
        return summary

    def records(self) -> list[dict]:
        """Every current-version record the service can serve.

        Backed by the store when there is one, else by the in-process
        memo -- a storeless server still answers queries over what it
        evaluated this lifetime.  Store reads go through the bounded
        :class:`RecordCache` keyed by the store's change token, so
        back-to-back queries over an unchanged store that fits the
        cache parse it once; any write -- a job, an ingest, an
        external process -- moves the token and invalidates.  Stores
        past the cache capacity are re-read per call: at that size
        clients should page (``GET /records?after=&limit=``).
        """
        if self.store is None:
            # Snapshot first: concurrent job threads append to the
            # memo while we filter.
            memo = list(_MEMO.values())
            return [r for r in memo if r.get("version") == EVAL_VERSION]
        cache = self.record_cache
        key = self._store_token() if cache is not None else None
        if cache is not None:
            cache.sync(key)
            if key is not None:
                snapshot = cache.snapshot()
                if snapshot is not None:
                    return snapshot
        # iter_records pushes the version filter into the backend
        # (SQLite: ``WHERE version = ?``) instead of post-filtering a
        # full load() in Python.
        records = sorted(
            self.store.iter_records(version=EVAL_VERSION),
            key=lambda record: record["hash"],
        )
        if cache is not None and key is not None:
            cache.fill(records)
        return records

    def record_page_stream(
        self, after: str | None = None, limit: int | None = None
    ) -> Iterator[dict]:
        """One keyset page of current-version records, then a terminal
        ``{"count": n, "next": cursor}`` object.

        ``next`` is the cursor for the following page, or ``None``
        when this page already reached the end of the store.  Pages
        stream straight off the backend's ``iter_page`` -- the server
        never materializes more than one page -- and are written
        through the record cache, so concurrent clients paging the
        same unchanged store are served from memory.
        """
        limit = DEFAULT_PAGE_LIMIT if limit is None else limit
        if limit < 1:
            raise ValueError("limit must be >= 1")
        if self.store is None:
            memo = [
                record
                for record in list(_MEMO.values())
                if record.get("version") == EVAL_VERSION
                and record.get("hash")
            ]
            memo.sort(key=lambda record: record["hash"])
            page = [
                record
                for record in memo
                if after is None or record["hash"] > after
            ][:limit]
            yield from page
            yield self._page_terminal(page, limit)
            return
        cache = self.record_cache
        key = self._store_token() if cache is not None else None
        if cache is not None:
            cache.sync(key)
            if key is not None:
                hit = cache.page(after, limit)
                if hit is not None:
                    page, next_cursor = hit
                    yield from page
                    yield {"count": len(page), "next": next_cursor}
                    return
        page = []
        for record in self.store.iter_page(
            after=after, limit=limit, version=EVAL_VERSION
        ):
            page.append(record)
            yield record
        terminal = self._page_terminal(page, limit)
        if cache is not None and key is not None:
            cache.store_page(after, limit, page, terminal["next"])
        yield terminal

    @staticmethod
    def _page_terminal(page: list[dict], limit: int) -> dict:
        # A short page proves the dump is complete; a full one needs
        # one more (possibly empty) request to prove it.
        next_cursor = page[-1]["hash"] if len(page) == limit else None
        return {"count": len(page), "next": next_cursor}

    def query(self, name: str, params: Mapping | None = None) -> list[dict]:
        return run_query(self.records(), name, params)

    def ingest(self, records: list) -> dict:
        """Append posted records to the store (shard-merge upload path).

        Runs inline -- an upload is a quick append that must not queue
        behind long sweeps -- but is tracked as an ingest job so
        ``/jobs`` and the ``/stats`` counters see every write path.
        """
        trace = Trace("validate")
        if self.store is None:
            raise ValueError("server has no store to ingest records into")
        if not isinstance(records, list) or not all(
            isinstance(r, dict) and r.get("hash") for r in records
        ):
            raise ValueError(
                'ingest wants a JSON list of record objects with "hash" keys'
            )
        job = self.jobs.register(IngestJob(offered=len(records), trace=trace))
        job.mark_running()
        try:
            with self._store_lock:
                appended = self.store.append(records)
        except Exception as error:
            job.finish(FAILED, error=str(error))
            raise
        job.appended = appended
        job.finish(DONE)
        # Invalidate explicitly: our own write is visible to us before
        # any token read, and tokens only protect against *external*
        # writers.
        self._invalidate_caches()
        # Only report what this request did: a total record count would
        # be a full-store parse per uploaded chunk on the JSONL backend
        # (GET /stats serves cached totals).
        return {"appended": appended, "job": job.id}

    # -- the job queue --------------------------------------------------
    def submit(self, payload: Mapping) -> Job:
        """Validate a sweep request and enqueue it as a job.

        The spec parses *before* the job exists, so malformed
        submissions fail as client errors and never occupy the queue.
        Returns the queued :class:`Job` immediately -- the worker pool
        runs it; poll or stream it by id.

        A ``"fleet"`` field (``true`` or ``{"chunks": n}``) routes the
        sweep to the pull-based lease queue instead: the job is
        chunked, marked running immediately, and driven entirely by
        registered workers leasing, evaluating, ingesting, and acking
        its chunks.  Fleet records land in the shared store, so a
        fleet job requires one.
        """
        if self._draining:
            raise DrainingError(
                "server is draining: not accepting new submissions"
            )
        if not isinstance(payload, Mapping):
            raise ValueError('sweep wants a JSON object body: {"spec": ...}')
        # The trace opens before parsing: validation time is the first
        # phase of every accepted job (rejected specs never make a job,
        # so their trace dies here with the exception).
        trace = Trace("validate")
        spec = SweepSpec.from_dict(payload.get("spec") or {})
        workers = payload.get("workers")
        workers = self.workers if workers is None else int(workers)
        if workers < 1:
            raise ValueError("workers must be >= 1")
        vectorize = payload.get("vectorize")
        if vectorize is None:
            vectorize = self.vectorize
        priority = payload.get("priority")
        priority = DEFAULT_PRIORITY if priority is None else int(priority)
        self._evict_terminal()
        fleet = payload.get("fleet")
        if fleet:
            job = self._submit_fleet(spec, fleet, priority, trace)
        else:
            # Fleet jobs are exempt from the queue-depth bound: they
            # never occupy the pool queue (workers pull their chunks).
            if self.max_queue_depth is not None:
                queued = sum(
                    1 for j in self.jobs.jobs() if j.state == QUEUED
                )
                if queued >= self.max_queue_depth:
                    self.rejected_jobs += 1
                    raise QueueFullError(
                        f"job queue is full ({queued} queued, bound "
                        f"{self.max_queue_depth}); retry later"
                    )
            job = Job(
                spec=spec,
                workers=workers,
                vectorize=bool(vectorize),
                priority=priority,
                trace=trace,
            )
            # Journal before the id is visible: a submission the client
            # heard about always survives a crash.  A journal write
            # failure here fails the submission (503), not the journal.
            if self.journal is not None:
                job.journal = self.journal
                self.journal.record_submit(job)
            self.jobs.submit(job)
        self.sweeps_served += 1
        _LOG.info(
            "accepted %s job %s (%d points, priority %d)",
            job.kind, job.id, len(spec), priority,
            extra={"job": job.id, "trace": job.trace.trace_id},
        )
        return job

    def _submit_fleet(
        self, spec: SweepSpec, fleet, priority: int, trace: Trace | None = None
    ) -> Job:
        """Register a fleet job on the lease queue (workers drive it)."""
        if self.store is None:
            raise ValueError(
                "fleet sweeps need a store: workers stream records back "
                "through /records ingest"
            )
        if len(spec) == 0:
            raise ValueError("empty sweep")
        chunks = None
        if isinstance(fleet, Mapping):
            chunks = fleet.get("chunks")
        elif fleet is not True:
            raise ValueError('"fleet" must be true or {"chunks": n}')
        if chunks is None:
            chunks = max(1, min(len(spec), DEFAULT_FLEET_CHUNKS))
        chunks = int(chunks)
        if chunks < 1:
            raise ValueError("fleet chunks must be >= 1")
        job = FleetJob(spec=spec, chunks=chunks, priority=priority, trace=trace)
        if self.journal is not None:
            job.journal = self.journal
            self.journal.record_submit(job)
        # Registered, not pool-submitted: the job occupies no worker
        # thread and is "running" from the moment it is leasable.
        self.jobs.register(job)
        job.mark_running()
        self.fleet.add_job(job)
        return job

    # -- the worker fleet ----------------------------------------------
    def worker_register(self, payload) -> dict:
        if not isinstance(payload, Mapping):
            raise ValueError(
                'register wants a JSON object body: {"name"?, "capacity"?}'
            )
        return self.fleet.register(
            name=payload.get("name"), capacity=payload.get("capacity", 1)
        )

    def worker_ack(self, worker_id: str, payload) -> dict:
        if not isinstance(payload, Mapping) or not {"job", "chunk"} <= set(
            payload
        ):
            raise ValueError('ack wants {"job": id, "chunk": index}')
        error = payload.get("error")
        timings = payload.get("timings")
        outcome = self.fleet.ack(
            worker_id,
            str(payload["job"]),
            int(payload["chunk"]),
            error=None if error is None else str(error),
            timings=timings if isinstance(timings, Mapping) else None,
        )
        # Worker ingests already invalidated the records cache; the ack
        # only moves job/fleet counters, which are never cached.
        return outcome

    def job(self, job_id: str) -> Job | None:
        return self.jobs.get(job_id)

    def job_status(self, job: Job) -> dict:
        """One job's status body, including its frontier-so-far."""
        status = job.status()
        if job.kind == "sweep":
            status["frontier"] = pareto_frontier(job.snapshot_records())
        return status

    def cancel(self, job: Job) -> dict:
        """Request cancellation; reports the state the request found."""
        state = job.cancel()
        return {"job": job.id, "state": state, "cancel_requested": True}

    def _staging_store(self, job: Job) -> ResultStore:
        """The private JSONL store a staged job appends into."""
        path = self.store.path
        return ResultStore(path.with_name(f"{path.name}.job-{job.id}.staging"))

    def _run_sweep_job(self, job: Job) -> None:
        """Execute one sweep job on a pool worker thread.

        SQLite-backed jobs write straight to the shared store (the
        conditional upsert makes concurrent appenders safe); JSONL jobs
        stage privately and merge under the store lock when they stop,
        whatever the reason -- completed records are always kept, the
        way an interrupted local run keeps its partials.
        """
        staging: ResultStore | None = None
        store: ResultStoreBase | None = self.store
        if store is not None and store.backend == "jsonl":
            staging = self._staging_store(job)
            store = StagedWrites(store, staging)
        error: str | None = None
        try:
            for sweep_record in iter_sweep(
                job.spec,
                store=store,
                workers=job.workers,
                vectorize=job.vectorize,
                should_cancel=job.cancel_requested,
            ):
                job.append(sweep_record.record, sweep_record.source)
        except Exception as failure:  # noqa: BLE001 - job boundary
            error = str(failure)
        finally:
            if staging is not None and staging.exists():
                job.mark_phase("stage-merge")
                merged = len(staging.load())
                with self._store_lock:
                    self.store.merge([staging])
                staging.path.unlink(missing_ok=True)
                if self.journal is not None and merged:
                    self.journal.record_merged(job.id, merged)
            self._invalidate_caches()
        if error is not None:
            job.finish(FAILED, error=error)
        elif job.cancel_requested():
            job.finish(CANCELLED)
        else:
            job.finish(DONE)

    def job_summary(self, job: Job) -> dict:
        """The tier summary of a job's (possibly partial) record set.

        Tier counts default to 0 for job kinds that do not track them
        (fleet jobs resolve tiers worker-side; their records live in
        the store, not on the job).
        """
        progress = job.progress()
        return summary_payload(
            points=progress.get("points", 0),
            evaluated=progress.get("evaluated", 0),
            store_hits=progress.get("store_hits", 0),
            memo_hits=progress.get("memo_hits", 0),
        )

    def job_record_stream(
        self, job: Job, after: int = 0
    ) -> Iterator[dict | None]:
        """The ``GET /jobs/{id}/records`` NDJSON stream.

        Records from index ``after`` in completion order (live while
        the job runs; ``None`` keepalive ticks let the transport probe
        the socket), then exactly one terminal line so a client can
        tell completion from a torn connection.
        """
        if after < 0:
            raise ValueError("after must be >= 0")
        yield from job.stream(after=after)
        if job.state == DONE:
            yield {"summary": self.job_summary(job)}
        elif job.state == FAILED:
            yield {"error": job.error or "job failed"}
        else:
            yield {"cancelled": True, "summary": self.job_summary(job)}

    # -- retention ------------------------------------------------------
    def _evict_terminal(self) -> int:
        """Apply the retention policy: drop old terminal jobs everywhere.

        Two independent bounds -- keep at most ``job_retention``
        terminal jobs (oldest-finished evicted first) and none finished
        more than ``job_ttl`` seconds ago -- applied to memory, the
        fleet's job map, and the journal together, so a week-long
        server's job table (and its journal file) stays bounded.
        """
        if self.job_retention is None and self.job_ttl is None:
            return 0
        now = time.time()
        terminal = sorted(
            (job for job in self.jobs.jobs() if job.done),
            key=lambda job: job.finished_at or now,
        )
        victims: list[str] = []
        if self.job_ttl is not None:
            cutoff = now - self.job_ttl
            victims.extend(
                job.id for job in terminal if (job.finished_at or now) < cutoff
            )
        if self.job_retention is not None:
            excess = len(terminal) - self.job_retention
            if excess > 0:
                victims.extend(job.id for job in terminal[:excess])
        if not victims:
            return 0
        ids = list(dict.fromkeys(victims))
        removed = self.jobs.remove(ids)
        self.fleet.remove_jobs(ids)
        if self.journal is not None:
            self.journal.evict(ids)
        self.evicted_jobs += removed
        return removed

    # -- shutdown -------------------------------------------------------
    def drain(self, timeout: float = DEFAULT_DRAIN_TIMEOUT) -> dict:
        """Graceful shutdown: stop admission, let running jobs finish.

        New submissions 503 the moment draining starts; jobs already
        accepted get up to ``timeout`` seconds to reach a terminal
        state (fleet jobs included -- workers keep leasing, ingesting,
        and acking throughout).  Stragglers past the deadline are
        cancelled by :meth:`close`, whose journal suspension keeps
        their resumable states on disk for the next server.
        """
        self._draining = True
        deadline = time.monotonic() + max(0.0, timeout)
        live = [job for job in self.jobs.jobs() if not job.done]
        for job in live:
            job.wait(timeout=max(0.0, deadline - time.monotonic()))
        finished = sum(1 for job in live if job.done)
        _LOG.info(
            "drain finished: %d jobs done, %d cancelled",
            finished, len(live) - finished,
        )
        self.close(mode="drain")
        return {
            "drained": finished,
            "cancelled": len(live) - finished,
        }

    def close(self, mode: str = "fast") -> None:
        """Stop the job pool (cancelling live jobs) -- shutdown path.

        With a journal: write the clean-shutdown marker (``mode`` says
        which path), then *suspend* journaling before cancelling live
        jobs -- so a fast shutdown's cancels do not overwrite the
        resumable ``queued``/``running`` states the next server's
        recovery will replay.  Idempotent: drain-then-serve-exit calls
        it twice.
        """
        if self._closed:
            return
        self._closed = True
        if self.journal is not None:
            self.journal.mark_clean_shutdown(mode)
            self.journal.suspend()
        self.jobs.close(cancel=True)
        if self.journal is not None:
            self.journal.close()


class _Handler(BaseHTTPRequestHandler):
    """Route HTTP requests onto the :class:`SweepService`."""

    server_version = "repro-serve/2.0"
    # HTTP/1.0: streamed responses are close-delimited, no chunked
    # framing needed, and every stdlib client reads them naturally.
    protocol_version = "HTTP/1.0"

    def setup(self) -> None:
        # Socket timeout (reads AND writes), configurable per server
        # (``repro serve --client-timeout``): a client that stops
        # reading mid-stream with a full TCP window must error out and
        # free this handler thread instead of pinning it for good.
        self.timeout = getattr(
            self.server, "client_timeout", DEFAULT_CLIENT_TIMEOUT
        )
        super().setup()

    @property
    def service(self) -> SweepService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if getattr(self.server, "verbose", False):  # pragma: no cover
            super().log_message(format, *args)

    # -- instrumentation ------------------------------------------------
    def send_response(self, code, message=None):  # noqa: A002
        self._obs_status = code
        super().send_response(code, message)

    def _instrumented(self, method: str, handler) -> None:
        """Count and time one request against the endpoint's template.

        The status label records what :meth:`send_response` last sent
        (``0`` if the handler died before any status line), so errors
        and 4xx/5xx rates fall out of the same counter.
        """
        self._obs_status = 0
        started = time.monotonic()
        try:
            handler()
        finally:
            endpoint = _endpoint_label(urlsplit(self.path).path)
            _HTTP_SECONDS.observe(
                time.monotonic() - started, endpoint=endpoint, method=method
            )
            _HTTP_REQUESTS.inc(
                endpoint=endpoint,
                method=method,
                status=str(self._obs_status),
            )

    # -- response helpers ----------------------------------------------
    def _send_json(
        self, payload, status: int = 200, headers: Mapping | None = None
    ) -> None:
        body = (dumps(payload) + "\n").encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, str(value))
        self.end_headers()
        self.wfile.write(body)

    def _send_ndjson(self, items) -> None:
        """Stream dicts as NDJSON, one flushed line per item.

        Streams are close-delimited (HTTP/1.0), so every streamed
        endpoint ends with a terminal object (``summary``/``error``/
        ``cancelled`` for job streams, ``count`` for /records) that
        clients require -- a truncated connection is then
        distinguishable from a complete response.  A ``None`` item is
        a keepalive: a blank line (NDJSON readers skip it) whose write
        detects a vanished client while the stream is otherwise idle.
        """
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.end_headers()
        try:
            for item in items:
                if item is None:
                    self.wfile.write(b"\n")
                else:
                    self.wfile.write(
                        (json.dumps(item, sort_keys=True) + "\n").encode()
                    )
                self.wfile.flush()
        except Exception as error:  # noqa: BLE001 - headers are gone
            # Mid-stream failure of any kind (store I/O, a dead socket,
            # database lock): the status line is sent, so signal
            # in-band; clients treat an "error" object as fatal.
            try:
                self.wfile.write(
                    (json.dumps({"error": str(error)}) + "\n").encode()
                )
            except OSError:  # pragma: no cover - client went away too
                pass
        finally:
            # Deterministically close an abandoned stream generator so
            # anything it holds open is released now, not at GC time.
            close = getattr(items, "close", None)
            if close is not None:
                close()

    def _read_json(self):
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise ValueError(f"request body over {MAX_BODY_BYTES} bytes")
        body = self.rfile.read(length) if length > 0 else b""
        if not body:
            return {}
        data = json.loads(body)
        if not isinstance(data, (dict, list)):
            raise ValueError("request body must be a JSON object or list")
        return data

    def _job_or_404(self, job_id: str):
        job = self.service.job(job_id)
        if job is None:
            self._send_json(
                {"error": f"no such job: {job_id}"}, status=404
            )
        return job

    def _send_metrics(self) -> None:
        body = _METRICS.render().encode()
        self.send_response(200)
        self.send_header(
            "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
        )
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    # -- routes --------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        self._instrumented("GET", self._handle_get)

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        self._instrumented("POST", self._handle_post)

    def _handle_get(self) -> None:
        parts = urlsplit(self.path)
        path = parts.path
        try:
            if path == "/healthz":
                self._send_json(self.service.health())
            elif path == "/readyz":
                readiness = self.service.readiness()
                self._send_json(
                    readiness, status=200 if readiness["ready"] else 503
                )
            elif path == "/metrics":
                self._send_metrics()
            elif path == "/stats":
                self._send_json(self.service.stats())
            elif path == "/records":
                after, limit = self._page_params(parts.query)
                if after is None and limit is None:
                    # Legacy full dump: every record, ``count`` terminal.
                    records = self.service.records()
                    terminal: list[dict] = [{"count": len(records)}]
                    self._send_ndjson(iter(records + terminal))
                else:
                    # Materialize the one bounded page before sending
                    # headers: store failures become clean 400/503
                    # statuses, and the server never holds more than
                    # ``limit`` records.
                    page = list(
                        self.service.record_page_stream(
                            after=after, limit=limit
                        )
                    )
                    self._send_ndjson(iter(page))
            elif path == "/jobs":
                self._send_json(
                    {"jobs": [job.status() for job in self.service.jobs.jobs()]}
                )
            elif path == "/workers":
                self._send_json({"workers": self.service.fleet.workers()})
            elif match := _JOB_PATH.match(path):
                job_id, tail = match.groups()
                job = self._job_or_404(job_id)
                if job is None:
                    return
                if tail == "/records":
                    after = self._after_param(parts.query)
                    self._send_ndjson(
                        self.service.job_record_stream(job, after=after)
                    )
                elif tail is None:
                    self._send_json(self.service.job_status(job))
                else:  # GET on /cancel
                    self._not_found(path)
            elif path == "/":
                self._send_json({"endpoints": sorted(_ENDPOINTS)})
            else:
                self._not_found(path)
        except BrokenPipeError:  # pragma: no cover - client went away
            pass
        except (KeyError, TypeError, ValueError) as error:
            # Same mapping as do_POST: e.g. a store backend forced onto
            # the wrong file raises ValueError from the read path too.
            self._send_json({"error": str(error)}, status=400)
        except OSError as error:
            # Store I/O failure (e.g. SQLite locked past its timeout):
            # transient server-side trouble, not a bad request.
            self._send_json({"error": str(error)}, status=503)

    def _after_param(self, query: str) -> int:
        values = parse_qs(query).get("after", ["0"])
        after = int(values[-1])
        if after < 0:
            raise ValueError("after must be >= 0")
        return after

    def _page_params(self, query: str) -> tuple[str | None, int | None]:
        """``/records`` pagination params, validated before streaming
        starts so bad requests still get a clean 400 status line."""
        params = parse_qs(query)
        after_values = params.get("after")
        after = after_values[-1] if after_values else None
        limit = None
        limit_values = params.get("limit")
        if limit_values:
            limit = int(limit_values[-1])  # ValueError -> 400
            if limit < 1:
                raise ValueError("limit must be >= 1")
        return after, limit

    def _handle_post(self) -> None:
        path = urlsplit(self.path).path
        try:
            if path == "/sweep":
                job = self.service.submit(self._read_json())
                self._send_json(job.status(), status=202)
            elif match := _JOB_PATH.match(path):
                job_id, tail = match.groups()
                if tail != "/cancel":
                    self._not_found(path)
                    return
                job = self._job_or_404(job_id)
                if job is not None:
                    self._send_json(self.service.cancel(job))
            elif path == "/records":
                data = self._read_json()
                if isinstance(data, dict):
                    data = data.get("records")
                self._send_json(self.service.ingest(data))
            elif path == "/workers/register":
                self._send_json(
                    self.service.worker_register(self._read_json())
                )
            elif match := _WORKER_PATH.match(path):
                worker_id, action = match.groups()
                # Unknown worker/job ids answer 404 here, not the
                # generic KeyError->400 below: a worker uses the 404 as
                # its re-register cue after a server restart.
                try:
                    if action == "heartbeat":
                        body = self._read_json()
                        metrics = (
                            body.get("metrics")
                            if isinstance(body, Mapping)
                            else None
                        )
                        response = self.service.fleet.heartbeat(
                            worker_id, metrics=metrics
                        )
                    elif action == "lease":
                        response = self.service.fleet.lease(worker_id)
                    else:
                        response = self.service.worker_ack(
                            worker_id, self._read_json()
                        )
                except KeyError as missing:
                    self._send_json({"error": str(missing)}, status=404)
                else:
                    self._send_json(response)
            elif path.startswith("/query/"):
                name = path[len("/query/") :]
                params = self._read_json()
                self._send_json(
                    records_payload(self.service.query(name, params))
                )
            elif path == "/shutdown":
                query = parse_qs(urlsplit(self.path).query)
                drain = query.get("drain", ["false"])[-1].lower() in (
                    "1",
                    "true",
                    "yes",
                )
                if drain:
                    # Flip admission off before the response leaves, so
                    # "draining" in the reply is already true.
                    self.service._draining = True
                    self._send_json({"status": "draining"})
                    threading.Thread(
                        target=self._drain_then_shutdown, daemon=True
                    ).start()
                else:
                    self._send_json({"status": "shutting down"})
                    threading.Thread(
                        target=self.server.shutdown, daemon=True
                    ).start()
            else:
                self._not_found(path)
        except BrokenPipeError:  # pragma: no cover - client went away
            pass
        except QueueFullError as error:
            self._send_json(
                {"error": str(error), "retry_after": error.retry_after},
                status=429,
                headers={"Retry-After": f"{error.retry_after:g}"},
            )
        except DrainingError as error:
            self._send_json({"error": str(error)}, status=503)
        except (KeyError, TypeError, ValueError) as error:
            self._send_json({"error": str(error)}, status=400)
        except OSError as error:
            self._send_json({"error": str(error)}, status=503)

    def _drain_then_shutdown(self) -> None:
        self.service.drain(
            timeout=getattr(self.server, "drain_timeout", DEFAULT_DRAIN_TIMEOUT)
        )
        self.server.shutdown()

    def _not_found(self, path: str) -> None:
        self._send_json(
            {"error": f"no such endpoint: {path}", "endpoints": sorted(_ENDPOINTS)},
            status=404,
        )


_ENDPOINTS = (
    "GET /healthz",
    "GET /readyz",
    "GET /metrics",
    "GET /stats",
    "GET /records",
    "GET /records?after={hash}&limit={n}",
    "GET /jobs",
    "GET /jobs/{id}",
    "GET /jobs/{id}/records",
    "GET /workers",
    "POST /sweep",
    "POST /jobs/{id}/cancel",
    "POST /records",
    "POST /workers/register",
    "POST /workers/{id}/heartbeat",
    "POST /workers/{id}/lease",
    "POST /workers/{id}/ack",
    "POST /query/pareto",
    "POST /query/top-k",
    "POST /query/accuracy-frontier",
    "POST /shutdown",
)


class SweepServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`SweepService`.

    ``port=0`` binds an ephemeral port; read :attr:`url` for the real
    address.  Handler threads are daemonic so a hard exit never hangs
    on a slow client.  ``client_timeout`` bounds every handler socket
    operation (``repro serve --client-timeout``).
    """

    daemon_threads = True

    def __init__(
        self,
        service: SweepService,
        host: str = "127.0.0.1",
        port: int = 0,
        verbose: bool = False,
        client_timeout: float = DEFAULT_CLIENT_TIMEOUT,
        drain_timeout: float = DEFAULT_DRAIN_TIMEOUT,
    ):
        self.service = service
        self.verbose = verbose
        self.client_timeout = client_timeout
        self.drain_timeout = drain_timeout
        super().__init__((host, port), _Handler)

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


def _announce_stdout(message: str) -> None:
    # flush=True: the announce line must reach a redirected log while
    # serve_forever still blocks (CI polls the log for the bound URL).
    print(message, flush=True)


def serve(
    store: ResultStoreBase | str | os.PathLike | None = None,
    host: str = "127.0.0.1",
    port: int = 0,
    workers: int = 1,
    vectorize: bool = True,
    job_workers: int = 2,
    client_timeout: float = DEFAULT_CLIENT_TIMEOUT,
    lease_ttl: float = DEFAULT_LEASE_TTL,
    heartbeat_ttl: float = DEFAULT_HEARTBEAT_TTL,
    journal: JobJournal | str | os.PathLike | bool | None = None,
    drain_timeout: float = DEFAULT_DRAIN_TIMEOUT,
    max_queue_depth: int | None = None,
    job_retention: int | None = DEFAULT_JOB_RETENTION,
    job_ttl: float | None = None,
    record_cache: int | None = DEFAULT_RECORD_CACHE,
    verbose: bool = False,
    announce=_announce_stdout,
    ready=None,
) -> int:
    """Blocking entry point behind ``repro serve``.

    Announces the bound URL (ephemeral ports resolve before serving),
    then serves until ``POST /shutdown``, SIGTERM, or Ctrl-C; returns 0
    on a clean shutdown.  The fast path (plain ``/shutdown``, Ctrl-C)
    cancels live jobs at their next record boundary; SIGTERM and
    ``/shutdown?drain=true`` drain instead -- admission stops, running
    jobs get up to ``drain_timeout`` seconds to finish.

    ``journal`` controls crash safety: ``None`` (the default) colocates
    a journal next to ``store`` when there is one, a path uses that
    path, and ``False`` disables journaling.  On startup an existing
    journal is replayed -- queued and running jobs resume, fleet lease
    tables rebuild -- so a SIGKILLed server restarted against the same
    store + journal completes every accepted sweep without recomputing
    recovered work.

    ``lease_ttl`` and ``heartbeat_ttl`` tune the worker fleet's failure
    detection; ``max_queue_depth`` bounds accepted-but-unstarted jobs
    (beyond it submissions 429 with ``Retry-After``); ``job_retention``
    / ``job_ttl`` evict old terminal jobs from memory and journal;
    ``record_cache`` bounds the in-memory record/page cache in records
    (``repro serve --record-cache``, 0 disables).
    ``ready``, when given, receives the :class:`SweepServer` right
    before the loop starts -- the hook tests and embedders use to reach
    the live server object.
    """
    if journal is False:
        journal = None
    elif journal is None and store is not None:
        journal = default_journal_path(
            store.path if isinstance(store, ResultStoreBase) else store
        )
    elif journal is True:
        raise ValueError("journal=True needs a store to colocate with")
    service = SweepService(
        store=store,
        workers=workers,
        vectorize=vectorize,
        job_workers=job_workers,
        lease_ttl=lease_ttl,
        heartbeat_ttl=heartbeat_ttl,
        journal=journal,
        max_queue_depth=max_queue_depth,
        job_retention=job_retention or None,
        job_ttl=job_ttl,
        record_cache=record_cache,
    )
    server = SweepServer(
        service,
        host=host,
        port=port,
        verbose=verbose,
        client_timeout=client_timeout,
        drain_timeout=drain_timeout,
    )
    where = (
        f"store: {service.store.backend}:{service.store.path}"
        if service.store is not None
        else "no store: serving from the in-process memo"
    )
    announce(f"serving DSE sweeps on {server.url} ({where})")
    if service.journal is not None:
        recovery = service.recovery_info or {}
        recovered = sum(
            recovery.get(key, 0)
            for key in ("recovered_queued", "recovered_running", "recovered_fleet")
        )
        announce(
            f"journal: {service.journal.path} "
            f"(prior shutdown: {recovery.get('prior_shutdown') or 'none'}, "
            f"recovered {recovered} live jobs, requeued "
            f"{recovery.get('requeued_chunks', 0)} chunks)"
        )

    def _handle_sigterm(signum, frame):  # pragma: no cover - signal path
        announce("SIGTERM: draining before shutdown")
        service._draining = True

        def _drain():
            service.drain(timeout=drain_timeout)
            server.shutdown()

        threading.Thread(target=_drain, daemon=True).start()

    previous_sigterm = None
    in_main_thread = threading.current_thread() is threading.main_thread()
    if in_main_thread:
        # Only the main thread may install signal handlers; embedded
        # servers (tests, dse-launch --fleet) skip this quietly.
        previous_sigterm = signal.signal(signal.SIGTERM, _handle_sigterm)
    if ready is not None:
        ready(server)
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        pass
    finally:
        if in_main_thread:
            signal.signal(signal.SIGTERM, previous_sigterm)
        server.server_close()
        service.close()
    announce("server shut down cleanly")
    return 0
