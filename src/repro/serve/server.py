"""The sweep service: a stdlib-only HTTP server over the DSE engine.

One long-lived process owns a result store and the warm in-process memo;
many clients submit sweeps, stream records, and run server-side
reductions against the shared cache instead of each re-evaluating (or
re-loading) the design space.  The protocol is deliberately plain --
JSON requests, JSON or NDJSON responses, ``http.server`` underneath --
so any HTTP client works; :class:`repro.serve.client.ServeClient` is
the thin reference client.

Endpoints
---------
``GET /healthz``
    Liveness: status, ``EVAL_VERSION``, sweeps served so far.
``GET /stats``
    Store metadata (backend, records, bytes) + memo size.
``GET /records``
    Every current-version record, streamed as NDJSON, ending with a
    ``{"count": n}`` terminal line (truncation detection).
``POST /sweep``
    Body ``{"spec": {...}, "workers"?: n, "vectorize"?: bool}`` where
    ``spec`` is the JSON sweep-spec format (grid or explicit points).
    Streams one NDJSON record per unique config *in completion order*
    (chunked over :func:`~repro.dse.engine.iter_sweep`), then a final
    ``{"summary": {...}}`` line with the tier counts.  Fresh records
    land in the server's store as they stream.
``POST /query/pareto`` / ``POST /query/top-k`` /
``POST /query/accuracy-frontier``
    Server-side reductions over the stored records via
    :func:`~repro.dse.queries.run_query`; the body carries the query's
    parameters plus an optional ``where`` equality filter.
``POST /records``
    Ingest a JSON list of records (e.g. a merged shard store posted by
    ``repro dse-launch --post``).
``POST /shutdown``
    Stop serving after the response -- the clean-exit path.
"""

from __future__ import annotations

import json
import os
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Iterator, Mapping
from urllib.parse import urlsplit

from ..dse.engine import iter_sweep
from ..dse.evaluate import _MEMO, EVAL_VERSION
from ..dse.queries import run_query
from ..dse.spec import SweepSpec
from ..dse.store import ResultStoreBase, open_store
from .serializers import dumps, records_payload, summary_payload

__all__ = ["SweepService", "SweepServer", "serve"]

#: Reject request bodies past this size (a million-point explicit spec
#: is ~300 MB of JSON; nobody submits that in one request by accident).
MAX_BODY_BYTES = 64 * 1024 * 1024


class SweepService:
    """The service state: one store, one memo, one sweep at a time.

    Handlers delegate here; the class is HTTP-free so tests (and other
    frontends) can drive it directly.  Sweeps serialize on a lock --
    records stream to the submitting client while it holds the engine --
    but every read endpoint stays concurrent under the threading server.
    """

    def __init__(
        self,
        store: ResultStoreBase | str | os.PathLike | None = None,
        workers: int = 1,
        vectorize: bool = True,
    ):
        self.store = open_store(store) if store is not None else None
        self.workers = workers
        self.vectorize = vectorize
        self.sweeps_served = 0
        self._sweep_lock = threading.Lock()
        self._records_cache: tuple | None = None  # (stat key, records)
        self._stats_cache: tuple | None = None  # (stat key, store stats)

    def health(self) -> dict:
        return {
            "status": "ok",
            "eval_version": EVAL_VERSION,
            "sweeps_served": self.sweeps_served,
        }

    def _invalidate_caches(self) -> None:
        """Drop cached records/stats after a write this process made."""
        self._records_cache = None
        self._stats_cache = None

    def _stat_key(self) -> tuple | None:
        """The store file's (mtime, size) -- the cache-invalidation key."""
        try:
            stat = self.store.path.stat()
        except OSError:
            return None
        return (stat.st_mtime_ns, stat.st_size)

    def stats(self) -> dict:
        store_stats = None
        if self.store is not None:
            # Cached like records(): a JSONL store's record count is a
            # full parse, and /stats is the endpoint monitors poll.
            key = self._stat_key()
            cached = self._stats_cache
            if key is not None and cached is not None and cached[0] == key:
                store_stats = cached[1]
            else:
                store_stats = self.store.stats()
                if key is not None:
                    self._stats_cache = (key, store_stats)
        return {
            "eval_version": EVAL_VERSION,
            "sweeps_served": self.sweeps_served,
            "memo_records": len(_MEMO),
            "store": store_stats,
        }

    def records(self) -> list[dict]:
        """Every current-version record the service can serve.

        Backed by the store when there is one, else by the in-process
        memo -- a storeless server still answers queries over what it
        evaluated this lifetime.  Store loads are cached against the
        file's (mtime, size), so back-to-back queries over a large
        unchanged store parse it once; any append -- a sweep, an
        ingest, an external writer -- changes the file and invalidates
        naturally.
        """
        if self.store is None:
            # Snapshot first: a concurrent sweep thread appends to the
            # memo while we filter.
            memo = list(_MEMO.values())
            return [r for r in memo if r.get("version") == EVAL_VERSION]
        key = self._stat_key()
        cached = self._records_cache
        if key is not None and cached is not None and cached[0] == key:
            return cached[1]
        records = [
            r
            for r in self.store.load().values()
            if r.get("version") == EVAL_VERSION
        ]
        if key is not None:
            self._records_cache = (key, records)
        return records

    def query(self, name: str, params: Mapping | None = None) -> list[dict]:
        return run_query(self.records(), name, params)

    def ingest(self, records: list) -> dict:
        """Append posted records to the store (shard-merge upload path)."""
        if self.store is None:
            raise ValueError("server has no store to ingest records into")
        if not isinstance(records, list) or not all(
            isinstance(r, dict) and r.get("hash") for r in records
        ):
            raise ValueError(
                'ingest wants a JSON list of record objects with "hash" keys'
            )
        # Under the sweep lock: a concurrent sweep holds an open append
        # handle on the same store, and interleaved JSONL writes (worse,
        # interleaved gzip members) would tear records.  SQLite locks
        # itself, but serializing both backends keeps one rule.
        with self._sweep_lock:
            appended = self.store.append(records)
        # Invalidate explicitly: stat-key invalidation alone can miss a
        # same-size upsert inside one coarse mtime tick.
        self._invalidate_caches()
        # Only report what this request did: a total record count would
        # be a full-store parse per uploaded chunk on the JSONL backend
        # (GET /stats serves cached totals).
        return {"appended": appended}

    def sweep(self, payload: Mapping) -> Iterator[dict]:
        """Validate a sweep request and return its record stream.

        The spec parses *before* the stream starts, so malformed
        submissions fail as client errors instead of torn streams.  The
        generator yields record dicts in completion order and ends with
        one ``{"summary": ...}`` object.
        """
        if not isinstance(payload, Mapping):
            raise ValueError('sweep wants a JSON object body: {"spec": ...}')
        spec = SweepSpec.from_dict(payload.get("spec") or {})
        workers = payload.get("workers")
        workers = self.workers if workers is None else int(workers)
        if workers < 1:
            raise ValueError("workers must be >= 1")
        vectorize = payload.get("vectorize")
        if vectorize is None:
            vectorize = self.vectorize
        return self._stream(spec, workers, bool(vectorize))

    def _stream(
        self, spec: SweepSpec, workers: int, vectorize: bool
    ) -> Iterator[dict]:
        counts = {"memo": 0, "store": 0, "evaluated": 0}
        with self._sweep_lock:
            self.sweeps_served += 1
            try:
                for sweep_record in iter_sweep(
                    spec, store=self.store, workers=workers, vectorize=vectorize
                ):
                    counts[sweep_record.source] += 1
                    yield sweep_record.record
            finally:
                # The sweep appended records; drop the query caches
                # even when mtime/size would not notice.
                self._invalidate_caches()
        yield {
            "summary": summary_payload(
                points=len(spec),
                evaluated=counts["evaluated"],
                store_hits=counts["store"],
                memo_hits=counts["memo"],
            )
        }


class _Handler(BaseHTTPRequestHandler):
    """Route HTTP requests onto the :class:`SweepService`."""

    server_version = "repro-serve/1.0"
    # HTTP/1.0: streamed responses are close-delimited, no chunked
    # framing needed, and every stdlib client reads them naturally.
    protocol_version = "HTTP/1.0"
    # Socket timeout (reads AND writes): a client that stops reading
    # mid-stream with a full TCP window must eventually error out --
    # otherwise a sweep stream suspended in wfile.write() would hold
    # the service's sweep lock forever.
    timeout = 600

    @property
    def service(self) -> SweepService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if getattr(self.server, "verbose", False):  # pragma: no cover
            super().log_message(format, *args)

    # -- response helpers ----------------------------------------------
    def _send_json(self, payload, status: int = 200) -> None:
        body = (dumps(payload) + "\n").encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_ndjson(self, items) -> None:
        """Stream dicts as NDJSON, one flushed line per item.

        Streams are close-delimited (HTTP/1.0), so every streamed
        endpoint ends with a terminal object (``summary`` for /sweep,
        ``count`` for /records) that clients require -- a truncated
        connection is then distinguishable from a complete response.
        """
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.end_headers()
        try:
            for item in items:
                self.wfile.write(
                    (json.dumps(item, sort_keys=True) + "\n").encode()
                )
                self.wfile.flush()
        except Exception as error:  # noqa: BLE001 - headers are gone
            # Mid-stream failure of any kind (evaluation error, store
            # I/O, database lock): the status line is sent, so signal
            # in-band; clients treat an "error" object as fatal.
            try:
                self.wfile.write(
                    (json.dumps({"error": str(error)}) + "\n").encode()
                )
            except OSError:  # pragma: no cover - client went away too
                pass
        finally:
            # Deterministically close an abandoned sweep generator so
            # its `with service._sweep_lock` exits now, not at GC time.
            close = getattr(items, "close", None)
            if close is not None:
                close()

    def _read_json(self):
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise ValueError(f"request body over {MAX_BODY_BYTES} bytes")
        body = self.rfile.read(length) if length > 0 else b""
        if not body:
            return {}
        data = json.loads(body)
        if not isinstance(data, (dict, list)):
            raise ValueError("request body must be a JSON object or list")
        return data

    # -- routes --------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        path = urlsplit(self.path).path
        try:
            if path == "/healthz":
                self._send_json(self.service.health())
            elif path == "/stats":
                self._send_json(self.service.stats())
            elif path == "/records":
                records = self.service.records()
                terminal: list[dict] = [{"count": len(records)}]
                self._send_ndjson(iter(records + terminal))
            elif path == "/":
                self._send_json({"endpoints": sorted(_ENDPOINTS)})
            else:
                self._not_found(path)
        except BrokenPipeError:  # pragma: no cover - client went away
            pass
        except (KeyError, TypeError, ValueError) as error:
            # Same mapping as do_POST: e.g. a store backend forced onto
            # the wrong file raises ValueError from the read path too.
            self._send_json({"error": str(error)}, status=400)
        except OSError as error:
            # Store I/O failure (e.g. SQLite locked past its timeout):
            # transient server-side trouble, not a bad request.
            self._send_json({"error": str(error)}, status=503)

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        path = urlsplit(self.path).path
        try:
            if path == "/sweep":
                self._send_ndjson(self.service.sweep(self._read_json()))
            elif path == "/records":
                data = self._read_json()
                if isinstance(data, dict):
                    data = data.get("records")
                self._send_json(self.service.ingest(data))
            elif path.startswith("/query/"):
                name = path[len("/query/") :]
                params = self._read_json()
                self._send_json(
                    records_payload(self.service.query(name, params))
                )
            elif path == "/shutdown":
                self._send_json({"status": "shutting down"})
                threading.Thread(
                    target=self.server.shutdown, daemon=True
                ).start()
            else:
                self._not_found(path)
        except BrokenPipeError:  # pragma: no cover - client went away
            pass
        except (KeyError, TypeError, ValueError) as error:
            self._send_json({"error": str(error)}, status=400)
        except OSError as error:
            self._send_json({"error": str(error)}, status=503)

    def _not_found(self, path: str) -> None:
        self._send_json(
            {"error": f"no such endpoint: {path}", "endpoints": sorted(_ENDPOINTS)},
            status=404,
        )


_ENDPOINTS = (
    "GET /healthz",
    "GET /stats",
    "GET /records",
    "POST /sweep",
    "POST /records",
    "POST /query/pareto",
    "POST /query/top-k",
    "POST /query/accuracy-frontier",
    "POST /shutdown",
)


class SweepServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`SweepService`.

    ``port=0`` binds an ephemeral port; read :attr:`url` for the real
    address.  Handler threads are daemonic so a hard exit never hangs
    on a slow client.
    """

    daemon_threads = True

    def __init__(
        self,
        service: SweepService,
        host: str = "127.0.0.1",
        port: int = 0,
        verbose: bool = False,
    ):
        self.service = service
        self.verbose = verbose
        super().__init__((host, port), _Handler)

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


def _announce_stdout(message: str) -> None:
    # flush=True: the announce line must reach a redirected log while
    # serve_forever still blocks (CI polls the log for the bound URL).
    print(message, flush=True)


def serve(
    store: ResultStoreBase | str | os.PathLike | None = None,
    host: str = "127.0.0.1",
    port: int = 0,
    workers: int = 1,
    vectorize: bool = True,
    verbose: bool = False,
    announce=_announce_stdout,
    ready=None,
) -> int:
    """Blocking entry point behind ``repro serve``.

    Announces the bound URL (ephemeral ports resolve before serving),
    then serves until ``POST /shutdown`` or Ctrl-C; returns 0 on a
    clean shutdown.  ``ready``, when given, receives the
    :class:`SweepServer` right before the loop starts -- the hook tests
    and embedders use to reach the live server object.
    """
    service = SweepService(store=store, workers=workers, vectorize=vectorize)
    server = SweepServer(service, host=host, port=port, verbose=verbose)
    where = (
        f"store: {service.store.backend}:{service.store.path}"
        if service.store is not None
        else "no store: serving from the in-process memo"
    )
    announce(f"serving DSE sweeps on {server.url} ({where})")
    if ready is not None:
        ready(server)
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        pass
    finally:
        server.server_close()
    announce("server shut down cleanly")
    return 0
