"""The sweep service's job queue: submitted work as first-class state.

``POST /sweep`` used to hold the HTTP connection (and a global lock)
for the whole sweep -- one slow co-design grid head-of-line blocked
every other client.  This module is the replacement architecture: a
submission validates, becomes a :class:`Job`, and returns immediately;
a bounded pool of worker threads leases jobs off a priority queue
(FIFO within each priority level) and runs them against the shared
engine; clients poll or stream a job by id and can cancel it
cooperatively at any record boundary.

The state machine is deliberately small::

    queued ──▶ running ──▶ done
       │           ├─────▶ failed
       └───────────┴─────▶ cancelled

``queued -> cancelled`` is the only shortcut (cancelling a job the
pool never started).  Terminal states are final.

Concurrent jobs must not interleave half-written records into the
shared store.  SQLite stores are safe to write directly -- the
conditional upsert resolves conflicts row-by-row and SQLite serializes
writers itself -- but JSONL appends from two threads can tear lines,
so JSONL-backed jobs write into a private *staging* store
(:class:`StagedWrites`) that is merged into the shared store exactly
once, when the job leaves the running state (done, failed, or
cancelled alike: completed records are kept, like a crashed local run
keeps its partials).

Not every job runs on the pool.  Externally-driven jobs -- ingests
completed inline by the handler, and fleet jobs whose chunks are
evaluated by remote pull workers (:mod:`~repro.serve.fleet`) -- are
:meth:`JobManager.register`-ed and marked running by their owner
instead of submitted, so they are pollable and cancellable by id like
any other job without ever occupying a bounded worker thread.
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
import uuid
from typing import Callable, Iterator

from ..dse.spec import SweepSpec
from ..dse.store import ResultStoreBase
from ..obs.metrics import get_registry
from ..obs.trace import Trace

__all__ = [
    "Job",
    "JobManager",
    "StagedWrites",
    "QUEUED",
    "RUNNING",
    "DONE",
    "FAILED",
    "CANCELLED",
    "TERMINAL_STATES",
    "DEFAULT_PRIORITY",
]

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

#: States a job can never leave.
TERMINAL_STATES = frozenset({DONE, FAILED, CANCELLED})

#: Default submission priority; lower numbers schedule sooner.
DEFAULT_PRIORITY = 10

#: Seconds between keepalive blank lines on an idle record stream --
#: frequent enough that a vanished client is detected (the blank-line
#: write raises) long before a slow job finishes.
STREAM_KEEPALIVE_SECONDS = 1.0


def new_job_id() -> str:
    """A short, URL-safe, collision-improbable job id."""
    return uuid.uuid4().hex[:12]


_METRICS = get_registry()
_JOBS_SUBMITTED = _METRICS.counter(
    "repro_jobs_submitted_total",
    "Jobs accepted into the job table, by kind.",
    ("kind",),
)
_JOBS_FINISHED = _METRICS.counter(
    "repro_jobs_finished_total",
    "Jobs that reached a terminal state, by kind and state.",
    ("kind", "state"),
)
_JOB_PHASE_SECONDS = _METRICS.histogram(
    "repro_job_phase_seconds",
    "Time jobs spend in each traced phase "
    "(validate, queue-wait, evaluate, stage-merge, ingest).",
    ("kind", "phase"),
)


class Job:
    """One unit of submitted work and everything observable about it.

    Thread model: exactly one worker thread mutates the job while it
    runs; any number of handler threads read it (status polls, record
    streams).  All shared mutation happens under one condition
    variable, which also wakes streamers when a record lands or the
    state goes terminal.

    When the service runs with a :class:`~repro.serve.journal.JobJournal`
    it attaches the journal to each accepted job; every state-machine
    edge then journals itself synchronously (after releasing the
    condition, so slow disks never block status polls or streamers).
    """

    kind = "sweep"
    #: The traced phase a job enters when it starts running.
    running_phase = "evaluate"

    def __init__(
        self,
        spec: SweepSpec | None,
        workers: int = 1,
        vectorize: bool = True,
        priority: int = DEFAULT_PRIORITY,
        job_id: str | None = None,
        trace: Trace | None = None,
    ):
        self.id = job_id or new_job_id()
        self.spec = spec
        self.workers = workers
        self.vectorize = vectorize
        self.priority = priority
        self.state = QUEUED
        self.error: str | None = None
        self.records: list[dict] = []  # completed records, completion order
        self.counts = {"memo": 0, "store": 0, "evaluated": 0}
        # Wall timestamps are for display and the journal; every
        # *duration* comes from the trace's monotonic clock so an NTP
        # step mid-job can never produce a negative span.
        self.submitted_at = time.time()
        self.started_at: float | None = None
        self.finished_at: float | None = None
        #: The span trace: the service hands in one opened at
        #: "validate" (accepting the job closes it into queue-wait); a
        #: bare construction (tests, direct JobManager use) starts at
        #: queue-wait directly.
        if trace is None:
            self.trace = Trace("queue-wait")
        else:
            self.trace = trace
            self._observe_phase(trace.mark("queue-wait"))
        self._cancel = threading.Event()
        self._changed = threading.Condition()
        #: Attached by the service when journaling is on; every state
        #: edge below records itself through it.
        self.journal = None
        _JOBS_SUBMITTED.inc(kind=self.kind)

    def _journal_transition(self) -> None:
        journal = self.journal
        if journal is not None:
            journal.record_transition(self)

    def _observe_phase(self, closed: tuple[str, float] | None) -> None:
        if closed is not None:
            phase, seconds = closed
            _JOB_PHASE_SECONDS.observe(seconds, kind=self.kind, phase=phase)

    def mark_phase(self, phase: str) -> None:
        """Enter a named trace phase, observing the one it closes."""
        self._observe_phase(self.trace.mark(phase))

    # -- lifecycle (worker side) ---------------------------------------
    def mark_running(self) -> bool:
        """queued -> running; False when the job was cancelled first."""
        with self._changed:
            if self.state != QUEUED:
                return False
            self.state = RUNNING
            self.started_at = time.time()
            self._changed.notify_all()
        self._observe_phase(self.trace.mark(self.running_phase))
        self._journal_transition()
        return True

    def append(self, record: dict, source: str) -> None:
        """Record one completed point (memo/store/evaluated tier)."""
        with self._changed:
            self.records.append(record)
            self.counts[source] += 1
            self._changed.notify_all()

    def finish(self, state: str, error: str | None = None) -> None:
        """Enter a terminal state (idempotent; the first one sticks)."""
        if state not in TERMINAL_STATES:
            raise ValueError(f"not a terminal job state: {state!r}")
        with self._changed:
            if self.state in TERMINAL_STATES:
                return
            self.state = state
            self.error = error
            self.finished_at = time.time()
            self._changed.notify_all()
        self._observe_phase(self.trace.end())
        _JOBS_FINISHED.inc(kind=self.kind, state=state)
        self._journal_transition()

    # -- cancellation ---------------------------------------------------
    def cancel(self) -> str:
        """Request cooperative cancellation; returns the current state.

        A queued job dies immediately; a running one stops at the next
        record boundary (the engine polls :meth:`cancel_requested`
        between store appends); a terminal job is left untouched.
        """
        self._cancel.set()
        cancelled_queued = False
        with self._changed:
            if self.state == QUEUED:
                self.state = CANCELLED
                self.finished_at = time.time()
                cancelled_queued = True
                self._changed.notify_all()
            state = self.state
        if cancelled_queued:
            self._observe_phase(self.trace.end())
            _JOBS_FINISHED.inc(kind=self.kind, state=CANCELLED)
        # Journal even when only the flag moved: a running job whose
        # cancel was requested but never reached a record boundary must
        # not resurrect as running after a crash-restart.
        self._journal_transition()
        return state

    def cancel_requested(self) -> bool:
        return self._cancel.is_set()

    # -- observation (handler side) ------------------------------------
    @property
    def done(self) -> bool:
        return self.state in TERMINAL_STATES

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the job is terminal; True when it got there."""
        with self._changed:
            return self._changed.wait_for(lambda: self.done, timeout)

    def completed(self) -> int:
        with self._changed:
            return len(self.records)

    def snapshot_records(self, after: int = 0) -> list[dict]:
        """The completed records past index ``after`` (a copy)."""
        with self._changed:
            return list(self.records[after:])

    def stream(
        self, after: int = 0, keepalive: float = STREAM_KEEPALIVE_SECONDS
    ) -> Iterator[dict | None]:
        """Yield completed records from index ``after`` until terminal.

        Blocks between records; yields ``None`` after ``keepalive``
        seconds of silence so a transport can touch its socket (and
        notice a vanished client) while the job is still working.  The
        terminal state is *not* yielded -- the caller reads
        ``job.state`` after the iterator ends, at which point every
        record is guaranteed delivered (records never land after a
        terminal state).
        """
        cursor = max(0, after)
        while True:
            with self._changed:
                self._changed.wait_for(
                    lambda: len(self.records) > cursor or self.done,
                    timeout=keepalive,
                )
                batch = list(self.records[cursor:])
                finished = self.done
            if not batch and not finished:
                yield None  # keepalive tick
                continue
            yield from batch
            cursor += len(batch)
            if finished:
                return

    def progress(self) -> dict:
        """The countable facts: total points and per-tier completions."""
        with self._changed:
            return {
                "points": len(self.spec) if self.spec is not None else 0,
                "completed": len(self.records),
                "evaluated": self.counts["evaluated"],
                "store_hits": self.counts["store"],
                "memo_hits": self.counts["memo"],
            }

    def duration(self) -> float | None:
        """Monotonic seconds from submission to finish (or to now).

        Derived from the trace, never from wall-clock deltas: a clock
        step between ``submitted_at`` and ``finished_at`` cannot bend
        this number.  Jobs recovered from a journal in a *terminal*
        state have no live trace spanning their run; they fall back to
        the journaled wall timestamps, clamped at zero.
        """
        if self.done and not self.trace.complete:
            # A recovered terminal job: its run happened in a previous
            # process, so the only evidence is the journaled wall clock.
            if self.started_at is None or self.finished_at is None:
                return None
            return max(0.0, self.finished_at - self.started_at)
        return self.trace.total_seconds()

    def status(self) -> dict:
        """The ``GET /jobs/{id}`` body (sans frontier, which is derived)."""
        return {
            "job": self.id,
            "kind": self.kind,
            "state": self.state,
            "priority": self.priority,
            "error": self.error,
            "progress": self.progress(),
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "duration": self.duration(),
            "trace": self.trace.trace_id,
            "timings": self.trace.summary(),
        }


class IngestJob(Job):
    """A ``POST /records`` upload, tracked in the same job table.

    Ingests run inline in the handler thread -- they are quick appends
    that must not queue behind long sweeps -- but registering them as
    jobs makes uploads first-class: visible in ``GET /jobs`` and the
    ``/stats`` job counters, with the same terminal states.
    """

    kind = "ingest"
    running_phase = "ingest"

    def __init__(self, offered: int, trace=None):
        super().__init__(spec=None, priority=0, trace=trace)
        self.offered = offered
        self.appended = 0

    def progress(self) -> dict:
        with self._changed:
            return {"offered": self.offered, "appended": self.appended}


class StagedWrites(ResultStoreBase):
    """A store view that reads shared state but stages its appends.

    Handed to :func:`~repro.dse.engine.iter_sweep` in place of a
    JSONL-backed shared store: warm lookups (``records_for``) resolve
    against the shared store so cache hits still hit, while the
    streaming appender lands every completed record in a private
    per-job staging store.  The job runner merges the staging file into
    the shared store -- under the service's store lock, through the
    normal version-aware resolution -- exactly once, after the job
    stops running, so concurrent jobs can never interleave (or tear)
    lines in the shared file.
    """

    backend = "staged"

    def __init__(self, shared: ResultStoreBase, staging: ResultStoreBase):
        super().__init__(shared.path)
        self.shared = shared
        self.staging = staging

    def records_for(self, hashes, version=None):
        return self.shared.records_for(hashes, version=version)

    def appender(self):
        return self.staging.appender()


class JobManager:
    """A bounded worker pool draining a priority queue of jobs.

    ``runner(job)`` does the actual work (the service supplies it); the
    manager owns scheduling: FIFO within each priority level (lower
    number first), at most ``pool_size`` jobs running at once, lazy
    worker startup, and cooperative teardown.  The job table keeps
    terminal jobs around for status/record queries until the process
    exits -- this is a sweep service, not a message broker; result
    retention is the point.
    """

    def __init__(
        self,
        runner: Callable[[Job], None],
        pool_size: int = 2,
    ):
        if pool_size < 1:
            raise ValueError("job pool size must be >= 1")
        self.runner = runner
        self.pool_size = pool_size
        self._jobs: dict[str, Job] = {}
        self._queue: queue.PriorityQueue = queue.PriorityQueue()
        self._seq = itertools.count()  # FIFO tie-break within a priority
        self._lock = threading.Lock()
        self._threads: list[threading.Thread] = []
        self._stop = threading.Event()

    # -- submission and lookup -----------------------------------------
    def submit(self, job: Job) -> Job:
        """Enqueue a job for the worker pool (starting it lazily)."""
        with self._lock:
            if self._stop.is_set():
                raise RuntimeError("job manager is shut down")
            self._jobs[job.id] = job
            self._ensure_threads()
        self._queue.put((job.priority, next(self._seq), job))
        return job

    def register(self, job: Job) -> Job:
        """Track a job the caller runs itself (inline ingest jobs)."""
        with self._lock:
            self._jobs[job.id] = job
        return job

    def get(self, job_id: str) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> list[Job]:
        """Every known job, oldest submission first."""
        with self._lock:
            return sorted(self._jobs.values(), key=lambda j: j.submitted_at)

    def counts(self) -> dict:
        """Jobs per state -- the ``/stats`` surface."""
        tally = {state: 0 for state in (QUEUED, RUNNING, *TERMINAL_STATES)}
        for job in self.jobs():
            tally[job.state] += 1
        tally["total"] = sum(tally.values())
        return tally

    def remove(self, job_ids) -> int:
        """Drop terminal jobs from the table (the retention policy).

        Only terminal jobs are removed -- a stale priority-queue entry
        for an evicted job is harmless because ``mark_running`` refuses
        non-queued jobs, but evicting live work would strand clients.
        """
        removed = 0
        with self._lock:
            for job_id in list(job_ids):
                job = self._jobs.get(job_id)
                if job is not None and job.done:
                    del self._jobs[job_id]
                    removed += 1
        return removed

    # -- the pool ------------------------------------------------------
    def _ensure_threads(self) -> None:
        # Called under self._lock.  Daemonic like the HTTP handler
        # threads: a hard process exit never hangs on a long sweep.
        while len(self._threads) < self.pool_size:
            thread = threading.Thread(
                target=self._work,
                name=f"sweep-job-worker-{len(self._threads)}",
                daemon=True,
            )
            self._threads.append(thread)
            thread.start()

    def _work(self) -> None:
        while not self._stop.is_set():
            try:
                _, _, job = self._queue.get(timeout=0.1)
            except queue.Empty:
                continue
            if not job.mark_running():
                continue  # cancelled while queued
            try:
                self.runner(job)
            except Exception as error:  # noqa: BLE001 - job boundary
                job.finish(FAILED, error=str(error))
            finally:
                # A runner that returned without finishing the job is a
                # bug; fail loudly rather than leaving it running forever.
                if not job.done:
                    job.finish(FAILED, error="job runner never finished")

    def close(self, cancel: bool = True, timeout: float = 5.0) -> None:
        """Stop the pool: optionally cancel live jobs, then join workers.

        Running jobs see the cancel at their next record boundary; a
        job stuck inside one long evaluation chunk is abandoned to its
        daemon thread after ``timeout`` (process exit reaps it).
        """
        if cancel:
            for job in self.jobs():
                if not job.done:
                    job.cancel()
        self._stop.set()
        deadline = time.monotonic() + timeout
        for thread in self._threads:
            thread.join(max(0.0, deadline - time.monotonic()))
