"""Elastic worker fleet: pull-based distributed sweeps with leases.

``dse-launch`` used to push a fixed shard plan into local processes; a
dead shard was simply lost until a human re-ran it.  This module
inverts the control flow: the sweep server owns a lease table and
*workers pull*.

Coordinator side (embedded in
:class:`~repro.serve.server.SweepService`):

* a fleet sweep (``POST /sweep`` with ``"fleet"``) splits into
  hash-range point chunks
  (:meth:`SweepSpec.chunks <repro.dse.spec.SweepSpec.chunks>` -- the
  same disjoint, resumable units ``--shard i/n`` uses);
* workers register with a capacity (``POST /workers/register``), then
  loop: lease a chunk (``POST /workers/{id}/lease`` -- a pull queue,
  so a straggler never gates the sweep), evaluate it, stream the
  records back through the existing ``/records`` ingest, and ack
  (``POST /workers/{id}/ack``);
* a lease expires -- and its chunk silently requeues -- when its
  deadline passes *or* the holder's heartbeat
  (``POST /workers/{id}/heartbeat``) lapses, so a SIGKILLed worker
  costs one lease TTL, not the sweep;
* a chunk completed twice (an expired-then-finished straggler racing
  the worker that stole its chunk) is harmless: the records resolve
  through the store's version-aware conditional upsert, and the
  duplicate ack is acknowledged as exactly that.

Worker side: :class:`FleetWorker`, the loop behind ``repro worker`` --
register -> lease -> evaluate (vectorized) -> ingest -> ack, with
bounded-backoff retries on transient HTTP errors and automatic
re-registration when the server forgets the worker (server restart).

Expiry is lazy: every lease, ack, and stats call sweeps lapsed leases
first.  Workers poll for work anyway, so an expired chunk is re-leased
by the next poll without any background reaper thread on the server.
"""

from __future__ import annotations

import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Callable

from ..dse.engine import run_sweep
from ..dse.spec import SweepSpec
from ..obs.logs import get_logger
from ..obs.metrics import MetricsRegistry, get_registry
from ..obs.trace import new_trace_id
from .client import ServeClient, ServeError
from .jobs import CANCELLED, DEFAULT_PRIORITY, DONE, FAILED, Job

__all__ = [
    "Chunk",
    "Fleet",
    "FleetJob",
    "FleetWorker",
    "WorkerInfo",
    "DEFAULT_LEASE_TTL",
    "DEFAULT_HEARTBEAT_TTL",
    "DEFAULT_FLEET_CHUNKS",
]

#: Chunk states.  A chunk is pending (leasable), leased (one worker is
#: evaluating it, until a deadline), or completed.  Requeue moves
#: leased back to pending; completion is final.
PENDING = "pending"
LEASED = "leased"
COMPLETED = "completed"

#: Default seconds a lease stays valid without an ack.
DEFAULT_LEASE_TTL = 60.0

#: Default seconds of heartbeat silence before a worker counts as dead
#: (and every lease it holds requeues).
DEFAULT_HEARTBEAT_TTL = 15.0

#: Default chunk count for a fleet job that did not pick one.
DEFAULT_FLEET_CHUNKS = 16

#: Records per ``POST /records`` upload from a worker -- chunk results
#: can exceed what one request body should carry.
INGEST_CHUNK_RECORDS = 20_000

#: Consecutive unexpected heartbeat failures before a worker gives up.
HEARTBEAT_MAX_FAILURES = 5

#: Default seconds a worker keeps retrying when the server is
#: unreachable (a restart in progress) before giving up with exit 1.
#: Spans a server redeploy comfortably; the client's own bounded
#: backoff only covers a few seconds.
DEFAULT_RECONNECT_GRACE = 60.0

_LOG = get_logger(__name__)

_METRICS = get_registry()
_LEASES_GRANTED = _METRICS.counter(
    "repro_fleet_leases_granted_total",
    "Chunk leases granted to fleet workers.",
)
_REQUEUES = _METRICS.counter(
    "repro_fleet_requeues_total",
    "Leased chunks requeued after deadline expiry or worker death.",
)
_ACKS = _METRICS.counter(
    "repro_fleet_acks_total",
    "Chunk acks received by the coordinator, by outcome.",
    labelnames=("result",),
)
_CHUNK_PHASE_SECONDS = _METRICS.histogram(
    "repro_fleet_chunk_phase_seconds",
    "Fleet chunk phase latency: lease-wait, worker-eval, upload, "
    "ack-turnaround.",
    labelnames=("phase",),
)

#: Worker-reported phases the coordinator accepts into the chunk-phase
#: histogram -- a fixed set keeps label cardinality bounded no matter
#: what an ack body carries.
_WORKER_PHASES = ("worker-eval", "upload")


def _observe_worker_timings(timings: dict | None) -> None:
    """Feed a worker's ack-carried phase timings into the histogram."""
    if not isinstance(timings, dict):
        return
    for phase in _WORKER_PHASES:
        seconds = timings.get(phase)
        if isinstance(seconds, (int, float)) and seconds >= 0:
            _CHUNK_PHASE_SECONDS.observe(float(seconds), phase=phase)


def _summarize_worker_metrics(snapshot: dict) -> dict | None:
    """Boil a heartbeat's registry snapshot down to a ``/workers`` row.

    Workers ship their full :meth:`MetricsRegistry.snapshot`; the
    coordinator keeps only the fields the ops dashboard plots --
    throughput (points, chunks) and where wall-clock goes (eval vs
    upload) -- so ``GET /workers`` stays compact at fleet scale.
    """
    if not isinstance(snapshot, dict):
        return None

    def total(kind: str, name: str, key: str) -> float:
        samples = (snapshot.get(kind) or {}).get(name) or []
        return float(
            sum(
                float(sample.get(key) or 0.0)
                for sample in samples
                if isinstance(sample, dict)
            )
        )

    return {
        "points_total": total("counters", "repro_worker_points_total", "value"),
        "chunks_total": total("counters", "repro_worker_chunks_total", "value"),
        "eval_seconds_sum": total(
            "histograms", "repro_worker_eval_seconds", "sum"
        ),
        "upload_seconds_sum": total(
            "histograms", "repro_worker_upload_seconds", "sum"
        ),
    }


@dataclass
class Chunk:
    """One leasable hash-range slice of a fleet job's spec."""

    index: int
    spec: SweepSpec
    state: str = PENDING
    worker: str | None = None
    deadline: float | None = None
    attempts: int = 0
    completed_by: str | None = None
    trace_id: str = field(default_factory=new_trace_id)
    #: Monotonic instants driving the chunk phase clock: when the chunk
    #: last became leasable, and when its current lease was granted.
    pending_since: float = field(default_factory=time.monotonic)
    leased_at: float | None = None

    def __len__(self) -> int:
        return len(self.spec)


@dataclass
class WorkerInfo:
    """The coordinator's view of one registered worker."""

    id: str
    name: str
    capacity: int
    registered_at: float
    last_seen: float
    chunks_done: int = field(default=0)
    #: Liveness runs on the monotonic clock (an NTP step must not kill
    #: a healthy fleet); ``last_seen`` stays wall time for display.
    last_seen_mono: float = field(default_factory=time.monotonic)
    #: The latest heartbeat's metrics summary (throughput, eval time).
    metrics: dict | None = None

    def alive(self, now: float, heartbeat_ttl: float) -> bool:
        return now - self.last_seen_mono <= heartbeat_ttl


class FleetJob(Job):
    """A sweep whose chunks are pulled and evaluated by fleet workers.

    Unlike a :class:`~repro.serve.jobs.Job` run by the server's own
    pool, a fleet job never occupies a job-worker thread: it is
    registered, marked running at submission, and driven entirely by
    worker acks -- the job is done when every chunk is completed.  The
    records land in the shared store via ``/records`` ingest, not on
    the job itself, so ``GET /jobs/{id}/records`` streams are empty;
    clients read the store once the job is terminal.
    """

    kind = "fleet"

    def __init__(
        self,
        spec: SweepSpec,
        chunks: int,
        priority: int = DEFAULT_PRIORITY,
        job_id: str | None = None,
        trace=None,
    ):
        if len(spec) == 0:
            raise ValueError("empty sweep")
        super().__init__(spec=spec, priority=priority, job_id=job_id, trace=trace)
        self._chunks = [Chunk(index=i, spec=sub) for i, sub in spec.chunks(chunks)]
        self._by_index = {chunk.index: chunk for chunk in self._chunks}
        self.chunk_count = len(self._chunks)
        # The *requested* partition width, not len(_chunks): hash-range
        # chunking drops empty buckets, so only this count rebuilds the
        # same chunk indexes when recovery reconstructs the job.
        self.chunk_partition = int(chunks)
        self.requeues = 0

    def _journal_lease(self, chunk: Chunk) -> None:
        journal = self.journal
        if journal is not None:
            journal.record_lease(self.id, chunk.index, chunk.state, chunk.attempts)

    def chunk_states(self) -> list[tuple[int, str, int]]:
        """A journal-ready snapshot of the lease table."""
        with self._changed:
            return [(c.index, c.state, c.attempts) for c in self._chunks]

    def restore_chunks(self, leases: dict[int, dict]) -> dict:
        """Rebuild the lease table from journaled rows (restart recovery).

        Completed chunks stay completed; chunks the journal last saw
        *leased* requeue as pending -- their holder was talking to a
        server that no longer exists, so the lease is void (the holder
        may still finish and ack as a straggler; that is the same
        absorbed-duplicate path a TTL expiry produces).  Attempt counts
        survive so operators can see a chunk's full history.
        """
        requeued = 0
        with self._changed:
            for chunk in self._chunks:
                row = leases.get(chunk.index)
                if row is None:
                    continue
                chunk.attempts = int(row.get("attempts") or 0)
                if row.get("state") == COMPLETED:
                    chunk.state = COMPLETED
                elif row.get("state") == LEASED:
                    chunk.state = PENDING
                    requeued += 1
            self.requeues += requeued
            all_done = all(c.state == COMPLETED for c in self._chunks)
        if all_done:
            self.finish(DONE)
        return {
            "requeued": requeued,
            "completed": sum(
                1 for c in self._chunks if c.state == COMPLETED
            ),
        }

    # -- the lease table (all mutation under the job's condition) ------
    def lease_next(self, worker_id: str, now: float, ttl: float) -> Chunk | None:
        """Lease the first pending chunk to ``worker_id``, if any."""
        with self._changed:
            if self.done:
                return None
            for chunk in self._chunks:
                if chunk.state == PENDING:
                    chunk.state = LEASED
                    chunk.worker = worker_id
                    chunk.deadline = now + ttl
                    chunk.attempts += 1
                    mono = time.monotonic()
                    _CHUNK_PHASE_SECONDS.observe(
                        max(0.0, mono - chunk.pending_since),
                        phase="lease-wait",
                    )
                    chunk.leased_at = mono
                    self._journal_lease(chunk)
                    return chunk
            return None

    def expire_leases(
        self, now: float, worker_alive: Callable[[str], bool]
    ) -> int:
        """Requeue leases past deadline or held by a dead worker."""
        with self._changed:
            if self.done:
                return 0
            requeued = 0
            for chunk in self._chunks:
                if chunk.state != LEASED:
                    continue
                if now <= (chunk.deadline or 0.0) and worker_alive(
                    chunk.worker or ""
                ):
                    continue
                chunk.state = PENDING
                chunk.worker = None
                chunk.deadline = None
                chunk.leased_at = None
                chunk.pending_since = time.monotonic()
                requeued += 1
                self._journal_lease(chunk)
            self.requeues += requeued
            return requeued

    def ack_chunk(
        self,
        index: int,
        worker_id: str,
        error: str | None = None,
        timings: dict | None = None,
    ) -> dict:
        """Record a chunk completion (idempotent) or failure.

        An ack is accepted even when the lease already expired and the
        chunk requeued -- the straggler's records went through the
        version-aware upsert, so counting its work is correct.  A
        second completion of an already-completed chunk is reported as
        a duplicate, not an error.  ``timings`` carries the worker's
        measured phases (worker-eval, upload); the work they describe
        happened regardless of duplicate status, so they are observed
        either way.
        """
        with self._changed:
            chunk = self._by_index.get(index)
            if chunk is None:
                raise KeyError(f"job {self.id} has no chunk {index}")
            if error is not None:
                # A poisoned chunk fails the whole job, matching a
                # local sweep aborting on an evaluation error.
                self.finish(FAILED, error=f"chunk {index}: {error}")
                return {"duplicate": False, "job_state": self.state}
            _observe_worker_timings(timings)
            if chunk.state == COMPLETED:
                return {"duplicate": True, "job_state": self.state}
            if chunk.leased_at is not None:
                _CHUNK_PHASE_SECONDS.observe(
                    max(0.0, time.monotonic() - chunk.leased_at),
                    phase="ack-turnaround",
                )
            chunk.state = COMPLETED
            chunk.worker = None
            chunk.deadline = None
            chunk.completed_by = worker_id
            self._journal_lease(chunk)
            if all(c.state == COMPLETED for c in self._chunks):
                self.finish(DONE)
            self._changed.notify_all()
            return {"duplicate": False, "job_state": self.state}

    # -- observation ---------------------------------------------------
    def leases_held_by(self, worker_id: str) -> int:
        with self._changed:
            return sum(
                1
                for chunk in self._chunks
                if chunk.state == LEASED and chunk.worker == worker_id
            )

    def chunk_counts(self) -> dict:
        with self._changed:
            tally = {PENDING: 0, LEASED: 0, COMPLETED: 0}
            for chunk in self._chunks:
                tally[chunk.state] += 1
            return {"total": len(self._chunks), **tally, "requeues": self.requeues}

    def cancel(self) -> str:
        """Cancel immediately: no worker thread needs a boundary poll.

        In-flight leases are left to finish; their acks land as
        duplicates-of-a-dead-job (the records still upsert cleanly).
        """
        self._cancel.set()
        self.finish(CANCELLED)
        return self.state

    def progress(self) -> dict:
        with self._changed:
            completed_points = sum(
                len(chunk.spec)
                for chunk in self._chunks
                if chunk.state == COMPLETED
            )
            points = len(self.spec) if self.spec is not None else 0
        return {
            "points": points,
            "completed": completed_points,
            "chunks": self.chunk_counts(),
        }


def _new_worker_id() -> str:
    return uuid.uuid4().hex[:12]


class Fleet:
    """The coordinator: registered workers, fleet jobs, and leases.

    Lock order is ``Fleet._lock`` then a job's condition variable --
    job methods never call back into the fleet, so the order cannot
    invert.
    """

    def __init__(
        self,
        lease_ttl: float = DEFAULT_LEASE_TTL,
        heartbeat_ttl: float = DEFAULT_HEARTBEAT_TTL,
    ):
        if lease_ttl <= 0:
            raise ValueError("lease TTL must be positive")
        if heartbeat_ttl <= 0:
            raise ValueError("heartbeat TTL must be positive")
        self.lease_ttl = lease_ttl
        self.heartbeat_ttl = heartbeat_ttl
        self._lock = threading.Lock()
        self._workers: dict[str, WorkerInfo] = {}
        self._jobs: dict[str, FleetJob] = {}
        self.leases_granted = 0
        self.requeued = 0
        self.acks = 0
        self.duplicate_acks = 0

    # -- workers -------------------------------------------------------
    def register(self, name: str | None = None, capacity: int = 1) -> dict:
        capacity = int(capacity)
        if capacity < 1:
            raise ValueError("worker capacity must be >= 1")
        now = time.time()
        worker = WorkerInfo(
            id=_new_worker_id(),
            name=str(name or ""),
            capacity=capacity,
            registered_at=now,
            last_seen=now,
        )
        with self._lock:
            self._workers[worker.id] = worker
        return {
            "worker": worker.id,
            "lease_ttl": self.lease_ttl,
            "heartbeat_ttl": self.heartbeat_ttl,
            # Beat well inside the TTL so one dropped request does not
            # kill an otherwise-healthy worker.
            "heartbeat_seconds": self.heartbeat_ttl / 3.0,
        }

    def _worker(self, worker_id: str) -> WorkerInfo:
        # Called under self._lock.
        worker = self._workers.get(worker_id)
        if worker is None:
            raise KeyError(f"no such worker: {worker_id} (register again)")
        return worker

    def heartbeat(self, worker_id: str, metrics: dict | None = None) -> dict:
        """Refresh a worker's liveness; absorb its metrics snapshot.

        Workers piggyback their local registry snapshot on each beat,
        so the coordinator can expose per-worker throughput and
        straggler lag without a second reporting channel.
        """
        with self._lock:
            worker = self._worker(worker_id)
            worker.last_seen = time.time()
            worker.last_seen_mono = time.monotonic()
            if metrics is not None:
                summary = _summarize_worker_metrics(metrics)
                if summary is not None:
                    worker.metrics = summary
            return {"worker": worker.id, "status": "ok"}

    # -- jobs ----------------------------------------------------------
    def add_job(self, job: FleetJob) -> FleetJob:
        with self._lock:
            self._jobs[job.id] = job
        return job

    def remove_jobs(self, job_ids) -> int:
        """Drop terminal fleet jobs (the retention policy's fleet half)."""
        removed = 0
        with self._lock:
            for job_id in list(job_ids):
                job = self._jobs.get(job_id)
                if job is not None and job.done:
                    del self._jobs[job_id]
                    removed += 1
        return removed

    def _active_jobs(self) -> list[FleetJob]:
        # Called under self._lock.  Same scheduling contract as the
        # job pool: priority first, FIFO within a priority level.
        return sorted(
            (job for job in self._jobs.values() if not job.done),
            key=lambda job: (job.priority, job.submitted_at),
        )

    def _expire(self, now: float) -> None:
        # Called under self._lock -- the lazy sweep every entry point
        # runs before touching the lease table.
        def alive(worker_id: str) -> bool:
            worker = self._workers.get(worker_id)
            return worker is not None and worker.alive(now, self.heartbeat_ttl)

        for job in self._active_jobs():
            requeued = job.expire_leases(now, alive)
            if requeued:
                self.requeued += requeued
                _REQUEUES.inc(requeued)
                _LOG.info(
                    "requeued %d chunk(s) of job %s", requeued, job.id,
                    extra={"job": job.id},
                )

    # -- the pull queue ------------------------------------------------
    def lease(self, worker_id: str) -> dict:
        """Grant the next pending chunk, or report the queue idle."""
        # Lease deadlines and heartbeat liveness both run on the
        # monotonic clock: a wall-clock step must never expire (or
        # immortalize) a lease.
        now = time.monotonic()
        with self._lock:
            worker = self._worker(worker_id)
            worker.last_seen = time.time()  # leasing is an implicit heartbeat
            worker.last_seen_mono = now
            self._expire(now)
            active = self._active_jobs()
            held = sum(job.leases_held_by(worker_id) for job in active)
            if held < worker.capacity:
                for job in active:
                    chunk = job.lease_next(worker_id, now, self.lease_ttl)
                    if chunk is None:
                        continue
                    self.leases_granted += 1
                    _LEASES_GRANTED.inc()
                    return {
                        "lease": {
                            "job": job.id,
                            "chunk": chunk.index,
                            "attempt": chunk.attempts,
                            "deadline": chunk.deadline,
                            "ttl": self.lease_ttl,
                            "points": len(chunk.spec),
                            "spec": chunk.spec.to_dict(),
                            "trace": chunk.trace_id,
                        }
                    }
            return {"idle": True, "active_jobs": len(active)}

    def ack(
        self,
        worker_id: str,
        job_id: str,
        chunk_index: int,
        error: str | None = None,
        timings: dict | None = None,
    ) -> dict:
        with self._lock:
            worker = self._worker(worker_id)
            worker.last_seen = time.time()
            worker.last_seen_mono = time.monotonic()
            job = self._jobs.get(job_id)
            if job is None:
                raise KeyError(f"no such fleet job: {job_id}")
            outcome = job.ack_chunk(
                int(chunk_index), worker_id, error=error, timings=timings
            )
            self.acks += 1
            if outcome["duplicate"]:
                self.duplicate_acks += 1
            else:
                worker.chunks_done += 1
            if error is not None:
                result = "failed"
            elif outcome["duplicate"]:
                result = "duplicate"
            else:
                result = "ok"
            _ACKS.inc(result=result)
            return {"job": job_id, "chunk": int(chunk_index), **outcome}

    # -- observation ---------------------------------------------------
    def workers(self) -> list[dict]:
        """The ``GET /workers`` body: every registration, oldest first."""
        now = time.monotonic()
        with self._lock:
            self._expire(now)
            active = self._active_jobs()
            return [
                {
                    "worker": worker.id,
                    "name": worker.name,
                    "capacity": worker.capacity,
                    "alive": worker.alive(now, self.heartbeat_ttl),
                    "registered_at": worker.registered_at,
                    "last_seen": worker.last_seen,
                    "heartbeat_age": max(0.0, now - worker.last_seen_mono),
                    "chunks_done": worker.chunks_done,
                    "leases": sum(
                        job.leases_held_by(worker.id) for job in active
                    ),
                    "metrics": worker.metrics,
                }
                for worker in sorted(
                    self._workers.values(), key=lambda w: w.registered_at
                )
            ]

    def stats(self) -> dict:
        """The ``/stats`` fleet section."""
        now = time.monotonic()
        with self._lock:
            self._expire(now)
            active = self._active_jobs()
            chunks = {"total": 0, PENDING: 0, LEASED: 0, COMPLETED: 0}
            for job in active:
                counts = job.chunk_counts()
                chunks["total"] += counts["total"]
                for state in (PENDING, LEASED, COMPLETED):
                    chunks[state] += counts[state]
            alive = sum(
                1
                for worker in self._workers.values()
                if worker.alive(now, self.heartbeat_ttl)
            )
            return {
                "workers": {"registered": len(self._workers), "alive": alive},
                "jobs": {"active": len(active), "total": len(self._jobs)},
                "chunks": chunks,
                "leases_granted": self.leases_granted,
                "requeued": self.requeued,
                "acks": self.acks,
                "duplicate_acks": self.duplicate_acks,
            }


def _log_via_logger(message: str) -> None:
    """Default worker log sink: the ``repro.serve.fleet`` logger.

    ``repro worker`` configures the handler (``--log-level`` /
    ``--log-json``); embedders that want raw lines still pass their own
    ``log=`` callable, and tests pass a silent one.
    """
    _LOG.info(message)


class FleetWorker:
    """The pull loop behind ``repro worker``.

    Register, then loop: lease a chunk, evaluate it locally (vectorized
    path, worker-local memo), stream the records back through
    ``/records``, ack.  Heartbeats run on a daemon thread; a lapsed
    server-side registration (restart, eviction) answers leases with
    404, which triggers one transparent re-registration.  Transient
    HTTP failures retry with bounded exponential backoff inside
    :class:`~repro.serve.client.ServeClient`.
    """

    def __init__(
        self,
        server: str,
        name: str | None = None,
        capacity: int = 1,
        poll: float = 0.5,
        timeout: float = 60.0,
        workers: int = 1,
        vectorize: bool = True,
        exit_when_drained: bool = False,
        max_chunks: int | None = None,
        throttle: float = 0.0,
        reconnect_grace: float = DEFAULT_RECONNECT_GRACE,
        log: Callable[[str], None] | None = None,
        client: ServeClient | None = None,
    ):
        self.client = client or ServeClient(
            server, timeout=timeout, retries=5, backoff=0.2
        )
        self.name = name
        self.capacity = capacity
        self.poll = poll
        self.workers = workers
        self.vectorize = vectorize
        self.exit_when_drained = exit_when_drained
        self.max_chunks = max_chunks
        self.throttle = throttle
        self.reconnect_grace = reconnect_grace
        self.log = log or _log_via_logger
        self.worker_id: str | None = None
        self.chunks_done = 0
        self.heartbeat_seconds = DEFAULT_HEARTBEAT_TTL / 3.0
        self._stop = threading.Event()
        self._heartbeat_failed = False
        # A private registry (not the process-global one): heartbeats
        # must carry *this worker's* numbers, and an embedded in-process
        # worker must not double-count into the server's own series.
        self.metrics = MetricsRegistry()
        self._chunks_metric = self.metrics.counter(
            "repro_worker_chunks_total",
            "Chunks this worker finished, by result.",
            labelnames=("result",),
        )
        self._points_metric = self.metrics.counter(
            "repro_worker_points_total",
            "Design points this worker evaluated.",
        )
        self._eval_seconds = self.metrics.histogram(
            "repro_worker_eval_seconds",
            "Per-chunk local evaluation latency on this worker.",
        )
        self._upload_seconds = self.metrics.histogram(
            "repro_worker_upload_seconds",
            "Per-chunk record upload latency from this worker.",
        )

    def stop(self) -> None:
        self._stop.set()

    def register(self) -> str:
        info = self.client.register_worker(name=self.name, capacity=self.capacity)
        self.worker_id = info["worker"]
        self.heartbeat_seconds = float(
            info.get("heartbeat_seconds") or self.heartbeat_seconds
        )
        self.log(f"worker {self.worker_id}: registered with {self.client.base_url}")
        return self.worker_id

    def _heartbeat_loop(self) -> None:
        # Daemonic.  A ServeError is expected weather (server down or
        # restarting, registration lapsed) -- the main loop's next
        # lease is itself a heartbeat, or re-registers on 404.  An
        # *unexpected* exception must not kill the thread silently:
        # that leaves a worker that looks alive locally while the
        # server requeues all its leases.  Log, back off, retry; give
        # up -- and take the whole worker down with exit 1 -- only
        # after repeated consecutive failures.
        failures = 0
        while not self._stop.wait(
            self.heartbeat_seconds * min(2**failures, 8)
        ):
            try:
                self.client.worker_heartbeat(
                    self.worker_id, metrics=self.metrics.snapshot()
                )
                failures = 0
            except ServeError:
                failures = 0
            except Exception as error:  # noqa: BLE001 - thread boundary
                failures += 1
                self.log(
                    f"worker {self.worker_id}: heartbeat error "
                    f"({failures}/{HEARTBEAT_MAX_FAILURES}): {error}"
                )
                if failures >= HEARTBEAT_MAX_FAILURES:
                    self.log(
                        f"worker {self.worker_id}: heartbeat failing "
                        "persistently; stopping worker"
                    )
                    self._heartbeat_failed = True
                    self._stop.set()
                    return

    def _lease(self) -> dict:
        try:
            return self.client.lease_chunk(self.worker_id)
        except ServeError as error:
            if error.code == 404:  # the server forgot us: re-register
                self.register()
                return self.client.lease_chunk(self.worker_id)
            raise

    def _execute(self, lease: dict) -> None:
        if self.throttle > 0:
            # Testing/chaos aid: hold the lease for a while before
            # evaluating, so fault injection has a window to hit.
            time.sleep(self.throttle)
        spec = SweepSpec.from_dict(lease["spec"])
        error: str | None = None
        timings: dict[str, float] = {}
        eval_started = time.monotonic()
        try:
            result = run_sweep(spec, workers=self.workers, vectorize=self.vectorize)
        except Exception as failure:  # noqa: BLE001 - chunk boundary
            error = str(failure)
        timings["worker-eval"] = time.monotonic() - eval_started
        self._eval_seconds.observe(timings["worker-eval"])
        if error is None:
            # The client chunks oversized uploads into bounded ingest
            # batches itself (INGEST_CHUNK_RECORDS per request).
            upload_started = time.monotonic()
            self.client.post_records(
                result.records, batch_size=INGEST_CHUNK_RECORDS
            )
            timings["upload"] = time.monotonic() - upload_started
            self._upload_seconds.observe(timings["upload"])
        try:
            self.client.ack_chunk(
                self.worker_id, lease["job"], lease["chunk"], error=error,
                timings=timings,
            )
        except ServeError as failure:
            if failure.code != 404:
                raise
            # A restarted server forgot this registration; the chunk we
            # just finished was requeued as pending.  Re-register and
            # re-ack: completing a pending chunk is the same absorbed
            # straggler path a TTL expiry produces.  A second 404 means
            # the *job* is gone (finished elsewhere and evicted); the
            # records already landed via /records, so drop the ack.
            self.register()
            try:
                self.client.ack_chunk(
                    self.worker_id, lease["job"], lease["chunk"], error=error,
                    timings=timings,
                )
            except ServeError as second:
                if second.code != 404:
                    raise
                self.log(
                    f"worker {self.worker_id}: job {lease['job']} gone; "
                    f"dropping ack for chunk {lease['chunk']}"
                )
        if error is None:
            self.chunks_done += 1
            self._chunks_metric.inc(result="ok")
            self._points_metric.inc(len(spec))
            self.log(
                f"worker {self.worker_id}: chunk {lease['chunk']} of job "
                f"{lease['job']} done ({len(spec)} points)"
            )
        else:
            self._chunks_metric.inc(result="failed")
            self.log(
                f"worker {self.worker_id}: chunk {lease['chunk']} of job "
                f"{lease['job']} failed: {error}"
            )

    def run(self) -> int:
        """The worker loop; returns a process exit code."""
        try:
            self.register()
        except ServeError as error:
            self.log(f"worker: cannot register: {error}")
            return 1
        heartbeat = threading.Thread(
            target=self._heartbeat_loop, name="fleet-heartbeat", daemon=True
        )
        heartbeat.start()
        outage_started: float | None = None
        try:
            while not self._stop.is_set():
                if self.max_chunks is not None and self.chunks_done >= self.max_chunks:
                    return 0
                try:
                    response = self._lease()
                    lease = response.get("lease")
                    if lease is not None:
                        self._execute(lease)
                except ServeError as error:
                    # A transient failure past the client's own bounded
                    # retries usually means the server is restarting.
                    # Keep polling for a grace period instead of dying:
                    # an unacked chunk requeues by lease TTL, so waiting
                    # is always safe.
                    if not error.transient or self.reconnect_grace <= 0:
                        raise
                    now = time.monotonic()
                    if outage_started is None:
                        outage_started = now
                        self.log(
                            f"worker {self.worker_id}: server unreachable "
                            f"({error}); retrying for up to "
                            f"{self.reconnect_grace:.0f}s"
                        )
                    if now - outage_started > self.reconnect_grace:
                        raise
                    self._stop.wait(max(self.poll, 0.1))
                    continue
                outage_started = None
                if lease is None:
                    if self.exit_when_drained and not response.get("active_jobs"):
                        self.log(
                            f"worker {self.worker_id}: drained after "
                            f"{self.chunks_done} chunks"
                        )
                        return 0
                    self._stop.wait(self.poll)
            return 1 if self._heartbeat_failed else 0
        except ServeError as error:
            self.log(f"worker {self.worker_id}: giving up: {error}")
            return 1
        finally:
            self._stop.set()
            # Farewell heartbeat: a worker that drains inside one
            # heartbeat period would otherwise exit with its throughput
            # snapshot never shipped.  Best effort -- the server may be
            # the reason we are exiting.
            try:
                self.client.worker_heartbeat(
                    self.worker_id, metrics=self.metrics.snapshot()
                )
            except ServeError:
                pass
