"""A bounded LRU record cache for the sweep service.

The service used to cache ``GET /records`` as one unbounded
``(change_token, list)`` pair -- fine at 10^4 records, lethal at 10^7:
every query re-materialized the full record list and the cache pinned
it forever.  :class:`RecordCache` bounds that memory and serves the
paginated read path too:

* a **complete snapshot** (the full current-version survivor list) is
  cached only while it fits ``capacity`` -- larger stores fall back to
  streaming reads, which is exactly when clients should be paginating;
* **pages** streamed by ``GET /records?after=&limit=`` are written
  through into an LRU of individual records plus a small page index,
  so many clients paging the same unchanged store hit memory instead
  of re-scanning the store;
* any store change (tracked by the store's change token) or local
  write invalidates everything at once.

Entries never outlive their token: the cache trusts the service to
call :meth:`sync` with the current token before every read.
"""

from __future__ import annotations

from bisect import bisect_right
from collections import OrderedDict

from ..obs.metrics import get_registry

__all__ = ["RecordCache", "DEFAULT_RECORD_CACHE"]

#: Default capacity (records) for the service cache; ``0`` disables.
DEFAULT_RECORD_CACHE = 100_000

#: Page-index entries kept (keys only -- the records live in the LRU).
_MAX_PAGES = 1024

# The instance attributes (hits/misses/...) keep feeding ``/stats``;
# these registry twins feed ``/metrics`` so a scraper sees cache
# behavior without polling JSON.  Process-wide totals across every
# RecordCache instance, which in a server is exactly one.
_METRICS = get_registry()
_HITS = _METRICS.counter(
    "repro_record_cache_hits_total", "Record cache hits (snapshot or page)."
)
_MISSES = _METRICS.counter(
    "repro_record_cache_misses_total", "Record cache misses."
)
_EVICTIONS = _METRICS.counter(
    "repro_record_cache_evictions_total", "Records evicted by the LRU bound."
)
_INVALIDATIONS = _METRICS.counter(
    "repro_record_cache_invalidations_total",
    "Whole-cache invalidations (store changed or local write).",
)


class RecordCache:
    """LRU of records keyed by hash, with snapshot + page serving."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("record cache capacity must be >= 1")
        self.capacity = capacity
        self._records: OrderedDict[str, dict] = OrderedDict()
        # (after, limit) -> (keys, next_cursor); validated against the
        # LRU at read time, so eviction needs no reverse index.
        self._pages: OrderedDict[tuple, tuple[list[str], str | None]] = (
            OrderedDict()
        )
        self._complete: list[dict] | None = None
        self._complete_keys: list[str] | None = None
        self._token: tuple | None = None
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    # -- lifecycle ------------------------------------------------------
    def clear(self) -> None:
        if self._records or self._pages or self._complete is not None:
            self.invalidations += 1
            _INVALIDATIONS.inc()
        self._records.clear()
        self._pages.clear()
        self._complete = None
        self._complete_keys = None
        self._token = None

    def sync(self, token: tuple | None) -> None:
        """Drop everything unless ``token`` matches the cached one.

        A ``None`` token (no store yet, or the token read failed) can
        never be validated, so it clears too -- stale records must not
        survive an unverifiable store state.
        """
        if token is None or token != self._token:
            self.clear()
            self._token = token

    # -- complete snapshots ---------------------------------------------
    def snapshot(self) -> list[dict] | None:
        """The cached full survivor list (the same object every call)."""
        if self._complete is None:
            self.misses += 1
            _MISSES.inc()
            return None
        self.hits += 1
        _HITS.inc()
        return self._complete

    def fill(self, records: list[dict]) -> bool:
        """Cache a complete survivor list, if it fits ``capacity``."""
        if len(records) > self.capacity:
            return False
        self._complete = records
        self._complete_keys = None  # built lazily on first page hit
        self._records.clear()
        self._pages.clear()
        for record in records:
            self._records[record["hash"]] = record
        return True

    # -- pages ----------------------------------------------------------
    def page(
        self, after: str | None, limit: int
    ) -> tuple[list[dict], str | None] | None:
        """A cached ``(page, next_cursor)``, or ``None`` on miss."""
        if self._complete is not None:
            if self._complete_keys is None:
                # The snapshot is already hash-sorted by contract.
                self._complete_keys = [r["hash"] for r in self._complete]
            start = 0
            if after is not None:
                start = bisect_right(self._complete_keys, after)
            page = self._complete[start : start + limit]
            self.hits += 1
            _HITS.inc()
            return page, (page[-1]["hash"] if len(page) == limit else None)
        entry = self._pages.get((after, limit))
        if entry is not None:
            keys, next_cursor = entry
            page = []
            for key in keys:
                record = self._records.get(key)
                if record is None:  # a member was evicted: stale page
                    break
                page.append(record)
            if len(page) == len(keys):
                for key in keys:
                    self._records.move_to_end(key)
                self._pages.move_to_end((after, limit))
                self.hits += 1
                _HITS.inc()
                return page, next_cursor
            del self._pages[(after, limit)]
        self.misses += 1
        _MISSES.inc()
        return None

    def store_page(
        self, after: str | None, limit: int, page: list[dict],
        next_cursor: str | None,
    ) -> None:
        """Write a streamed page through into the LRU + page index."""
        if self._complete is not None or len(page) > self.capacity:
            return
        for record in page:
            self._records[record["hash"]] = record
            self._records.move_to_end(record["hash"])
        while len(self._records) > self.capacity:
            self._records.popitem(last=False)
            self.evictions += 1
            _EVICTIONS.inc()
        self._pages[(after, limit)] = (
            [record["hash"] for record in page],
            next_cursor,
        )
        self._pages.move_to_end((after, limit))
        while len(self._pages) > _MAX_PAGES:
            self._pages.popitem(last=False)

    # -- introspection --------------------------------------------------
    def stats(self) -> dict:
        return {
            "capacity": self.capacity,
            "records": len(self._records),
            "pages": len(self._pages),
            "complete": self._complete is not None,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
        }
