"""Crash-safe persistence for the sweep service's coordination state.

Everything the service knows about submitted work -- the job table,
each job's lifecycle state, and the per-chunk lease table of fleet
jobs -- used to live only in process memory: a server crash or
redeploy lost queued jobs, stranded running fleet sweeps, and orphaned
per-job staging files.  This module is the durability layer that makes
the server restartable at any instant without losing accepted work.

:class:`JobJournal` is a SQLite WAL journal (``repro serve --journal
PATH``, colocated with the server store by default) that records every
lifecycle transition *synchronously at the state boundary that caused
it*: a submission is journaled before the client sees its job id, a
``queued -> running`` edge before the first record is evaluated, every
fleet lease grant/requeue/completion as it happens.  ``PRAGMA
synchronous=FULL`` under WAL means a committed transition survives a
SIGKILL whole; there is no torn tail to tolerate.

Recovery (:meth:`JobJournal.recover_state` driven by
:class:`~repro.serve.server.SweepService`) replays the journal on
startup:

* queued jobs re-enqueue in their original priority-FIFO order;
* running jobs re-enqueue too -- their fully-appended staging prefix is
  merged into the store first, so the resumed sweep resolves the
  already-evaluated points through the hash-keyed warm path and only
  evaluates the remainder (recovered work is never recomputed);
* fleet jobs rebuild their lease tables with completed chunks kept and
  every previously-leased chunk requeued as pending (the holder is
  gone; workers re-register and steal the chunk back);
* staging files with no running journal entry are swept as orphans.

The journal is an *operational* record, not a result store: records
live in the result store, the journal only remembers what was accepted
and how far it got.  Journal write failures after startup degrade
recovery, not service -- they warn (:class:`JournalWarning`) instead of
failing the job that triggered them.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import time
import warnings
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Mapping

from ..obs.metrics import get_registry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from .jobs import Job

__all__ = [
    "JobJournal",
    "JournalWarning",
    "default_journal_path",
]

_METRICS = get_registry()
_JOURNAL_WRITES = _METRICS.counter(
    "repro_journal_writes_total",
    "Journal write transactions, by result (ok, degraded, error).",
    labelnames=("result",),
)
_JOURNAL_WRITE_SECONDS = _METRICS.histogram(
    "repro_journal_write_seconds",
    "Latency of one committed journal transaction.",
)

_SCHEMA = (
    "CREATE TABLE IF NOT EXISTS jobs ("
    " id TEXT PRIMARY KEY,"
    " seq INTEGER NOT NULL,"  # submission order, the FIFO replay key
    " kind TEXT NOT NULL,"
    " spec TEXT,"  # SweepSpec.to_dict() JSON (round-trips config hashes)
    " workers INTEGER,"
    " vectorize INTEGER,"
    " priority INTEGER NOT NULL DEFAULT 10,"
    " chunks INTEGER,"  # fleet partition width; NULL for pool jobs
    " state TEXT NOT NULL,"
    " error TEXT,"
    " cancel_requested INTEGER NOT NULL DEFAULT 0,"
    " submitted_at REAL,"
    " started_at REAL,"
    " finished_at REAL,"
    " merged_records INTEGER NOT NULL DEFAULT 0"  # staged-merge watermark
    ")",
    "CREATE TABLE IF NOT EXISTS leases ("
    " job TEXT NOT NULL,"
    " chunk INTEGER NOT NULL,"
    " state TEXT NOT NULL,"
    " attempts INTEGER NOT NULL DEFAULT 0,"
    " PRIMARY KEY (job, chunk)"
    ")",
    "CREATE TABLE IF NOT EXISTS meta ("
    " key TEXT PRIMARY KEY,"
    " value TEXT NOT NULL"
    ")",
)


class JournalWarning(UserWarning):
    """A journal write failed; service continues, recovery degrades."""


def default_journal_path(store_path: str | os.PathLike) -> Path:
    """The journal path colocated with a server store by default."""
    path = Path(store_path)
    return path.with_name(path.name + ".journal")


def _flag(value) -> int | None:
    return None if value is None else int(bool(value))


class JobJournal:
    """The durable job/lease journal behind a sweep service.

    One long-lived WAL connection, shared across handler and job-worker
    threads under a lock; every public method is one small committed
    transaction, so a transition is either fully journaled or not at
    all.  :meth:`suspend` turns further writes into no-ops -- the
    shutdown path uses it so cancelling live jobs on a *fast* exit does
    not overwrite their resumable ``queued``/``running`` states.
    """

    def __init__(self, path: str | os.PathLike):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._suspended = False
        try:
            self._db = sqlite3.connect(self.path, check_same_thread=False)
            self._db.execute("PRAGMA journal_mode=WAL")
            # FULL under WAL: a committed state boundary survives power
            # loss, not just a process kill.  Transitions are rare and
            # tiny relative to evaluation work; durability wins.
            self._db.execute("PRAGMA synchronous=FULL")
            self._db.execute("PRAGMA busy_timeout=10000")
            with self._db:
                for statement in _SCHEMA:
                    self._db.execute(statement)
        except sqlite3.DatabaseError as error:
            raise OSError(f"cannot open job journal {self.path}: {error}") from None

    # -- plumbing ------------------------------------------------------
    def _write(self, statements: Iterable[tuple[str, tuple]], critical: bool = False):
        """Commit statements as one transaction; warn (or raise) on failure."""
        started = time.monotonic()
        with self._lock:
            if self._suspended:
                return
            try:
                with self._db:
                    for sql, params in statements:
                        self._db.execute(sql, params)
            except sqlite3.Error as error:
                if critical:
                    _JOURNAL_WRITES.inc(result="error")
                    raise OSError(
                        f"job journal {self.path}: {error}"
                    ) from None
                _JOURNAL_WRITES.inc(result="degraded")
                warnings.warn(
                    f"job journal {self.path}: transition write failed "
                    f"({error}); recovery of this job may be incomplete",
                    JournalWarning,
                    stacklevel=3,
                )
            else:
                _JOURNAL_WRITES.inc(result="ok")
                _JOURNAL_WRITE_SECONDS.observe(time.monotonic() - started)

    def _read(self, sql: str, params: tuple = ()) -> list[tuple]:
        with self._lock:
            return list(self._db.execute(sql, params))

    def suspend(self) -> None:
        """Stop journaling transitions (the fast-shutdown path).

        A fast ``POST /shutdown`` cancels live jobs only to tear the
        process down promptly; journaling those cancels would turn a
        restartable ``queued``/``running`` entry into a terminal one
        and lose the work.  Suspended, the journal keeps each job's
        last real state for recovery to replay.
        """
        with self._lock:
            self._suspended = True

    def close(self) -> None:
        with self._lock:
            try:
                self._db.close()
            except sqlite3.Error:  # pragma: no cover - close is best-effort
                pass

    # -- lifecycle writes ----------------------------------------------
    def record_submit(self, job: "Job") -> None:
        """Journal an accepted job (critical: accepted work must be durable).

        Runs before the submission response leaves the server, so a job
        id a client holds always has a journal entry behind it.  Fleet
        jobs journal their full chunk table alongside.
        """
        spec = None
        if job.spec is not None:
            spec = json.dumps(job.spec.to_dict(), sort_keys=True)
        statements: list[tuple[str, tuple]] = [
            (
                "INSERT OR REPLACE INTO jobs"
                " (id, seq, kind, spec, workers, vectorize, priority,"
                "  chunks, state, error, cancel_requested, submitted_at,"
                "  started_at, finished_at)"
                " VALUES (?, COALESCE((SELECT seq FROM jobs WHERE id = ?1),"
                "  (SELECT MAX(seq) + 1 FROM jobs), 0),"
                "  ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    job.id,
                    job.kind,
                    spec,
                    getattr(job, "workers", None),
                    _flag(getattr(job, "vectorize", None)),
                    job.priority,
                    getattr(job, "chunk_partition", None),
                    job.state,
                    job.error,
                    int(job.cancel_requested()),
                    job.submitted_at,
                    job.started_at,
                    job.finished_at,
                ),
            )
        ]
        for index, state, attempts in getattr(job, "chunk_states", lambda: ())():
            statements.append(
                (
                    "INSERT OR REPLACE INTO leases (job, chunk, state, attempts)"
                    " VALUES (?, ?, ?, ?)",
                    (job.id, index, state, attempts),
                )
            )
        self._write(statements, critical=True)

    def record_transition(self, job: "Job") -> None:
        """Journal a state-machine edge (queued->running, ->terminal, cancel)."""
        self._write(
            [
                (
                    "UPDATE jobs SET state = ?, error = ?,"
                    " cancel_requested = ?, started_at = ?, finished_at = ?"
                    " WHERE id = ?",
                    (
                        job.state,
                        job.error,
                        int(job.cancel_requested()),
                        job.started_at,
                        job.finished_at,
                        job.id,
                    ),
                )
            ]
        )

    def record_lease(
        self, job_id: str, chunk: int, state: str, attempts: int
    ) -> None:
        """Journal one chunk's lease-table entry (grant, requeue, ack)."""
        self._write(
            [
                (
                    "INSERT OR REPLACE INTO leases (job, chunk, state, attempts)"
                    " VALUES (?, ?, ?, ?)",
                    (job_id, chunk, state, attempts),
                )
            ]
        )

    def record_merged(self, job_id: str, records: int) -> None:
        """Advance a job's records-merged watermark (staged merges)."""
        self._write(
            [
                (
                    "UPDATE jobs SET merged_records = merged_records + ?"
                    " WHERE id = ?",
                    (records, job_id),
                )
            ]
        )

    def evict(self, job_ids: Iterable[str]) -> None:
        """Forget terminal jobs (the retention policy's journal half)."""
        ids = list(job_ids)
        if not ids:
            return
        statements: list[tuple[str, tuple]] = []
        for job_id in ids:
            statements.append(("DELETE FROM leases WHERE job = ?", (job_id,)))
            statements.append(("DELETE FROM jobs WHERE id = ?", (job_id,)))
        statements.append(
            (
                "INSERT INTO meta (key, value) VALUES ('evicted_total', ?)"
                " ON CONFLICT (key) DO UPDATE SET"
                " value = CAST(value AS INTEGER) + excluded.value",
                (len(ids),),
            )
        )
        self._write(statements)

    # -- shutdown marker and recovery metadata -------------------------
    def mark_clean_shutdown(self, mode: str) -> None:
        """Journal that this process exited on purpose (``drain``/``fast``)."""
        self._write(
            [
                (
                    "INSERT OR REPLACE INTO meta (key, value) VALUES"
                    " ('clean_shutdown', ?)",
                    (json.dumps({"mode": mode, "at": time.time()}),),
                )
            ],
        )

    def consume_clean_shutdown(self) -> dict | None:
        """Read and clear the clean-shutdown marker (startup does this).

        ``None`` means the previous process never shut down cleanly --
        a crash, the case recovery exists for.  Clearing the marker on
        every startup keeps the invariant: a marker present on open
        always describes the *immediately preceding* exit.
        """
        rows = self._read("SELECT value FROM meta WHERE key = 'clean_shutdown'")
        self._write([("DELETE FROM meta WHERE key = 'clean_shutdown'", ())])
        return json.loads(rows[0][0]) if rows else None

    def set_recovery_info(self, info: Mapping) -> None:
        """Persist the last recovery's counters for ``--inspect-journal``."""
        self._write(
            [
                (
                    "INSERT OR REPLACE INTO meta (key, value) VALUES"
                    " ('last_recovery', ?)",
                    (json.dumps(dict(info), sort_keys=True),),
                )
            ]
        )

    # -- readers -------------------------------------------------------
    def jobs(self) -> list[dict]:
        """Every journaled job, in priority-FIFO replay order."""
        rows = self._read(
            "SELECT id, seq, kind, spec, workers, vectorize, priority,"
            " chunks, state, error, cancel_requested, submitted_at,"
            " started_at, finished_at, merged_records"
            " FROM jobs ORDER BY priority, seq"
        )
        keys = (
            "id",
            "seq",
            "kind",
            "spec",
            "workers",
            "vectorize",
            "priority",
            "chunks",
            "state",
            "error",
            "cancel_requested",
            "submitted_at",
            "started_at",
            "finished_at",
            "merged_records",
        )
        return [dict(zip(keys, row)) for row in rows]

    def leases(self, job_id: str) -> dict[int, dict]:
        """One fleet job's journaled chunk table: ``{index: row}``."""
        return {
            chunk: {"state": state, "attempts": attempts}
            for chunk, state, attempts in self._read(
                "SELECT chunk, state, attempts FROM leases WHERE job = ?",
                (job_id,),
            )
        }

    def summary(self) -> dict:
        """The ``repro serve --inspect-journal`` payload."""
        jobs: dict[str, int] = {}
        for (state, count) in self._read(
            "SELECT state, COUNT(*) FROM jobs GROUP BY state"
        ):
            jobs[state] = count
        chunks: dict[str, int] = {}
        for (state, count) in self._read(
            "SELECT state, COUNT(*) FROM leases GROUP BY state"
        ):
            chunks[state] = count
        meta = dict(self._read("SELECT key, value FROM meta"))
        clean = meta.get("clean_shutdown")
        recovery = meta.get("last_recovery")
        return {
            "path": str(self.path),
            "jobs": {**jobs, "total": sum(jobs.values())},
            "chunks": {**chunks, "total": sum(chunks.values())},
            "clean_shutdown": json.loads(clean) if clean else None,
            "last_recovery": json.loads(recovery) if recovery else None,
            "evicted_total": int(meta.get("evicted_total", 0)),
        }
