"""Thin stdlib HTTP client for the sweep service.

Speaks the plain JSON/NDJSON protocol of :mod:`repro.serve.server`
with nothing beyond ``urllib``.  ``repro dse --server URL`` runs on
this client; scripts can too::

    client = ServeClient("http://127.0.0.1:8000")
    records, summary = client.sweep({"grid": {"workloads": ["LSTM"]}})
    frontier = client.pareto(where={"workload": "LSTM"})

Sweeps are server-side jobs: :meth:`ServeClient.submit_job` returns a
job id immediately, :meth:`~ServeClient.job_status` polls it,
:meth:`~ServeClient.stream_job` follows its records live (resumable
with ``after=``), and :meth:`~ServeClient.cancel_job` stops it at the
next record boundary.  :meth:`~ServeClient.submit` and
:meth:`~ServeClient.sweep` compose submit + stream, so their
records-in, records-out contract (bit-identical to a local run) is
unchanged from the lock-serialized protocol they replaced.
"""

from __future__ import annotations

import json
from http.client import HTTPException
from typing import Iterator, Mapping
from urllib import request as _request
from urllib.error import HTTPError, URLError

__all__ = ["ServeClient", "ServeError"]


class ServeError(RuntimeError):
    """The server rejected a request or could not be reached."""


class ServeClient:
    """One server, many requests; no connection state to manage.

    ``timeout`` bounds every socket operation, including the wait for
    the next streamed record -- sweeps queue server-side, so raise it
    when long sweeps may sit behind others (``repro dse --server``
    exposes this as ``--timeout``).
    """

    def __init__(self, base_url: str, timeout: float = 600.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        #: Tier summary of the most recent streamed sweep.
        self.last_summary: dict | None = None

    # -- plumbing ------------------------------------------------------
    def _open(self, path: str, payload=None):
        data = None
        headers = {}
        if payload is not None:
            data = json.dumps(payload).encode()
            headers["Content-Type"] = "application/json"
        req = _request.Request(
            self.base_url + path, data=data, headers=headers
        )
        try:
            return _request.urlopen(req, timeout=self.timeout)
        except HTTPError as error:
            detail = ""
            try:
                detail = json.loads(error.read()).get("error", "")
            except (ValueError, OSError):
                pass
            raise ServeError(
                f"{path}: HTTP {error.code}"
                + (f": {detail}" if detail else "")
            ) from None
        except URLError as error:
            raise ServeError(
                f"cannot reach sweep server at {self.base_url}: "
                f"{error.reason}"
            ) from None
        except (HTTPException, OSError) as error:
            # E.g. RemoteDisconnected or ConnectionResetError: the
            # server dropped the connection before sending a status
            # line (urlopen only wraps errors from the *send* side
            # into URLError; response-read failures escape raw).
            raise ServeError(
                f"sweep server at {self.base_url} dropped the "
                f"connection: {error or type(error).__name__}"
            ) from None

    def _json(self, path: str, payload=None) -> dict:
        with self._open(path, payload) as response:
            try:
                return json.load(response)
            except (OSError, HTTPException, ValueError) as error:
                raise ServeError(
                    f"{path}: invalid or truncated response: {error}"
                ) from None

    def _ndjson(self, path: str, payload=None) -> Iterator[dict]:
        # Read-side failures (server killed mid-stream, socket timeout,
        # torn final line) must surface as ServeError like every other
        # transport problem, not as raw JSONDecodeError/OSError.
        with self._open(path, payload) as response:
            while True:
                try:
                    line = response.readline()
                except (OSError, HTTPException) as error:
                    raise ServeError(
                        f"{path}: stream interrupted: "
                        f"{error or type(error).__name__}"
                    ) from None
                if not line:
                    return
                line = line.strip()
                if not line:
                    continue
                try:
                    yield json.loads(line)
                except ValueError as error:
                    raise ServeError(
                        f"{path}: torn stream line: {error}"
                    ) from None

    # -- endpoints -----------------------------------------------------
    def health(self) -> dict:
        return self._json("/healthz")

    def stats(self) -> dict:
        return self._json("/stats")

    def records(self) -> list[dict]:
        """Every current-version record the server holds.

        The stream is close-delimited, so the terminal ``count`` line
        is required: a connection dropped mid-stream raises instead of
        silently returning a truncated list.
        """
        records: list[dict] = []
        count: int | None = None
        for item in self._ndjson("/records"):
            if "hash" in item:
                records.append(item)
            elif "error" in item:
                raise ServeError(f"/records: {item['error']}")
            elif "count" in item:
                count = item["count"]
        if count is None or count != len(records):
            raise ServeError(
                f"/records stream truncated: got {len(records)} records, "
                f"terminal count {count}"
            )
        return records

    # -- the job API ---------------------------------------------------
    def submit_job(
        self,
        spec: Mapping,
        workers: int | None = None,
        vectorize: bool | None = None,
        priority: int | None = None,
    ) -> dict:
        """Submit a sweep spec as a job; returns its status object.

        ``spec`` is the JSON sweep-spec format (``{"grid": ...}`` or
        ``{"points": ...}``, e.g. ``SweepSpec.to_dict()``).  The server
        validates, enqueues, and answers immediately -- the returned
        dict's ``"job"`` field is the id to poll, stream, or cancel.
        Lower ``priority`` numbers schedule sooner (FIFO within a
        level).
        """
        payload: dict = {"spec": dict(spec)}
        if workers is not None:
            payload["workers"] = workers
        if vectorize is not None:
            payload["vectorize"] = vectorize
        if priority is not None:
            payload["priority"] = priority
        return self._json("/sweep", payload)

    def job_status(self, job_id: str) -> dict:
        """One job's state, progress counts, and frontier-so-far."""
        return self._json(f"/jobs/{job_id}")

    def jobs(self) -> list[dict]:
        """Every job the server knows, oldest first."""
        return self._json("/jobs")["jobs"]

    def cancel_job(self, job_id: str) -> dict:
        """Request cooperative cancellation of a job."""
        return self._json(f"/jobs/{job_id}/cancel", {})

    def stream_job(self, job_id: str, after: int = 0) -> Iterator[dict]:
        """Follow a job's records live, from index ``after``.

        Yields completed records in completion order until the job is
        terminal; a dropped stream resumes exactly with
        ``after=<records already seen>``.  A ``done`` job ends by
        capturing the tier summary on :attr:`last_summary`; ``failed``
        and ``cancelled`` terminals raise :class:`ServeError` (the
        records yielded so far are valid either way).
        """
        path = f"/jobs/{job_id}/records"
        if after:
            path += f"?after={int(after)}"
        self.last_summary = None
        for item in self._ndjson(path):
            if "hash" in item:
                yield item
            elif item.get("cancelled"):
                raise ServeError(f"job {job_id} was cancelled")
            elif "summary" in item:
                self.last_summary = item["summary"]
            elif "error" in item:
                raise ServeError(f"job {job_id}: {item['error']}")
        if self.last_summary is None:
            # Streams are close-delimited; no terminal line means the
            # connection died before the job finished.
            raise ServeError(
                f"job {job_id} stream ended without a summary (truncated?)"
            )

    def submit(
        self,
        spec: Mapping,
        workers: int | None = None,
        vectorize: bool | None = None,
        priority: int | None = None,
    ) -> Iterator[dict]:
        """Submit a sweep and follow it: records in completion order.

        Submit-then-stream over the job queue; the trailing summary is
        captured on :attr:`last_summary` rather than yielded, exactly
        like the pre-job-queue streaming protocol.
        """
        job = self.submit_job(
            spec, workers=workers, vectorize=vectorize, priority=priority
        )
        yield from self.stream_job(job["job"])

    def sweep(
        self,
        spec: Mapping,
        workers: int | None = None,
        vectorize: bool | None = None,
        priority: int | None = None,
    ) -> tuple[list[dict], dict | None]:
        """Drain :meth:`submit`; returns ``(records, summary)``."""
        records = list(
            self.submit(
                spec, workers=workers, vectorize=vectorize, priority=priority
            )
        )
        return records, self.last_summary

    def query(self, name: str, **params) -> list[dict]:
        """Run a named server-side reduction; returns its records."""
        body = {k: v for k, v in params.items() if v is not None}
        return self._json(f"/query/{name}", body)["records"]

    def pareto(self, objectives=None, senses=None, where=None) -> list[dict]:
        return self.query(
            "pareto", objectives=objectives, senses=senses, where=where
        )

    def top_k(
        self,
        objective: str = "total_seconds",
        k: int = 10,
        sense: str = "min",
        where=None,
    ) -> list[dict]:
        return self.query(
            "top-k", objective=objective, k=k, sense=sense, where=where
        )

    def accuracy_frontier(
        self,
        accuracy_by_policy: Mapping[str, float],
        objective: str = "total_seconds",
        sense: str = "min",
        where=None,
    ) -> list[dict]:
        return self.query(
            "accuracy-frontier",
            accuracy_by_policy=dict(accuracy_by_policy),
            objective=objective,
            sense=sense,
            where=where,
        )

    def post_records(self, records: list[dict]) -> dict:
        """Ingest records into the server's store (shard upload path)."""
        return self._json("/records", {"records": list(records)})

    def shutdown(self) -> dict:
        """Ask the server to stop serving cleanly."""
        return self._json("/shutdown", {})
