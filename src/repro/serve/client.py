"""Thin stdlib HTTP client for the sweep service.

Speaks the plain JSON/NDJSON protocol of :mod:`repro.serve.server`
with nothing beyond ``urllib``.  ``repro dse --server URL`` runs on
this client; scripts can too::

    client = ServeClient("http://127.0.0.1:8000")
    records, summary = client.sweep({"grid": {"workloads": ["LSTM"]}})
    frontier = client.pareto(where={"workload": "LSTM"})
"""

from __future__ import annotations

import json
from http.client import HTTPException
from typing import Iterator, Mapping
from urllib import request as _request
from urllib.error import HTTPError, URLError

__all__ = ["ServeClient", "ServeError"]


class ServeError(RuntimeError):
    """The server rejected a request or could not be reached."""


class ServeClient:
    """One server, many requests; no connection state to manage.

    ``timeout`` bounds every socket operation, including the wait for
    the next streamed record -- sweeps queue server-side, so raise it
    when long sweeps may sit behind others (``repro dse --server``
    exposes this as ``--timeout``).
    """

    def __init__(self, base_url: str, timeout: float = 600.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        #: Tier summary of the most recent streamed sweep.
        self.last_summary: dict | None = None

    # -- plumbing ------------------------------------------------------
    def _open(self, path: str, payload=None):
        data = None
        headers = {}
        if payload is not None:
            data = json.dumps(payload).encode()
            headers["Content-Type"] = "application/json"
        req = _request.Request(
            self.base_url + path, data=data, headers=headers
        )
        try:
            return _request.urlopen(req, timeout=self.timeout)
        except HTTPError as error:
            detail = ""
            try:
                detail = json.loads(error.read()).get("error", "")
            except (ValueError, OSError):
                pass
            raise ServeError(
                f"{path}: HTTP {error.code}"
                + (f": {detail}" if detail else "")
            ) from None
        except URLError as error:
            raise ServeError(
                f"cannot reach sweep server at {self.base_url}: "
                f"{error.reason}"
            ) from None
        except (HTTPException, OSError) as error:
            # E.g. RemoteDisconnected or ConnectionResetError: the
            # server dropped the connection before sending a status
            # line (urlopen only wraps errors from the *send* side
            # into URLError; response-read failures escape raw).
            raise ServeError(
                f"sweep server at {self.base_url} dropped the "
                f"connection: {error or type(error).__name__}"
            ) from None

    def _json(self, path: str, payload=None) -> dict:
        with self._open(path, payload) as response:
            try:
                return json.load(response)
            except (OSError, HTTPException, ValueError) as error:
                raise ServeError(
                    f"{path}: invalid or truncated response: {error}"
                ) from None

    def _ndjson(self, path: str, payload=None) -> Iterator[dict]:
        # Read-side failures (server killed mid-stream, socket timeout,
        # torn final line) must surface as ServeError like every other
        # transport problem, not as raw JSONDecodeError/OSError.
        with self._open(path, payload) as response:
            while True:
                try:
                    line = response.readline()
                except (OSError, HTTPException) as error:
                    raise ServeError(
                        f"{path}: stream interrupted: "
                        f"{error or type(error).__name__}"
                    ) from None
                if not line:
                    return
                line = line.strip()
                if not line:
                    continue
                try:
                    yield json.loads(line)
                except ValueError as error:
                    raise ServeError(
                        f"{path}: torn stream line: {error}"
                    ) from None

    # -- endpoints -----------------------------------------------------
    def health(self) -> dict:
        return self._json("/healthz")

    def stats(self) -> dict:
        return self._json("/stats")

    def records(self) -> list[dict]:
        """Every current-version record the server holds.

        The stream is close-delimited, so the terminal ``count`` line
        is required: a connection dropped mid-stream raises instead of
        silently returning a truncated list.
        """
        records: list[dict] = []
        count: int | None = None
        for item in self._ndjson("/records"):
            if "hash" in item:
                records.append(item)
            elif "error" in item:
                raise ServeError(f"/records: {item['error']}")
            elif "count" in item:
                count = item["count"]
        if count is None or count != len(records):
            raise ServeError(
                f"/records stream truncated: got {len(records)} records, "
                f"terminal count {count}"
            )
        return records

    def submit(
        self,
        spec: Mapping,
        workers: int | None = None,
        vectorize: bool | None = None,
    ) -> Iterator[dict]:
        """Submit a sweep spec; yield records in completion order.

        ``spec`` is the JSON sweep-spec format (``{"grid": ...}`` or
        ``{"points": ...}``, e.g. ``SweepSpec.to_dict()``).  Records
        stream as the server resolves them -- cache hits immediately,
        cold evaluations as they land.  The trailing summary object is
        captured on :attr:`last_summary` rather than yielded; an
        in-band ``error`` object raises :class:`ServeError`.
        """
        payload: dict = {"spec": dict(spec)}
        if workers is not None:
            payload["workers"] = workers
        if vectorize is not None:
            payload["vectorize"] = vectorize
        self.last_summary = None
        for item in self._ndjson("/sweep", payload):
            if "hash" in item:
                yield item
            elif "summary" in item:
                self.last_summary = item["summary"]
            elif "error" in item:
                raise ServeError(f"/sweep: {item['error']}")
        if self.last_summary is None:
            # Streams are close-delimited; no trailing summary means
            # the connection died before the sweep finished.
            raise ServeError(
                "/sweep stream ended without a summary (truncated?)"
            )

    def sweep(
        self,
        spec: Mapping,
        workers: int | None = None,
        vectorize: bool | None = None,
    ) -> tuple[list[dict], dict | None]:
        """Drain :meth:`submit`; returns ``(records, summary)``."""
        records = list(self.submit(spec, workers=workers, vectorize=vectorize))
        return records, self.last_summary

    def query(self, name: str, **params) -> list[dict]:
        """Run a named server-side reduction; returns its records."""
        body = {k: v for k, v in params.items() if v is not None}
        return self._json(f"/query/{name}", body)["records"]

    def pareto(self, objectives=None, senses=None, where=None) -> list[dict]:
        return self.query(
            "pareto", objectives=objectives, senses=senses, where=where
        )

    def top_k(
        self,
        objective: str = "total_seconds",
        k: int = 10,
        sense: str = "min",
        where=None,
    ) -> list[dict]:
        return self.query(
            "top-k", objective=objective, k=k, sense=sense, where=where
        )

    def accuracy_frontier(
        self,
        accuracy_by_policy: Mapping[str, float],
        objective: str = "total_seconds",
        sense: str = "min",
        where=None,
    ) -> list[dict]:
        return self.query(
            "accuracy-frontier",
            accuracy_by_policy=dict(accuracy_by_policy),
            objective=objective,
            sense=sense,
            where=where,
        )

    def post_records(self, records: list[dict]) -> dict:
        """Ingest records into the server's store (shard upload path)."""
        return self._json("/records", {"records": list(records)})

    def shutdown(self) -> dict:
        """Ask the server to stop serving cleanly."""
        return self._json("/shutdown", {})
