"""Thin stdlib HTTP client for the sweep service.

Speaks the plain JSON/NDJSON protocol of :mod:`repro.serve.server`
with nothing beyond ``urllib``.  ``repro dse --server URL`` runs on
this client; scripts can too::

    client = ServeClient("http://127.0.0.1:8000")
    records, summary = client.sweep({"grid": {"workloads": ["LSTM"]}})
    frontier = client.pareto(where={"workload": "LSTM"})

Sweeps are server-side jobs: :meth:`ServeClient.submit_job` returns a
job id immediately, :meth:`~ServeClient.job_status` polls it,
:meth:`~ServeClient.stream_job` follows its records live (resumable
with ``after=``), and :meth:`~ServeClient.cancel_job` stops it at the
next record boundary.  :meth:`~ServeClient.submit` and
:meth:`~ServeClient.sweep` compose submit + stream, so their
records-in, records-out contract (bit-identical to a local run) is
unchanged from the lock-serialized protocol they replaced.
"""

from __future__ import annotations

import json
import time
from http.client import HTTPException
from typing import Iterator, Mapping
from urllib import request as _request
from urllib.error import HTTPError, URLError
from urllib.parse import quote

__all__ = ["ServeClient", "ServeError"]

#: Default ``limit`` per ``GET /records`` page the client requests.
#: Matches the server's default page size; a million-record dump is
#: ~200 bounded requests instead of one unbounded response.
DEFAULT_PAGE_RECORDS = 5_000

#: Records per ``POST /records`` request: uploads above this chunk
#: into multiple bounded ingest transactions client-side, keeping
#: request bodies and server-side transactions small.
INGEST_BATCH_RECORDS = 20_000


class ServeError(RuntimeError):
    """The server rejected a request or could not be reached.

    ``code`` carries the HTTP status when the server answered at all;
    ``transient`` marks transport-level failures (connection reset,
    timeout, torn response) that an *idempotent* request may safely
    retry -- a 4xx rejection is not transient, re-sending it cannot
    help.  The one 4xx exception is 429 (admission control): the
    server rejected *before* creating any state, so any request may be
    re-sent after ``retry_after`` seconds (the ``Retry-After`` header).
    """

    def __init__(
        self,
        message: str,
        code: int | None = None,
        transient: bool = False,
        retry_after: float | None = None,
    ):
        super().__init__(message)
        self.code = code
        self.transient = transient
        self.retry_after = retry_after


def _is_transient(error: BaseException) -> bool:
    # ConnectionError covers ConnectionResetError and (via
    # http.client.RemoteDisconnected) a server vanishing mid-exchange;
    # TimeoutError covers socket.timeout.  Any other HTTPException is a
    # garbled response from a dying peer -- worth one more try on an
    # idempotent request, never on a mutation.
    return isinstance(error, (ConnectionError, TimeoutError, HTTPException))


class ServeClient:
    """One server, many requests; no connection state to manage.

    ``timeout`` bounds every socket operation, including the wait for
    the next streamed record -- sweeps queue server-side, so raise it
    when long sweeps may sit behind others (``repro dse --server``
    exposes this as ``--timeout``).

    Idempotent requests (bare GETs, and the fleet-worker calls whose
    server-side handling is idempotent by construction) retry transient
    transport failures up to ``retries`` extra times with exponential
    backoff starting at ``backoff`` seconds; mutations such as
    ``POST /sweep`` are never retried -- a duplicate submission is a
    duplicate job.
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 600.0,
        retries: int = 3,
        backoff: float = 0.1,
    ):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retries = max(0, int(retries))
        self.backoff = backoff
        #: Tier summary of the most recent streamed sweep.
        self.last_summary: dict | None = None

    # -- plumbing ------------------------------------------------------
    def _open_once(self, path: str, payload=None):
        data = None
        headers = {}
        if payload is not None:
            data = json.dumps(payload).encode()
            headers["Content-Type"] = "application/json"
        req = _request.Request(
            self.base_url + path, data=data, headers=headers
        )
        try:
            return _request.urlopen(req, timeout=self.timeout)
        except HTTPError as error:
            detail = ""
            retry_after = None
            try:
                body = json.loads(error.read())
                detail = body.get("error", "")
                retry_after = body.get("retry_after")
            except (ValueError, OSError):
                pass
            if retry_after is None:
                try:
                    retry_after = float(error.headers.get("Retry-After"))
                except (AttributeError, TypeError, ValueError):
                    retry_after = None
            raise ServeError(
                f"{path}: HTTP {error.code}"
                + (f": {detail}" if detail else ""),
                code=error.code,
                retry_after=retry_after,
            ) from None
        except URLError as error:
            raise ServeError(
                f"cannot reach sweep server at {self.base_url}: "
                f"{error.reason}",
                transient=_is_transient(error.reason),
            ) from None
        except (HTTPException, OSError) as error:
            # E.g. RemoteDisconnected or ConnectionResetError: the
            # server dropped the connection before sending a status
            # line (urlopen only wraps errors from the *send* side
            # into URLError; response-read failures escape raw).
            raise ServeError(
                f"sweep server at {self.base_url} dropped the "
                f"connection: {error or type(error).__name__}",
                transient=_is_transient(error),
            ) from None

    def _open(self, path: str, payload=None, idempotent: bool | None = None):
        """Open a request, retrying transient failures when idempotent.

        ``idempotent`` defaults to ``payload is None`` -- bare GETs are
        safe to re-send, POST bodies are not unless the caller vouches
        for them (the fleet-worker endpoints do: leases expire, acks
        and record upserts are idempotent server-side).

        A 429 (queue full) retries regardless of idempotency -- the
        server rejected before creating any state -- honoring its
        ``Retry-After`` when it is longer than the backoff step.
        """
        if idempotent is None:
            idempotent = payload is None
        attempt = 0
        while True:
            try:
                return self._open_once(path, payload)
            except ServeError as error:
                throttled = error.code == 429
                retryable = throttled or (idempotent and error.transient)
                if not retryable or attempt >= self.retries:
                    raise
                delay = self.backoff * (2**attempt)
                if throttled and error.retry_after:
                    delay = max(delay, error.retry_after)
                time.sleep(delay)
                attempt += 1

    def _json(
        self, path: str, payload=None, idempotent: bool | None = None
    ) -> dict:
        with self._open(path, payload, idempotent=idempotent) as response:
            try:
                return json.load(response)
            except (OSError, HTTPException, ValueError) as error:
                raise ServeError(
                    f"{path}: invalid or truncated response: {error}"
                ) from None

    def _ndjson(self, path: str, payload=None) -> Iterator[dict]:
        # Read-side failures (server killed mid-stream, socket timeout,
        # torn final line) must surface as ServeError like every other
        # transport problem, not as raw JSONDecodeError/OSError.  A
        # mid-stream drop is transient: resumable streams re-issue the
        # request with ``after=`` (see stream_job).
        with self._open(path, payload) as response:
            while True:
                try:
                    line = response.readline()
                except (OSError, HTTPException) as error:
                    raise ServeError(
                        f"{path}: stream interrupted: "
                        f"{error or type(error).__name__}",
                        transient=True,
                    ) from None
                if not line:
                    return
                line = line.strip()
                if not line:
                    continue
                try:
                    yield json.loads(line)
                except ValueError as error:
                    raise ServeError(
                        f"{path}: torn stream line: {error}"
                    ) from None

    # -- endpoints -----------------------------------------------------
    def health(self) -> dict:
        return self._json("/healthz")

    def ready(self) -> bool:
        """``GET /readyz``: True when the server is accepting work.

        A 503 (still replaying the journal, or draining) is a normal
        readiness answer, not an error; anything else propagates.
        """
        try:
            self._json("/readyz")
        except ServeError as error:
            if error.code == 503:
                return False
            raise
        return True

    def stats(self) -> dict:
        return self._json("/stats")

    def metrics(self) -> str:
        """``GET /metrics``: the raw Prometheus text exposition body."""
        with self._open("/metrics") as response:
            try:
                return response.read().decode("utf-8", "replace")
            except (OSError, HTTPException) as error:
                raise ServeError(
                    f"/metrics: invalid or truncated response: {error}"
                ) from None

    def records(
        self, page_size: int | None = DEFAULT_PAGE_RECORDS
    ) -> list[dict]:
        """Every current-version record the server holds, in hash order.

        Pages through ``GET /records?after=&limit=`` transparently --
        each request (and the server's memory) is bounded by
        ``page_size``, and a transient mid-page failure re-fetches only
        that page (keyset cursors make the re-read idempotent).  A
        server that predates pagination answers the first page with a
        legacy full dump; that is detected and returned as-is.
        ``page_size=None`` forces the legacy single-request dump.

        Streams are close-delimited, so every page requires its
        terminal ``count`` line: a connection dropped mid-stream
        retries, then raises -- never a silently truncated list.
        """
        if page_size is not None and page_size < 1:
            raise ValueError("page_size must be >= 1")
        if page_size is None:
            page, _, _ = self._records_page(None, None)
            return page
        records: list[dict] = []
        after: str | None = None
        while True:
            page, next_cursor, paginated = self._records_page(
                after, page_size
            )
            records.extend(page)
            if not paginated or next_cursor is None:
                return records
            after = next_cursor

    def _records_page(
        self, after: str | None, limit: int | None
    ) -> tuple[list[dict], str | None, bool]:
        """One ``/records`` request; ``(records, next, paginated)``.

        ``paginated`` is False when the server answered with the
        legacy full dump (no ``next`` in the terminal) -- either no
        parameters were sent, or the server predates pagination.
        Transient failures (dropped connection, missing terminal)
        retry the same page up to ``retries`` times.
        """
        path = "/records"
        if limit is not None:
            path += f"?limit={limit}"
            if after is not None:
                path += f"&after={quote(after, safe='')}"
        failures = 0
        while True:
            try:
                page: list[dict] = []
                count: int | None = None
                next_cursor: str | None = None
                paginated = False
                for item in self._ndjson(path):
                    if "hash" in item:
                        page.append(item)
                    elif "error" in item:
                        raise ServeError(f"/records: {item['error']}")
                    elif "count" in item:
                        count = item["count"]
                        next_cursor = item.get("next")
                        paginated = "next" in item
                if count is None or count != len(page):
                    raise ServeError(
                        f"/records stream truncated: got {len(page)} "
                        f"records, terminal count {count}",
                        transient=True,
                    )
                return page, next_cursor, paginated
            except ServeError as error:
                if not error.transient or failures >= self.retries:
                    raise
                failures += 1
                time.sleep(self.backoff * (2 ** (failures - 1)))

    # -- the job API ---------------------------------------------------
    def submit_job(
        self,
        spec: Mapping,
        workers: int | None = None,
        vectorize: bool | None = None,
        priority: int | None = None,
        fleet: bool | Mapping | None = None,
    ) -> dict:
        """Submit a sweep spec as a job; returns its status object.

        ``spec`` is the JSON sweep-spec format (``{"grid": ...}`` or
        ``{"points": ...}``, e.g. ``SweepSpec.to_dict()``).  The server
        validates, enqueues, and answers immediately -- the returned
        dict's ``"job"`` field is the id to poll, stream, or cancel.
        Lower ``priority`` numbers schedule sooner (FIFO within a
        level).  ``fleet=True`` (or ``fleet={"chunks": n}``) submits a
        fleet job: chunked into the lease queue and evaluated by pull
        workers instead of the server's own pool.
        """
        payload: dict = {"spec": dict(spec)}
        if workers is not None:
            payload["workers"] = workers
        if vectorize is not None:
            payload["vectorize"] = vectorize
        if priority is not None:
            payload["priority"] = priority
        if fleet:
            payload["fleet"] = True if fleet is True else dict(fleet)
        return self._json("/sweep", payload)

    def job_status(self, job_id: str) -> dict:
        """One job's state, progress counts, and frontier-so-far."""
        return self._json(f"/jobs/{job_id}")

    def jobs(self) -> list[dict]:
        """Every job the server knows, oldest first."""
        return self._json("/jobs")["jobs"]

    def cancel_job(self, job_id: str) -> dict:
        """Request cooperative cancellation of a job."""
        return self._json(f"/jobs/{job_id}/cancel", {})

    def stream_job(self, job_id: str, after: int = 0) -> Iterator[dict]:
        """Follow a job's records live, from index ``after``.

        Yields completed records in completion order until the job is
        terminal; the stream endpoint is resumable with
        ``after=<records already seen>``, and this method uses that
        itself -- a transient mid-stream drop (connection reset,
        timeout) transparently re-issues the request from the current
        cursor, up to ``retries`` times back to back.  A ``done`` job
        ends by capturing the tier summary on :attr:`last_summary`;
        ``failed`` and ``cancelled`` terminals raise
        :class:`ServeError` (the records yielded so far are valid
        either way).
        """
        cursor = int(after)  # negative values reach the server's 400
        self.last_summary = None
        failures = 0
        while True:
            path = f"/jobs/{job_id}/records"
            if cursor:
                path += f"?after={cursor}"
            try:
                for item in self._ndjson(path):
                    if "hash" in item:
                        yield item
                        cursor += 1
                        failures = 0  # progress resets the retry budget
                    elif item.get("cancelled"):
                        raise ServeError(f"job {job_id} was cancelled")
                    elif "summary" in item:
                        self.last_summary = item["summary"]
                    elif "error" in item:
                        raise ServeError(f"job {job_id}: {item['error']}")
            except ServeError as error:
                if not error.transient or failures >= self.retries:
                    raise
                failures += 1
                time.sleep(self.backoff * (2 ** (failures - 1)))
                continue
            if self.last_summary is None:
                # Streams are close-delimited; no terminal line means
                # the connection died before the job finished.
                raise ServeError(
                    f"job {job_id} stream ended without a summary "
                    "(truncated?)"
                )
            return

    def submit(
        self,
        spec: Mapping,
        workers: int | None = None,
        vectorize: bool | None = None,
        priority: int | None = None,
    ) -> Iterator[dict]:
        """Submit a sweep and follow it: records in completion order.

        Submit-then-stream over the job queue; the trailing summary is
        captured on :attr:`last_summary` rather than yielded, exactly
        like the pre-job-queue streaming protocol.
        """
        job = self.submit_job(
            spec, workers=workers, vectorize=vectorize, priority=priority
        )
        yield from self.stream_job(job["job"])

    def sweep(
        self,
        spec: Mapping,
        workers: int | None = None,
        vectorize: bool | None = None,
        priority: int | None = None,
    ) -> tuple[list[dict], dict | None]:
        """Drain :meth:`submit`; returns ``(records, summary)``."""
        records = list(
            self.submit(
                spec, workers=workers, vectorize=vectorize, priority=priority
            )
        )
        return records, self.last_summary

    def query(self, name: str, **params) -> list[dict]:
        """Run a named server-side reduction; returns its records."""
        body = {k: v for k, v in params.items() if v is not None}
        return self._json(f"/query/{name}", body)["records"]

    def pareto(self, objectives=None, senses=None, where=None) -> list[dict]:
        return self.query(
            "pareto", objectives=objectives, senses=senses, where=where
        )

    def top_k(
        self,
        objective: str = "total_seconds",
        k: int = 10,
        sense: str = "min",
        where=None,
    ) -> list[dict]:
        return self.query(
            "top-k", objective=objective, k=k, sense=sense, where=where
        )

    def accuracy_frontier(
        self,
        accuracy_by_policy: Mapping[str, float],
        objective: str = "total_seconds",
        sense: str = "min",
        where=None,
    ) -> list[dict]:
        return self.query(
            "accuracy-frontier",
            accuracy_by_policy=dict(accuracy_by_policy),
            objective=objective,
            sense=sense,
            where=where,
        )

    def post_records(
        self,
        records: list[dict],
        batch_size: int | None = INGEST_BATCH_RECORDS,
    ) -> dict:
        """Ingest records into the server's store (shard upload path).

        Uploads above ``batch_size`` records chunk into multiple
        requests client-side, so request bodies and the server's
        per-request transactions stay bounded however large the shard.
        Retried on transient failures: the store's version-aware
        conditional upsert makes a replayed batch a no-op.  Returns
        ``{"appended": total, "job": last_id}`` (plus ``"jobs"`` with
        every ingest-job id when the upload chunked).
        """
        records = list(records)
        if batch_size is not None and batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if batch_size is None or len(records) <= batch_size:
            return self._json(
                "/records", {"records": records}, idempotent=True
            )
        appended = 0
        jobs: list[str] = []
        for start in range(0, len(records), batch_size):
            reply = self._json(
                "/records",
                {"records": records[start : start + batch_size]},
                idempotent=True,
            )
            appended += reply.get("appended", 0)
            jobs.append(reply.get("job"))
        return {"appended": appended, "job": jobs[-1], "jobs": jobs}

    # -- the fleet API (worker side) -------------------------------------
    def register_worker(
        self, name: str | None = None, capacity: int = 1
    ) -> dict:
        """Register as a fleet worker; returns id and heartbeat cadence."""
        payload: dict = {"capacity": capacity}
        if name:
            payload["name"] = name
        return self._json("/workers/register", payload)

    def worker_heartbeat(
        self, worker_id: str, metrics: dict | None = None
    ) -> dict:
        """Tell the server this worker is still alive (idempotent).

        ``metrics`` piggybacks the worker's local registry snapshot
        (:meth:`MetricsRegistry.snapshot`) so the coordinator can show
        per-worker throughput without a second reporting channel.
        """
        payload: dict = {}
        if metrics is not None:
            payload["metrics"] = metrics
        return self._json(
            f"/workers/{worker_id}/heartbeat", payload, idempotent=True
        )

    def lease_chunk(self, worker_id: str) -> dict:
        """Pull the next chunk lease (or an idle report).

        Safe to retry: a lease granted into a dropped response simply
        expires and requeues after the lease TTL.
        """
        return self._json(f"/workers/{worker_id}/lease", {}, idempotent=True)

    def ack_chunk(
        self,
        worker_id: str,
        job_id: str,
        chunk: int,
        error: str | None = None,
        timings: dict | None = None,
    ) -> dict:
        """Report a chunk done (or failed).  Acks are idempotent.

        ``timings`` carries the worker's measured phase durations
        (``worker-eval``, ``upload``, in seconds) for the coordinator's
        chunk-phase histogram.
        """
        payload: dict = {"job": job_id, "chunk": chunk}
        if error is not None:
            payload["error"] = error
        if timings:
            payload["timings"] = timings
        return self._json(
            f"/workers/{worker_id}/ack", payload, idempotent=True
        )

    def workers(self) -> list[dict]:
        """Every registered fleet worker, oldest registration first."""
        return self._json("/workers")["workers"]

    def shutdown(self, drain: bool = False) -> dict:
        """Ask the server to stop serving cleanly.

        ``drain=True`` requests a graceful drain: admission stops
        immediately (the response says ``"draining"``), running jobs
        get up to the server's ``--drain-timeout`` to finish, and the
        server exits 0 afterwards.
        """
        path = "/shutdown?drain=true" if drain else "/shutdown"
        return self._json(path, {})
