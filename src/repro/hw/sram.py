"""CACTI-style on-chip scratchpad (SRAM) energy/area model.

The paper models its 112 KB scratchpads with CACTI-P at 45 nm.  CACTI is a
closed C tool; we substitute a fitted curve of the standard form used in
architecture studies: access energy grows with the square root of capacity
(bitline/wordline length) and linearly with access width.  The anchor point
(8 KB, 64-bit access ~= 10 pJ at 45 nm) matches published CACTI-P numbers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["ScratchpadModel"]

_ANCHOR_CAPACITY_BYTES = 8 * 1024
_ANCHOR_ACCESS_BITS = 64
_ANCHOR_ENERGY_PJ = 10.0
_AREA_MM2_PER_KB = 0.012  # 45 nm SRAM macro density


@dataclass(frozen=True)
class ScratchpadModel:
    """One on-chip SRAM buffer.

    Attributes
    ----------
    capacity_bytes:
        Total capacity (the paper uses 112 KB per accelerator).
    access_bits:
        Bits moved per access (one vector of operands).
    banks:
        Independent banks; energy is per-bank (capacity is divided), which
        is how wide systolic rows keep access energy manageable.
    """

    capacity_bytes: int = 112 * 1024
    access_bits: int = 128
    banks: int = 1

    def __post_init__(self) -> None:
        if self.capacity_bytes < 1:
            raise ValueError("capacity must be positive")
        if self.access_bits < 1:
            raise ValueError("access width must be positive")
        if self.banks < 1 or self.capacity_bytes % self.banks != 0:
            raise ValueError("banks must be positive and divide capacity")

    @property
    def bank_capacity_bytes(self) -> int:
        return self.capacity_bytes // self.banks

    @property
    def energy_per_access_pj(self) -> float:
        """Dynamic energy of one ``access_bits``-wide access."""
        capacity_factor = math.sqrt(self.bank_capacity_bytes / _ANCHOR_CAPACITY_BYTES)
        width_factor = self.access_bits / _ANCHOR_ACCESS_BITS
        return _ANCHOR_ENERGY_PJ * capacity_factor * width_factor

    @property
    def energy_per_byte_pj(self) -> float:
        return self.energy_per_access_pj / (self.access_bits / 8)

    @property
    def area_mm2(self) -> float:
        return _AREA_MM2_PER_KB * self.capacity_bytes / 1024

    def access_energy_pj(self, num_bytes: float) -> float:
        """Energy to stream ``num_bytes`` through this buffer (reads or writes)."""
        if num_bytes < 0:
            raise ValueError("byte count must be non-negative")
        return num_bytes * self.energy_per_byte_pj
