"""Gate-level analytical cost models for datapath components (45 nm).

These first-principles models estimate relative power and area of the four
hardware logics the paper's Fig. 4 breaks down: multiplication, addition,
shifting, and registering.  Costs are expressed in *full-adder equivalents*
(FAE) and converted to power/area through per-technology constants; all
figure-level results are reported normalized to a conventional 8-bit MAC,
so only relative magnitudes matter.

Modelling assumptions (documented per the paper's Section III-B):

* ``a x b`` array multiplier: ``a*b`` AND gates for partial products plus
  ``(a-1)*b`` full adders of reduction (1x1 degenerates to a single AND
  gate, matching the paper's observation that 1-bit slicing multipliers are
  "merely AND gates").
* ``n``-input adder tree with ``w``-bit inputs: binary tree of ripple
  adders whose width grows one bit per level.
* Barrel shifter of width ``w`` with ``p`` shift positions:
  ``ceil(log2(p+1))`` mux stages of width ``w``.
* Register: cost proportional to bit count.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["TechnologyConstants", "TECH_45NM", "Components"]


@dataclass(frozen=True)
class TechnologyConstants:
    """Per-gate relative cost constants for one technology corner.

    ``*_power`` constants are switching-energy weights; ``*_area`` are
    layout-area weights.  Defaults approximate 45 nm standard cells where a
    full adder's dynamic energy is the unit, AND gates are ~0.3x, a 2:1 mux
    ~0.4x, and a flip-flop ~1.1x (registers switch less often than
    combinational logic on average, which the activity factor captures).
    """

    fa_power: float = 1.0
    and_power: float = 0.3
    mux_power: float = 0.4
    reg_power: float = 4.0
    reg_activity: float = 1.0
    fa_area: float = 1.0
    and_area: float = 0.35
    mux_area: float = 0.5
    reg_area: float = 3.0


TECH_45NM = TechnologyConstants()


@dataclass(frozen=True)
class Cost:
    """A (power, area) pair in technology-relative units."""

    power: float
    area: float

    def __add__(self, other: "Cost") -> "Cost":
        return Cost(self.power + other.power, self.area + other.area)

    def scale(self, factor: float) -> "Cost":
        return Cost(self.power * factor, self.area * factor)


ZERO_COST = Cost(0.0, 0.0)


class Components:
    """Cost calculators for the four datapath logics of Fig. 4."""

    def __init__(self, tech: TechnologyConstants = TECH_45NM) -> None:
        self.tech = tech

    def multiplier(self, bits_a: int, bits_b: int) -> Cost:
        """Unsigned array multiplier ``bits_a x bits_b``."""
        if bits_a < 1 or bits_b < 1:
            raise ValueError("multiplier operand widths must be >= 1")
        ands = bits_a * bits_b
        fas = (bits_a - 1) * bits_b
        t = self.tech
        return Cost(
            ands * t.and_power + fas * t.fa_power,
            ands * t.and_area + fas * t.fa_area,
        )

    def adder(self, width: int) -> Cost:
        """Ripple-carry adder of ``width`` bits."""
        if width < 1:
            raise ValueError("adder width must be >= 1")
        t = self.tech
        return Cost(width * t.fa_power, width * t.fa_area)

    def adder_tree(self, inputs: int, input_width: int) -> Cost:
        """Binary adder tree reducing ``inputs`` values of ``input_width`` bits.

        Widths grow by one bit per level; a single input needs no tree.
        Non-power-of-two input counts are padded up (idle adders still
        occupy area; clock gating is not modelled).
        """
        if inputs < 1:
            raise ValueError("adder tree needs >= 1 input")
        total = ZERO_COST
        n = 1 << max(0, math.ceil(math.log2(inputs)))
        width = input_width
        while n > 1:
            n //= 2
            total = total + self.adder(width).scale(n)
            width += 1
        return total

    def shifter(self, width: int, max_shift: int, hardwired: bool = True) -> Cost:
        """Composition shifter of ``width`` bits over ``max_shift`` positions.

        In a CVU the shift applied to each NBVE output is *static* -- NBVE
        (j, k) always shifts by ``slice_width * (j + k)`` -- so the default
        (``hardwired=True``) models fixed wiring plus one mux stage for the
        runtime bitwidth-mode select.  ``hardwired=False`` models a full
        barrel shifter (what a naive reconfigurable implementation would
        pay), used by the ablation benches.
        """
        if width < 1:
            raise ValueError("shifter width must be >= 1")
        if max_shift < 0:
            raise ValueError("max_shift must be >= 0")
        if max_shift == 0:
            return ZERO_COST
        t = self.tech
        if hardwired:
            cells = float(width)
        else:
            stages = math.ceil(math.log2(max_shift + 1))
            cells = stages * (width + max_shift / 2.0)
        return Cost(cells * t.mux_power, cells * t.mux_area)

    def register(self, bits: int) -> Cost:
        """Pipeline/output register of ``bits`` flip-flops."""
        if bits < 1:
            raise ValueError("register width must be >= 1")
        t = self.tech
        return Cost(bits * t.reg_power * t.reg_activity, bits * t.reg_area)
