"""Off-chip memory models: DDR4 and HBM2 (paper Section IV-A).

The paper characterizes its two memory systems entirely by sustained
bandwidth and energy per bit:

* DDR4: 16 GB/s, 15 pJ/bit,
* HBM2: 256 GB/s, 1.2 pJ/bit (after O'Connor et al., MICRO'17 fine-grained
  DRAM numbers).

We add two refinements: an optional efficiency factor (achieved / peak
bandwidth) for ablation sweeps, and an interface *background power*
(controller + PHY static draw: ~0.25 W for a DDR4 channel, ~0.45 W for an
HBM2 stack's interface) that accrues over runtime.  Background power is
why Perf-per-Watt gains in Fig. 9 do not simply track HBM2's speedups.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MemorySpec", "DDR4", "HBM2", "scaled_memory"]


@dataclass(frozen=True)
class MemorySpec:
    """An off-chip memory system."""

    name: str
    bandwidth_gb_s: float
    energy_pj_per_bit: float
    efficiency: float = 1.0
    background_power_w: float = 0.0

    def __post_init__(self) -> None:
        if self.bandwidth_gb_s <= 0:
            raise ValueError("bandwidth must be positive")
        if self.energy_pj_per_bit < 0:
            raise ValueError("energy must be non-negative")
        if self.background_power_w < 0:
            raise ValueError("background power must be non-negative")
        if not 0 < self.efficiency <= 1:
            raise ValueError("efficiency must be in (0, 1]")

    @property
    def effective_bytes_per_second(self) -> float:
        return self.bandwidth_gb_s * 1e9 * self.efficiency

    def bytes_per_cycle(self, frequency_hz: float) -> float:
        """Sustained bytes deliverable per accelerator clock cycle."""
        if frequency_hz <= 0:
            raise ValueError("frequency must be positive")
        return self.effective_bytes_per_second / frequency_hz

    def transfer_seconds(self, num_bytes: float) -> float:
        if num_bytes < 0:
            raise ValueError("byte count must be non-negative")
        return num_bytes / self.effective_bytes_per_second

    def transfer_energy_pj(self, num_bytes: float) -> float:
        if num_bytes < 0:
            raise ValueError("byte count must be non-negative")
        return num_bytes * 8 * self.energy_pj_per_bit


DDR4 = MemorySpec(
    name="DDR4", bandwidth_gb_s=16.0, energy_pj_per_bit=15.0, background_power_w=0.25
)
HBM2 = MemorySpec(
    name="HBM2", bandwidth_gb_s=256.0, energy_pj_per_bit=1.2, background_power_w=0.45
)


def scaled_memory(base: MemorySpec, bandwidth_gb_s: float) -> MemorySpec:
    """A hypothetical memory with ``base``'s energy at a different bandwidth.

    Used by the bandwidth-crossover ablation bench.
    """
    return MemorySpec(
        name=f"{base.name}@{bandwidth_gb_s:g}GB/s",
        bandwidth_gb_s=bandwidth_gb_s,
        energy_pj_per_bit=base.energy_pj_per_bit,
        efficiency=base.efficiency,
        background_power_w=base.background_power_w,
    )
