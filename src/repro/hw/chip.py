"""Chip-level area and power accounting for the Table II platforms.

Combines the Fig. 4 per-MAC cost ratios (anchored to a synthesized 45 nm
conventional MAC footprint) with the CACTI-style scratchpad model to
produce the floorplan-level summaries an accelerator paper's "platform"
table implies: compute area, memory area, total core area, and the power
budget split.
"""

from __future__ import annotations

from dataclasses import dataclass

from .costmodel import CONVENTIONAL_MAC_POWER_MW, PaperCostModel
from .platforms import ALL_ASIC_PLATFORMS, AcceleratorSpec

__all__ = ["CONVENTIONAL_MAC_AREA_MM2", "ChipReport", "chip_report", "all_chip_reports"]

# Synthesized 45 nm 8-bit MAC + accumulator footprint (standard-cell,
# ~2500 um^2 -- consistent with published 45 nm MAC area numbers).
CONVENTIONAL_MAC_AREA_MM2 = 2500e-6


@dataclass(frozen=True)
class ChipReport:
    """Floorplan-level summary of one platform."""

    name: str
    num_macs: int
    compute_area_mm2: float
    sram_area_mm2: float
    compute_power_mw: float

    @property
    def total_area_mm2(self) -> float:
        return self.compute_area_mm2 + self.sram_area_mm2

    @property
    def area_per_mac_um2(self) -> float:
        return self.compute_area_mm2 / self.num_macs * 1e6

    def __str__(self) -> str:
        return (
            f"{self.name}: {self.num_macs} MACs, "
            f"{self.compute_area_mm2:.2f} mm^2 compute + "
            f"{self.sram_area_mm2:.2f} mm^2 SRAM = {self.total_area_mm2:.2f} mm^2, "
            f"{self.compute_power_mw:.0f} mW compute"
        )


def _mac_cost_ratios(spec: AcceleratorSpec) -> tuple[float, float]:
    """(area, power) per MAC relative to a conventional MAC."""
    if spec.style == "conventional":
        return 1.0, 1.0
    model = PaperCostModel()
    return (
        model.mac_area_ratio(spec.slice_width, spec.lanes),
        model.mac_power_ratio(spec.slice_width, spec.lanes),
    )


def chip_report(spec: AcceleratorSpec) -> ChipReport:
    """Area/power accounting for one Table II platform."""
    area_ratio, power_ratio = _mac_cost_ratios(spec)
    compute_area = spec.num_macs * CONVENTIONAL_MAC_AREA_MM2 * area_ratio
    compute_power = spec.num_macs * CONVENTIONAL_MAC_POWER_MW * power_ratio
    return ChipReport(
        name=spec.name,
        num_macs=spec.num_macs,
        compute_area_mm2=compute_area,
        sram_area_mm2=spec.scratchpad.area_mm2,
        compute_power_mw=compute_power,
    )


def all_chip_reports() -> list[ChipReport]:
    return [chip_report(spec) for spec in ALL_ASIC_PLATFORMS]
