"""Per-MAC power/area cost models for conventional MACs and CVUs.

Two interchangeable models implement :class:`CostModel`:

* :class:`AnalyticalCostModel` -- derives every Fig. 4 bar from the
  gate-level component models in :mod:`repro.hw.components`.  It
  reproduces the paper's *qualitative* findings from first principles
  (adder tree dominates; longer NBVEs amortize aggregation; 2-bit slicing
  beats 1-bit; saturation towards L=16) without using any paper data.
* :class:`PaperCostModel` -- returns the synthesized numbers transcribed in
  :mod:`repro.hw.calibration`; used by default for quantitative
  reproduction of Fig. 4 and for deriving Table II compute budgets.

Absolute anchor: the paper gives every accelerator a 250 mW core budget and
the TPU-like baseline 512 conventional MACs, fixing the conventional 8-bit
MAC at ~0.488 mW @ 500 MHz (~0.977 pJ/MAC).  All absolute energies scale
from that anchor via the normalized ratios.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .calibration import (
    AREA_1BIT_TOTALS,
    SWEEP_LENGTHS,
    Breakdown,
    calibrated_breakdown,
    calibrated_total,
)
from .components import TECH_45NM, Components, TechnologyConstants

__all__ = [
    "CORE_POWER_BUDGET_MW",
    "BASELINE_MAC_COUNT",
    "CONVENTIONAL_MAC_POWER_MW",
    "CONVENTIONAL_MAC_ENERGY_PJ",
    "CLOCK_FREQUENCY_HZ",
    "CostModel",
    "AnalyticalCostModel",
    "PaperCostModel",
    "units_under_power_budget",
]

CORE_POWER_BUDGET_MW = 250.0
BASELINE_MAC_COUNT = 512
CLOCK_FREQUENCY_HZ = 500e6
CONVENTIONAL_MAC_POWER_MW = CORE_POWER_BUDGET_MW / BASELINE_MAC_COUNT
CONVENTIONAL_MAC_ENERGY_PJ = (
    CONVENTIONAL_MAC_POWER_MW * 1e-3 / CLOCK_FREQUENCY_HZ * 1e12
)


class CostModel:
    """Interface: normalized per-8b-MAC costs of a CVU design point."""

    name = "abstract"

    def breakdown(self, slice_width: int, lanes: int, metric: str) -> Breakdown:
        raise NotImplementedError

    def total(self, slice_width: int, lanes: int, metric: str) -> float:
        return self.breakdown(slice_width, lanes, metric).total

    def mac_power_ratio(self, slice_width: int, lanes: int) -> float:
        """Power per 8b x 8b MAC relative to a conventional MAC."""
        return self.total(slice_width, lanes, "power")

    def mac_area_ratio(self, slice_width: int, lanes: int) -> float:
        return self.total(slice_width, lanes, "area")

    def mac_power_mw(self, slice_width: int, lanes: int) -> float:
        return CONVENTIONAL_MAC_POWER_MW * self.mac_power_ratio(slice_width, lanes)

    def mac_energy_pj(self, slice_width: int, lanes: int) -> float:
        return CONVENTIONAL_MAC_ENERGY_PJ * self.mac_power_ratio(slice_width, lanes)


@dataclass(frozen=True)
class _CVUGeometry:
    """Structural parameters of a CVU for the cost derivation."""

    slice_width: int
    lanes: int
    max_bitwidth: int = 8

    @property
    def n_nbve(self) -> int:
        per_operand = self.max_bitwidth // self.slice_width
        return per_operand * per_operand

    @property
    def product_bits(self) -> int:
        return 2 * self.slice_width

    @property
    def nbve_out_bits(self) -> int:
        return self.product_bits + max(0, math.ceil(math.log2(self.lanes)))

    @property
    def max_shift(self) -> int:
        return 2 * (self.max_bitwidth - self.slice_width)

    @property
    def accumulator_bits(self) -> int:
        return 2 * self.max_bitwidth + 8


class AnalyticalCostModel(CostModel):
    """First-principles gate-level model of the Fig. 4 design space."""

    name = "analytical"

    def __init__(self, tech: TechnologyConstants = TECH_45NM) -> None:
        self.components = Components(tech)

    def conventional_mac(self, metric: str) -> float:
        """Absolute (relative-unit) cost of one conventional 8-bit MAC."""
        c = self.components
        acc = 16 + 8  # product width + accumulation headroom
        cost = c.multiplier(8, 8) + c.adder(acc) + c.register(acc)
        return getattr(cost, self._field(metric))

    def breakdown(self, slice_width: int, lanes: int, metric: str) -> Breakdown:
        if slice_width < 1 or 8 % slice_width != 0:
            raise ValueError(f"slice_width must divide 8, got {slice_width}")
        if lanes < 1:
            raise ValueError(f"lanes must be >= 1, got {lanes}")
        geom = _CVUGeometry(slice_width=slice_width, lanes=lanes)
        c = self.components
        field = self._field(metric)
        n, ell = geom.n_nbve, geom.lanes

        # Multiplication: N narrow multipliers serve each wide MAC.
        mult = getattr(c.multiplier(slice_width, slice_width), field) * n

        # Addition: per-NBVE trees (amortized over L lanes) plus the global
        # aggregation tree across NBVEs.
        add = 0.0
        if ell > 1:
            add += n * getattr(c.adder_tree(ell, geom.product_bits), field) / ell
        global_in_bits = geom.nbve_out_bits + geom.max_shift
        add += getattr(c.adder_tree(n, global_in_bits), field) / ell
        # Output accumulation into the running partial sum.
        add += getattr(c.adder(geom.accumulator_bits), field) / ell

        # Shifting: one barrel shifter per NBVE output.
        shift = (
            n * getattr(c.shifter(geom.nbve_out_bits, geom.max_shift), field) / ell
        )

        # Registering: one accumulator register per CVU output.
        reg = getattr(c.register(geom.accumulator_bits), field) / ell

        base = self.conventional_mac(metric)
        return Breakdown(mult / base, add / base, shift / base, reg / base)

    @staticmethod
    def _field(metric: str) -> str:
        if metric not in ("power", "area"):
            raise ValueError(f"metric must be 'power' or 'area', got {metric!r}")
        return metric


class PaperCostModel(CostModel):
    """Synthesized Fig. 4 numbers from the paper (45 nm Design Compiler).

    The published tables cover 1-bit and 2-bit slicing at L in
    {1, 2, 4, 8, 16}.  The 1-bit *area* breakdown was only published as bar
    totals; its component split is borrowed from the analytical model and
    rescaled to the published totals.  Other design points fall back to the
    analytical model, rescaled to agree with the nearest published total
    (so hybrid sweeps stay continuous).
    """

    name = "paper-calibrated"

    def __init__(self) -> None:
        self._analytical = AnalyticalCostModel()

    def breakdown(self, slice_width: int, lanes: int, metric: str) -> Breakdown:
        try:
            return calibrated_breakdown(slice_width, lanes, metric)
        except KeyError:
            pass
        if metric == "area" and slice_width == 1 and lanes in AREA_1BIT_TOTALS:
            shape = self._analytical.breakdown(slice_width, lanes, metric)
            scale = AREA_1BIT_TOTALS[lanes] / shape.total
            return Breakdown(
                shape.multiplication * scale,
                shape.addition * scale,
                shape.shifting * scale,
                shape.registering * scale,
            )
        # Uncalibrated point: analytical shape anchored at the nearest
        # published (slice_width, L) total.
        shape = self._analytical.breakdown(slice_width, lanes, metric)
        anchor = self._nearest_anchor(slice_width, lanes, metric)
        if anchor is None:
            return shape
        anchor_sw, anchor_l, anchor_total = anchor
        analytical_anchor = self._analytical.total(anchor_sw, anchor_l, metric)
        scale = anchor_total / analytical_anchor
        return Breakdown(
            shape.multiplication * scale,
            shape.addition * scale,
            shape.shifting * scale,
            shape.registering * scale,
        )

    @staticmethod
    def _nearest_anchor(
        slice_width: int, lanes: int, metric: str
    ) -> tuple[int, int, float] | None:
        candidates = []
        for sw in (1, 2):
            for ell in SWEEP_LENGTHS:
                try:
                    total = calibrated_total(sw, ell, metric)
                except KeyError:
                    continue
                distance = abs(
                    math.log2(max(sw, slice_width) / min(sw, slice_width))
                ) + abs(math.log2(max(ell, lanes) / min(ell, lanes)))
                candidates.append((distance, sw, ell, total))
        if not candidates:
            return None
        _, sw, ell, total = min(candidates, key=lambda c: c[0])
        return sw, ell, total


def units_under_power_budget(
    per_unit_power_mw: float,
    budget_mw: float = CORE_POWER_BUDGET_MW,
    granularity: int = 64,
) -> int:
    """How many compute units fit a core power budget (Table II derivation).

    The paper sizes arrays to hardware-friendly multiples; we floor to
    ``granularity`` units (e.g. 1042 affordable BPVeC MACs -> 1024).
    """
    if per_unit_power_mw <= 0:
        raise ValueError("per-unit power must be positive")
    raw = int(budget_mw / per_unit_power_mw)
    if raw < granularity:
        return max(1, raw)
    return (raw // granularity) * granularity
