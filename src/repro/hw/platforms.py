"""ASIC platform configurations (paper Table II).

Three systolic accelerators share a 250 mW core budget, 112 KB of on-chip
scratchpad, 500 MHz, and a 45 nm node; they differ in compute style:

* **TPU-like baseline**: 512 conventional fixed 8-bit MACs.
* **BitFusion**: 448 Fusion Units -- scalar spatial bit-composability; each
  FU holds 16 BitBricks and delivers 1 (8b x 8b) ... 16 (2b x 2b)
  multiply-accumulates per cycle.
* **BPVeC**: 1024 MAC-equivalents organised as 64 CVUs of 16 lanes; same
  bit-flexibility as BitFusion but amortized across vectors, which is what
  doubles the affordable compute under the power budget.

Throughput and energy scale with runtime operand bitwidths through the
same composition algebra as the functional model
(:func:`repro.core.plan_composition`).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..core.composition import plan_composition
from .costmodel import CONVENTIONAL_MAC_ENERGY_PJ, PaperCostModel
from .sram import ScratchpadModel

__all__ = [
    "AcceleratorSpec",
    "TPU_LIKE",
    "BITFUSION",
    "BPVEC",
    "ALL_ASIC_PLATFORMS",
    "with_units",
]

_PAPER_COSTS = PaperCostModel()

# Per-8b-MAC power of temporal (bit-serial) units relative to a
# conventional MAC: the serial lane is multiplier-free but re-registers
# every cycle and needs wide shift-accumulators; published overheads are
# ~15% (Stripes, activation-serial) and ~25% (Loom, fully serial).
_SERIAL_POWER_RATIOS = {"stripes": 1.15, "loom": 1.25}


@dataclass(frozen=True)
class AcceleratorSpec:
    """One ASIC platform of Table II.

    ``style`` selects the datapath behaviour:

    * ``"conventional"``: fixed 8-bit units; reduced bitwidths bring no
      speedup and no energy saving.
    * ``"bitfusion"``: scalar bit-composable units (slice_width=2, L=1).
    * ``"bpvec"``: vector bit-composable units (slice_width=2, L=16).
    """

    name: str
    style: str
    num_macs: int
    array_rows: int
    array_cols: int
    frequency_hz: float = 500e6
    onchip_bytes: int = 112 * 1024
    core_power_mw: float = 250.0
    uncore_power_mw: float = 250.0  # scratchpad leakage + control + clocking
    technology_nm: int = 45
    slice_width: int = 2
    lanes: int = 1
    max_bitwidth: int = 8

    def __post_init__(self) -> None:
        if self.style not in ("conventional", "bitfusion", "bpvec", "stripes", "loom"):
            raise ValueError(f"unknown style {self.style!r}")
        if self.num_macs < 1:
            raise ValueError("num_macs must be positive")
        if self.array_rows * self.array_cols * self.lanes != self.num_macs:
            raise ValueError(
                f"array geometry {self.array_rows}x{self.array_cols} with "
                f"{self.lanes} lanes does not match num_macs={self.num_macs}"
            )

    # ------------------------------------------------------------------
    # Throughput
    # ------------------------------------------------------------------
    def throughput_multiplier(self, bw_x: int, bw_w: int) -> int:
        """Extra MAC parallelism unlocked by reduced bitwidths.

        Spatial styles (bitfusion/bpvec) regroup 2-bit units; temporal
        styles gain by finishing serial products in fewer cycles --
        Stripes serializes activations only, Loom both operands.
        """
        if self.style == "conventional":
            return 1
        if self.style == "stripes":
            return max(1, self.max_bitwidth // bw_x)
        if self.style == "loom":
            return max(1, (self.max_bitwidth * self.max_bitwidth) // (bw_x * bw_w))
        plan = plan_composition(
            bw_x, bw_w, slice_width=self.slice_width, max_bitwidth=self.max_bitwidth
        )
        return plan.throughput_multiplier

    def macs_per_cycle(self, bw_x: int = 8, bw_w: int = 8) -> int:
        """Effective multiply-accumulates per cycle for a bitwidth pair."""
        return self.num_macs * self.throughput_multiplier(bw_x, bw_w)

    def peak_ops_per_second(self, bw_x: int = 8, bw_w: int = 8) -> float:
        """Peak ops/s counting one MAC as two operations (mult + add)."""
        return 2.0 * self.macs_per_cycle(bw_x, bw_w) * self.frequency_hz

    # ------------------------------------------------------------------
    # Energy
    # ------------------------------------------------------------------
    def base_mac_energy_pj(self) -> float:
        """Energy of one full-bitwidth MAC on this platform's datapath."""
        if self.style == "conventional":
            return CONVENTIONAL_MAC_ENERGY_PJ
        if self.style in _SERIAL_POWER_RATIOS:
            return CONVENTIONAL_MAC_ENERGY_PJ * _SERIAL_POWER_RATIOS[self.style]
        ratio = _PAPER_COSTS.mac_power_ratio(self.slice_width, self.lanes)
        return CONVENTIONAL_MAC_ENERGY_PJ * ratio

    def mac_energy_pj(self, bw_x: int = 8, bw_w: int = 8) -> float:
        """Energy per *effective* MAC at the given bitwidths.

        Bit-composable datapaths repurpose the same switching hardware for
        ``throughput_multiplier`` MACs, so per-MAC energy divides by it.
        """
        return self.base_mac_energy_pj() / self.throughput_multiplier(bw_x, bw_w)

    # ------------------------------------------------------------------
    # Memory hierarchy
    # ------------------------------------------------------------------
    @property
    def scratchpad(self) -> ScratchpadModel:
        access_bits = 8 * self.array_rows  # one operand vector per access
        return ScratchpadModel(
            capacity_bytes=self.onchip_bytes, access_bits=access_bits
        )

    @property
    def reduction_lanes(self) -> int:
        """Elements of the reduction (dot-product) dimension consumed at once."""
        return self.array_rows * self.lanes


# Table II configurations -------------------------------------------------

TPU_LIKE = AcceleratorSpec(
    name="TPU-like baseline",
    style="conventional",
    num_macs=512,
    array_rows=16,
    array_cols=32,
)

BITFUSION = AcceleratorSpec(
    name="BitFusion",
    style="bitfusion",
    num_macs=448,
    array_rows=16,
    array_cols=28,
    slice_width=2,
    lanes=1,
)

BPVEC = AcceleratorSpec(
    name="BPVeC",
    style="bpvec",
    num_macs=1024,
    array_rows=8,
    array_cols=8,
    slice_width=2,
    lanes=16,
)

ALL_ASIC_PLATFORMS = (TPU_LIKE, BITFUSION, BPVEC)


def with_units(spec: AcceleratorSpec, num_macs: int) -> AcceleratorSpec:
    """Resize a platform keeping its style (for power-budget ablations)."""
    if num_macs < 1:
        raise ValueError("num_macs must be positive")
    lanes = spec.lanes
    macs_per_col = spec.array_rows * lanes
    cols = max(1, num_macs // macs_per_col)
    return replace(
        spec,
        num_macs=cols * macs_per_col,
        array_cols=cols,
    )
