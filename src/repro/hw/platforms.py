"""ASIC platform configurations (paper Table II).

Three systolic accelerators share a 250 mW core budget, 112 KB of on-chip
scratchpad, 500 MHz, and a 45 nm node; they differ in compute style:

* **TPU-like baseline**: 512 conventional fixed 8-bit MACs.
* **BitFusion**: 448 Fusion Units -- scalar spatial bit-composability; each
  FU holds 16 BitBricks and delivers 1 (8b x 8b) ... 16 (2b x 2b)
  multiply-accumulates per cycle.
* **BPVeC**: 1024 MAC-equivalents organised as 64 CVUs of 16 lanes; same
  bit-flexibility as BitFusion but amortized across vectors, which is what
  doubles the affordable compute under the power budget.

Throughput and energy scale with runtime operand bitwidths through the
same composition algebra as the functional model
(:func:`repro.core.plan_composition`).
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, replace

import numpy as np

from ..core.composition import plan_composition
from .costmodel import CONVENTIONAL_MAC_ENERGY_PJ, PaperCostModel
from .sram import ScratchpadModel

__all__ = [
    "AcceleratorSpec",
    "TPU_LIKE",
    "BITFUSION",
    "BPVEC",
    "ALL_ASIC_PLATFORMS",
    "with_units",
]

_PAPER_COSTS = PaperCostModel()

# Per-8b-MAC power of temporal (bit-serial) units relative to a
# conventional MAC: the serial lane is multiplier-free but re-registers
# every cycle and needs wide shift-accumulators; published overheads are
# ~15% (Stripes, activation-serial) and ~25% (Loom, fully serial).
_SERIAL_POWER_RATIOS = {"stripes": 1.15, "loom": 1.25}


@dataclass(frozen=True)
class AcceleratorSpec:
    """One ASIC platform of Table II.

    ``style`` selects the datapath behaviour:

    * ``"conventional"``: fixed 8-bit units; reduced bitwidths bring no
      speedup and no energy saving.
    * ``"bitfusion"``: scalar bit-composable units (slice_width=2, L=1).
    * ``"bpvec"``: vector bit-composable units (slice_width=2, L=16).
    """

    name: str
    style: str
    num_macs: int
    array_rows: int
    array_cols: int
    frequency_hz: float = 500e6
    onchip_bytes: int = 112 * 1024
    core_power_mw: float = 250.0
    uncore_power_mw: float = 250.0  # scratchpad leakage + control + clocking
    technology_nm: int = 45
    slice_width: int = 2
    lanes: int = 1
    max_bitwidth: int = 8

    def __post_init__(self) -> None:
        if self.style not in ("conventional", "bitfusion", "bpvec", "stripes", "loom"):
            raise ValueError(f"unknown style {self.style!r}")
        if self.num_macs < 1:
            raise ValueError("num_macs must be positive")
        if self.array_rows * self.array_cols * self.lanes != self.num_macs:
            raise ValueError(
                f"array geometry {self.array_rows}x{self.array_cols} with "
                f"{self.lanes} lanes does not match num_macs={self.num_macs}"
            )

    # ------------------------------------------------------------------
    # Throughput
    # ------------------------------------------------------------------
    def throughput_multiplier(self, bw_x: int, bw_w: int) -> int:
        """Extra MAC parallelism unlocked by reduced bitwidths.

        Spatial styles (bitfusion/bpvec) regroup 2-bit units; temporal
        styles gain by finishing serial products in fewer cycles --
        Stripes serializes activations only, Loom both operands.
        Memoized: the composition plan for a (spec, bitwidth pair) never
        changes, and sweeps ask for the same handful of pairs millions
        of times.
        """
        return _throughput_multiplier(self, bw_x, bw_w)

    def macs_per_cycle(self, bw_x: int = 8, bw_w: int = 8) -> int:
        """Effective multiply-accumulates per cycle for a bitwidth pair."""
        return self.num_macs * self.throughput_multiplier(bw_x, bw_w)

    def multiplier_table(self) -> np.ndarray:
        """Precomputed throughput multipliers for every bitwidth pair.

        ``table[bw_x - 1, bw_w - 1] == throughput_multiplier(bw_x, bw_w)``
        over ``1..max(8, max_bitwidth)``; pairs this datapath cannot run
        (``throughput_multiplier`` raises, e.g. composable styles above
        ``max_bitwidth``) hold the sentinel ``0``.  The returned array is
        a shared read-only cache: the vectorized evaluator
        (:mod:`repro.sim.lowered`) gathers per-GEMM multipliers from it
        instead of re-planning compositions per layer.
        """
        return _multiplier_table(self)

    def mac_energy_table(self) -> np.ndarray:
        """Per-effective-MAC energy (pJ) for every bitwidth pair.

        Entry ``[bw_x - 1, bw_w - 1]`` is bit-identical to
        ``mac_energy_pj(bw_x, bw_w)`` (same base-energy / multiplier
        division), cached alongside :meth:`multiplier_table`.
        """
        return _mac_energy_table(self)

    def peak_ops_per_second(self, bw_x: int = 8, bw_w: int = 8) -> float:
        """Peak ops/s counting one MAC as two operations (mult + add)."""
        return 2.0 * self.macs_per_cycle(bw_x, bw_w) * self.frequency_hz

    # ------------------------------------------------------------------
    # Energy
    # ------------------------------------------------------------------
    def base_mac_energy_pj(self) -> float:
        """Energy of one full-bitwidth MAC on this platform's datapath."""
        if self.style == "conventional":
            return CONVENTIONAL_MAC_ENERGY_PJ
        if self.style in _SERIAL_POWER_RATIOS:
            return CONVENTIONAL_MAC_ENERGY_PJ * _SERIAL_POWER_RATIOS[self.style]
        ratio = _PAPER_COSTS.mac_power_ratio(self.slice_width, self.lanes)
        return CONVENTIONAL_MAC_ENERGY_PJ * ratio

    def mac_energy_pj(self, bw_x: int = 8, bw_w: int = 8) -> float:
        """Energy per *effective* MAC at the given bitwidths.

        Bit-composable datapaths repurpose the same switching hardware for
        ``throughput_multiplier`` MACs, so per-MAC energy divides by it.
        """
        return _mac_energy_pj(self, bw_x, bw_w)

    # ------------------------------------------------------------------
    # Memory hierarchy
    # ------------------------------------------------------------------
    @property
    def scratchpad(self) -> ScratchpadModel:
        access_bits = 8 * self.array_rows  # one operand vector per access
        return ScratchpadModel(
            capacity_bytes=self.onchip_bytes, access_bits=access_bits
        )

    @property
    def reduction_lanes(self) -> int:
        """Elements of the reduction (dot-product) dimension consumed at once."""
        return self.array_rows * self.lanes


@functools.lru_cache(maxsize=4096)
def _throughput_multiplier(spec: AcceleratorSpec, bw_x: int, bw_w: int) -> int:
    if spec.style == "conventional":
        return 1
    if spec.style == "stripes":
        return max(1, spec.max_bitwidth // bw_x)
    if spec.style == "loom":
        return max(1, (spec.max_bitwidth * spec.max_bitwidth) // (bw_x * bw_w))
    plan = plan_composition(
        bw_x, bw_w, slice_width=spec.slice_width, max_bitwidth=spec.max_bitwidth
    )
    return plan.throughput_multiplier


@functools.lru_cache(maxsize=4096)
def _mac_energy_pj(spec: AcceleratorSpec, bw_x: int, bw_w: int) -> float:
    return spec.base_mac_energy_pj() / _throughput_multiplier(spec, bw_x, bw_w)


#: Bitwidth policies go up to 8 bits regardless of a spec's own
#: ``max_bitwidth``, so lookup tables always cover at least 1..8.
_TABLE_BITWIDTHS = 8


@functools.lru_cache(maxsize=512)
def _multiplier_table(spec: AcceleratorSpec) -> np.ndarray:
    size = max(spec.max_bitwidth, _TABLE_BITWIDTHS)
    table = np.zeros((size, size), dtype=np.int64)
    for bw_x in range(1, size + 1):
        for bw_w in range(1, size + 1):
            try:
                table[bw_x - 1, bw_w - 1] = spec.throughput_multiplier(bw_x, bw_w)
            except ValueError:
                pass  # stays 0: this datapath cannot compose the pair
    table.setflags(write=False)
    return table


@functools.lru_cache(maxsize=512)
def _mac_energy_table(spec: AcceleratorSpec) -> np.ndarray:
    with np.errstate(divide="ignore"):
        # Sentinel (unsupported-pair) entries divide to inf; consumers
        # reject those pairs on the multiplier gather before reading this.
        table = spec.base_mac_energy_pj() / _multiplier_table(spec)
    table.setflags(write=False)
    return table


# Table II configurations -------------------------------------------------

TPU_LIKE = AcceleratorSpec(
    name="TPU-like baseline",
    style="conventional",
    num_macs=512,
    array_rows=16,
    array_cols=32,
)

BITFUSION = AcceleratorSpec(
    name="BitFusion",
    style="bitfusion",
    num_macs=448,
    array_rows=16,
    array_cols=28,
    slice_width=2,
    lanes=1,
)

BPVEC = AcceleratorSpec(
    name="BPVeC",
    style="bpvec",
    num_macs=1024,
    array_rows=8,
    array_cols=8,
    slice_width=2,
    lanes=16,
)

ALL_ASIC_PLATFORMS = (TPU_LIKE, BITFUSION, BPVEC)


def with_units(spec: AcceleratorSpec, num_macs: int) -> AcceleratorSpec:
    """Resize a platform keeping its style (for power-budget ablations)."""
    if num_macs < 1:
        raise ValueError("num_macs must be positive")
    lanes = spec.lanes
    macs_per_col = spec.array_rows * lanes
    cols = max(1, num_macs // macs_per_col)
    return replace(
        spec,
        num_macs=cols * macs_per_col,
        array_cols=cols,
    )
