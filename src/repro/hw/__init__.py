"""Hardware substrate: cost models, memories, and platform configurations."""

from .chip import CONVENTIONAL_MAC_AREA_MM2, ChipReport, all_chip_reports, chip_report
from .calibration import (
    AREA_1BIT_TOTALS,
    AREA_2BIT,
    POWER_1BIT,
    POWER_2BIT,
    SWEEP_LENGTHS,
    Breakdown,
    calibrated_breakdown,
    calibrated_total,
)
from .components import TECH_45NM, Components, TechnologyConstants
from .costmodel import (
    BASELINE_MAC_COUNT,
    CLOCK_FREQUENCY_HZ,
    CONVENTIONAL_MAC_ENERGY_PJ,
    CONVENTIONAL_MAC_POWER_MW,
    CORE_POWER_BUDGET_MW,
    AnalyticalCostModel,
    CostModel,
    PaperCostModel,
    units_under_power_budget,
)
from .dram import DDR4, HBM2, MemorySpec, scaled_memory
from .platforms import (
    ALL_ASIC_PLATFORMS,
    BITFUSION,
    BPVEC,
    TPU_LIKE,
    AcceleratorSpec,
    with_units,
)
from .sram import ScratchpadModel

__all__ = [
    "CONVENTIONAL_MAC_AREA_MM2",
    "ChipReport",
    "all_chip_reports",
    "chip_report",
    "AREA_1BIT_TOTALS",
    "AREA_2BIT",
    "POWER_1BIT",
    "POWER_2BIT",
    "SWEEP_LENGTHS",
    "Breakdown",
    "calibrated_breakdown",
    "calibrated_total",
    "TECH_45NM",
    "Components",
    "TechnologyConstants",
    "BASELINE_MAC_COUNT",
    "CLOCK_FREQUENCY_HZ",
    "CONVENTIONAL_MAC_ENERGY_PJ",
    "CONVENTIONAL_MAC_POWER_MW",
    "CORE_POWER_BUDGET_MW",
    "AnalyticalCostModel",
    "CostModel",
    "PaperCostModel",
    "units_under_power_budget",
    "DDR4",
    "HBM2",
    "MemorySpec",
    "scaled_memory",
    "ALL_ASIC_PLATFORMS",
    "BITFUSION",
    "BPVEC",
    "TPU_LIKE",
    "AcceleratorSpec",
    "with_units",
    "ScratchpadModel",
]
