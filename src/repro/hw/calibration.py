"""Paper-calibrated Fig. 4 cost tables (45 nm, 500 MHz synthesis).

The DAC'20 paper embeds the raw data of its Fig. 4 design-space exploration
(power and area per 8-bit x 8-bit MAC, normalized to a conventional digital
8-bit MAC, broken down into multiplication / addition / shifting /
registering).  This module transcribes those tables so experiments can use
the authors' synthesized numbers directly.

Provenance of each table:

* ``POWER_1BIT`` / ``POWER_2BIT``: the "Energy Breakdown" spreadsheet rows
  in the paper source (L = 1, 2, 4, 8, 16).
* ``AREA_2BIT``: the "Energy Breakdown-1" rows (the area companion table).
* ``AREA_1BIT_TOTALS``: the 1-bit area bars are labelled in the figure
  (3.5x, 2.3x, 1.5x, 1.2x, 1.0x) but their component breakdown is not in
  the source; we keep only the totals and split them with the analytical
  model's 1-bit proportions when a breakdown is requested.

Headline checkpoints encoded here (paper Section III-B):

* optimum at 2-bit slicing, L=16: 0.49x power, 0.62x area (the paper's
  "2.0x and 1.7x improvement");
* BitFusion corresponds to 2-bit slicing, L=1: ~1.18x power, ~1.40x area
  (the paper's "40% area overhead" and "2.4x power vs Fusion Units").
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "Breakdown",
    "SWEEP_LENGTHS",
    "POWER_1BIT",
    "POWER_2BIT",
    "AREA_2BIT",
    "AREA_1BIT_TOTALS",
    "calibrated_breakdown",
    "calibrated_total",
]


@dataclass(frozen=True)
class Breakdown:
    """Per-component cost normalized to a conventional 8-bit MAC total."""

    multiplication: float
    addition: float
    shifting: float
    registering: float

    @property
    def total(self) -> float:
        return self.multiplication + self.addition + self.shifting + self.registering

    def as_dict(self) -> dict[str, float]:
        return {
            "multiplication": self.multiplication,
            "addition": self.addition,
            "shifting": self.shifting,
            "registering": self.registering,
        }


SWEEP_LENGTHS = (1, 2, 4, 8, 16)

# Power per 8b x 8b MAC, normalized to conventional MAC total. L = 1..16.
POWER_1BIT: dict[int, Breakdown] = {
    1: Breakdown(0.10496, 3.29314, 0.06016, 0.138),
    2: Breakdown(0.10496, 2.01618, 0.06304, 0.069),
    4: Breakdown(0.10496, 1.38162, 0.06304, 0.0345),
    8: Breakdown(0.10496, 1.15890, 0.03152, 0.01725),
    16: Breakdown(0.10496, 1.02780, 0.02880, 0.008625),
}

POWER_2BIT: dict[int, Breakdown] = {
    1: Breakdown(0.092, 0.8928491809, 0.0611896639, 0.1379766931),
    2: Breakdown(0.092, 0.5479557, 0.0580144, 0.069),
    4: Breakdown(0.092, 0.4058981, 0.0290072, 0.0345),
    8: Breakdown(0.092, 0.3796432, 0.02102, 0.01725),
    16: Breakdown(0.092, 0.378361875, 0.01254, 0.008625),
}

AREA_2BIT: dict[int, Breakdown] = {
    1: Breakdown(0.2937898089, 0.8208726194, 0.2134777070, 0.0724522293),
    2: Breakdown(0.2937898089, 0.5392519904, 0.2066878981, 0.0362261147),
    4: Breakdown(0.2937898089, 0.3782981688, 0.1033439490, 0.0181130573),
    8: Breakdown(0.2937898089, 0.3138628599, 0.0961496815, 0.0090565287),
    16: Breakdown(0.2937898089, 0.2710164230, 0.0480748408, 0.0045282643),
}

# Figure-label totals for 1-bit slicing area (component split not published).
AREA_1BIT_TOTALS: dict[int, float] = {1: 3.5, 2: 2.3, 4: 1.5, 8: 1.2, 16: 1.0}


def calibrated_breakdown(slice_width: int, lanes: int, metric: str) -> Breakdown:
    """Paper breakdown for a (slicing, L) design point.

    ``metric`` is ``"power"`` or ``"area"``.  1-bit area breakdowns are not
    published; callers needing them should use
    :class:`repro.hw.costmodel.AnalyticalCostModel` proportions scaled to
    :data:`AREA_1BIT_TOTALS` (that is what the hybrid model in
    ``costmodel`` does).
    """
    tables = {
        ("power", 1): POWER_1BIT,
        ("power", 2): POWER_2BIT,
        ("area", 2): AREA_2BIT,
    }
    key = (metric, slice_width)
    if key not in tables:
        raise KeyError(
            f"no calibrated {metric} table for {slice_width}-bit slicing "
            f"(published tables: power@1b, power@2b, area@2b)"
        )
    table = tables[key]
    if lanes not in table:
        raise KeyError(f"L={lanes} not in calibrated sweep {SWEEP_LENGTHS}")
    return table[lanes]


def calibrated_total(slice_width: int, lanes: int, metric: str) -> float:
    """Total normalized cost, covering the 1-bit area case via figure labels."""
    if metric == "area" and slice_width == 1:
        if lanes not in AREA_1BIT_TOTALS:
            raise KeyError(f"L={lanes} not in calibrated sweep {SWEEP_LENGTHS}")
        return AREA_1BIT_TOTALS[lanes]
    return calibrated_breakdown(slice_width, lanes, metric).total
