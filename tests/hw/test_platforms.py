"""Tests for the Table II platform configurations."""

import pytest

from repro.hw import (
    ALL_ASIC_PLATFORMS,
    BITFUSION,
    BPVEC,
    TPU_LIKE,
    AcceleratorSpec,
    with_units,
)


class TestTable2Specs:
    def test_mac_counts(self):
        assert TPU_LIKE.num_macs == 512
        assert BITFUSION.num_macs == 448
        assert BPVEC.num_macs == 1024

    def test_shared_parameters(self):
        for spec in ALL_ASIC_PLATFORMS:
            assert spec.frequency_hz == 500e6
            assert spec.onchip_bytes == 112 * 1024
            assert spec.core_power_mw == 250.0
            assert spec.technology_nm == 45

    def test_bpvec_has_2x_resources_of_baseline(self):
        """Paper IV-B1: BPVeC integrates ~2x compute under the same budget."""
        assert BPVEC.num_macs / TPU_LIKE.num_macs == 2.0

    def test_bpvec_has_2_3x_resources_of_bitfusion(self):
        """Paper IV-B2: ~2.3x more compute than BitFusion."""
        assert BPVEC.num_macs / BITFUSION.num_macs == pytest.approx(2.29, rel=0.02)

    def test_array_geometry_consistent(self):
        for spec in ALL_ASIC_PLATFORMS:
            assert spec.array_rows * spec.array_cols * spec.lanes == spec.num_macs


class TestThroughputScaling:
    def test_conventional_ignores_bitwidth(self):
        assert TPU_LIKE.macs_per_cycle(8, 8) == 512
        assert TPU_LIKE.macs_per_cycle(2, 2) == 512

    def test_bpvec_mode_multipliers(self):
        assert BPVEC.macs_per_cycle(8, 8) == 1024
        assert BPVEC.macs_per_cycle(8, 4) == 2048
        assert BPVEC.macs_per_cycle(8, 2) == 4096
        assert BPVEC.macs_per_cycle(4, 4) == 4096
        assert BPVEC.macs_per_cycle(2, 2) == 16384

    def test_bitfusion_same_multipliers_smaller_base(self):
        assert BITFUSION.macs_per_cycle(8, 8) == 448
        assert BITFUSION.macs_per_cycle(4, 4) == 1792
        assert BITFUSION.throughput_multiplier(4, 4) == BPVEC.throughput_multiplier(
            4, 4
        )

    def test_peak_ops(self):
        # 1024 MACs x 2 ops x 500 MHz ~= 1.02 TOPS at 8-bit.
        assert BPVEC.peak_ops_per_second(8, 8) == pytest.approx(1.024e12)


class TestEnergyScaling:
    def test_bpvec_mac_cheaper_than_conventional(self):
        """The 2x resource advantage comes from ~2x lower per-MAC power."""
        ratio = TPU_LIKE.mac_energy_pj(8, 8) / BPVEC.mac_energy_pj(8, 8)
        assert ratio == pytest.approx(2.03, rel=0.02)

    def test_bitfusion_mac_more_expensive_than_conventional(self):
        assert BITFUSION.mac_energy_pj(8, 8) > TPU_LIKE.mac_energy_pj(8, 8)

    def test_reduced_bitwidth_divides_energy(self):
        assert BPVEC.mac_energy_pj(4, 4) == pytest.approx(
            BPVEC.mac_energy_pj(8, 8) / 4
        )

    def test_conventional_energy_flat_across_bitwidths(self):
        assert TPU_LIKE.mac_energy_pj(4, 4) == TPU_LIKE.mac_energy_pj(8, 8)


class TestValidationAndUtilities:
    def test_bad_style(self):
        with pytest.raises(ValueError):
            AcceleratorSpec(
                name="x", style="quantum", num_macs=4, array_rows=2, array_cols=2
            )

    def test_geometry_mismatch(self):
        with pytest.raises(ValueError):
            AcceleratorSpec(
                name="x", style="conventional", num_macs=5, array_rows=2, array_cols=2
            )

    def test_with_units_resizes(self):
        half = with_units(BPVEC, 512)
        assert half.num_macs == 512
        assert half.style == "bpvec"
        assert half.array_rows * half.array_cols * half.lanes == 512

    def test_with_units_invalid(self):
        with pytest.raises(ValueError):
            with_units(BPVEC, 0)

    def test_scratchpad_property(self):
        spad = BPVEC.scratchpad
        assert spad.capacity_bytes == BPVEC.onchip_bytes

    def test_reduction_lanes(self):
        assert BPVEC.reduction_lanes == 8 * 16
        assert TPU_LIKE.reduction_lanes == 16
