"""Tests for the gate-level component cost models."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.components import Components, TechnologyConstants


@pytest.fixture
def comp():
    return Components()


class TestMultiplier:
    def test_one_bit_is_single_and_gate(self, comp):
        """Paper: 1-bit slicing multipliers are 'merely AND gates'."""
        cost = comp.multiplier(1, 1)
        assert cost.power == pytest.approx(comp.tech.and_power)
        assert cost.area == pytest.approx(comp.tech.and_area)

    def test_grows_with_operand_width(self, comp):
        assert comp.multiplier(8, 8).power > comp.multiplier(4, 4).power
        assert comp.multiplier(8, 8).area > comp.multiplier(2, 2).area

    def test_invalid_width(self, comp):
        with pytest.raises(ValueError):
            comp.multiplier(0, 4)


class TestAdderTree:
    def test_single_input_free(self, comp):
        cost = comp.adder_tree(1, 4)
        assert cost.power == 0 and cost.area == 0

    def test_two_inputs_one_adder(self, comp):
        assert comp.adder_tree(2, 4).power == pytest.approx(comp.adder(4).power)

    def test_width_growth_per_level(self, comp):
        # 4 inputs of 4 bits: two 4-bit adders + one 5-bit adder.
        expected = 2 * comp.adder(4).power + comp.adder(5).power
        assert comp.adder_tree(4, 4).power == pytest.approx(expected)

    def test_non_power_of_two_padded_up(self, comp):
        assert comp.adder_tree(5, 4).power == comp.adder_tree(8, 4).power

    def test_invalid(self, comp):
        with pytest.raises(ValueError):
            comp.adder_tree(0, 4)
        with pytest.raises(ValueError):
            comp.adder(0)


class TestShifter:
    def test_zero_shift_free(self, comp):
        assert comp.shifter(8, 0).power == 0

    def test_hardwired_cheaper_than_barrel(self, comp):
        hard = comp.shifter(8, 12, hardwired=True)
        barrel = comp.shifter(8, 12, hardwired=False)
        assert hard.power < barrel.power
        assert hard.area < barrel.area

    def test_invalid(self, comp):
        with pytest.raises(ValueError):
            comp.shifter(0, 4)
        with pytest.raises(ValueError):
            comp.shifter(8, -1)


class TestRegister:
    def test_scales_with_bits(self, comp):
        assert comp.register(24).power == pytest.approx(3 * comp.register(8).power)

    def test_invalid(self, comp):
        with pytest.raises(ValueError):
            comp.register(0)


def test_cost_addition_and_scaling(comp):
    c = comp.adder(8) + comp.adder(8)
    assert c.power == pytest.approx(comp.adder(8).scale(2).power)
    assert c.area == pytest.approx(comp.adder(8).scale(2).area)


def test_custom_technology_constants():
    cheap_regs = Components(TechnologyConstants(reg_power=0.1))
    default = Components()
    assert cheap_regs.register(8).power < default.register(8).power


@settings(max_examples=50, deadline=None)
@given(n=st.integers(2, 256), w=st.integers(1, 32))
def test_adder_tree_monotone_in_inputs(n, w):
    comp = Components()
    assert comp.adder_tree(2 * n, w).power > comp.adder_tree(n, w).power
