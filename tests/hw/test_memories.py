"""Tests for the SRAM scratchpad and DRAM models."""

import pytest

from repro.hw import DDR4, HBM2, MemorySpec, ScratchpadModel, scaled_memory


class TestDRAMSpecs:
    def test_paper_parameters(self):
        assert DDR4.bandwidth_gb_s == 16.0
        assert DDR4.energy_pj_per_bit == 15.0
        assert HBM2.bandwidth_gb_s == 256.0
        assert HBM2.energy_pj_per_bit == 1.2

    def test_hbm2_is_16x_bandwidth(self):
        assert HBM2.bandwidth_gb_s / DDR4.bandwidth_gb_s == 16.0

    def test_bytes_per_cycle_at_500mhz(self):
        assert DDR4.bytes_per_cycle(500e6) == pytest.approx(32.0)
        assert HBM2.bytes_per_cycle(500e6) == pytest.approx(512.0)

    def test_transfer_time_and_energy(self):
        mb = 1e6
        assert DDR4.transfer_seconds(16 * mb) == pytest.approx(1e-3)
        assert DDR4.transfer_energy_pj(1) == pytest.approx(120.0)
        assert HBM2.transfer_energy_pj(1) == pytest.approx(9.6)

    def test_efficiency_scales_bandwidth_not_energy(self):
        derated = MemorySpec("x", 16.0, 15.0, efficiency=0.5)
        assert derated.effective_bytes_per_second == pytest.approx(8e9)
        assert derated.transfer_energy_pj(1) == DDR4.transfer_energy_pj(1)

    def test_validation(self):
        with pytest.raises(ValueError):
            MemorySpec("x", 0, 1)
        with pytest.raises(ValueError):
            MemorySpec("x", 1, -1)
        with pytest.raises(ValueError):
            MemorySpec("x", 1, 1, efficiency=0)
        with pytest.raises(ValueError):
            DDR4.transfer_seconds(-1)
        with pytest.raises(ValueError):
            DDR4.transfer_energy_pj(-1)
        with pytest.raises(ValueError):
            DDR4.bytes_per_cycle(0)

    def test_scaled_memory(self):
        mem = scaled_memory(DDR4, 64.0)
        assert mem.bandwidth_gb_s == 64.0
        assert mem.energy_pj_per_bit == DDR4.energy_pj_per_bit
        assert "64" in mem.name


class TestScratchpad:
    def test_paper_capacity_default(self):
        assert ScratchpadModel().capacity_bytes == 112 * 1024

    def test_energy_grows_with_capacity(self):
        small = ScratchpadModel(capacity_bytes=8 * 1024)
        large = ScratchpadModel(capacity_bytes=128 * 1024)
        assert large.energy_per_access_pj > small.energy_per_access_pj

    def test_anchor_point(self):
        anchor = ScratchpadModel(capacity_bytes=8 * 1024, access_bits=64)
        assert anchor.energy_per_access_pj == pytest.approx(10.0)

    def test_banking_reduces_access_energy(self):
        flat = ScratchpadModel(capacity_bytes=64 * 1024, banks=1)
        banked = ScratchpadModel(capacity_bytes=64 * 1024, banks=4)
        assert banked.energy_per_access_pj < flat.energy_per_access_pj

    def test_per_byte_energy(self):
        spad = ScratchpadModel(capacity_bytes=8 * 1024, access_bits=64)
        assert spad.energy_per_byte_pj == pytest.approx(10.0 / 8)
        assert spad.access_energy_pj(16) == pytest.approx(20.0)

    def test_area_scales_with_capacity(self):
        assert (
            ScratchpadModel(capacity_bytes=224 * 1024).area_mm2
            == pytest.approx(2 * ScratchpadModel().area_mm2)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            ScratchpadModel(capacity_bytes=0)
        with pytest.raises(ValueError):
            ScratchpadModel(access_bits=0)
        with pytest.raises(ValueError):
            ScratchpadModel(capacity_bytes=100, banks=3)
        with pytest.raises(ValueError):
            ScratchpadModel().access_energy_pj(-1)
