"""Tests for cost models: paper calibration exactness + analytical shape."""

import pytest

from repro.hw import (
    BASELINE_MAC_COUNT,
    CONVENTIONAL_MAC_ENERGY_PJ,
    CONVENTIONAL_MAC_POWER_MW,
    CORE_POWER_BUDGET_MW,
    AnalyticalCostModel,
    PaperCostModel,
    calibrated_breakdown,
    calibrated_total,
    units_under_power_budget,
)


class TestAnchors:
    def test_conventional_mac_power_from_table2(self):
        assert CONVENTIONAL_MAC_POWER_MW == pytest.approx(
            CORE_POWER_BUDGET_MW / BASELINE_MAC_COUNT
        )

    def test_conventional_mac_energy(self):
        # 0.488 mW at 500 MHz ~= 0.977 pJ per MAC.
        assert CONVENTIONAL_MAC_ENERGY_PJ == pytest.approx(0.9766, rel=1e-3)


class TestCalibration:
    def test_optimum_design_point(self):
        """Paper III-B: 2-bit, L=16 gives 2.0x power and 1.7x area improvement."""
        assert 1 / calibrated_total(2, 16, "power") == pytest.approx(2.0, rel=0.05)
        assert 1 / calibrated_total(2, 16, "area") == pytest.approx(1.7, rel=0.07)

    def test_bitfusion_point_area_overhead(self):
        """Paper III-B(4): BitFusion (2-bit, L=1) has ~40% area overhead."""
        assert calibrated_total(2, 1, "area") == pytest.approx(1.40, rel=0.02)

    def test_one_bit_slicing_never_beats_conventional(self):
        """Paper III-B(3): 1-bit slicing provides no benefit at any L."""
        for lanes in (1, 2, 4, 8, 16):
            assert calibrated_total(1, lanes, "power") >= 1.0
            assert calibrated_total(1, lanes, "area") >= 1.0

    def test_power_improvement_from_l1_to_l16(self):
        """Paper III-B(2): L 1->16 improves ~3x (1-bit) and ~2.5x (2-bit)."""
        imp_1b = calibrated_total(1, 1, "power") / calibrated_total(1, 16, "power")
        imp_2b = calibrated_total(2, 1, "power") / calibrated_total(2, 16, "power")
        assert imp_1b == pytest.approx(3.0, rel=0.1)
        assert imp_2b == pytest.approx(2.5, rel=0.1)

    def test_addition_dominates_breakdown(self):
        """Paper III-B(1): the adder tree ranks first in power/area."""
        for sw in (1, 2):
            for lanes in (1, 2, 4, 8, 16):
                b = calibrated_breakdown(sw, lanes, "power")
                assert b.addition > b.multiplication
                assert b.addition > b.shifting
                assert b.addition > b.registering

    def test_unknown_table_rejected(self):
        with pytest.raises(KeyError):
            calibrated_breakdown(4, 16, "power")
        with pytest.raises(KeyError):
            calibrated_breakdown(2, 3, "power")
        with pytest.raises(KeyError):
            calibrated_total(1, 3, "area")

    def test_breakdown_dict(self):
        d = calibrated_breakdown(2, 16, "power").as_dict()
        assert set(d) == {"multiplication", "addition", "shifting", "registering"}


class TestPaperCostModel:
    @pytest.fixture
    def model(self):
        return PaperCostModel()

    def test_matches_calibration_tables(self, model):
        for lanes in (1, 2, 4, 8, 16):
            assert model.total(2, lanes, "power") == pytest.approx(
                calibrated_total(2, lanes, "power")
            )
            assert model.total(1, lanes, "area") == pytest.approx(
                calibrated_total(1, lanes, "area")
            )

    def test_bitfusion_vs_bpvec_power_ratio(self, model):
        """Paper: CVU gives 2.4x power improvement vs Fusion Units."""
        ratio = model.mac_power_ratio(2, 1) / model.mac_power_ratio(2, 16)
        assert ratio == pytest.approx(2.4, rel=0.05)

    def test_one_bit_area_breakdown_scaled_to_labels(self, model):
        b = model.breakdown(1, 16, "area")
        assert b.total == pytest.approx(1.0, rel=1e-6)

    def test_hybrid_point_interpolates(self, model):
        """4-bit slicing (not synthesized in the paper) still gets a value."""
        total = model.total(4, 16, "power")
        assert 0 < total < 1.0  # cheaper than conventional per MAC

    def test_absolute_energy(self, model):
        e = model.mac_energy_pj(2, 16)
        assert e == pytest.approx(
            CONVENTIONAL_MAC_ENERGY_PJ * calibrated_total(2, 16, "power")
        )


class TestAnalyticalCostModel:
    @pytest.fixture
    def model(self):
        return AnalyticalCostModel()

    @pytest.mark.parametrize("metric", ["power", "area"])
    @pytest.mark.parametrize("slice_width", [1, 2, 4])
    def test_monotone_decreasing_in_lanes(self, model, metric, slice_width):
        totals = [model.total(slice_width, ell, metric) for ell in (1, 2, 4, 8, 16)]
        assert all(a > b for a, b in zip(totals, totals[1:]))

    @pytest.mark.parametrize("metric", ["power", "area"])
    def test_two_bit_beats_one_bit(self, model, metric):
        for lanes in (1, 2, 4, 8, 16):
            assert model.total(2, lanes, metric) < model.total(1, lanes, metric)

    def test_saturation_beyond_16(self, model):
        """Paper III-B(2): increasing L past 16 yields little further gain."""
        gain_1_to_2 = model.total(2, 1, "power") / model.total(2, 2, "power")
        gain_16_to_32 = model.total(2, 16, "power") / model.total(2, 32, "power")
        assert gain_16_to_32 < 1.15
        assert gain_1_to_2 > 1.4

    def test_best_point_beats_conventional(self, model):
        assert model.total(2, 16, "power") < 1.0
        assert model.total(2, 16, "area") < 1.0

    def test_bitfusion_point_worse_than_conventional(self, model):
        assert model.total(2, 1, "power") > 1.0
        assert model.total(2, 1, "area") > 1.0

    def test_addition_dominates(self, model):
        for sw in (1, 2):
            b = model.breakdown(sw, 16, "power")
            assert b.addition == max(
                b.addition, b.multiplication, b.shifting, b.registering
            )

    def test_invalid_arguments(self, model):
        with pytest.raises(ValueError):
            model.breakdown(3, 16, "power")
        with pytest.raises(ValueError):
            model.breakdown(2, 0, "power")
        with pytest.raises(ValueError):
            model.breakdown(2, 16, "energy")


class TestUnitDerivation:
    def test_bpvec_unit_count_matches_table2(self):
        """250 mW / calibrated CVU MAC power -> 1024 MACs (Table II)."""
        model = PaperCostModel()
        units = units_under_power_budget(model.mac_power_mw(2, 16))
        assert units == 1024

    def test_baseline_unit_count(self):
        units = units_under_power_budget(CONVENTIONAL_MAC_POWER_MW)
        assert units == BASELINE_MAC_COUNT

    def test_bitfusion_unit_count_near_table2(self):
        """448 FUs in Table II; derivation should land within ~15%."""
        model = PaperCostModel()
        units = units_under_power_budget(model.mac_power_mw(2, 1), granularity=1)
        assert abs(units - 448) / 448 < 0.15

    def test_small_budget(self):
        assert units_under_power_budget(100.0, budget_mw=250.0) == 2

    def test_invalid_power(self):
        with pytest.raises(ValueError):
            units_under_power_budget(0.0)
