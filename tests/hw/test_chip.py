"""Tests for the chip-level area/power accounting."""

import pytest

from repro.hw import (
    BITFUSION,
    BPVEC,
    TPU_LIKE,
    all_chip_reports,
    chip_report,
)


class TestChipReport:
    def test_three_platforms(self):
        reports = all_chip_reports()
        assert [r.name for r in reports] == [
            "TPU-like baseline",
            "BitFusion",
            "BPVeC",
        ]

    def test_bpvec_doubles_macs_in_similar_area(self):
        """The paper's headline: 2x compute in roughly the same footprint."""
        base = chip_report(TPU_LIKE)
        bpvec = chip_report(BPVEC)
        assert bpvec.num_macs == 2 * base.num_macs
        assert bpvec.compute_area_mm2 < 1.35 * base.compute_area_mm2

    def test_bpvec_area_per_mac_is_fig4_ratio(self):
        base = chip_report(TPU_LIKE)
        bpvec = chip_report(BPVEC)
        # Fig. 4: CVU area/MAC ~0.62x conventional.
        assert bpvec.area_per_mac_um2 / base.area_per_mac_um2 == pytest.approx(
            0.617, rel=0.02
        )

    def test_bitfusion_pays_area_for_scalar_flexibility(self):
        base = chip_report(TPU_LIKE)
        bf = chip_report(BITFUSION)
        # Fewer MACs yet more area: the 1.4x fusion-unit overhead.
        assert bf.num_macs < base.num_macs
        assert bf.compute_area_mm2 > base.compute_area_mm2

    def test_power_budgets_near_250mw(self):
        for report in all_chip_reports():
            assert report.compute_power_mw == pytest.approx(250.0, rel=0.06)

    def test_totals_and_str(self):
        report = chip_report(BPVEC)
        assert report.total_area_mm2 == pytest.approx(
            report.compute_area_mm2 + report.sram_area_mm2
        )
        assert "BPVeC" in str(report)
        assert "mm^2" in str(report)

    def test_sram_area_identical_across_platforms(self):
        areas = {r.sram_area_mm2 for r in all_chip_reports()}
        assert len(areas) == 1  # all share the 112 KB scratchpad
