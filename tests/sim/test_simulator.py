"""Tests for end-to-end network simulation and comparison utilities."""

import math

import pytest

from repro.hw import BPVEC, DDR4, HBM2, TPU_LIKE
from repro.nn import homogeneous_8bit, lstm_workload, resnet18
from repro.sim import compare, format_table, geomean, simulate_network


@pytest.fixture(scope="module")
def resnet_base():
    return simulate_network(homogeneous_8bit(resnet18(batch=2)), TPU_LIKE, DDR4)


@pytest.fixture(scope="module")
def resnet_bpvec():
    return simulate_network(homogeneous_8bit(resnet18(batch=2)), BPVEC, DDR4)


class TestNetworkResult:
    def test_totals_are_sums(self, resnet_base):
        assert resnet_base.total_cycles == sum(l.cycles for l in resnet_base.layers)
        assert resnet_base.total_macs == sum(l.macs for l in resnet_base.layers)
        assert resnet_base.total_energy_pj == pytest.approx(
            resnet_base.compute_energy_pj
            + resnet_base.sram_energy_pj
            + resnet_base.dram_energy_pj
            + resnet_base.uncore_energy_pj
        )

    def test_weighted_layer_count(self, resnet_base):
        # ResNet-18: 17 convs + 3 downsamples + 1 fc = 21 weighted layers.
        assert len(resnet_base.layers) == 21

    def test_macs_match_network(self, resnet_base):
        assert resnet_base.total_macs == resnet18(batch=2).total_macs()

    def test_derived_metrics_consistent(self, resnet_base):
        assert resnet_base.total_seconds == pytest.approx(
            resnet_base.total_cycles / 500e6
        )
        assert resnet_base.ops_per_second == pytest.approx(
            2 * resnet_base.total_macs / resnet_base.total_seconds
        )
        assert resnet_base.perf_per_watt == pytest.approx(
            resnet_base.ops_per_second / resnet_base.average_power_w
        )

    def test_power_within_physical_envelope(self, resnet_base):
        # Core 250 mW + uncore 250 mW + DRAM; should land well under 10 W.
        assert 0.1 < resnet_base.average_power_w < 10.0

    def test_layer_lookup(self, resnet_base):
        assert resnet_base.layer("conv1").layer_name == "conv1"
        with pytest.raises(KeyError):
            resnet_base.layer("nope")

    def test_summary_mentions_names(self, resnet_base):
        s = resnet_base.summary()
        assert "ResNet-18" in s and "TPU-like" in s

    def test_memory_bound_fraction_in_range(self, resnet_base):
        assert 0.0 <= resnet_base.memory_bound_fraction <= 1.0


class TestHeadlineBehaviour:
    def test_bpvec_faster_than_baseline(self, resnet_base, resnet_bpvec):
        assert resnet_bpvec.total_cycles < resnet_base.total_cycles

    def test_lstm_memory_bound_on_ddr4(self):
        res = simulate_network(homogeneous_8bit(lstm_workload()), TPU_LIKE, DDR4)
        assert res.memory_bound_fraction > 0.9

    def test_lstm_compute_bound_on_hbm2(self):
        res = simulate_network(homogeneous_8bit(lstm_workload()), BPVEC, HBM2)
        assert res.memory_bound_fraction < 0.1

    def test_empty_network_rejected(self):
        from repro.nn import Network, Pool2D

        net = Network("empty", [Pool2D("p", 4, kernel=2, in_size=4)])
        with pytest.raises(ValueError):
            simulate_network(net, TPU_LIKE, DDR4)


class TestCompare:
    def test_speedup_definition(self, resnet_base, resnet_bpvec):
        c = compare(resnet_base, resnet_bpvec)
        assert c.speedup == pytest.approx(
            resnet_base.total_seconds / resnet_bpvec.total_seconds
        )
        assert c.energy_reduction == pytest.approx(
            resnet_base.total_energy_pj / resnet_bpvec.total_energy_pj
        )

    def test_self_comparison_is_unity(self, resnet_base):
        c = compare(resnet_base, resnet_base)
        assert c.speedup == 1.0 and c.energy_reduction == 1.0

    def test_workload_mismatch_rejected(self, resnet_base):
        other = simulate_network(homogeneous_8bit(lstm_workload()), TPU_LIKE, DDR4)
        with pytest.raises(ValueError):
            compare(resnet_base, other)

    def test_str_contains_factors(self, resnet_base, resnet_bpvec):
        text = str(compare(resnet_base, resnet_bpvec))
        assert "speedup" in text and "x" in text


class TestGeomeanAndTable:
    def test_geomean_basic(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)
        assert geomean([3.0]) == pytest.approx(3.0)

    def test_geomean_rejects_empty_and_nonpositive(self):
        with pytest.raises(ValueError):
            geomean([])
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])

    def test_geomean_log_identity(self):
        vals = [1.3, 2.7, 0.9, 4.2]
        expected = math.exp(sum(math.log(v) for v in vals) / len(vals))
        assert geomean(vals) == pytest.approx(expected)

    def test_format_table_alignment(self):
        out = format_table(["A", "Bee"], [["x", 1.234], ["yy", 10.0]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert "1.23" in out and "10.00" in out
        assert all(len(l) == len(lines[0]) for l in lines[1:2])
