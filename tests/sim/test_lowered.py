"""Bit-identity of the vectorized lowered-IR evaluator vs the scalar path.

The contract of :mod:`repro.sim.lowered` is not "close": every metric a
record carries must be **bit-for-bit identical** to the scalar
simulation.  Integer cycle/traffic math is exact, and the float energy
terms are computed with the same operations in the same order, so the
comparisons below use ``==`` (via byte-equal JSON), never ``approx``.

Coverage: a deterministic equivalence sweep over every named platform x
memory x workload x policy in the registry, kernel-level equivalence of
the batched compute-cycles and traffic arrays against the exposed scalar
kernels, and hypothesis property tests over randomized
``AcceleratorSpec`` / ``MemorySpec`` / bitwidth-policy draws (including
fully random networks that never touch the registry).
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dse import SweepPoint, evaluate_point, evaluate_points
from repro.dse.spec import (
    MEMORY_NAMES,
    PLATFORM_NAMES,
    cached_network,
    resolve_memory,
    resolve_platform,
)
from repro.hw import DDR4, HBM2, AcceleratorSpec, MemorySpec
from repro.nn import (
    WORKLOAD_BUILDERS,
    Conv2D,
    Dense,
    LayerBitwidth,
    LSTMCell,
    Network,
    RNNCell,
)
from repro.sim import (
    compute_cycles_batch,
    evaluate_lowered,
    gemm_compute_cycles,
    lower_network,
    plan_traffic,
    simulate_network,
    traffic_batch,
)

POLICIES = ("homogeneous-8bit", "paper-heterogeneous")


def _dumps(record: dict) -> str:
    return json.dumps(record, sort_keys=True)


def _network_metrics(result) -> dict:
    """The record metrics evaluate_point reads off a NetworkResult."""
    return {
        "total_cycles": result.total_cycles,
        "total_seconds": result.total_seconds,
        "total_macs": result.total_macs,
        "total_traffic_bytes": result.total_traffic_bytes,
        "compute_energy_pj": result.compute_energy_pj,
        "sram_energy_pj": result.sram_energy_pj,
        "dram_energy_pj": result.dram_energy_pj,
        "uncore_energy_pj": result.uncore_energy_pj,
        "total_energy_pj": result.total_energy_pj,
        "total_energy_j": result.total_energy_j,
        "ops_per_second": result.ops_per_second,
        "average_power_w": result.average_power_w,
        "perf_per_watt": result.perf_per_watt,
        "memory_bound_fraction": result.memory_bound_fraction,
    }


# ----------------------------------------------------------------------
# Deterministic registry sweep: every platform x memory x workload x policy
# ----------------------------------------------------------------------
@pytest.mark.parametrize("workload", sorted(WORKLOAD_BUILDERS))
def test_registry_equivalence_sweep(workload):
    points = [
        SweepPoint(
            workload=workload,
            policy=policy,
            platform=resolve_platform(platform),
            memory=resolve_memory(memory),
        )
        for platform in PLATFORM_NAMES
        for memory in MEMORY_NAMES
        for policy in POLICIES
    ]
    vectorized = evaluate_points(points)
    for point, record in zip(points, vectorized):
        assert _dumps(record) == _dumps(evaluate_point(point))


@pytest.mark.parametrize("workload", sorted(WORKLOAD_BUILDERS))
@pytest.mark.parametrize("platform", PLATFORM_NAMES)
def test_kernel_equivalence(workload, platform):
    """Batched kernels equal the exposed scalar kernels, GEMM by GEMM."""
    spec = resolve_platform(platform)
    network = cached_network(workload, None, "paper-heterogeneous")
    lowered = lower_network(network)
    cycles = compute_cycles_batch(lowered, spec)
    traffic = traffic_batch(lowered, spec)
    index = 0
    for layer in network.layers:
        gemms = layer.gemms(network.batch)
        if not gemms:
            continue
        bw = network.bitwidth(layer.name)
        for gemm in gemms:
            assert cycles[index] == gemm_compute_cycles(
                gemm.m, gemm.k, gemm.n, gemm.count, spec, bw.activations, bw.weights
            )
            unique = None
            if isinstance(layer, Conv2D):
                unique = layer.input_elements(network.batch) // gemm.count
            plan = plan_traffic(
                gemm, bw.activations, bw.weights, spec, input_unique_elements=unique
            )
            assert traffic[index] == plan.total_traffic
            index += 1
    assert index == lowered.num_gemms


def test_lowered_ir_shape():
    network = cached_network("LSTM", 4, "homogeneous-8bit")
    lowered = lower_network(network)
    assert lowered.network_name == network.name
    assert lowered.batch == 4
    assert lowered.num_layers == len(network.weighted_layers)
    assert lowered.num_gemms >= lowered.num_layers
    assert lowered.macs.sum() == network.total_macs()
    # Arrays are shared caches; they must be frozen.
    with pytest.raises(ValueError):
        lowered.m[0] = 1


def test_empty_network_raises():
    from repro.nn import Pool2D

    net = Network("empty", [Pool2D("p", 8, kernel=2, in_size=8)])
    with pytest.raises(ValueError, match="no simulatable layers"):
        lower_network(net)


# ----------------------------------------------------------------------
# Hypothesis: randomized spec / memory / policy draws over the registry
# ----------------------------------------------------------------------
def _spec_strategy():
    def build(style, rows, cols, lanes, freq, kb, uncore, max_bw):
        if style in ("conventional", "stripes", "loom"):
            lanes = 1
        else:
            # Composable styles raise (on both paths) for bitwidths above
            # max_bitwidth; keep them at 8 so any policy draw is valid.
            max_bw = 8
        return AcceleratorSpec(
            name=f"fuzz-{style}",
            style=style,
            num_macs=rows * cols * lanes,
            array_rows=rows,
            array_cols=cols,
            lanes=lanes,
            frequency_hz=freq,
            onchip_bytes=kb * 1024,
            uncore_power_mw=uncore,
            max_bitwidth=max_bw,
        )

    return st.builds(
        build,
        style=st.sampled_from(
            ["conventional", "bitfusion", "bpvec", "stripes", "loom"]
        ),
        rows=st.integers(1, 32),
        cols=st.integers(1, 64),
        lanes=st.sampled_from([1, 2, 4, 8, 16]),
        freq=st.sampled_from([100e6, 500e6, 1.1e9]),
        kb=st.integers(16, 512),
        uncore=st.floats(10.0, 500.0),
        max_bw=st.sampled_from([4, 8]),
    )


def _memory_strategy():
    return st.builds(
        MemorySpec,
        name=st.just("fuzz-mem"),
        bandwidth_gb_s=st.floats(1.0, 512.0),
        energy_pj_per_bit=st.floats(0.1, 20.0),
        efficiency=st.floats(0.5, 1.0),
        background_power_w=st.floats(0.0, 1.0),
    )


@settings(max_examples=40, deadline=None)
@given(
    workload=st.sampled_from(sorted(WORKLOAD_BUILDERS)),
    spec=_spec_strategy(),
    memory=_memory_strategy(),
    act=st.integers(1, 8),
    wgt=st.integers(1, 8),
    batch=st.sampled_from([None, 1, 3, 16]),
)
def test_records_bit_identical_on_random_hardware(
    workload, spec, memory, act, wgt, batch
):
    point = SweepPoint(
        workload=workload,
        policy=f"uniform-{act}x{wgt}",
        platform=spec,
        memory=memory,
        batch=batch,
    )
    (vectorized,) = evaluate_points([point])
    assert _dumps(vectorized) == _dumps(evaluate_point(point))


def _reduced_max_bitwidth_spec(style):
    return AcceleratorSpec(
        name=f"narrow-{style}",
        style=style,
        num_macs=64,
        array_rows=8,
        array_cols=8,
        max_bitwidth=4,
    )


@pytest.mark.parametrize("style", ["conventional", "stripes", "loom"])
def test_policy_bitwidth_above_spec_max_still_bit_identical(style):
    # Serial/conventional datapaths accept bitwidths above their own
    # max_bitwidth (multiplier clamps to 1); the vectorized path must
    # not die on the table gather.
    point = SweepPoint(
        workload="RNN",
        policy="uniform-8x8",
        platform=_reduced_max_bitwidth_spec(style),
        memory=DDR4,
    )
    (vectorized,) = evaluate_points([point])
    assert _dumps(vectorized) == _dumps(evaluate_point(point))


@pytest.mark.parametrize("style", ["bitfusion", "bpvec"])
def test_uncomposable_bitwidth_raises_scalar_error(style):
    # Composable styles cannot run pairs above max_bitwidth; both paths
    # must raise the same scalar-kernel ValueError.
    point = SweepPoint(
        workload="RNN",
        policy="uniform-8x8",
        platform=_reduced_max_bitwidth_spec(style),
        memory=DDR4,
    )
    with pytest.raises(ValueError, match="outside supported range"):
        evaluate_point(point)
    with pytest.raises(ValueError, match="outside supported range"):
        evaluate_points([point])


# ----------------------------------------------------------------------
# Hypothesis: fully random networks, straight through the sim layer
# ----------------------------------------------------------------------
@st.composite
def _random_network(draw):
    layers = []
    kind = draw(st.sampled_from(["cnn", "mlp", "rnn"]))
    n_layers = draw(st.integers(1, 5))
    if kind == "cnn":
        size = draw(st.sampled_from([16, 28]))
        channels = draw(st.integers(1, 16))
        for i in range(n_layers):
            out_ch = draw(st.integers(1, 32))
            kernel = draw(st.sampled_from([1, 3]))
            groups = draw(st.sampled_from([1, 1, 2]))
            if channels % groups or out_ch % groups:
                groups = 1
            layers.append(
                Conv2D(
                    f"conv{i}",
                    channels,
                    out_ch,
                    kernel=kernel,
                    in_size=size,
                    padding=kernel // 2,
                    groups=groups,
                )
            )
            channels = out_ch
    elif kind == "mlp":
        features = draw(st.integers(1, 512))
        for i in range(n_layers):
            out = draw(st.integers(1, 512))
            layers.append(Dense(f"fc{i}", features, out))
            features = out
    else:
        cell = draw(st.sampled_from([RNNCell, LSTMCell]))
        layers.append(
            cell(
                "cell0",
                input_size=draw(st.integers(1, 256)),
                hidden_size=draw(st.integers(1, 256)),
                steps=draw(st.integers(1, 8)),
            )
        )
    net = Network("fuzz", layers, batch=draw(st.integers(1, 8)))
    assignment = {}
    for layer in net.weighted_layers:
        assignment[layer.name] = LayerBitwidth(
            draw(st.integers(1, 8)), draw(st.integers(1, 8))
        )
    net.set_bitwidths(assignment)
    return net


@settings(max_examples=40, deadline=None)
@given(
    net=_random_network(),
    spec=_spec_strategy(),
    memory=st.sampled_from([DDR4, HBM2]),
)
def test_lowered_metrics_bit_identical_on_random_networks(net, spec, memory):
    scalar = _network_metrics(simulate_network(net, spec, memory))
    vectorized = evaluate_lowered(lower_network(net), spec, memory)
    assert _dumps(vectorized) == _dumps(scalar)
