"""Tests for the tiling / DRAM-traffic planner."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw import BPVEC, TPU_LIKE
from repro.nn import Gemm
from repro.sim import BufferSplit, plan_traffic


class TestBufferSplit:
    def test_default_sums_to_one(self):
        BufferSplit()  # must not raise

    def test_bad_sum_rejected(self):
        with pytest.raises(ValueError):
            BufferSplit(0.5, 0.5, 0.5)

    def test_zero_fraction_rejected(self):
        with pytest.raises(ValueError):
            BufferSplit(1.0, 0.0, 0.0)


class TestSmallGemm:
    def test_everything_fits_compulsory_traffic(self):
        """A tiny GEMM moves each operand exactly once."""
        g = Gemm(m=8, k=64, n=16)
        plan = plan_traffic(g, 8, 8, TPU_LIKE)
        assert plan.weight_traffic == 64 * 16
        assert plan.input_traffic == 8 * 64
        assert plan.output_traffic == 8 * 16

    def test_reduced_bitwidth_shrinks_traffic(self):
        g = Gemm(m=8, k=64, n=16)
        full = plan_traffic(g, 8, 8, TPU_LIKE)
        quarter = plan_traffic(g, 4, 4, TPU_LIKE)
        assert quarter.weight_traffic == full.weight_traffic // 2
        assert quarter.input_traffic == full.input_traffic // 2
        # outputs are written at 8-bit regardless
        assert quarter.output_traffic == full.output_traffic


class TestRecurrentReuse:
    def test_resident_weights_loaded_once_across_steps(self):
        """Weights that fit on chip amortize over repeated GEMMs."""
        g = Gemm(m=4, k=128, n=64, count=10)  # 8 KB of weights fits
        plan = plan_traffic(g, 8, 8, TPU_LIKE)
        assert plan.weight_traffic == 128 * 64  # once, not x10

    def test_oversized_weights_reloaded_every_step(self):
        """The RNN regime: 16 MB of weights >> 112 KB scratchpad."""
        g = Gemm(m=16, k=2048, n=4096, count=32)
        plan = plan_traffic(g, 8, 8, TPU_LIKE)
        assert plan.weight_traffic >= 2048 * 4096 * 32


class TestScheduleSelection:
    def test_big_weights_small_acts_streams_weights(self):
        # FC layer, small batch: activations resident, weights streamed once.
        g = Gemm(m=4, k=9216, n=4096)
        plan = plan_traffic(g, 8, 8, TPU_LIKE)
        assert plan.weight_traffic == 9216 * 4096
        assert plan.schedule == "activation-stationary"

    def test_conv_uses_unique_input_footprint(self):
        g = Gemm(m=3136, k=576, n=64)
        with_unique = plan_traffic(
            g, 8, 8, TPU_LIKE, input_unique_elements=64 * 58 * 58
        )
        without = plan_traffic(g, 8, 8, TPU_LIKE)
        assert with_unique.input_traffic < without.input_traffic

    def test_total_is_sum_of_parts(self):
        g = Gemm(m=128, k=512, n=512)
        plan = plan_traffic(g, 8, 8, BPVEC)
        assert plan.total_traffic == (
            plan.weight_traffic + plan.input_traffic + plan.output_traffic
        )

    def test_invalid_bitwidths(self):
        g = Gemm(m=1, k=1, n=1)
        with pytest.raises(ValueError):
            plan_traffic(g, 0, 8, TPU_LIKE)
        with pytest.raises(ValueError):
            plan_traffic(g, 8, 9, TPU_LIKE)


@settings(max_examples=80, deadline=None)
@given(
    m=st.integers(1, 4096),
    k=st.integers(1, 4096),
    n=st.integers(1, 4096),
    count=st.integers(1, 8),
    bw=st.sampled_from([2, 4, 8]),
)
def test_traffic_at_least_compulsory(m, k, n, count, bw):
    """Traffic is never below the compulsory minimum (one pass per tensor)."""
    g = Gemm(m=m, k=k, n=n, count=count)
    plan = plan_traffic(g, bw, bw, TPU_LIKE)
    compulsory_w = -(-k * n * bw // 8)
    compulsory_a = -(-m * k * bw // 8)
    compulsory_o = m * n
    assert plan.weight_traffic >= compulsory_w
    assert plan.input_traffic >= compulsory_a * count
    assert plan.output_traffic == compulsory_o * count
