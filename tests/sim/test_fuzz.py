"""Fuzzing: random networks through the whole stack, invariants intact.

Property-based integration tests: hypothesis builds arbitrary (valid)
networks, bitwidth assignments, platforms, and memories; the simulator,
compiler, and roofline must process them without error while every
physical invariant holds.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import Executor, lower_network
from repro.hw import BITFUSION, BPVEC, DDR4, HBM2, TPU_LIKE
from repro.nn import Conv2D, Dense, LayerBitwidth, LSTMCell, Network, RNNCell
from repro.sim import roofline_analysis, simulate_network

PLATFORMS = [TPU_LIKE, BITFUSION, BPVEC]
MEMORIES = [DDR4, HBM2]


@st.composite
def random_network(draw):
    layers = []
    n_layers = draw(st.integers(1, 5))
    kind = draw(st.sampled_from(["cnn", "mlp", "rnn"]))
    if kind == "cnn":
        size = draw(st.sampled_from([16, 28, 32]))
        channels = draw(st.integers(1, 16))
        for i in range(n_layers):
            out_ch = draw(st.integers(1, 32))
            kernel = draw(st.sampled_from([1, 3]))
            layers.append(
                Conv2D(
                    f"conv{i}",
                    channels,
                    out_ch,
                    kernel=kernel,
                    in_size=size,
                    padding=kernel // 2,
                )
            )
            channels = out_ch
    elif kind == "mlp":
        features = draw(st.integers(1, 512))
        for i in range(n_layers):
            out = draw(st.integers(1, 512))
            layers.append(Dense(f"fc{i}", features, out))
            features = out
    else:
        hidden = draw(st.integers(1, 256))
        steps = draw(st.integers(1, 8))
        cell = draw(st.sampled_from([RNNCell, LSTMCell]))
        layers.append(
            cell(
                "cell0",
                input_size=draw(st.integers(1, 256)),
                hidden_size=hidden,
                steps=steps,
            )
        )
    batch = draw(st.integers(1, 8))
    net = Network("fuzz", layers, batch=batch)
    assignment = {}
    for layer in net.weighted_layers:
        bits = draw(st.sampled_from([2, 3, 4, 6, 8]))
        assignment[layer.name] = LayerBitwidth(bits, bits)
    net.set_bitwidths(assignment)
    return net


@settings(max_examples=40, deadline=None)
@given(
    net=random_network(),
    platform=st.sampled_from(PLATFORMS),
    memory=st.sampled_from(MEMORIES),
)
def test_simulator_invariants_on_random_networks(net, platform, memory):
    result = simulate_network(net, platform, memory)

    # Cycles are at least the ideal (peak-throughput, zero-padding) bound.
    for layer_result in result.layers:
        peak = platform.macs_per_cycle(layer_result.bw_act, layer_result.bw_w)
        ideal = math.ceil(layer_result.macs / peak)
        assert layer_result.compute_cycles >= ideal
        assert layer_result.cycles == max(
            layer_result.compute_cycles, layer_result.memory_cycles
        )
        assert layer_result.traffic_bytes > 0
        assert layer_result.energy_pj > 0

    # Aggregates are consistent and physical.
    assert result.total_macs == net.total_macs()
    assert 0 < result.average_power_w < 20
    assert 0 <= result.memory_bound_fraction <= 1


@settings(max_examples=20, deadline=None)
@given(
    net=random_network(),
    platform=st.sampled_from(PLATFORMS),
    memory=st.sampled_from(MEMORIES),
)
def test_compiler_always_agrees_with_simulator(net, platform, memory):
    program = lower_network(net, platform)
    execution = Executor(platform, memory).run(program)
    sim = simulate_network(net, platform, memory)
    assert execution.cycles == sim.total_cycles
    assert execution.traffic_bytes == sim.total_traffic_bytes
    assert execution.macs == sim.total_macs


@settings(max_examples=20, deadline=None)
@given(net=random_network(), memory=st.sampled_from(MEMORIES))
def test_roofline_never_exceeds_roof(net, memory):
    for point in roofline_analysis(net, BPVEC, memory):
        assert point.attained_macs_per_cycle <= point.peak_macs_per_cycle + 1e-9
        assert point.operational_intensity > 0


@settings(max_examples=20, deadline=None)
@given(net=random_network())
def test_faster_memory_never_slower(net):
    slow = simulate_network(net, BPVEC, DDR4)
    fast = simulate_network(net, BPVEC, HBM2)
    assert fast.total_cycles <= slow.total_cycles


def test_skinny_layers_can_favour_the_baseline():
    """Not a bug, an architecture property: BPVeC's long-reduction CVUs
    trade column count for vector depth, so a degenerate K=1 layer with
    many outputs utilizes the baseline's 32 columns better than BPVeC's 8.
    Real DNN layers (Table I) do not have this shape -- but the simulator
    must model it rather than assume BPVeC always wins."""
    net = Network("skinny", [Dense("fc", 1, 1024)], batch=4)
    net.set_bitwidths({"fc": LayerBitwidth(8, 8)})
    base = simulate_network(net, TPU_LIKE, HBM2)
    bpvec = simulate_network(net, BPVEC, HBM2)
    assert bpvec.layer("fc").compute_cycles > base.layer("fc").compute_cycles


@settings(max_examples=10, deadline=None)
@given(net=random_network())
def test_fuzz_strategies_produce_valid_networks(net):
    """Smoke-check the strategy itself (shrinking depends on validity)."""
    assert net.weighted_layers
    pytest.raises(ValueError, Network, "dup", net.layers + net.layers)
