"""Dedicated unit tests for repro.sim.report: geomean, compare, tables."""

import math

import pytest

from repro.hw import BPVEC, DDR4, TPU_LIKE
from repro.nn import homogeneous_8bit, lstm_workload, rnn_workload
from repro.sim import simulate_network
from repro.sim.report import Comparison, compare, format_table, geomean


class TestGeomean:
    def test_matches_closed_form(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)
        assert geomean([3.0]) == pytest.approx(3.0)
        assert geomean([1.0, 1.0, 1.0]) == pytest.approx(1.0)

    def test_log_space_accumulation(self):
        values = [0.5, 2.0, 4.0, 0.25]
        expected = math.exp(sum(math.log(v) for v in values) / len(values))
        assert geomean(values) == pytest.approx(expected)

    def test_consumes_generators(self):
        assert geomean(v for v in (2.0, 2.0)) == pytest.approx(2.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            geomean([])

    @pytest.mark.parametrize("bad", [0.0, -1.0])
    def test_nonpositive_rejected(self, bad):
        with pytest.raises(ValueError, match="positive"):
            geomean([1.0, bad])


class TestCompare:
    @pytest.fixture(scope="class")
    def results(self):
        reference = simulate_network(homogeneous_8bit(lstm_workload()), TPU_LIKE, DDR4)
        candidate = simulate_network(homogeneous_8bit(lstm_workload()), BPVEC, DDR4)
        return reference, candidate

    def test_speedup_and_energy_ratios(self, results):
        reference, candidate = results
        comparison = compare(reference, candidate)
        assert comparison.workload == "LSTM"
        assert comparison.speedup == pytest.approx(
            reference.total_seconds / candidate.total_seconds
        )
        assert comparison.energy_reduction == pytest.approx(
            reference.total_energy_pj / candidate.total_energy_pj
        )

    def test_self_comparison_is_unity(self, results):
        reference, _ = results
        comparison = compare(reference, reference)
        assert comparison.speedup == pytest.approx(1.0)
        assert comparison.energy_reduction == pytest.approx(1.0)

    def test_names_identify_platform_and_memory(self, results):
        reference, candidate = results
        comparison = compare(reference, candidate)
        assert comparison.reference == "TPU-like baseline+DDR4"
        assert comparison.candidate == "BPVeC+DDR4"

    def test_str_renders_ratios(self, results):
        reference, candidate = results
        text = str(compare(reference, candidate))
        assert "speedup" in text and "energy" in text and "LSTM" in text

    def test_mismatched_workloads_rejected(self, results):
        reference, _ = results
        other = simulate_network(homogeneous_8bit(rnn_workload()), BPVEC, DDR4)
        with pytest.raises(ValueError, match="different workloads"):
            compare(reference, other)

    def test_comparison_is_frozen(self, results):
        reference, candidate = results
        comparison = compare(reference, candidate)
        with pytest.raises(AttributeError):
            comparison.speedup = 2.0
        assert isinstance(comparison, Comparison)


class TestFormatTable:
    def test_columns_align_under_headers(self):
        text = format_table(["Name", "Value"], [("a", 1.0), ("long-name", 2.5)])
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert lines[0].startswith("Name")
        assert lines[1].replace("-", "").strip() == ""
        # Every row is padded to one shared width per column.
        assert lines[2].index("1.00") == lines[3].index("2.50")

    def test_float_precision(self):
        text = format_table(["x"], [(1.23456,)], precision=3)
        assert "1.235" in text
        assert format_table(["x"], [(1.23456,)]).count("1.23") == 1

    def test_non_float_cells_stringified(self):
        text = format_table(["a", "b"], [(12, None)])
        assert "12" in text and "None" in text

    def test_empty_rows_render_headers_only(self):
        text = format_table(["Col-A", "B"], [])
        lines = text.splitlines()
        assert lines[0].split() == ["Col-A", "B"]
        assert len(lines) == 2
        assert len(lines[1]) == len(lines[0])

    def test_wide_cell_stretches_column(self):
        text = format_table(["x"], [("wider-than-header",)])
        header, rule, row = text.splitlines()
        assert len(rule) == len("wider-than-header")
