"""Tests for the cycle-accurate systolic array model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.systolic import SystolicArray


class TestTileExecution:
    def test_exact_small_gemm(self):
        arr = SystolicArray(4, 4)
        rng = np.random.default_rng(0)
        a = rng.integers(-10, 10, size=(6, 4))
        w = rng.integers(-10, 10, size=(4, 4))
        res = arr.run_tile(a, w)
        np.testing.assert_array_equal(res.output, a @ w)

    def test_cycle_formula(self):
        arr = SystolicArray(4, 8)
        a = np.ones((10, 4), dtype=np.int64)
        w = np.ones((4, 8), dtype=np.int64)
        res = arr.run_tile(a, w)
        assert res.cycles == arr.tile_cycles(10)
        assert res.weight_load_cycles == 4
        assert res.fill_drain_cycles == 4 + 8 - 2

    def test_underutilized_tile_padded(self):
        arr = SystolicArray(8, 8)
        a = np.ones((3, 2), dtype=np.int64)
        w = np.ones((2, 5), dtype=np.int64)
        res = arr.run_tile(a, w)
        np.testing.assert_array_equal(res.output, a @ w)

    def test_zero_row_tile_streams_empty_output(self):
        # Degenerate M=0: nothing to inject or drain, exact empty result
        # (regression test for the vectorized injection gather).
        arr = SystolicArray(4, 4)
        res = arr.run_tile(np.zeros((0, 4), dtype=np.int64), np.ones((4, 3)))
        assert res.output.shape == (0, 3)

    def test_dimension_validation(self):
        arr = SystolicArray(4, 4)
        with pytest.raises(ValueError):
            arr.run_tile(np.ones((2, 5)), np.ones((5, 2)))  # K too large
        with pytest.raises(ValueError):
            arr.run_tile(np.ones((2, 4)), np.ones((4, 5)))  # N too large
        with pytest.raises(ValueError):
            arr.run_tile(np.ones((2, 3)), np.ones((2, 2)))  # inner mismatch
        with pytest.raises(ValueError):
            arr.run_tile(np.ones(4), np.ones((4, 4)))  # not 2-D

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            SystolicArray(0, 4)
        with pytest.raises(ValueError):
            SystolicArray(4, 4).tile_cycles(0)


class TestFullGemm:
    def test_multi_tile_gemm(self):
        arr = SystolicArray(4, 4)
        rng = np.random.default_rng(1)
        a = rng.integers(-5, 5, size=(7, 10))
        w = rng.integers(-5, 5, size=(10, 9))
        out, cycles = arr.run_gemm(a, w)
        np.testing.assert_array_equal(out, a @ w)
        # ceil(10/4) x ceil(9/4) = 3 x 3 tiles.
        assert cycles == 9 * arr.tile_cycles(7)


class TestAgreementWithAnalyticalModel:
    def test_overhead_amortizes_for_long_streams(self):
        """Analytical model charges M cycles/tile; fill/drain is the delta."""
        arr = SystolicArray(8, 8)
        m = 500
        a = np.ones((m, 8), dtype=np.int64)
        w = np.ones((8, 8), dtype=np.int64)
        res = arr.run_tile(a, w)
        analytical = m  # one K-pass, one N-pass
        overhead = (res.cycles - analytical) / analytical
        assert overhead < 0.06  # < 6% at M=500, vanishing as M grows

    def test_overhead_significant_for_short_streams(self):
        """Why the analytical model targets layer-scale M, not tiny tiles."""
        arr = SystolicArray(8, 8)
        res = arr.run_tile(
            np.ones((4, 8), dtype=np.int64), np.ones((8, 8), dtype=np.int64)
        )
        assert res.cycles > 4 * 2


@settings(max_examples=25, deadline=None)
@given(
    rows=st.integers(1, 8),
    cols=st.integers(1, 8),
    m=st.integers(1, 12),
    seed=st.integers(0, 2**31),
)
def test_systolic_dataflow_always_exact(rows, cols, m, seed):
    rng = np.random.default_rng(seed)
    arr = SystolicArray(rows, cols)
    a = rng.integers(-128, 128, size=(m, rows))
    w = rng.integers(-128, 128, size=(rows, cols))
    res = arr.run_tile(a, w)
    np.testing.assert_array_equal(res.output, a @ w)
    assert res.cycles == arr.tile_cycles(m)
