"""Tests for the roofline analysis."""

import pytest

from repro.hw import BPVEC, DDR4, HBM2, TPU_LIKE
from repro.nn import homogeneous_8bit, lstm_workload, resnet18
from repro.sim import ridge_point, roofline_analysis


class TestRidgePoint:
    def test_bpvec_ddr4(self):
        # 1024 MACs/cycle over 32 bytes/cycle = 32 MACs/byte.
        assert ridge_point(BPVEC, DDR4) == pytest.approx(32.0)

    def test_hbm2_moves_ridge_left(self):
        assert ridge_point(BPVEC, HBM2) == pytest.approx(2.0)
        assert ridge_point(BPVEC, HBM2) < ridge_point(BPVEC, DDR4)

    def test_reduced_bitwidth_moves_ridge_right(self):
        assert ridge_point(BPVEC, DDR4, 4, 4) > ridge_point(BPVEC, DDR4, 8, 8)

    def test_conventional_platform(self):
        assert ridge_point(TPU_LIKE, DDR4) == pytest.approx(16.0)


class TestRooflineAnalysis:
    def test_lstm_left_of_ddr4_ridge(self):
        """The paper's RNN story: recurrent layers sit in the memory region."""
        net = homogeneous_8bit(lstm_workload())
        points = roofline_analysis(net, BPVEC, DDR4)
        ridge = ridge_point(BPVEC, DDR4)
        for p in points:
            assert p.operational_intensity < ridge
            assert p.memory_bound

    def test_resnet_convs_right_of_ridge(self):
        net = homogeneous_8bit(resnet18(batch=8))
        points = roofline_analysis(net, BPVEC, DDR4)
        ridge = ridge_point(BPVEC, DDR4)
        convs = [p for p in points if p.layer_name.endswith("conv2")]
        assert convs
        for p in convs:
            assert p.operational_intensity > ridge
            assert not p.memory_bound

    def test_attained_below_roof(self):
        net = homogeneous_8bit(resnet18(batch=2))
        for p in roofline_analysis(net, BPVEC, DDR4):
            assert 0 < p.attained_macs_per_cycle <= p.peak_macs_per_cycle
            assert 0 < p.roof_fraction <= 1.0

    def test_memory_bound_consistent_with_intensity(self):
        """Memory-bound <=> intensity below the ridge (up to rounding)."""
        net = homogeneous_8bit(lstm_workload())
        ridge = ridge_point(BPVEC, HBM2)
        for p in roofline_analysis(net, BPVEC, HBM2):
            if p.memory_bound:
                assert p.operational_intensity <= ridge * 1.05

    def test_empty_network_rejected(self):
        from repro.nn import Network, Pool2D

        net = Network("p", [Pool2D("p", 2, kernel=2, in_size=4)])
        with pytest.raises(ValueError):
            roofline_analysis(net, BPVEC, DDR4)
