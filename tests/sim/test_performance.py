"""Tests for the per-layer performance and energy model."""

import pytest

from repro.hw import BITFUSION, BPVEC, DDR4, HBM2, TPU_LIKE
from repro.nn import Dense, LayerBitwidth, Network, Pool2D, uniform
from repro.sim import simulate_layer


def _single_layer_net(layer, batch=1, bits=8):
    net = Network("T", [layer], batch=batch)
    return uniform(net, bits, bits)


class TestComputeCycles:
    def test_ideal_utilization_layer(self):
        # K and N exactly match the baseline array: 16 rows x 32 cols.
        layer = Dense("fc", 16 * 4, 32 * 2)
        net = _single_layer_net(layer, batch=10)
        res = simulate_layer(layer, net, TPU_LIKE, DDR4)
        assert res.compute_cycles == 10 * 4 * 2  # M x K-passes x N-passes

    def test_padding_waste_counted(self):
        # K=17 on a 16-row array wastes almost half the array.
        layer = Dense("fc", 17, 32)
        net = _single_layer_net(layer, batch=1)
        res = simulate_layer(layer, net, TPU_LIKE, DDR4)
        assert res.compute_cycles == 2  # ceil(17/16) passes

    def test_bpvec_8bit_is_2x_baseline_at_full_utilization(self):
        layer = Dense("fc", 1024, 1024)
        net = _single_layer_net(layer, batch=64)
        base = simulate_layer(layer, net, TPU_LIKE, HBM2)
        bpv = simulate_layer(layer, net, BPVEC, HBM2)
        assert base.compute_cycles / bpv.compute_cycles == pytest.approx(2.0)

    def test_bpvec_4bit_mode_quadruples_throughput(self):
        layer = Dense("fc", 4096, 1024)
        net4 = _single_layer_net(layer, batch=64, bits=4)
        net8 = _single_layer_net(layer, batch=64, bits=8)
        r8 = simulate_layer(layer, net8, BPVEC, HBM2)
        r4 = simulate_layer(layer, net4, BPVEC, HBM2)
        assert r8.compute_cycles / r4.compute_cycles == pytest.approx(4.0)

    def test_conventional_gains_nothing_from_4bit(self):
        layer = Dense("fc", 4096, 1024)
        net4 = _single_layer_net(layer, batch=64, bits=4)
        net8 = _single_layer_net(layer, batch=64, bits=8)
        r8 = simulate_layer(layer, net8, TPU_LIKE, HBM2)
        r4 = simulate_layer(layer, net4, TPU_LIKE, HBM2)
        assert r4.compute_cycles == r8.compute_cycles

    def test_flexible_cluster_arrangement_limits_padding(self):
        """4-bit clusters map to columns when K is short (Fig. 3-c freedom)."""
        layer = Dense("fc", 128, 1024)  # K exactly one BPVeC reduction
        net4 = _single_layer_net(layer, batch=64, bits=4)
        res = simulate_layer(layer, net4, BPVEC, HBM2)
        # Best arrangement: keep K at one pass, use x4 on columns.
        assert res.compute_cycles == 64 * 1 * -(-1024 // (8 * 4))


class TestMemoryBoundedness:
    def test_matvec_is_memory_bound_on_ddr4(self):
        layer = Dense("fc", 4096, 4096)
        net = _single_layer_net(layer, batch=1)
        res = simulate_layer(layer, net, TPU_LIKE, DDR4)
        assert res.is_memory_bound

    def test_same_layer_compute_bound_on_hbm2(self):
        layer = Dense("fc", 4096, 4096)
        net = _single_layer_net(layer, batch=2)
        res = simulate_layer(layer, net, TPU_LIKE, HBM2)
        assert not res.is_memory_bound

    def test_cycles_is_max_of_compute_and_memory(self):
        layer = Dense("fc", 2048, 2048)
        net = _single_layer_net(layer, batch=4)
        res = simulate_layer(layer, net, TPU_LIKE, DDR4)
        assert res.cycles == max(res.compute_cycles, res.memory_cycles)


class TestEnergy:
    def test_all_components_positive(self):
        layer = Dense("fc", 512, 512)
        net = _single_layer_net(layer, batch=8)
        res = simulate_layer(layer, net, BPVEC, DDR4)
        assert res.compute_energy_pj > 0
        assert res.sram_energy_pj > 0
        assert res.dram_energy_pj > 0
        assert res.uncore_energy_pj > 0
        assert res.energy_pj == pytest.approx(
            res.compute_energy_pj
            + res.sram_energy_pj
            + res.dram_energy_pj
            + res.uncore_energy_pj
        )

    def test_hbm2_cuts_dram_access_energy(self):
        layer = Dense("fc", 2048, 2048)
        net = _single_layer_net(layer, batch=8)
        ddr = simulate_layer(layer, net, TPU_LIKE, DDR4)
        hbm = simulate_layer(layer, net, TPU_LIKE, HBM2)
        assert hbm.dram_energy_pj < ddr.dram_energy_pj

    def test_bpvec_mac_energy_half_of_baseline(self):
        layer = Dense("fc", 1024, 1024)
        net = _single_layer_net(layer, batch=8)
        base = simulate_layer(layer, net, TPU_LIKE, DDR4)
        bpv = simulate_layer(layer, net, BPVEC, DDR4)
        assert base.compute_energy_pj / bpv.compute_energy_pj == pytest.approx(
            2.03, rel=0.02
        )

    def test_bitfusion_mac_energy_above_baseline(self):
        layer = Dense("fc", 1024, 1024)
        net = _single_layer_net(layer, batch=8)
        base = simulate_layer(layer, net, TPU_LIKE, DDR4)
        bf = simulate_layer(layer, net, BITFUSION, DDR4)
        assert bf.compute_energy_pj > base.compute_energy_pj


class TestEdgeCases:
    def test_pool_layer_returns_none(self):
        pool = Pool2D("p", 8, kernel=2, in_size=8)
        net = Network("T", [pool])
        assert simulate_layer(pool, net, TPU_LIKE, DDR4) is None

    def test_bitwidths_recorded(self):
        layer = Dense("fc", 64, 64)
        net = Network("T", [layer]).set_bitwidths({"fc": LayerBitwidth(8, 4)})
        res = simulate_layer(layer, net, BPVEC, DDR4)
        assert (res.bw_act, res.bw_w) == (8, 4)

    def test_macs_match_layer(self):
        layer = Dense("fc", 123, 45)
        net = _single_layer_net(layer, batch=7)
        res = simulate_layer(layer, net, BPVEC, DDR4)
        assert res.macs == layer.macs(7)

    def test_seconds_helper(self):
        layer = Dense("fc", 64, 64)
        net = _single_layer_net(layer)
        res = simulate_layer(layer, net, TPU_LIKE, DDR4)
        assert res.seconds(500e6) == pytest.approx(res.cycles / 500e6)
