"""Tests for the vectorised composed matmul."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import composed_matmul, composition_workload, reference_matmul
from repro.core.bitslice import value_range


def test_reference_matmul_int64():
    x = np.array([[1, 2], [3, 4]])
    w = np.array([[5, 6], [7, 8]])
    np.testing.assert_array_equal(
        reference_matmul(x, w), np.array([[19, 22], [43, 50]])
    )


def test_composed_matmul_matches_reference_8x8():
    rng = np.random.default_rng(0)
    x = rng.integers(-128, 128, size=(8, 32))
    w = rng.integers(-128, 128, size=(32, 12))
    np.testing.assert_array_equal(
        composed_matmul(x, w, 8, 8), reference_matmul(x, w)
    )


def test_composed_matmul_batched_input():
    rng = np.random.default_rng(1)
    x = rng.integers(0, 16, size=(2, 3, 10))
    w = rng.integers(-8, 8, size=(10, 4))
    got = composed_matmul(x, w, 4, 4, signed_x=False, signed_w=True)
    np.testing.assert_array_equal(got, reference_matmul(x, w))


def test_inner_dim_mismatch():
    with pytest.raises(ValueError):
        composed_matmul(np.zeros((2, 3)), np.zeros((4, 2)), 8, 8)


def test_composition_workload_counts():
    # 8x8 with 2-bit slicing -> 16 narrow MACs per wide MAC.
    wide = 4 * 10 * 6
    assert composition_workload((4, 10), (10, 6), 8, 8, 2) == wide * 16
    # 8x2 -> 4 narrow MACs per wide MAC.
    assert composition_workload((4, 10), (10, 6), 8, 2, 2) == wide * 4


@settings(max_examples=60, deadline=None)
@given(
    bw_x=st.integers(1, 8),
    bw_w=st.integers(1, 8),
    slice_width=st.sampled_from([1, 2, 4]),
    signed_x=st.booleans(),
    signed_w=st.booleans(),
    m=st.integers(1, 6),
    k=st.integers(1, 24),
    n=st.integers(1, 6),
    seed=st.integers(0, 2**32 - 1),
)
def test_composed_matmul_exact_property(
    bw_x, bw_w, slice_width, signed_x, signed_w, m, k, n, seed
):
    rng = np.random.default_rng(seed)
    lo_x, hi_x = value_range(bw_x, signed_x)
    lo_w, hi_w = value_range(bw_w, signed_w)
    x = rng.integers(lo_x, hi_x + 1, size=(m, k))
    w = rng.integers(lo_w, hi_w + 1, size=(k, n))
    got = composed_matmul(x, w, bw_x, bw_w, slice_width, signed_x, signed_w)
    np.testing.assert_array_equal(got, reference_matmul(x, w))
