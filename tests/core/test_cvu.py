"""Tests for the NBVE and CVU functional models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CVU, CVUConfig, NBVE
from repro.core.bitslice import value_range


class TestNBVE:
    def test_basic_dot(self):
        nbve = NBVE(lanes=4, slice_width=2)
        assert nbve.compute(np.array([1, 2, 3, 0]), np.array([3, 3, 1, 2])) == 12

    def test_signed_slice_mode(self):
        nbve = NBVE(lanes=2, slice_width=2)
        assert nbve.compute(
            np.array([-2, 1]), np.array([3, 3]), signed_a=True
        ) == -3

    def test_rejects_overlong_vector(self):
        nbve = NBVE(lanes=2, slice_width=2)
        with pytest.raises(ValueError):
            nbve.compute(np.array([1, 1, 1]), np.array([1, 1, 1]))

    def test_rejects_out_of_range_slice(self):
        nbve = NBVE(lanes=4, slice_width=2)
        with pytest.raises(ValueError):
            nbve.compute(np.array([4]), np.array([1]))  # 4 needs 3 bits

    def test_rejects_shape_mismatch(self):
        nbve = NBVE(lanes=4, slice_width=2)
        with pytest.raises(ValueError):
            nbve.compute(np.array([1, 2]), np.array([1]))

    def test_counters(self):
        nbve = NBVE(lanes=4, slice_width=2)
        nbve.compute(np.array([1, 2]), np.array([3, 0]))
        nbve.compute(np.array([1]), np.array([3]))
        assert nbve.invocations == 2
        assert nbve.macs_performed == 3
        nbve.reset_counters()
        assert nbve.invocations == 0

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            NBVE(lanes=0)
        with pytest.raises(ValueError):
            NBVE(lanes=4, slice_width=0)

    def test_properties(self):
        nbve = NBVE(lanes=16, slice_width=2)
        assert nbve.adder_tree_inputs == 16
        assert nbve.product_bits == 4


class TestCVUConfig:
    def test_paper_design_point(self):
        cfg = CVUConfig()  # 2-bit slicing, 8-bit max, L=16
        assert cfg.n_nbve == 16
        assert cfg.multipliers == 256
        assert cfg.peak_macs_per_cycle == 16

    def test_one_bit_slicing(self):
        cfg = CVUConfig(slice_width=1)
        assert cfg.n_nbve == 64

    def test_invalid_slicing(self):
        with pytest.raises(ValueError):
            CVUConfig(slice_width=3)
        with pytest.raises(ValueError):
            CVUConfig(lanes=0)


class TestCVUDotProduct:
    def test_exact_8x8_signed(self):
        cvu = CVU()
        rng = np.random.default_rng(0)
        x = rng.integers(-128, 128, size=100)
        w = rng.integers(-128, 128, size=100)
        res = cvu.dot_product(x, w, 8, 8)
        assert res.value == int(np.dot(x, w))

    def test_cycle_count_chunking(self):
        cvu = CVU()  # 16 lanes
        x = np.ones(33, dtype=np.int64)
        w = np.ones(33, dtype=np.int64)
        res = cvu.dot_product(x, w, 8, 8)
        assert res.cycles == 3  # ceil(33/16)
        assert res.value == 33

    def test_grouped_8x2_four_lanes(self):
        cvu = CVU()
        rng = np.random.default_rng(1)
        xs = [rng.integers(-128, 128, size=20) for _ in range(4)]
        ws = [rng.integers(-2, 2, size=20) for _ in range(4)]
        res = cvu.grouped_dot_products(xs, ws, 8, 2)
        for lane in range(4):
            assert res.values[lane] == int(np.dot(xs[lane], ws[lane]))

    def test_group_limit_enforced(self):
        cvu = CVU()
        xs = [np.array([1])] * 5
        with pytest.raises(ValueError):
            cvu.grouped_dot_products(xs, xs, 8, 2)  # 8x2 supports only 4

    def test_empty_lanes_rejected(self):
        cvu = CVU()
        with pytest.raises(ValueError):
            cvu.grouped_dot_products([], [], 8, 8)

    def test_lane_count_mismatch(self):
        cvu = CVU()
        with pytest.raises(ValueError):
            cvu.grouped_dot_products([np.array([1])], [], 8, 8)

    def test_effective_macs_per_cycle(self):
        cvu = CVU()
        assert cvu.effective_macs_per_cycle(8, 8) == 16
        assert cvu.effective_macs_per_cycle(8, 2) == 64
        assert cvu.effective_macs_per_cycle(4, 4) == 64
        assert cvu.effective_macs_per_cycle(2, 2) == 256

    def test_counters_accumulate_and_reset(self):
        cvu = CVU()
        cvu.dot_product(np.arange(16), np.arange(16), 8, 8)
        assert cvu.cycles == 1
        assert sum(n.invocations for n in cvu.nbves) == 16
        cvu.reset_counters()
        assert cvu.cycles == 0


@settings(max_examples=60, deadline=None)
@given(
    bw_x=st.integers(1, 8),
    bw_w=st.integers(1, 8),
    signed_x=st.booleans(),
    signed_w=st.booleans(),
    n=st.integers(1, 40),
    seed=st.integers(0, 2**32 - 1),
)
def test_cvu_matches_reference_all_bitwidths(bw_x, bw_w, signed_x, signed_w, n, seed):
    """The CVU is bit-exact for every supported bitwidth combination."""
    rng = np.random.default_rng(seed)
    lo_x, hi_x = value_range(bw_x, signed_x)
    lo_w, hi_w = value_range(bw_w, signed_w)
    x = rng.integers(lo_x, hi_x + 1, size=n)
    w = rng.integers(lo_w, hi_w + 1, size=n)
    cvu = CVU()
    res = cvu.dot_product(x, w, bw_x, bw_w, signed_x, signed_w)
    assert res.value == int(np.dot(x, w))


@settings(max_examples=30, deadline=None)
@given(
    bw=st.sampled_from([2, 4, 8]),
    n=st.integers(1, 30),
    seed=st.integers(0, 2**32 - 1),
)
def test_heterogeneous_lanes_equal_sequential(bw, n, seed):
    """Cluster-parallel results equal running each lane alone."""
    rng = np.random.default_rng(seed)
    cvu = CVU()
    groups = cvu.plan(bw, bw).n_groups
    lo, hi = value_range(bw, True)
    xs = [rng.integers(lo, hi + 1, size=n) for _ in range(groups)]
    ws = [rng.integers(lo, hi + 1, size=n) for _ in range(groups)]
    parallel = cvu.grouped_dot_products(xs, ws, bw, bw)
    for lane in range(groups):
        solo = CVU().dot_product(xs[lane], ws[lane], bw, bw)
        assert parallel.values[lane] == solo.value
