"""Unit and property tests for the bit-slicing math (paper Eq. 1-4)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import bitslice


class TestNumSlices:
    def test_exact_division(self):
        assert bitslice.num_slices(8, 2) == 4
        assert bitslice.num_slices(8, 1) == 8
        assert bitslice.num_slices(8, 4) == 2
        assert bitslice.num_slices(8, 8) == 1

    def test_round_up(self):
        assert bitslice.num_slices(3, 2) == 2
        assert bitslice.num_slices(5, 2) == 3
        assert bitslice.num_slices(7, 4) == 2

    def test_invalid(self):
        with pytest.raises(ValueError):
            bitslice.num_slices(0, 2)
        with pytest.raises(ValueError):
            bitslice.num_slices(8, 0)


class TestValueRange:
    def test_signed(self):
        assert bitslice.value_range(8, True) == (-128, 127)
        assert bitslice.value_range(2, True) == (-2, 1)
        assert bitslice.value_range(1, True) == (-1, 0)

    def test_unsigned(self):
        assert bitslice.value_range(8, False) == (0, 255)
        assert bitslice.value_range(1, False) == (0, 1)

    def test_check_range_rejects(self):
        with pytest.raises(ValueError):
            bitslice.check_range(np.array([128]), 8, True)
        with pytest.raises(ValueError):
            bitslice.check_range(np.array([-1]), 8, False)
        with pytest.raises(ValueError):
            bitslice.check_range(np.array([256]), 8, False)

    def test_check_range_accepts_boundary(self):
        bitslice.check_range(np.array([-128, 127]), 8, True)
        bitslice.check_range(np.array([0, 255]), 8, False)
        bitslice.check_range(np.array([], dtype=np.int64), 8, False)


class TestSliceVector:
    def test_unsigned_example(self):
        # 0b1101_10 = 54 with 2-bit slices: [2, 1, 3]
        slices = bitslice.slice_vector(np.array([54]), 6, 2, signed=False)
        np.testing.assert_array_equal(slices[:, 0], [2, 1, 3])

    def test_signed_top_slice_is_negative(self):
        # -1 in 8-bit two's complement = 0xFF; 2-bit slices 3,3,3, top = -1
        slices = bitslice.slice_vector(np.array([-1]), 8, 2, signed=True)
        np.testing.assert_array_equal(slices[:, 0], [3, 3, 3, -1])

    def test_signed_min_value(self):
        slices = bitslice.slice_vector(np.array([-128]), 8, 2, signed=True)
        np.testing.assert_array_equal(slices[:, 0], [0, 0, 0, -2])

    def test_slice_shape(self):
        x = np.zeros((3, 5), dtype=np.int64)
        slices = bitslice.slice_vector(x, 8, 2, signed=True)
        assert slices.shape == (4, 3, 5)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            bitslice.slice_vector(np.array([300]), 8, 2, signed=False)

    def test_non_dividing_slice_width_pads(self):
        # 3-bit signed value -4 with 2-bit slices -> 2 slices covering 4 bits.
        slices = bitslice.slice_vector(np.array([-4]), 3, 2, signed=True)
        assert slices.shape[0] == 2
        assert bitslice.recompose_vector(slices, 2)[0] == -4


class TestRecompose:
    def test_roundtrip_simple(self):
        x = np.array([-128, -1, 0, 1, 127])
        slices = bitslice.slice_vector(x, 8, 2, signed=True)
        np.testing.assert_array_equal(bitslice.recompose_vector(slices, 2), x)

    def test_empty_slices_rejected(self):
        with pytest.raises(ValueError):
            bitslice.recompose_vector(np.zeros((0, 4)), 2)

    def test_slice_weights(self):
        np.testing.assert_array_equal(bitslice.slice_weights(8, 2), [1, 4, 16, 64])
        np.testing.assert_array_equal(bitslice.slice_weights(4, 1), [1, 2, 4, 8])


@st.composite
def slicing_case(draw):
    """Random (vector pair, bitwidths, slicing, signedness) combination."""
    bw_x = draw(st.integers(1, 8))
    bw_w = draw(st.integers(1, 8))
    slice_x = draw(st.integers(1, 4))
    slice_w = draw(st.integers(1, 4))
    signed_x = draw(st.booleans())
    signed_w = draw(st.booleans())
    n = draw(st.integers(1, 64))
    lo_x, hi_x = bitslice.value_range(bw_x, signed_x)
    lo_w, hi_w = bitslice.value_range(bw_w, signed_w)
    x = draw(
        st.lists(st.integers(lo_x, hi_x), min_size=n, max_size=n).map(np.array)
    )
    w = draw(
        st.lists(st.integers(lo_w, hi_w), min_size=n, max_size=n).map(np.array)
    )
    return x, w, bw_x, bw_w, slice_x, slice_w, signed_x, signed_w


@settings(max_examples=200, deadline=None)
@given(slicing_case())
def test_slice_recompose_roundtrip(case):
    """Invariant: recompose(slice(x)) == x for every configuration."""
    x, _, bw_x, _, slice_x, _, signed_x, _ = case
    slices = bitslice.slice_vector(x, bw_x, slice_x, signed_x)
    np.testing.assert_array_equal(bitslice.recompose_vector(slices, slice_x), x)


@settings(max_examples=200, deadline=None)
@given(slicing_case())
def test_sliced_dot_product_exact(case):
    """Invariant (Eq. 4): composed dot product == plain integer dot product."""
    x, w, bw_x, bw_w, slice_x, slice_w, signed_x, signed_w = case
    expected = int(np.dot(x.astype(np.int64), w.astype(np.int64)))
    got = bitslice.sliced_dot_product(
        x, w, bw_x, bw_w, slice_x, slice_w, signed_x, signed_w
    )
    assert got == expected


@settings(max_examples=100, deadline=None)
@given(slicing_case())
def test_term_shifts_bounded(case):
    """Shift amounts never exceed (slices_x-1)*sx + (slices_w-1)*sw."""
    x, w, bw_x, bw_w, slice_x, slice_w, signed_x, signed_w = case
    terms = bitslice.sliced_dot_product_terms(
        x, w, bw_x, bw_w, slice_x, slice_w, signed_x, signed_w
    )
    max_shift = (bitslice.num_slices(bw_x, slice_x) - 1) * slice_x + (
        bitslice.num_slices(bw_w, slice_w) - 1
    ) * slice_w
    assert all(0 <= shift <= max_shift for shift, _ in terms)
    assert len(terms) == bitslice.num_slices(bw_x, slice_x) * bitslice.num_slices(
        bw_w, slice_w
    )


def test_paper_figure2a_example():
    """Paper Fig. 2-(a): two 4-bit x 4-bit elements with 2-bit slicing."""
    x = np.array([13, 7])
    w = np.array([9, 5])
    got = bitslice.sliced_dot_product(x, w, 4, 4, 2, 2, False, False)
    assert got == 13 * 9 + 7 * 5


def test_paper_figure2b_example():
    """Paper Fig. 2-(b): 4-bit inputs x 2-bit weights, four elements."""
    x = np.array([11, 4, 15, 2])
    w = np.array([3, 1, 2, 0])
    got = bitslice.sliced_dot_product(x, w, 4, 2, 2, 2, False, False)
    assert got == int(np.dot(x, w))


def test_mismatched_shapes_rejected():
    with pytest.raises(ValueError):
        bitslice.sliced_dot_product_terms(
            np.array([1, 2]), np.array([1]), 4, 4, 2, 2
        )
