"""Tests for bit-slice sparsity analysis."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    effectual_fraction,
    ideal_skip_speedup,
    slice_sparsity,
)


class TestSliceSparsity:
    def test_all_zero_tensor(self):
        s = slice_sparsity(np.zeros(100, dtype=np.int64), 8, 2)
        assert s.overall_zero_fraction == 1.0
        assert s.per_slice_zero_fraction == (1.0, 1.0, 1.0, 1.0)
        assert s.n_slices == 4

    def test_dense_tensor(self):
        # -1 has all slices non-zero (0b11 everywhere + signed top).
        s = slice_sparsity(np.full(50, -1, dtype=np.int64), 8, 2)
        assert s.overall_zero_fraction == 0.0

    def test_small_unsigned_values_have_sparse_high_slices(self):
        """Quantized activations are small-valued: upper slices all zero."""
        rng = np.random.default_rng(0)
        x = rng.integers(0, 8, size=1000)  # unsigned values fit 3 bits
        s = slice_sparsity(x, 8, 2, signed=False)
        assert s.per_slice_zero_fraction[2] == 1.0
        assert s.per_slice_zero_fraction[3] == 1.0
        assert s.per_slice_zero_fraction[0] < 0.5

    def test_signed_sign_extension_fills_top_slices(self):
        """Negative values sign-extend to 0b11 slices: less slice sparsity
        than the magnitude alone suggests (why Laconic prefers
        sign-magnitude encodings)."""
        rng = np.random.default_rng(0)
        x = rng.integers(-4, 5, size=1000)
        s = slice_sparsity(x, 8, 2, signed=True)
        negatives = float(np.mean(np.asarray(x) < 0))
        assert s.per_slice_zero_fraction[3] == pytest.approx(1 - negatives, abs=0.02)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            slice_sparsity(np.array([], dtype=np.int64), 8, 2)


class TestEffectualFraction:
    def test_all_zero_operand(self):
        x = np.zeros(10, dtype=np.int64)
        w = np.ones(10, dtype=np.int64)
        assert effectual_fraction(x, w, 8, 8) == 0.0

    def test_fully_dense(self):
        x = np.full(10, -1, dtype=np.int64)
        w = np.full(10, -1, dtype=np.int64)
        assert effectual_fraction(x, w, 8, 8) == 1.0

    def test_bounded(self):
        rng = np.random.default_rng(1)
        x = rng.integers(-128, 128, size=200)
        w = rng.integers(-8, 8, size=200)
        frac = effectual_fraction(x, w, 8, 4)
        assert 0.0 < frac < 1.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            effectual_fraction(np.ones(3), np.ones(4), 8, 8)


class TestIdealSkipSpeedup:
    def test_reciprocal_of_effectual(self):
        rng = np.random.default_rng(2)
        x = rng.integers(-8, 8, size=100)
        w = rng.integers(-8, 8, size=100)
        frac = effectual_fraction(x, w, 4, 4)
        assert ideal_skip_speedup(x, w, 4, 4) == pytest.approx(1.0 / frac)

    def test_zero_work_caps_at_slice_count(self):
        x = np.zeros(10, dtype=np.int64)
        w = np.zeros(10, dtype=np.int64)
        assert ideal_skip_speedup(x, w, 8, 8) == 16.0

    def test_quantized_weights_offer_skip_opportunity(self):
        """Laconic's premise: deep-quantized tensors are slice-sparse."""
        rng = np.random.default_rng(3)
        w = np.clip(rng.normal(0, 1.5, 2000), -8, 7).astype(np.int64)
        x = np.clip(np.abs(rng.normal(0, 2, 2000)), 0, 15).astype(np.int64)
        speedup = ideal_skip_speedup(x, w, 4, 4, signed_x=False, signed_w=True)
        assert speedup > 1.3


@settings(max_examples=50, deadline=None)
@given(bw=st.integers(2, 8), sw=st.sampled_from([1, 2, 4]), seed=st.integers(0, 2**31))
def test_sparsity_fractions_in_range(bw, sw, seed):
    rng = np.random.default_rng(seed)
    lo, hi = -(1 << (bw - 1)), (1 << (bw - 1)) - 1
    x = rng.integers(lo, hi + 1, size=64)
    s = slice_sparsity(x, bw, sw)
    assert 0.0 <= s.overall_zero_fraction <= 1.0
    assert all(0.0 <= f <= 1.0 for f in s.per_slice_zero_fraction)
    assert s.overall_zero_fraction == pytest.approx(
        float(np.mean(s.per_slice_zero_fraction))
    )
