"""Property tests for the gate-level (bit-true) datapath golden model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CVU
from repro.core.bitslice import value_range
from repro.core.gates import (
    GateNBVE,
    adder_tree,
    array_multiply,
    bits_to_int,
    full_adder,
    gate_level_dot_product,
    int_to_bits,
    left_shift,
    ripple_add,
)


class TestBitCodec:
    def test_roundtrip_unsigned(self):
        for v in (0, 1, 5, 255):
            assert bits_to_int(int_to_bits(v, 8)) == v

    def test_roundtrip_signed(self):
        for v in (-128, -1, 0, 127):
            assert bits_to_int(int_to_bits(v, 8, signed=True), signed=True) == v

    def test_little_endian(self):
        assert int_to_bits(1, 4) == [1, 0, 0, 0]
        assert int_to_bits(8, 4) == [0, 0, 0, 1]

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            int_to_bits(256, 8)
        with pytest.raises(ValueError):
            int_to_bits(-1, 8)
        with pytest.raises(ValueError):
            int_to_bits(128, 8, signed=True)

    def test_bad_vectors(self):
        with pytest.raises(ValueError):
            bits_to_int([])
        with pytest.raises(ValueError):
            bits_to_int([0, 2])
        with pytest.raises(ValueError):
            int_to_bits(0, 0)


class TestFullAdder:
    def test_truth_table(self):
        expected = {
            (0, 0, 0): (0, 0),
            (0, 0, 1): (1, 0),
            (0, 1, 0): (1, 0),
            (0, 1, 1): (0, 1),
            (1, 0, 0): (1, 0),
            (1, 0, 1): (0, 1),
            (1, 1, 0): (0, 1),
            (1, 1, 1): (1, 1),
        }
        for inputs, output in expected.items():
            assert full_adder(*inputs) == output


@settings(max_examples=150, deadline=None)
@given(a=st.integers(-512, 511), b=st.integers(-512, 511))
def test_ripple_add_exact(a, b):
    bits = ripple_add(int_to_bits(a, 10, True), int_to_bits(b, 10, True))
    assert bits_to_int(bits, signed=True) == a + b


@settings(max_examples=150, deadline=None)
@given(
    wa=st.integers(1, 6),
    wb=st.integers(1, 6),
    signed_a=st.booleans(),
    signed_b=st.booleans(),
    seed=st.integers(0, 2**31),
)
def test_array_multiply_exact(wa, wb, signed_a, signed_b, seed):
    rng = np.random.default_rng(seed)
    lo_a, hi_a = value_range(wa, signed_a)
    lo_b, hi_b = value_range(wb, signed_b)
    a = int(rng.integers(lo_a, hi_a + 1))
    b = int(rng.integers(lo_b, hi_b + 1))
    bits = array_multiply(
        int_to_bits(a, wa, signed_a), int_to_bits(b, wb, signed_b), signed_a, signed_b
    )
    assert bits_to_int(bits, signed=signed_a or signed_b) == a * b


@settings(max_examples=80, deadline=None)
@given(
    values=st.lists(st.integers(-100, 100), min_size=1, max_size=16),
)
def test_adder_tree_exact(values):
    vectors = [int_to_bits(v, 9, signed=True) for v in values]
    assert bits_to_int(adder_tree(vectors), signed=True) == sum(values)


def test_adder_tree_empty_rejected():
    with pytest.raises(ValueError):
        adder_tree([])


def test_left_shift():
    assert bits_to_int(left_shift(int_to_bits(3, 4), 2)) == 12
    with pytest.raises(ValueError):
        left_shift([1], -1)


class TestGateNBVE:
    def test_small_dot_product(self):
        nbve = GateNBVE(lanes=4, slice_width=2)
        assert nbve.compute([1, 2, 3], [3, 2, 1]) == 10

    def test_signed_slices(self):
        nbve = GateNBVE(lanes=2, slice_width=2)
        assert nbve.compute([-2, 1], [-1, -2], True, True) == 0

    def test_lane_limit(self):
        nbve = GateNBVE(lanes=2, slice_width=2)
        with pytest.raises(ValueError):
            nbve.compute([1, 1, 1], [1, 1, 1])

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            GateNBVE().compute([1], [1, 2])

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            GateNBVE(lanes=0)


@settings(max_examples=25, deadline=None)
@given(
    bw_x=st.integers(1, 8),
    bw_w=st.integers(1, 8),
    signed_x=st.booleans(),
    signed_w=st.booleans(),
    n=st.integers(1, 12),
    seed=st.integers(0, 2**31),
)
def test_gate_level_equals_word_level_cvu(bw_x, bw_w, signed_x, signed_w, n, seed):
    """The RTL-equivalent datapath matches the word-level CVU bit-for-bit."""
    rng = np.random.default_rng(seed)
    lo_x, hi_x = value_range(bw_x, signed_x)
    lo_w, hi_w = value_range(bw_w, signed_w)
    x = rng.integers(lo_x, hi_x + 1, size=n)
    w = rng.integers(lo_w, hi_w + 1, size=n)
    gate = gate_level_dot_product(
        x.tolist(), w.tolist(), bw_x, bw_w, 2, signed_x, signed_w
    )
    word = CVU().dot_product(x, w, bw_x, bw_w, signed_x, signed_w).value
    assert gate == word == int(np.dot(x, w))
