"""Tests for CVU composition planning (paper Fig. 3-b/c modes)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import plan_composition


class TestHomogeneous8bit:
    def test_all_nbves_one_group(self):
        plan = plan_composition(8, 8, slice_width=2, max_bitwidth=8)
        assert plan.n_nbve_total == 16
        assert plan.slices_x == 4 and plan.slices_w == 4
        assert plan.nbves_per_group == 16
        assert plan.n_groups == 1
        assert plan.utilization == 1.0
        assert plan.throughput_multiplier == 1

    def test_shift_table(self):
        plan = plan_composition(8, 8, slice_width=2)
        shifts = sorted(a.shift for a in plan.assignments)
        # shifts are 2*(j+k) for j,k in 0..3
        expected = sorted(2 * (j + k) for j in range(4) for k in range(4))
        assert shifts == expected
        assert plan.max_shift == 12


class TestHeterogeneousModes:
    def test_8x2_four_clusters(self):
        """Paper Fig. 3-(c): 8-bit x 2-bit -> 4 clusters of 4 NBVEs."""
        plan = plan_composition(8, 2, slice_width=2)
        assert plan.nbves_per_group == 4
        assert plan.n_groups == 4
        assert plan.throughput_multiplier == 4
        assert plan.utilization == 1.0

    def test_2x2_sixteen_independent(self):
        """Paper: 2-bit datatypes -> every NBVE independent -> 16x."""
        plan = plan_composition(2, 2, slice_width=2)
        assert plan.nbves_per_group == 1
        assert plan.n_groups == 16
        assert plan.throughput_multiplier == 16

    def test_4x4_four_clusters(self):
        plan = plan_composition(4, 4, slice_width=2)
        assert plan.nbves_per_group == 4
        assert plan.n_groups == 4

    def test_8x4(self):
        plan = plan_composition(8, 4, slice_width=2)
        assert plan.nbves_per_group == 8
        assert plan.n_groups == 2

    def test_odd_bitwidth_underutilises(self):
        # 6-bit x 6-bit with 2-bit slicing: 9 NBVEs/group, only 1 group fits.
        plan = plan_composition(6, 6, slice_width=2)
        assert plan.nbves_per_group == 9
        assert plan.n_groups == 1
        assert plan.utilization == pytest.approx(9 / 16)


class TestOneBitSlicing:
    def test_8x8_uses_64_nbves(self):
        plan = plan_composition(8, 8, slice_width=1)
        assert plan.n_nbve_total == 64
        assert plan.nbves_per_group == 64
        assert plan.n_groups == 1


class TestValidation:
    def test_bitwidth_exceeds_max(self):
        with pytest.raises(ValueError):
            plan_composition(9, 8, slice_width=2, max_bitwidth=8)
        with pytest.raises(ValueError):
            plan_composition(8, 16, slice_width=2, max_bitwidth=8)

    def test_zero_bitwidth(self):
        with pytest.raises(ValueError):
            plan_composition(0, 8)

    def test_slice_width_must_divide_max(self):
        with pytest.raises(ValueError):
            plan_composition(8, 8, slice_width=3, max_bitwidth=8)


@settings(max_examples=200, deadline=None)
@given(
    bw_x=st.integers(1, 8),
    bw_w=st.integers(1, 8),
    slice_width=st.sampled_from([1, 2, 4, 8]),
)
def test_plan_invariants(bw_x, bw_w, slice_width):
    plan = plan_composition(bw_x, bw_w, slice_width=slice_width, max_bitwidth=8)
    # Groups never oversubscribe the NBVE pool.
    assert plan.n_nbve_used <= plan.n_nbve_total
    assert 0 < plan.utilization <= 1.0
    # Each assignment's shift matches its slice coordinates.
    for a in plan.assignments:
        assert a.shift == slice_width * (a.slice_x + a.slice_w)
        assert 0 <= a.slice_x < plan.slices_x
        assert 0 <= a.slice_w < plan.slices_w
    # NBVE ids are unique.
    ids = [a.nbve_id for a in plan.assignments]
    assert len(ids) == len(set(ids))
    # Every group has the full complement of slice pairs.
    groups = {}
    for a in plan.assignments:
        groups.setdefault(a.group, set()).add((a.slice_x, a.slice_w))
    for pairs in groups.values():
        assert len(pairs) == plan.slices_x * plan.slices_w
