"""Tests for the elastic worker fleet: leases, chaos, and parity.

Three layers, mirroring the module split:

* the lease table and coordinator (:class:`FleetJob`, :class:`Fleet`)
  driven directly -- expiry, requeue, idempotent acks, capacity;
* the HTTP surface (``/workers/*`` endpoints, fleet ``POST /sweep``)
  through a live in-process server;
* end-to-end pulls: real :class:`FleetWorker` loops draining a fleet
  sweep into the server store, including a ghost worker whose lease
  must expire and requeue, bit-identical against a local run.

Plus the client-side fault-tolerance contract: transient transport
failures retry only on idempotent requests, and resumable job streams
pick up from their cursor.
"""

import contextlib
import io
import json
import threading
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dse import ResultStore, SweepSpec, clear_memo, run_sweep
from repro.serve import (
    Fleet,
    FleetJob,
    FleetWorker,
    ServeClient,
    ServeError,
    SweepServer,
    SweepService,
)
from repro.serve.fleet import COMPLETED, LEASED, PENDING

GRID = {
    "grid": {
        "workloads": ["RNN", "LSTM"],
        "platforms": ["bpvec"],
        "memories": ["ddr4"],
    }
}

WIDE_GRID = {
    "grid": {
        "workloads": ["RNN", "LSTM"],
        "platforms": ["bpvec"],
        "memories": ["ddr4", "hbm2"],
        "batches": [1, 2, 4],
    }
}


def _spec(payload=GRID) -> SweepSpec:
    return SweepSpec.from_dict(payload)


def _silent(_message: str) -> None:
    pass


def _canonical(records) -> list[str]:
    return sorted(json.dumps(r, sort_keys=True) for r in records)


@pytest.fixture(autouse=True)
def _fresh_memo():
    clear_memo()
    yield
    clear_memo()


@contextlib.contextmanager
def served(service: SweepService):
    """An ephemeral-port server around ``service``, torn down cleanly."""
    server = SweepServer(service)
    thread = threading.Thread(
        target=lambda: server.serve_forever(poll_interval=0.02), daemon=True
    )
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


@pytest.fixture
def live_server(tmp_path):
    with served(SweepService(store=tmp_path / "served.sqlite")) as server:
        yield server


@pytest.fixture
def client(live_server):
    return ServeClient(live_server.url)


# ----------------------------------------------------------------------
# The lease table: FleetJob driven directly
# ----------------------------------------------------------------------
class TestFleetJob:
    def _job(self, chunks=4, payload=WIDE_GRID) -> FleetJob:
        job = FleetJob(spec=_spec(payload), chunks=chunks)
        job.mark_running()
        return job

    def test_empty_sweep_is_rejected(self):
        with pytest.raises(ValueError, match="empty sweep"):
            FleetJob(spec=SweepSpec(points=()), chunks=4)

    def test_chunks_cover_the_spec(self):
        job = self._job()
        counts = job.chunk_counts()
        assert counts[PENDING] == counts["total"] >= 2
        assert sum(len(c) for c in job._chunks) == len(job.spec)

    def test_lease_marks_chunk_and_counts_attempts(self):
        job = self._job()
        chunk = job.lease_next("w1", now=100.0, ttl=30.0)
        assert chunk.state == LEASED
        assert chunk.worker == "w1"
        assert chunk.deadline == 130.0
        assert chunk.attempts == 1
        assert job.leases_held_by("w1") == 1

    def test_lease_drains_to_none(self):
        job = self._job()
        total = job.chunk_counts()["total"]
        for _ in range(total):
            assert job.lease_next("w1", now=0.0, ttl=30.0) is not None
        assert job.lease_next("w1", now=0.0, ttl=30.0) is None

    def test_deadline_expiry_requeues(self):
        job = self._job()
        chunk = job.lease_next("w1", now=0.0, ttl=1.0)
        assert job.expire_leases(2.0, lambda w: True) == 1
        assert chunk.state == PENDING
        assert chunk.worker is None
        assert job.requeues == 1
        # The requeued chunk is leasable again, attempt 2.
        again = job.lease_next("w2", now=2.0, ttl=1.0)
        assert again is chunk
        assert again.attempts == 2

    def test_dead_worker_requeues_before_deadline(self):
        job = self._job()
        job.lease_next("ghost", now=0.0, ttl=1000.0)
        assert job.expire_leases(1.0, lambda w: w != "ghost") == 1

    def test_live_lease_is_left_alone(self):
        job = self._job()
        job.lease_next("w1", now=0.0, ttl=1000.0)
        assert job.expire_leases(1.0, lambda w: True) == 0
        assert job.leases_held_by("w1") == 1

    def test_acking_every_chunk_finishes_the_job(self):
        job = self._job()
        while (chunk := job.lease_next("w1", now=0.0, ttl=30.0)) is not None:
            outcome = job.ack_chunk(chunk.index, "w1")
            assert outcome["duplicate"] is False
        assert job.state == "done"
        progress = job.progress()
        assert progress["completed"] == progress["points"] == len(job.spec)
        assert progress["chunks"][COMPLETED] == progress["chunks"]["total"]

    def test_duplicate_ack_is_idempotent(self):
        job = self._job()
        chunk = job.lease_next("w1", now=0.0, ttl=30.0)
        first = job.ack_chunk(chunk.index, "w1")
        second = job.ack_chunk(chunk.index, "w2")
        assert first["duplicate"] is False
        assert second["duplicate"] is True
        assert chunk.completed_by == "w1"

    def test_straggler_ack_after_requeue_still_completes(self):
        # The ghost's lease expired and the chunk requeued -- but its
        # records went through the upsert, so its late ack counts.
        job = self._job()
        chunk = job.lease_next("ghost", now=0.0, ttl=1.0)
        job.expire_leases(2.0, lambda w: True)
        outcome = job.ack_chunk(chunk.index, "ghost")
        assert outcome["duplicate"] is False
        assert chunk.state == COMPLETED

    def test_unknown_chunk_ack_raises(self):
        job = self._job()
        with pytest.raises(KeyError):
            job.ack_chunk(10_000, "w1")

    def test_error_ack_fails_the_whole_job(self):
        job = self._job()
        chunk = job.lease_next("w1", now=0.0, ttl=30.0)
        job.ack_chunk(chunk.index, "w1", error="division by zero")
        assert job.state == "failed"
        assert f"chunk {chunk.index}" in job.error
        assert "division by zero" in job.error

    def test_cancel_is_immediate_and_stops_leasing(self):
        job = self._job()
        job.lease_next("w1", now=0.0, ttl=30.0)
        assert job.cancel() == "cancelled"
        assert job.lease_next("w2", now=0.0, ttl=30.0) is None
        assert job.expire_leases(1e9, lambda w: False) == 0


# ----------------------------------------------------------------------
# The coordinator: Fleet driven directly
# ----------------------------------------------------------------------
class TestFleet:
    def test_ttl_validation(self):
        with pytest.raises(ValueError):
            Fleet(lease_ttl=0.0)
        with pytest.raises(ValueError):
            Fleet(heartbeat_ttl=-1.0)

    def test_register_hands_out_heartbeat_cadence(self):
        fleet = Fleet(lease_ttl=30.0, heartbeat_ttl=9.0)
        info = fleet.register(name="box-a", capacity=2)
        assert info["lease_ttl"] == 30.0
        assert info["heartbeat_seconds"] == pytest.approx(3.0)
        assert fleet.heartbeat(info["worker"])["status"] == "ok"

    def test_bad_capacity_is_rejected(self):
        with pytest.raises(ValueError):
            Fleet().register(capacity=0)

    def test_unknown_worker_raises_key_error(self):
        fleet = Fleet()
        for call in (fleet.heartbeat, fleet.lease):
            with pytest.raises(KeyError, match="register again"):
                call("deadbeef")
        with pytest.raises(KeyError, match="register again"):
            fleet.ack("deadbeef", "j1", 0)

    def test_lease_with_no_jobs_reports_idle(self):
        fleet = Fleet()
        worker = fleet.register()["worker"]
        assert fleet.lease(worker) == {"idle": True, "active_jobs": 0}

    def test_capacity_bounds_concurrent_leases(self):
        fleet = Fleet()
        worker = fleet.register(capacity=1)["worker"]
        job = FleetJob(spec=_spec(WIDE_GRID), chunks=6)
        job.mark_running()
        fleet.add_job(job)
        first = fleet.lease(worker)
        assert "lease" in first
        second = fleet.lease(worker)
        assert second.get("idle") and second["active_jobs"] == 1
        # Acking frees the slot.
        fleet.ack(worker, job.id, first["lease"]["chunk"])
        assert "lease" in fleet.lease(worker)

    def test_lease_body_carries_a_runnable_spec(self):
        fleet = Fleet()
        worker = fleet.register()["worker"]
        job = fleet.add_job(FleetJob(spec=_spec(), chunks=1))
        job.mark_running()
        lease = fleet.lease(worker)["lease"]
        assert lease["job"] == job.id
        assert lease["attempt"] == 1
        sub = SweepSpec.from_dict(lease["spec"])
        assert len(sub) == lease["points"] == len(job.spec)

    def test_heartbeat_lapse_requeues_to_another_worker(self):
        fleet = Fleet(lease_ttl=1000.0, heartbeat_ttl=0.05)
        ghost = fleet.register(name="ghost")["worker"]
        job = fleet.add_job(FleetJob(spec=_spec(), chunks=1))
        job.mark_running()
        taken = fleet.lease(ghost)["lease"]
        time.sleep(0.1)  # the ghost stops beating
        survivor = fleet.register(name="survivor")["worker"]
        stolen = fleet.lease(survivor)["lease"]
        assert stolen["chunk"] == taken["chunk"]
        assert stolen["attempt"] == 2
        assert fleet.requeued == 1

    def test_duplicate_ack_counted_not_credited(self):
        fleet = Fleet()
        w1 = fleet.register()["worker"]
        w2 = fleet.register()["worker"]
        job = fleet.add_job(FleetJob(spec=_spec(), chunks=1))
        job.mark_running()
        lease = fleet.lease(w1)["lease"]
        fleet.ack(w1, job.id, lease["chunk"])
        fleet.ack(w2, job.id, lease["chunk"])
        stats = fleet.stats()
        assert stats["acks"] == 2
        assert stats["duplicate_acks"] == 1
        by_id = {w["worker"]: w for w in fleet.workers()}
        assert by_id[w1]["chunks_done"] == 1
        assert by_id[w2]["chunks_done"] == 0

    def test_ack_for_unknown_job_raises(self):
        fleet = Fleet()
        worker = fleet.register()["worker"]
        with pytest.raises(KeyError, match="no such fleet job"):
            fleet.ack(worker, "nope", 0)

    def test_stats_shape(self):
        fleet = Fleet()
        fleet.register()
        job = fleet.add_job(FleetJob(spec=_spec(WIDE_GRID), chunks=4))
        job.mark_running()
        stats = fleet.stats()
        assert stats["workers"] == {"registered": 1, "alive": 1}
        assert stats["jobs"] == {"active": 1, "total": 1}
        assert stats["chunks"]["total"] == stats["chunks"][PENDING] > 0


# ----------------------------------------------------------------------
# The HTTP surface
# ----------------------------------------------------------------------
class TestFleetEndpoints:
    def test_register_then_listed_alive(self, client):
        info = client.register_worker(name="box-a", capacity=2)
        assert info["heartbeat_seconds"] > 0
        workers = client.workers()
        assert [w["worker"] for w in workers] == [info["worker"]]
        assert workers[0]["name"] == "box-a"
        assert workers[0]["capacity"] == 2
        assert workers[0]["alive"] is True
        assert client.worker_heartbeat(info["worker"])["status"] == "ok"

    def test_unknown_worker_is_404(self, client):
        for call in (
            lambda: client.worker_heartbeat("deadbeef"),
            lambda: client.lease_chunk("deadbeef"),
            lambda: client.ack_chunk("deadbeef", "j1", 0),
        ):
            with pytest.raises(ServeError, match="404") as failure:
                call()
            assert failure.value.code == 404

    def test_fleet_submit_needs_a_store(self):
        with served(SweepService(store=None)) as server:
            client = ServeClient(server.url)
            with pytest.raises(ServeError, match="400"):
                client.submit_job(GRID, fleet=True)

    def test_fleet_submit_validation(self, client):
        with pytest.raises(ServeError, match="400"):
            client.submit_job(GRID, fleet={"chunks": 0})
        with pytest.raises(ServeError, match="400"):
            client._json("/sweep", {"spec": GRID, "fleet": "yes"})

    def test_malformed_ack_is_400(self, client):
        worker = client.register_worker()["worker"]
        with pytest.raises(ServeError, match="400"):
            client._json(f"/workers/{worker}/ack", {"job": "j1"})

    def test_fleet_job_lifecycle_over_http(self, client, live_server):
        job = client.submit_job(GRID, fleet={"chunks": 2})
        assert job["kind"] == "fleet"
        assert job["state"] == "running"
        chunks = job["progress"]["chunks"]
        assert chunks[PENDING] == chunks["total"] >= 1

        worker = client.register_worker()["worker"]
        done = 0
        while True:
            response = client.lease_chunk(worker)
            lease = response.get("lease")
            if lease is None:
                break
            spec = SweepSpec.from_dict(lease["spec"])
            result = run_sweep(spec)
            client.post_records(result.records)
            ack = client.ack_chunk(worker, lease["job"], lease["chunk"])
            assert ack["duplicate"] is False
            done += 1
        assert done == chunks["total"]

        status = client.job_status(job["job"])
        assert status["state"] == "done"
        assert status["progress"]["completed"] == len(_spec())
        assert len(live_server.service.store) == len(_spec())
        stats = client.stats()["fleet"]
        assert stats["acks"] == done
        assert stats["leases_granted"] >= done

    def test_fleet_job_is_cancellable(self, client):
        job = client.submit_job(GRID, fleet=True)
        assert client.cancel_job(job["job"])["state"] == "cancelled"
        worker = client.register_worker()["worker"]
        assert client.lease_chunk(worker).get("idle")


# ----------------------------------------------------------------------
# End to end: real workers pulling over HTTP
# ----------------------------------------------------------------------
class TestFleetEndToEnd:
    def test_two_workers_drain_bit_identical(self, client, live_server):
        local = run_sweep(_spec(WIDE_GRID))
        clear_memo()  # the fleet workers must recompute, not share memo

        job = client.submit_job(WIDE_GRID, fleet={"chunks": 5})
        workers = [
            FleetWorker(
                live_server.url,
                name=f"w{i}",
                poll=0.02,
                exit_when_drained=True,
                log=_silent,
            )
            for i in range(2)
        ]
        threads = [threading.Thread(target=w.run) for w in workers]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not any(thread.is_alive() for thread in threads)

        status = client.job_status(job["job"])
        assert status["state"] == "done"
        assert _canonical(client.records()) == _canonical(local.records)
        # Both workers registered; every chunk is accounted for exactly
        # once across them.
        fleet_stats = client.stats()["fleet"]
        assert fleet_stats["acks"] == status["progress"]["chunks"]["total"]
        assert sum(w.chunks_done for w in workers) == fleet_stats["acks"]

    def test_killed_worker_lease_expires_and_requeues(self, tmp_path):
        # Chaos, in-process: a ghost leases a chunk and vanishes
        # (no heartbeat, no ack).  With a short lease TTL the chunk
        # requeues and a surviving worker finishes the sweep anyway.
        service = SweepService(
            store=tmp_path / "chaos.sqlite",
            lease_ttl=0.4,
            heartbeat_ttl=0.2,
        )
        with served(service) as server:
            client = ServeClient(server.url)
            local = run_sweep(_spec(WIDE_GRID))
            clear_memo()

            job = client.submit_job(WIDE_GRID, fleet={"chunks": 4})
            ghost = client.register_worker(name="ghost")["worker"]
            taken = client.lease_chunk(ghost)["lease"]

            survivor = FleetWorker(
                server.url,
                name="survivor",
                poll=0.05,
                exit_when_drained=True,
                log=_silent,
            )
            thread = threading.Thread(target=survivor.run)
            thread.start()
            thread.join(timeout=30)
            assert not thread.is_alive()

            status = client.job_status(job["job"])
            assert status["state"] == "done"
            stats = client.stats()["fleet"]
            assert stats["requeued"] >= 1
            assert _canonical(client.records()) == _canonical(local.records)
            # The ghost's chunk went to the survivor on a second attempt.
            assert taken["attempt"] == 1

    def test_worker_reregisters_when_server_forgets(self, live_server):
        worker = FleetWorker(live_server.url, poll=0.01, log=_silent)
        first = worker.register()
        # Simulate a server restart: the registration table is empty.
        live_server.service.fleet._workers.clear()
        response = worker._lease()
        assert worker.worker_id != first
        assert response.get("idle")

    def test_poisoned_chunk_fails_the_job(self, client, live_server, monkeypatch):
        import repro.serve.fleet as fleet_module

        def boom(spec, workers=1, vectorize=True):
            raise RuntimeError("poisoned evaluation")

        monkeypatch.setattr(fleet_module, "run_sweep", boom)
        job = client.submit_job(GRID, fleet=True)
        worker = FleetWorker(
            live_server.url, poll=0.01, exit_when_drained=True, log=_silent
        )
        assert worker.run() == 0
        status = client.job_status(job["job"])
        assert status["state"] == "failed"
        assert "poisoned evaluation" in status["error"]

    def test_max_chunks_bounds_a_worker(self, client, live_server):
        client.submit_job(WIDE_GRID, fleet={"chunks": 4})
        worker = FleetWorker(
            live_server.url, poll=0.01, max_chunks=1, log=_silent
        )
        assert worker.run() == 0
        assert worker.chunks_done == 1

    def test_worker_exits_1_when_it_cannot_register(self, tmp_path):
        with served(SweepService(store=tmp_path / "s.sqlite")) as server:
            url = server.url
        # The server is gone; registration cannot succeed.
        client = ServeClient(url, retries=0, backoff=0.0)
        worker = FleetWorker(url, poll=0.01, client=client, log=_silent)
        assert worker.run() == 1

    def test_worker_gives_up_on_persistent_server_errors(self, live_server):
        worker = FleetWorker(live_server.url, poll=0.01, log=_silent)

        def explode(worker_id):
            raise ServeError("/lease: HTTP 500", code=500)

        worker.client.lease_chunk = explode
        assert worker.run() == 1


class TestCliFleet:
    def _dse(self, capsys, *argv):
        from repro.cli import main

        assert main(["dse", *argv]) in (0, None)
        return capsys.readouterr().out

    AXES = (
        "--workload", "RNN", "--workload", "LSTM",
        "--platform", "bpvec", "--memory", "ddr4",
    )  # fmt: skip

    def test_cli_fleet_sweep_is_bit_identical(self, capsys, live_server):
        local = self._dse(capsys, *self.AXES, "--format", "jsonl")
        clear_memo()
        worker = FleetWorker(live_server.url, poll=0.02, log=_silent)
        thread = threading.Thread(target=worker.run)
        thread.start()
        try:
            fleet = self._dse(
                capsys,
                *self.AXES,
                "--server",
                live_server.url,
                "--fleet",
                "--chunks",
                "2",
                "--format",
                "jsonl",
            )
            assert fleet == local
            # The JSON summary names the fleet job and its chunk tally.
            out = self._dse(
                capsys,
                *self.AXES,
                "--server",
                live_server.url,
                "--fleet",
                "--format",
                "json",
            )
            summary = json.loads(out)["summary"]["fleet"]
            assert summary["chunks"]["completed"] == summary["chunks"]["total"]
            # And the table tail reports the fleet shape in prose.
            out = self._dse(
                capsys, *self.AXES, "--server", live_server.url, "--fleet"
            )
            assert "fleet chunks" in out
        finally:
            worker.stop()
            thread.join(timeout=15)
        assert not thread.is_alive()

    def test_cli_fleet_detach_prints_the_job_id(
        self, capsys, client, live_server
    ):
        from repro.cli import main

        main(
            [
                "dse",
                *self.AXES,
                "--server",
                live_server.url,
                "--fleet",
                "--detach",
            ]
        )
        job_id = capsys.readouterr().out.strip().splitlines()[-1]
        assert client.job_status(job_id)["kind"] == "fleet"

    def test_cli_serve_rejects_bad_ttls(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit, match="TTL must be positive"):
            main(
                [
                    "serve",
                    "--store",
                    str(tmp_path / "s.sqlite"),
                    "--port",
                    "0",
                    "--lease-ttl",
                    "-1",
                ]
            )


# ----------------------------------------------------------------------
# Client fault tolerance: transient retries and stream resume
# ----------------------------------------------------------------------
class TestTransientRetry:
    def _flaky(self, client, failures, error=None):
        """Patch ``_open_once`` to fail ``failures`` times, then answer."""
        error = error or ServeError("connection reset", transient=True)
        attempts = []

        def open_once(path, payload=None):
            attempts.append(path)
            if len(attempts) <= failures:
                raise error
            return io.BytesIO(b'{"ok": true}')

        client._open_once = open_once
        return attempts

    def test_idempotent_get_retries_transient_failures(self):
        client = ServeClient("http://unused", retries=3, backoff=0.0)
        attempts = self._flaky(client, failures=2)
        assert client._json("/healthz") == {"ok": True}
        assert len(attempts) == 3

    def test_retry_budget_is_bounded(self):
        client = ServeClient("http://unused", retries=2, backoff=0.0)
        attempts = self._flaky(client, failures=100)
        with pytest.raises(ServeError, match="connection reset"):
            client._json("/healthz")
        assert len(attempts) == 3  # first try + two retries

    def test_mutating_post_is_never_retried(self):
        client = ServeClient("http://unused", retries=5, backoff=0.0)
        attempts = self._flaky(client, failures=100)
        with pytest.raises(ServeError):
            client._json("/sweep", {"spec": GRID})
        assert len(attempts) == 1

    def test_http_rejections_are_never_retried(self):
        client = ServeClient("http://unused", retries=5, backoff=0.0)
        attempts = self._flaky(
            client,
            failures=100,
            error=ServeError("/x: HTTP 503", code=503),
        )
        with pytest.raises(ServeError, match="503"):
            client._json("/healthz")
        assert len(attempts) == 1

    def test_worker_acks_are_idempotent_posts(self):
        client = ServeClient("http://unused", retries=3, backoff=0.0)
        attempts = self._flaky(client, failures=1)
        assert client.ack_chunk("w1", "j1", 0) == {"ok": True}
        assert len(attempts) == 2

    def test_transient_classification(self):
        from repro.serve.client import _is_transient

        assert _is_transient(ConnectionResetError())
        assert _is_transient(TimeoutError())
        assert not _is_transient(ValueError("not a transport problem"))


class TestStreamResume:
    def test_stream_resumes_from_cursor_after_transient_drop(self):
        client = ServeClient("http://unused", retries=2, backoff=0.0)
        calls = []

        def ndjson(path, payload=None):
            calls.append(path)
            if len(calls) == 1:
                yield {"hash": "a"}
                yield {"hash": "b"}
                raise ServeError("reset mid-stream", transient=True)
            yield {"hash": "c"}
            yield {"summary": {"points": 3}}

        client._ndjson = ndjson
        records = list(client.stream_job("j1"))
        assert [r["hash"] for r in records] == ["a", "b", "c"]
        assert client.last_summary == {"points": 3}
        assert calls == ["/jobs/j1/records", "/jobs/j1/records?after=2"]

    def test_non_transient_stream_error_is_fatal(self):
        client = ServeClient("http://unused", retries=5, backoff=0.0)
        calls = []

        def ndjson(path, payload=None):
            calls.append(path)
            yield {"hash": "a"}
            raise ServeError("job j1: boom", code=500)

        client._ndjson = ndjson
        with pytest.raises(ServeError, match="boom"):
            list(client.stream_job("j1"))
        assert len(calls) == 1

    def test_resume_budget_is_bounded_without_progress(self):
        client = ServeClient("http://unused", retries=2, backoff=0.0)
        calls = []

        def ndjson(path, payload=None):
            calls.append(path)
            raise ServeError("reset", transient=True)
            yield  # pragma: no cover - makes this a generator

        client._ndjson = ndjson
        with pytest.raises(ServeError, match="reset"):
            list(client.stream_job("j1"))
        assert len(calls) == 3  # first try + two back-to-back resumes


# ----------------------------------------------------------------------
# Property: partition x order x duplication never changes the store
# ----------------------------------------------------------------------
_PROPERTY_SPEC = SweepSpec.grid(
    workloads=("RNN", "LSTM"),
    platforms=("bpvec",),
    memories=("ddr4",),
    batches=(1, 2),
)


@settings(deadline=None, max_examples=20)
@given(data=st.data())
def test_any_partition_any_order_any_duplication_is_byte_identical(
    data, tmp_path_factory
):
    """The fleet's correctness core, as an invariant.

    However a sweep is chunked, whatever order chunks complete in, and
    however many times a straggler re-executes one, ingesting the
    per-chunk records leaves the store byte-identical to the unsharded
    sweep -- the version-aware upsert absorbs every duplicate.
    """
    count = data.draw(st.integers(min_value=1, max_value=8), label="chunks")
    chunks = _PROPERTY_SPEC.chunks(count)
    order = data.draw(
        st.permutations(range(len(chunks))), label="completion order"
    )
    duplicates = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=len(chunks) - 1), max_size=4
        ),
        label="re-executions",
    )

    tmp = tmp_path_factory.mktemp("fleet-prop")
    reference = ResultStore(tmp / "reference.jsonl")
    reference.append(run_sweep(_PROPERTY_SPEC).records)

    store = ResultStore(tmp / "fleet.jsonl")
    for position in list(order) + duplicates:
        _, sub = chunks[position]
        store.append(run_sweep(sub).records)

    assert json.dumps(store.load(), sort_keys=True) == json.dumps(
        reference.load(), sort_keys=True
    )


# ----------------------------------------------------------------------
# CLI flag validation for the fleet paths
# ----------------------------------------------------------------------
class TestCliValidation:
    def test_fleet_requires_server(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="--fleet requires --server"):
            main(["dse", "--workload", "RNN", "--fleet"])

    def test_chunks_requires_fleet(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="--chunks requires --fleet"):
            main(["dse", "--workload", "RNN", "--chunks", "4"])

    def test_fleet_excludes_stream_and_shard(self):
        from repro.cli import main

        base = ["dse", "--workload", "RNN", "--server", "http://x", "--fleet"]
        with pytest.raises(SystemExit, match="cannot --stream"):
            main([*base, "--stream"])
        with pytest.raises(SystemExit, match="mutually exclusive"):
            main([*base, "--shard", "0/2"])

    def test_launch_chunks_requires_fleet(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit, match="--chunks"):
            main(
                [
                    "dse-launch",
                    "--workload",
                    "RNN",
                    "--store",
                    str(tmp_path / "s.jsonl"),
                    "--chunks",
                    "4",
                ]
            )
