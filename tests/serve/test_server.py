"""Tests for the sweep service: endpoints, streaming, queries, errors.

The server runs in-process on an ephemeral port; the stdlib
:class:`~repro.serve.client.ServeClient` drives it exactly like a
remote client would.
"""

import json
import threading
import urllib.request

import pytest

from repro.dse import EVAL_VERSION, clear_memo
from repro.serve import ServeClient, ServeError, SweepServer, SweepService, serve

GRID = {
    "grid": {
        "workloads": ["RNN", "LSTM"],
        "platforms": ["bpvec"],
        "memories": ["ddr4"],
    }
}


@pytest.fixture(autouse=True)
def _fresh_memo():
    clear_memo()
    yield
    clear_memo()


@pytest.fixture
def live_server(tmp_path):
    """A served SQLite-backed service on an ephemeral port."""
    server = SweepServer(SweepService(store=tmp_path / "served.sqlite"))
    # Tight poll interval: shutdown in teardown returns immediately.
    thread = threading.Thread(
        target=lambda: server.serve_forever(poll_interval=0.02), daemon=True
    )
    thread.start()
    yield server
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


@pytest.fixture
def client(live_server):
    return ServeClient(live_server.url)


class TestHealthAndStats:
    def test_healthz(self, client):
        health = client.health()
        assert health["status"] == "ok"
        assert health["eval_version"] == EVAL_VERSION

    def test_stats_counts_store_and_memo(self, client):
        assert client.stats()["store"]["records"] == 0
        client.sweep(GRID)
        stats = client.stats()
        assert stats["store"]["backend"] == "sqlite"
        assert stats["store"]["records"] == 2
        assert stats["memo_records"] == 2
        assert stats["sweeps_served"] == 1

    def test_index_lists_endpoints(self, client):
        index = client._json("/")
        assert "POST /sweep" in index["endpoints"]

    def test_unknown_routes_are_404(self, client):
        for path in ("/nope", "/query"):  # GET and POST misses
            with pytest.raises(ServeError, match="404"):
                client._json(path)
        with pytest.raises(ServeError, match="404"):
            client._json("/nope", {"x": 1})


class TestSweepEndpoint:
    def test_submit_streams_records_then_summary(self, client):
        records = list(client.submit(GRID))
        assert {r["workload"] for r in records} == {"RNN", "LSTM"}
        assert all(r["version"] == EVAL_VERSION for r in records)
        assert client.last_summary["evaluated"] == 2
        assert client.last_summary["points"] == 2

    def test_second_submit_is_served_from_cache(self, client):
        client.sweep(GRID)
        records, summary = client.sweep(GRID)
        assert summary["evaluated"] == 0
        assert summary["memo_hits"] + summary["store_hits"] == 2
        assert len(records) == 2

    def test_explicit_points_spec(self, client):
        from repro.dse import SweepSpec

        spec = SweepSpec.grid(
            workloads=("RNN",), platforms=("tpu",), memories=("hbm2",)
        )
        records, _ = client.sweep(spec.to_dict())
        assert [r["hash"] for r in records] == [
            p.config_hash() for p in spec.points
        ]

    def test_fresh_records_land_in_the_store(self, client, live_server):
        client.sweep(GRID)
        store = live_server.service.store
        assert len(store) == 2

    def test_bad_spec_is_a_client_error(self, client):
        with pytest.raises(ServeError, match="400"):
            client.sweep({"grid": {"workloads": ["VGG-99"]}})
        with pytest.raises(ServeError, match="400"):
            client.sweep({"not-a-spec": 1})

    def test_list_body_is_a_client_error(self, client):
        # /records takes a bare list; /sweep must reject one with a 400
        # instead of dropping the connection on an AttributeError.
        with pytest.raises(ServeError, match="400"):
            client._json("/sweep", [1, 2])

    def test_zero_workers_is_a_client_error(self, client):
        with pytest.raises(ServeError, match="workers"):
            client.sweep(GRID, workers=0)

    def test_mid_stream_evaluation_error_arrives_in_band(self, client):
        # The spec itself is well-formed, so the stream starts with 200;
        # the evaluation failure must arrive as an in-band error object
        # that the client raises as ServeError.
        from dataclasses import fields

        from repro.hw import BPVEC

        platform = {f.name: getattr(BPVEC, f.name) for f in fields(BPVEC)}
        platform["max_bitwidth"] = 4  # the default 8-bit policy can't compose
        spec = {
            "points": [
                {"workload": "RNN", "platform": platform, "memory": "ddr4"}
            ]
        }
        with pytest.raises(ServeError, match="outside supported range"):
            list(client.submit(spec))

    def test_workers_and_vectorize_pass_through(self, client):
        records, summary = client.sweep(GRID, workers=2, vectorize=False)
        assert summary["evaluated"] == 2
        clear_memo()
        vectorized, _ = client.sweep(GRID, vectorize=True)
        # Scalar and vectorized server paths agree bit-for-bit.
        by_hash = {r["hash"]: r for r in records}
        assert all(by_hash[r["hash"]] == r for r in vectorized)


class TestRecordsEndpoints:
    def test_get_records_streams_current_version(self, client):
        client.sweep(GRID)
        records = client.records()
        assert len(records) == 2
        assert all(r["version"] == EVAL_VERSION for r in records)

    def test_ingest_appends_to_the_store(self, client, live_server):
        response = client.post_records(
            [{"hash": "x" * 64, "version": EVAL_VERSION, "metrics": {}}]
        )
        assert response["appended"] == 1
        assert len(live_server.service.store) == 1
        # Uploads are tracked as ingest jobs, visible in the job table.
        job = client.job_status(response["job"])
        assert job["kind"] == "ingest"
        assert job["state"] == "done"
        assert job["progress"] == {"offered": 1, "appended": 1}

    def test_ingest_rejects_keyless_records(self, client):
        with pytest.raises(ServeError, match="400"):
            client.post_records([{"metrics": {}}])
        with pytest.raises(ServeError, match="400"):
            client._json("/records", {"records": "not-a-list"})

    def test_ingest_accepts_bare_list_body(self, client):
        payload = [{"hash": "y" * 64, "version": EVAL_VERSION, "metrics": {}}]
        assert client._json("/records", payload)["appended"] == 1

    def test_store_io_failure_maps_to_503(self, client, live_server, monkeypatch):
        def locked(*args, **kwargs):
            raise OSError("sqlite store locked")

        for primitive in ("load", "iter_records", "iter_page"):
            monkeypatch.setattr(live_server.service.store, primitive, locked)
        with pytest.raises(ServeError, match="503"):
            client.records()
        with pytest.raises(ServeError, match="503"):
            client.pareto()


class TestQueryEndpoints:
    @pytest.fixture(autouse=True)
    def _warm(self, client):
        client.sweep(
            {
                "grid": {
                    "workloads": ["RNN", "LSTM"],
                    "platforms": ["bpvec", "tpu"],
                    "memories": ["ddr4"],
                }
            }
        )

    def test_pareto_matches_local_query(self, client):
        from repro.dse import pareto_frontier

        served = client.pareto()
        local = pareto_frontier(client.records())
        assert {r["hash"] for r in served} == {r["hash"] for r in local}

    def test_pareto_with_where_filter(self, client):
        served = client.pareto(where={"workload": "RNN"})
        assert served and all(r["workload"] == "RNN" for r in served)

    def test_top_k(self, client):
        best = client.top_k(objective="perf_per_watt", k=2, sense="max")
        assert len(best) == 2
        assert (
            best[0]["metrics"]["perf_per_watt"]
            >= best[1]["metrics"]["perf_per_watt"]
        )

    def test_accuracy_frontier(self, client):
        accuracy = {"homogeneous-8bit": 0.9}
        frontier = client.accuracy_frontier(accuracy)
        assert frontier
        assert all(r["metrics"]["accuracy"] == 0.9 for r in frontier)

    def test_unknown_query_and_params_rejected(self, client):
        with pytest.raises(ServeError, match="unknown query"):
            client.query("bogus")
        with pytest.raises(ServeError, match="parameters"):
            client.query("pareto", bogus_param=1)
        with pytest.raises(ServeError, match="accuracy_by_policy"):
            client.query("accuracy-frontier")

    def test_non_mapping_where_is_a_client_error(self, client):
        # {"where": "LSTM"} is a natural typo for {"where": {...}}; it
        # must come back as a 400, not a dropped connection.
        with pytest.raises(ServeError, match="where"):
            client.pareto(where="LSTM")


class TestTruncationDetection:
    """Close-delimited streams must be distinguishable from crashes."""

    def test_get_records_ends_with_a_count_line(self, client):
        client.sweep(GRID)
        raw = list(client._ndjson("/records"))
        assert raw[-1] == {"count": 2}
        assert client.records() == raw[:-1]

    def test_truncated_sweep_stream_raises(self, monkeypatch):
        client = ServeClient("http://unused")
        monkeypatch.setattr(
            client, "submit_job", lambda spec, **kw: {"job": "abc123"}
        )
        monkeypatch.setattr(
            client,
            "_ndjson",
            lambda path, payload=None: iter([{"hash": "x", "metrics": {}}]),
        )
        with pytest.raises(ServeError, match="without a summary"):
            list(client.submit({"points": []}))

    def test_truncated_records_stream_raises(self, monkeypatch):
        client = ServeClient("http://unused")
        monkeypatch.setattr(
            client,
            "_ndjson",
            lambda path, payload=None: iter([{"hash": "x", "metrics": {}}]),
        )
        with pytest.raises(ServeError, match="truncated"):
            client.records()


def _run_job(service, payload):
    """Drive a sweep job through the service directly (no HTTP)."""
    job = service.submit(payload)
    assert job.wait(timeout=60), f"job stuck in state {job.state}"
    assert job.state == "done", job.error
    return job


class TestRecordsCache:
    def test_store_parsed_once_until_it_changes(self, tmp_path):
        service = SweepService(store=tmp_path / "s.jsonl")
        _run_job(service, {"spec": GRID})
        loads = []
        original_load = service.store.load
        service.store.load = lambda: loads.append(1) or original_load()
        first = service.records()
        assert len(first) == 2
        assert service.records() is first  # served from the cache
        assert len(loads) == 1
        # Any append (sweep, ingest, external writer) grows the file
        # and invalidates the cache key.  (The ingest reply itself pays
        # a load for its record count on this backend.)
        service.ingest([{"hash": "z" * 64, "version": EVAL_VERSION, "metrics": {}}])
        # Own writes invalidate explicitly -- stat keys alone can miss
        # a same-size upsert within one coarse mtime tick.
        assert service.record_cache.snapshot() is None
        loads.clear()
        fresh = service.records()
        assert len(fresh) == 3 and len(loads) == 1
        assert service.records() is fresh and len(loads) == 1

    def test_store_stats_cached_until_the_store_changes(self, tmp_path):
        service = SweepService(store=tmp_path / "s.jsonl")
        _run_job(service, {"spec": GRID})
        calls = []
        original_stats = service.store.stats
        service.store.stats = lambda: calls.append(1) or original_stats()
        first = service.stats()
        assert first["store"]["records"] == 2
        assert service.stats()["store"] is first["store"]
        assert len(calls) == 1
        service.ingest([{"hash": "y" * 64, "version": EVAL_VERSION, "metrics": {}}])
        calls.clear()
        assert service.stats()["store"]["records"] == 3
        assert len(calls) == 1


class TestExternalWriterInvalidation:
    """The regression ``(mtime, size)`` cache keys could not catch: an
    external writer's same-size upsert must be visible to the next
    query, without the service ever being told about the write."""

    def test_jsonl_same_size_upsert_is_seen_by_the_next_query(self, tmp_path):
        import os

        service = SweepService(store=tmp_path / "s.jsonl")
        service.store.append(
            [
                {
                    "hash": "a" * 64,
                    "version": EVAL_VERSION,
                    "metrics": {"total_seconds": 1.0, "total_energy_j": 1.0},
                }
            ]
        )
        assert service.records()[0]["metrics"]["total_seconds"] == 1.0
        # Rewrite the record in place -- same byte count -- and pin the
        # mtime back to the original tick, like a fast external upsert.
        raw = service.store.path.read_bytes()
        stat = service.store.path.stat()
        service.store.path.write_bytes(
            raw.replace(b'"total_seconds": 1.0', b'"total_seconds": 2.0')
        )
        os.utime(
            service.store.path, ns=(stat.st_atime_ns, stat.st_mtime_ns)
        )
        (frontier_record,) = service.query("pareto")
        assert frontier_record["metrics"]["total_seconds"] == 2.0

    def test_sqlite_external_upsert_is_seen_by_the_next_query(self, tmp_path):
        from repro.dse import SQLiteStore

        path = tmp_path / "s.sqlite"
        service = SweepService(store=SQLiteStore(path))
        record = {
            "hash": "a" * 64,
            "version": EVAL_VERSION,
            "metrics": {"total_seconds": 1.0, "total_energy_j": 1.0},
        }
        service.store.append([record])
        assert service.records()[0]["metrics"]["total_seconds"] == 1.0
        # Another connection -- an external process, as far as SQLite
        # is concerned -- upserts the same row: same size, same count.
        record["metrics"]["total_seconds"] = 2.0
        SQLiteStore(path).append([record])
        (frontier_record,) = service.query("pareto")
        assert frontier_record["metrics"]["total_seconds"] == 2.0


class TestStorelessServer:
    def test_memo_backs_queries_and_ingest_fails(self):
        server = SweepServer(SweepService(store=None))
        thread = threading.Thread(
            target=lambda: server.serve_forever(poll_interval=0.02), daemon=True
        )
        thread.start()
        try:
            client = ServeClient(server.url)
            assert client.stats()["store"] is None
            records, summary = client.sweep(GRID)
            assert summary["evaluated"] == 2
            assert len(client.records()) == 2  # served from the memo
            assert client.pareto()  # queries too
            with pytest.raises(ServeError, match="no store"):
                client.post_records([{"hash": "x", "version": 1}])
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)


class TestServeLifecycle:
    def test_serve_announces_and_shuts_down_cleanly(self, tmp_path):
        messages = []
        boxed = {}
        done = threading.Event()

        def run():
            code = serve(
                store=tmp_path / "s.jsonl",
                port=0,
                announce=messages.append,
                ready=lambda server: boxed.setdefault("server", server),
            )
            boxed["code"] = code
            done.set()

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        for _ in range(100):
            if "server" in boxed:
                break
            done.wait(0.05)
        client = ServeClient(boxed["server"].url)
        assert client.health()["status"] == "ok"
        assert client.shutdown() == {"status": "shutting down"}
        assert done.wait(10)
        assert boxed["code"] == 0
        assert "serving DSE sweeps on" in messages[0]
        assert messages[-1] == "server shut down cleanly"

    def test_get_route_store_errors_map_to_400(self, tmp_path):
        # A store backend forced onto the wrong file must fail as a
        # JSON client error on GET routes, not a dropped connection.
        from repro.dse import ResultStore, SQLiteStore

        path = tmp_path / "s.jsonl"
        ResultStore(path).append([{"hash": "a", "version": 1, "metrics": {}}])
        server = SweepServer(SweepService(store=SQLiteStore(path)))
        thread = threading.Thread(
            target=lambda: server.serve_forever(poll_interval=0.02), daemon=True
        )
        thread.start()
        try:
            client = ServeClient(server.url)
            with pytest.raises(ServeError, match="400.*not a SQLite store"):
                client.stats()
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)

    def test_dropped_connection_raises_serve_error(self):
        # A socket that closes before sending a status line must map to
        # ServeError, not leak http.client.RemoteDisconnected.
        import socket

        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        port = listener.getsockname()[1]

        def accept_and_close():
            connection, _ = listener.accept()
            connection.close()

        thread = threading.Thread(target=accept_and_close, daemon=True)
        thread.start()
        try:
            # retries=0: the one-shot socket above serves exactly one
            # connection, so the client's transient-failure retry (which
            # would reconnect into the unaccepted listen backlog and
            # wait out its whole timeout) must stay off here.
            with pytest.raises(ServeError, match="dropped the connection"):
                ServeClient(f"http://127.0.0.1:{port}", retries=0).health()
        finally:
            listener.close()
            thread.join(timeout=5)

    def test_raw_http_get_works_without_the_client(self, live_server):
        # The protocol is plain enough for any HTTP client.
        with urllib.request.urlopen(live_server.url + "/healthz") as response:
            assert json.load(response)["status"] == "ok"
