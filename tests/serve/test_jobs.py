"""Tests for the job-queue service: scheduling, cancellation, streams.

The concurrency contract the refactor exists for: a slow sweep must not
head-of-line block health checks, stats, or other jobs; cancellation
leaves only fully-appended records behind; a dropped stream resumes
exactly where it left off via ``?after=N``; a stalled client frees its
handler thread after ``--client-timeout``.
"""

import socket
import threading
import time
import urllib.request

import pytest

import repro.dse.engine as engine_module
import repro.serve.server as server_module
from repro.cli import main
from repro.dse import clear_memo
from repro.serve import (
    Job,
    JobManager,
    ServeClient,
    ServeError,
    SweepServer,
    SweepService,
)

GRID = {
    "grid": {
        "workloads": ["RNN", "LSTM"],
        "platforms": ["bpvec"],
        "memories": ["ddr4"],
    }
}

#: One-point specs the concurrency tests tell apart by workload.
SLOW_SPEC = {
    "grid": {"workloads": ["RNN"], "platforms": ["bpvec"], "memories": ["ddr4"]}
}
FAST_SPEC = {
    "grid": {"workloads": ["LSTM"], "platforms": ["bpvec"], "memories": ["ddr4"]}
}


@pytest.fixture(autouse=True)
def _fresh_memo():
    clear_memo()
    yield
    clear_memo()


@pytest.fixture
def live_server(tmp_path):
    server = SweepServer(SweepService(store=tmp_path / "served.sqlite"))
    thread = threading.Thread(
        target=lambda: server.serve_forever(poll_interval=0.02), daemon=True
    )
    thread.start()
    yield server
    server.shutdown()
    server.server_close()
    server.service.close()
    thread.join(timeout=5)


@pytest.fixture
def client(live_server):
    return ServeClient(live_server.url, timeout=10)


def _hanging_iter_sweep(started: threading.Event, release: threading.Event):
    """A fake ``iter_sweep`` that runs until released (or cancelled)."""

    def hang(spec, **kwargs):
        started.set()
        should_cancel = kwargs.get("should_cancel")
        while not release.is_set():
            if should_cancel is not None and should_cancel():
                return
            time.sleep(0.01)
        return
        yield  # pragma: no cover - makes this a generator function

    return hang


class TestJobManagerScheduling:
    """Unit tests on the queue itself -- no HTTP, no engine."""

    def test_priority_orders_jobs_fifo_within_a_level(self):
        order: list[str] = []
        blocker_started, gate = threading.Event(), threading.Event()

        def runner(job):
            if job.id == "blocker":
                blocker_started.set()
                gate.wait(10)
            else:
                order.append(job.id)
            job.finish("done")

        manager = JobManager(runner, pool_size=1)
        manager.submit(Job(spec=None, job_id="blocker"))
        assert blocker_started.wait(5)
        # Queued while the one worker is busy: scheduling order is now
        # observable.  Lower priority number wins; ties run FIFO.
        b = manager.submit(Job(spec=None, priority=10, job_id="b"))
        c = manager.submit(Job(spec=None, priority=10, job_id="c"))
        a = manager.submit(Job(spec=None, priority=1, job_id="a"))
        gate.set()
        for job in (a, b, c):
            assert job.wait(10)
        assert order == ["a", "b", "c"]
        manager.close()

    def test_cancelling_a_queued_job_skips_execution(self):
        ran: list[str] = []
        blocker_started, gate = threading.Event(), threading.Event()

        def runner(job):
            if job.id == "blocker":
                blocker_started.set()
                gate.wait(10)
            ran.append(job.id)
            job.finish("done")

        manager = JobManager(runner, pool_size=1)
        manager.submit(Job(spec=None, job_id="blocker"))
        assert blocker_started.wait(5)
        victim = manager.submit(Job(spec=None, job_id="victim"))
        assert victim.cancel() == "cancelled"
        assert victim.done and victim.finished_at is not None
        gate.set()
        # A later job proves the worker drained past the cancelled one.
        after = manager.submit(Job(spec=None, job_id="after"))
        assert after.wait(10)
        assert ran == ["blocker", "after"]
        assert victim.state == "cancelled"
        manager.close()

    def test_runner_exception_fails_the_job(self):
        manager = JobManager(lambda job: 1 / 0, pool_size=1)
        job = manager.submit(Job(spec=None))
        assert job.wait(5)
        assert job.state == "failed"
        assert "division" in job.error
        manager.close()

    def test_runner_returning_without_finishing_fails_loudly(self):
        manager = JobManager(lambda job: None, pool_size=1)
        job = manager.submit(Job(spec=None))
        assert job.wait(5)
        assert job.state == "failed"
        assert job.error == "job runner never finished"
        manager.close()

    def test_terminal_states_are_final(self):
        job = Job(spec=None)
        assert job.mark_running()
        assert not job.mark_running()  # already running
        job.finish("done")
        job.finish("failed", error="too late")  # first terminal sticks
        assert job.state == "done" and job.error is None
        assert job.cancel() == "done"  # cancel on terminal: untouched
        with pytest.raises(ValueError):
            job.finish("running")

    def test_submit_after_close_is_rejected(self):
        manager = JobManager(lambda job: job.finish("done"), pool_size=1)
        manager.close()
        with pytest.raises(RuntimeError, match="shut down"):
            manager.submit(Job(spec=None))

    def test_pool_size_must_be_positive(self):
        with pytest.raises(ValueError):
            JobManager(lambda job: None, pool_size=0)


class TestConcurrencyContract:
    """A slow job must not delay anyone else -- the refactor's point."""

    def test_slow_job_does_not_block_reads_or_a_second_job(
        self, live_server, client, monkeypatch
    ):
        started, release = threading.Event(), threading.Event()
        real_iter_sweep = server_module.iter_sweep

        def gated(spec, **kwargs):
            if spec.points[0].workload == "RNN":
                yield from _hanging_iter_sweep(started, release)(
                    spec, **kwargs
                )
            else:
                yield from real_iter_sweep(spec, **kwargs)

        monkeypatch.setattr(server_module, "iter_sweep", gated)
        slow = client.submit_job(SLOW_SPEC)
        assert slow["state"] in ("queued", "running")
        assert started.wait(10)
        try:
            # Reads answer promptly while the slow job occupies a worker
            # (the 10s client timeout is the regression tripwire: the old
            # lock-serialized service parked these behind the sweep).
            assert client.health()["status"] == "ok"
            stats = client.stats()
            assert stats["jobs"]["running"] >= 1
            # A second small job runs to completion on the other worker.
            records, summary = client.sweep(FAST_SPEC)
            assert len(records) == 1 and summary["evaluated"] == 1
            assert client.job_status(slow["job"])["state"] == "running"
        finally:
            release.set()
        job = live_server.service.job(slow["job"])
        assert job.wait(10)

    def test_cancel_keeps_only_fully_appended_records(
        self, tmp_path, monkeypatch
    ):
        # Real engine, gated evaluation: the first chunk blocks until
        # the test has requested cancellation, so the job is cancelled
        # at the record boundary after exactly one record.
        real = engine_module.evaluate_points
        first_chunk, release = threading.Event(), threading.Event()

        def gated(chunk):
            records = real(chunk)
            if not first_chunk.is_set():
                first_chunk.set()
                release.wait(timeout=30)
            return records

        monkeypatch.setattr(engine_module, "evaluate_points", gated)
        service = SweepService(store=tmp_path / "s.jsonl")
        try:
            job = service.submit({"spec": GRID})  # two one-point chunks
            assert first_chunk.wait(10)
            response = service.cancel(job)
            assert response["cancel_requested"]
            release.set()
            assert job.wait(10)
            assert job.state == "cancelled"
            # The record completed before the cancel was honoured is
            # kept -- fully formed -- and nothing else reached the
            # store: no half-written lines, no phantom second record.
            assert job.completed() == 1
            stored = list(service.store.load().values())
            assert stored == job.records
            # The staging file was merged and removed.
            assert not list(tmp_path.glob("*.staging"))
        finally:
            service.close()

    def test_http_cancel_surfaces_in_stream_and_status(
        self, live_server, client, monkeypatch
    ):
        started, release = threading.Event(), threading.Event()
        monkeypatch.setattr(
            server_module,
            "iter_sweep",
            _hanging_iter_sweep(started, release),
        )
        job = client.submit_job(GRID)
        assert started.wait(10)
        response = client.cancel_job(job["job"])
        assert response["cancel_requested"]
        with pytest.raises(ServeError, match="cancelled"):
            list(client.stream_job(job["job"]))
        status = client.job_status(job["job"])
        assert status["state"] == "cancelled"
        assert client.stats()["jobs"]["cancelled"] == 1

    def test_idle_stream_emits_keepalive_blank_lines(
        self, live_server, client, monkeypatch
    ):
        from repro.serve import jobs as jobs_module

        monkeypatch.setattr(jobs_module, "STREAM_KEEPALIVE_SECONDS", 0.05)
        started, release = threading.Event(), threading.Event()
        monkeypatch.setattr(
            server_module,
            "iter_sweep",
            _hanging_iter_sweep(started, release),
        )
        job = client.submit_job(GRID)
        assert started.wait(10)
        url = f"{live_server.url}/jobs/{job['job']}/records"
        try:
            with urllib.request.urlopen(url, timeout=10) as response:
                # The job is idle, so the first line is a keepalive
                # blank -- the write that detects vanished clients.
                assert response.readline() == b"\n"
        finally:
            release.set()
        assert live_server.service.job(job["job"]).wait(10)


class TestResumableStreams:
    def test_after_returns_exactly_the_tail(self, client):
        job = client.submit_job(GRID)
        records = list(client.stream_job(job["job"]))
        assert len(records) == 2
        full_summary = client.last_summary
        # Resume past the first record: exactly the tail, same summary.
        tail = list(client.stream_job(job["job"], after=1))
        assert tail == records[1:]
        assert client.last_summary == full_summary
        # Resuming past the end yields nothing but still terminates.
        assert list(client.stream_job(job["job"], after=5)) == []
        assert client.last_summary == full_summary

    def test_negative_after_is_a_client_error(self, client):
        job = client.submit_job(GRID)
        list(client.stream_job(job["job"]))  # let it finish
        with pytest.raises(ServeError, match="400"):
            list(client.stream_job(job["job"], after=-1))

    def test_unknown_job_is_a_404_everywhere(self, client):
        with pytest.raises(ServeError, match="404"):
            client.job_status("feedbeefcafe")
        with pytest.raises(ServeError, match="404"):
            list(client.stream_job("feedbeefcafe"))
        with pytest.raises(ServeError, match="404"):
            client.cancel_job("feedbeefcafe")

    def test_job_status_carries_progress_and_frontier(self, client):
        job = client.submit_job(GRID)
        records = list(client.stream_job(job["job"]))
        status = client.job_status(job["job"])
        assert status["state"] == "done"
        assert status["progress"]["points"] == 2
        assert status["progress"]["completed"] == 2
        frontier_hashes = {r["hash"] for r in status["frontier"]}
        assert frontier_hashes <= {r["hash"] for r in records}
        listed = client.jobs()
        assert [j["job"] for j in listed] == [job["job"]]


class TestClientTimeout:
    def test_stalled_client_is_disconnected_after_the_timeout(self, tmp_path):
        # A connection that never sends its request line must be cut
        # loose after --client-timeout, not pin a handler thread
        # forever.
        server = SweepServer(
            SweepService(store=tmp_path / "s.sqlite"), client_timeout=0.3
        )
        thread = threading.Thread(
            target=lambda: server.serve_forever(poll_interval=0.02),
            daemon=True,
        )
        thread.start()
        try:
            host, port = server.server_address[:2]
            with socket.create_connection((host, port), timeout=10) as sock:
                sock.settimeout(10)
                start = time.monotonic()
                assert sock.recv(1) == b""  # server hung up on us
                assert time.monotonic() - start < 5
            # The server still answers well-behaved clients.
            assert ServeClient(server.url).health()["status"] == "ok"
        finally:
            server.shutdown()
            server.server_close()
            server.service.close()
            thread.join(timeout=5)


class TestDetachCli:
    def test_detach_prints_the_job_id(self, capsys, live_server):
        code = main(
            [
                "dse",
                "--workload",
                "RNN",
                "--platform",
                "bpvec",
                "--memory",
                "ddr4",
                "--server",
                live_server.url,
                "--detach",
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        job_id = captured.out.strip()  # just the id: scriptable
        assert job_id and "\n" not in job_id
        assert f"submitted job {job_id}" in captured.err
        client = ServeClient(live_server.url, timeout=10)
        assert client.job_status(job_id)["kind"] == "sweep"
        assert len(list(client.stream_job(job_id))) == 1

    def test_detach_requires_server(self):
        with pytest.raises(SystemExit, match="requires --server"):
            main(["dse", "--workload", "RNN", "--detach"])

    def test_detach_and_stream_are_mutually_exclusive(self, live_server):
        with pytest.raises(SystemExit, match="mutually exclusive"):
            main(
                [
                    "dse",
                    "--workload",
                    "RNN",
                    "--server",
                    live_server.url,
                    "--detach",
                    "--stream",
                ]
            )
