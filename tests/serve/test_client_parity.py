"""End-to-end parity: ``repro dse --server`` == local ``run_sweep``.

The acceptance criterion for the served system: a sweep submitted
through the HTTP client yields records bit-identical (same config
hashes, cycles, energy) to a local run -- through the Python API and
through the CLI, for plain grids and policy axes alike.
"""

import json
import threading

import pytest

from repro.cli import main
from repro.dse import SweepSpec, clear_memo, run_sweep
from repro.serve import ServeClient, SweepServer, SweepService


@pytest.fixture(autouse=True)
def _fresh_memo():
    clear_memo()
    yield
    clear_memo()


@pytest.fixture
def live_server(tmp_path):
    server = SweepServer(SweepService(store=tmp_path / "served.sqlite"))
    thread = threading.Thread(
        target=lambda: server.serve_forever(poll_interval=0.02), daemon=True
    )
    thread.start()
    yield server
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


def _spec() -> SweepSpec:
    return SweepSpec.grid(
        workloads=("RNN", "LSTM"),
        platforms=("bpvec", "tpu"),
        memories=("ddr4", "hbm2"),
        policies=("homogeneous-8bit", "uniform-4x4"),
        batches=(1, 4),
    )


class TestWireFormat:
    def test_spec_round_trips_with_identical_hashes(self):
        spec = _spec()
        rebuilt = SweepSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert [p.config_hash() for p in rebuilt.points] == [
            p.config_hash() for p in spec.points
        ]
        assert rebuilt.points == spec.points

    def test_gpu_points_round_trip(self):
        from repro.dse import resolve_gpu, SweepPoint

        point = SweepPoint(
            workload="LSTM", gpu=resolve_gpu("rtx-2080-ti"), gpu_precision=4
        )
        rebuilt = SweepSpec.from_dict({"points": [point.to_dict()]})
        assert rebuilt.points[0].config_hash() == point.config_hash()


class TestApiParity:
    def test_served_records_bit_identical_to_local(self, live_server):
        spec = _spec()
        local = run_sweep(spec)

        clear_memo()  # the server evaluates from cold in this process
        client = ServeClient(live_server.url)
        served, summary = client.sweep(spec.to_dict())
        assert summary["evaluated"] == len(spec)

        by_hash = {record["hash"]: record for record in served}
        reordered = [by_hash[p.config_hash()] for p in spec.points]
        assert reordered == local.records  # bit-identical, all fields

    def test_completion_order_streaming_covers_the_sweep(self, live_server):
        spec = _spec()
        client = ServeClient(live_server.url)
        seen = [record["hash"] for record in client.submit(spec.to_dict())]
        assert set(seen) == {p.config_hash() for p in spec.points}
        assert len(seen) == len(set(seen))  # one record per unique config


class TestCliParity:
    def _run(self, capsys, *argv):
        assert main(list(argv)) == 0
        return capsys.readouterr().out

    def test_cli_server_mode_output_is_byte_identical(self, capsys, live_server):
        argv = (
            "dse",
            "--workload",
            "RNN",
            "--workload",
            "LSTM",
            "--policy",
            "paper-heterogeneous",
            "--format",
            "jsonl",
        )
        local = self._run(capsys, *argv)
        clear_memo()
        served = self._run(capsys, *argv, "--server", live_server.url)
        assert served == local

    def test_cli_server_mode_table_reports_server_tiers(
        self, capsys, live_server
    ):
        argv = ("dse", "--workload", "RNN", "--server", live_server.url)
        cold = self._run(capsys, *argv)
        assert "6 evaluated" in cold
        warm = self._run(capsys, *argv)
        # Tier counts come from the server's caches, not the client's.
        assert "0 evaluated" in warm
        assert "6 memo hits" in warm or "6 store hits" in warm

    def test_cli_server_stream_mode(self, capsys, live_server):
        out = self._run(
            capsys,
            "dse",
            "--workload",
            "RNN",
            "--server",
            live_server.url,
            "--stream",
        )
        records = [json.loads(line) for line in out.strip().splitlines()]
        assert len(records) == 6
        assert all("metrics" in r for r in records)

    def test_cli_server_json_format_carries_summary(self, capsys, live_server):
        out = self._run(
            capsys,
            "dse",
            "--workload",
            "RNN",
            "--platform",
            "bpvec",
            "--memory",
            "ddr4",
            "--server",
            live_server.url,
            "--format",
            "json",
        )
        payload = json.loads(out)
        assert payload["count"] == 1
        assert payload["summary"]["evaluated"] == 1

    def test_server_and_store_are_mutually_exclusive(self, live_server):
        with pytest.raises(SystemExit) as exc:
            main(
                [
                    "dse",
                    "--workload",
                    "RNN",
                    "--server",
                    live_server.url,
                    "--store",
                    "x.jsonl",
                ]
            )
        assert exc.value.code != 0

    def test_unset_engine_flags_defer_to_the_server(self):
        # Flags the user did not pass are omitted from the request, so
        # a server started with --workers/--no-vectorize keeps its own
        # defaults instead of being overridden by client defaults.
        from repro.cli import _server_options, build_parser

        args = build_parser().parse_args(["dse", "--server", "http://x"])
        assert _server_options(args) == {}
        args = build_parser().parse_args(
            [
                "dse",
                "--server",
                "http://x",
                "--workers",
                "3",
                "--no-vectorize",
            ]
        )
        assert _server_options(args) == {"workers": 3, "vectorize": False}

    def test_empty_spec_errors_like_local_mode(self, tmp_path, live_server):
        spec = tmp_path / "empty.json"
        spec.write_text(json.dumps({"points": []}))
        with pytest.raises(SystemExit) as local:
            main(["dse", "--spec", str(spec)])
        with pytest.raises(SystemExit) as served:
            main(["dse", "--spec", str(spec), "--server", live_server.url])
        assert local.value.code != 0 and served.value.code != 0

    def test_unreachable_server_exits_nonzero(self):
        with pytest.raises(SystemExit) as exc:
            main(
                [
                    "dse",
                    "--workload",
                    "RNN",
                    "--server",
                    "http://127.0.0.1:1",  # nothing listens on port 1
                ]
            )
        assert exc.value.code != 0
